"""Two firewalled sites, two proxy deployments: the general case."""

import pytest

from repro.cluster.multisite import DualFirewallTestbed
from repro.core import FramedConnection, NexusProxyClient
from repro.mpi import MPIWorld, allreduce
from repro.simnet import FirewallBlocked


@pytest.fixture
def tb():
    return DualFirewallTestbed()


def test_sites_mutually_unreachable(tb):
    a = tb.site("alpha")
    b = tb.site("beta")
    assert not tb.net.can_connect(a.hosts[0].name, b.hosts[0].name, 5000)
    assert not tb.net.can_connect(b.hosts[0].name, a.hosts[0].name, 5000)
    # Each outer server is reachable from the other site (outbound).
    assert tb.net.can_connect(
        a.hosts[0].name, b.outer_host.name, tb.relay_config.control_port
    )
    assert tb.total_exposure() == 2  # one nxport per site


def test_cross_firewall_exchange_via_double_proxy(tb):
    """alpha-host publishes via its proxy; beta-host connects via its
    own proxy: three relay traversals, zero extra firewall holes."""
    alpha, beta = tb.site("alpha"), tb.site("beta")
    out = {}

    def publisher():
        client = NexusProxyClient(alpha.hosts[0], **alpha.proxy_addrs)
        listener = yield from client.bind()
        out["public"] = listener.proxy_addr
        framed = yield from listener.accept()
        payload, n = yield from framed.recv()
        out["got"] = (payload, n)
        yield framed.send("reply-across-two-firewalls", nbytes=256)

    def dialer():
        while "public" not in out:
            yield tb.sim.timeout(1e-3)
        client = NexusProxyClient(beta.hosts[0], **beta.proxy_addrs)
        framed = yield from client.connect(out["public"])
        yield framed.send("hello-alpha", nbytes=512)
        payload, _ = yield from framed.recv()
        out["reply"] = payload

    tb.sim.process(publisher())
    tb.sim.process(dialer())
    tb.sim.run()
    assert out["got"] == ("hello-alpha", 512)
    assert out["reply"] == "reply-across-two-firewalls"
    # All three relays carried traffic: beta's outer (the dialer's
    # NXProxyConnect), alpha's outer (public port), alpha's inner.
    assert tb.site("beta").outer_server.stats.active_connects == 1
    assert tb.site("alpha").outer_server.stats.passive_chains == 1
    assert tb.site("alpha").inner_server.stats.frames_relayed > 0


def test_direct_attempt_still_blocked_after_deployment(tb):
    alpha, beta = tb.site("alpha"), tb.site("beta")

    def probe():
        with pytest.raises(FirewallBlocked):
            yield from beta.hosts[0].connect((alpha.hosts[0].name, 9999))
        return True

    p = tb.sim.process(probe())
    tb.sim.run()
    assert p.value is True


def test_mpi_world_across_two_firewalled_sites(tb):
    """A 4-rank MPI job spanning both firewalled sites."""
    alpha, beta = tb.site("alpha"), tb.site("beta")
    world = MPIWorld(tb.net, relay_config=tb.relay_config)
    for h in alpha.hosts:
        world.add_rank(h, **alpha.proxy_addrs)
    for h in beta.hosts:
        world.add_rank(h, **beta.proxy_addrs)

    def main(comm):
        total = yield from allreduce(comm, comm.rank + 1, lambda a, b: a + b)
        return total

    def driver():
        return (yield from world.launch(main))

    p = tb.sim.process(driver())
    results = tb.sim.run(until=p)
    assert results == [10, 10, 10, 10]


def test_latency_scales_with_relay_count(tb):
    """Cross-site (3 relays) costs more than intra-site proxied
    (2 relays) which costs more than intra-site direct."""
    alpha, beta = tb.site("alpha"), tb.site("beta")
    times = {}

    def measure(tag, client_host, client_addrs, server_host, server_addrs):
        done = {}

        def server():
            c = NexusProxyClient(server_host, **server_addrs)
            listener = yield from c.bind()
            done["addr"] = listener.proxy_addr
            framed = yield from listener.accept()
            for _ in range(2):  # warm-up + measured ping
                payload, n = yield from framed.recv()
                yield framed.send(payload, nbytes=n)

        def client():
            while "addr" not in done:
                yield tb.sim.timeout(1e-3)
            c = NexusProxyClient(client_host, **client_addrs)
            framed = yield from c.connect(done["addr"])
            yield framed.send(b"w", nbytes=16)  # warm-up
            yield from framed.recv()
            t0 = tb.sim.now
            yield framed.send(b"p", nbytes=16)
            yield from framed.recv()
            times[tag] = (tb.sim.now - t0) / 2

        tb.sim.process(server())
        proc = tb.sim.process(client())
        tb.sim.run(until=proc)

    # 2 relays: alpha host to alpha host through alpha's proxy.
    measure("intra-proxied", alpha.hosts[1], alpha.proxy_addrs,
            alpha.hosts[0], alpha.proxy_addrs)
    # 3 relays: beta host to alpha host, each via its own site proxy.
    measure("cross-site", beta.hosts[0], beta.proxy_addrs,
            alpha.hosts[0], alpha.proxy_addrs)
    assert times["cross-site"] > times["intra-proxied"] + 5e-3
