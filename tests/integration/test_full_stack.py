"""Cross-subsystem integration: the whole story in single tests."""

import pytest

from repro.apps.knapsack import (
    SchedulingParams,
    knapsack_rank_main,
    optimal_value,
    register_knapsack_executable,
    scaled_instance,
    tree_size,
)
from repro.cluster import Testbed, build_world
from repro.rmf import RMFSystem
from repro.simnet import FirewallBlocked


@pytest.fixture(scope="module")
def instance():
    return scaled_instance(n=30, target_nodes=150_000, seed=9)


def test_wide_area_knapsack_through_proxy(instance):
    """MPI over Nexus over the relay over the simulated WAN: the
    20-rank wide-area run, firewall fully closed."""
    tb = Testbed()
    world = build_world(tb, "Wide-area Cluster", use_proxy=True)
    params = SchedulingParams(node_cost=20e-6)

    def driver():
        return (yield from world.launch(knapsack_rank_main, instance, params))

    p = tb.sim.process(driver())
    results = tb.sim.run(until=p)
    assert sum(r.nodes_traversed for r in results) == tree_size(instance)
    assert results[0].global_best == optimal_value(instance)
    # The relays actually carried the cross-firewall traffic.
    assert tb.outer_server.stats.frames_relayed > 0
    assert tb.inner_server.stats.frames_relayed > 0
    # And the firewall stayed shut: the deny counter saw attempts only
    # if something tried to sneak through (nothing should have).
    assert tb.rwcp_firewall.inbound_default.value == "deny"


def test_same_run_without_proxy_requires_open_firewall(instance):
    tb = Testbed()
    # Building the direct world flips the firewall (the paper's
    # temporary change); verify the dependency is real by checking a
    # closed-firewall direct connect fails first.
    def probe():
        with pytest.raises(FirewallBlocked):
            yield from tb.etl_o2k.connect(("rwcp-sun", 12345))
        return True

    p = tb.sim.process(probe())
    tb.sim.run()
    assert p.value is True

    world = build_world(tb, "Wide-area Cluster", use_proxy=False)
    params = SchedulingParams(node_cost=20e-6)

    def driver():
        return (yield from world.launch(knapsack_rank_main, instance, params))

    p = tb.sim.process(driver())
    results = tb.sim.run(until=p)
    assert results[0].global_best == optimal_value(instance)
    # No relay traffic in the direct configuration.
    assert tb.outer_server.stats.frames_relayed == 0


def test_rmf_submits_knapsack_onto_firewalled_cluster(instance):
    """The grid-computing story end-to-end: a user at ETL submits the
    knapsack job through the gatekeeper; it runs on COMPaS behind the
    firewall; results stage back out."""
    tb = Testbed()
    rmf = RMFSystem(tb.outer_host, tb.inner_host)
    register_knapsack_executable(rmf.registry)
    rmf.add_resource(tb.compas[0], name="COMPaS-0", cpus=4)
    rmf.start()
    rmf.gatekeeper.staging.put("problem.txt", instance.serialize())

    proc = tb.sim.process(
        rmf.submit(
            tb.etl_sun,
            "&(executable=knapsack)(count=4)(arguments=problem.txt)"
            "(stage_in=problem.txt)(stage_out=answer.txt)",
        )
    )
    reply = tb.sim.run(until=proc)
    assert reply.all_succeeded
    best = int(reply.results[0].output_files["answer.txt"].split()[0])
    assert best == optimal_value(instance)


def test_proxy_relay_transparency_under_load():
    """Property: an arbitrary message sequence through the two-relay
    passive chain arrives intact, in order, with sizes preserved."""
    from repro.core import FramedConnection, NexusProxyClient
    from repro.util.rng import make_rng

    tb = Testbed()
    rng = make_rng(33)
    sizes = [int(s) for s in rng.integers(1, 60_000, size=40)]
    got = []

    def inside():
        proxy = NexusProxyClient(tb.rwcp_sun, **tb.proxy_addrs)
        listener = yield from proxy.bind()

        def outside():
            conn = yield from tb.etl_sun.connect(listener.proxy_addr)
            framed = FramedConnection(conn, tb.relay_config.chunk_bytes)
            for i, size in enumerate(sizes):
                yield framed.send(("msg", i), nbytes=size)

        tb.sim.process(outside())
        framed = yield from listener.accept()
        for _ in sizes:
            payload, nbytes = yield from framed.recv()
            got.append((payload, nbytes))

    p = tb.sim.process(inside())
    tb.sim.run(until=p)
    assert got == [(("msg", i), s) for i, s in enumerate(sizes)]
    # Relayed bytes = payload + one frame header per chunk.
    from repro.core.frames import FRAME_HEADER_BYTES

    frames = tb.inner_server.stats.frames_relayed
    assert tb.inner_server.stats.bytes_relayed == (
        sum(sizes) + frames * FRAME_HEADER_BYTES
    )


def test_deterministic_replay():
    """Two identical wide-area runs produce bit-identical statistics —
    the reproducibility guarantee everything else rests on."""
    inst = scaled_instance(n=28, target_nodes=60_000, seed=2)
    params = SchedulingParams(node_cost=20e-6)

    def one_run():
        tb = Testbed()
        world = build_world(tb, "Wide-area Cluster", use_proxy=True)

        def driver():
            return (yield from world.launch(knapsack_rank_main, inst, params))

        p = tb.sim.process(driver())
        results = tb.sim.run(until=p)
        return (
            tb.sim.now,
            tuple((r.nodes_traversed, r.steal_requests) for r in results),
        )

    assert one_run() == one_run()
