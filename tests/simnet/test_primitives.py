"""Channel / Resource / Gate semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simnet.kernel import SimError, Simulator
from repro.simnet.primitives import Channel, ChannelClosed, Gate, Resource


def run_proc(sim, gen):
    p = sim.process(gen)
    sim.run()
    return p.value


# -- Channel ---------------------------------------------------------------


def test_channel_fifo_order():
    sim = Simulator()
    ch = Channel(sim)
    got = []

    def producer():
        for i in range(5):
            yield ch.put(i)
            yield sim.timeout(1)

    def consumer():
        for _ in range(5):
            got.append((yield ch.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_channel_get_blocks_until_put():
    sim = Simulator()
    ch = Channel(sim)
    times = []

    def consumer():
        v = yield ch.get()
        times.append((sim.now, v))

    def producer():
        yield sim.timeout(7)
        yield ch.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert times == [(7, "x")]


def test_channel_capacity_blocks_put():
    sim = Simulator()
    ch = Channel(sim, capacity=1)
    log = []

    def producer():
        yield ch.put("a")
        log.append(("a", sim.now))
        yield ch.put("b")  # blocks until the consumer drains one
        log.append(("b", sim.now))

    def consumer():
        yield sim.timeout(10)
        yield ch.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert log == [("a", 0), ("b", 10)]


def test_channel_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimError):
        Channel(sim, capacity=0)


def test_try_put_try_get():
    sim = Simulator()
    ch = Channel(sim, capacity=2)
    assert ch.try_put(1)
    assert ch.try_put(2)
    assert not ch.try_put(3)
    assert ch.try_get() == (True, 1)
    assert ch.try_get() == (True, 2)
    assert ch.try_get() == (False, None)


def test_requeue_front_preserves_order():
    sim = Simulator()
    ch = Channel(sim)
    ch.try_put("b")
    ch.try_put("c")
    ch.requeue_front("a")
    assert [ch.try_get()[1] for _ in range(3)] == ["a", "b", "c"]


def test_requeue_front_wakes_waiting_getter():
    sim = Simulator()
    ch = Channel(sim)
    got = []

    def consumer():
        got.append((yield ch.get()))

    sim.process(consumer())

    def producer():
        yield sim.timeout(1)
        ch.requeue_front("x")

    sim.process(producer())
    sim.run()
    assert got == ["x"]


def test_close_fails_pending_getters():
    sim = Simulator()
    ch = Channel(sim)

    def consumer():
        with pytest.raises(ChannelClosed):
            yield ch.get()
        return "ok"

    def closer():
        yield sim.timeout(1)
        ch.close()

    p = sim.process(consumer())
    sim.process(closer())
    sim.run()
    assert p.value == "ok"


def test_close_delivers_queued_items_first():
    sim = Simulator()
    ch = Channel(sim)
    ch.try_put("survivor")
    ch.close()
    assert ch.try_get() == (True, "survivor")

    def consumer():
        with pytest.raises(ChannelClosed):
            yield ch.get()

    run_proc(sim, consumer())


def test_put_on_closed_channel_fails():
    sim = Simulator()
    ch = Channel(sim)
    ch.close()
    assert not ch.try_put(1)

    def producer():
        with pytest.raises(ChannelClosed):
            yield ch.put(1)

    run_proc(sim, producer())


def test_close_idempotent():
    sim = Simulator()
    ch = Channel(sim)
    ch.close()
    ch.close()
    assert ch.closed


def test_peek():
    sim = Simulator()
    ch = Channel(sim)
    with pytest.raises(SimError):
        ch.peek()
    ch.try_put(9)
    assert ch.peek() == 9
    assert len(ch) == 1


@given(st.lists(st.integers(), max_size=100))
def test_channel_preserves_arbitrary_sequences(items):
    sim = Simulator()
    ch = Channel(sim)
    out = []

    def producer():
        for it in items:
            yield ch.put(it)

    def consumer():
        for _ in items:
            out.append((yield ch.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert out == items


# -- Resource ---------------------------------------------------------------


def test_resource_serializes_holders():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def worker(tag):
        yield res.request()
        log.append((tag, "in", sim.now))
        yield sim.timeout(5)
        res.release()
        log.append((tag, "out", sim.now))

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    assert log == [
        ("a", "in", 0),
        ("a", "out", 5),
        ("b", "in", 5),
        ("b", "out", 10),
    ]


def test_resource_capacity_two():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def worker(tag):
        yield res.request()
        yield sim.timeout(5)
        res.release()
        done.append((tag, sim.now))

    for tag in "abc":
        sim.process(worker(tag))
    sim.run()
    assert done == [("a", 5), ("b", 5), ("c", 10)]


def test_resource_fifo_granting():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(tag, start):
        yield sim.timeout(start)
        yield res.request()
        order.append(tag)
        yield sim.timeout(10)
        res.release()

    for i, tag in enumerate("abcd"):
        sim.process(worker(tag, i))
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_release_without_request_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimError):
        res.release()


def test_resource_use_helper():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def worker(tag):
        yield from res.use(3)
        log.append((tag, sim.now))

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    assert log == [("a", 3), ("b", 6)]


def test_resource_counters():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        yield res.request()
        assert res.in_use == 1
        yield sim.timeout(1)
        res.release()

    def waiter():
        ev = res.request()
        assert res.queued == 1
        yield ev
        res.release()

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert res.in_use == 0
    assert res.queued == 0


def test_invalid_capacity_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        Resource(sim, capacity=0)


# -- Gate ---------------------------------------------------------------------


def test_gate_open_passes_immediately():
    sim = Simulator()
    gate = Gate(sim, open=True)
    log = []

    def proc():
        yield gate.wait()
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [0]


def test_gate_closed_blocks_until_open():
    sim = Simulator()
    gate = Gate(sim, open=False)
    log = []

    def proc():
        yield gate.wait()
        log.append(sim.now)

    def opener():
        yield sim.timeout(4)
        gate.open()

    sim.process(proc())
    sim.process(opener())
    sim.run()
    assert log == [4]


def test_gate_reusable():
    sim = Simulator()
    gate = Gate(sim, open=False)
    log = []

    def proc():
        yield gate.wait()
        log.append(sim.now)
        gate.close()
        yield gate.wait()
        log.append(sim.now)

    def opener():
        yield sim.timeout(1)
        gate.open()
        yield sim.timeout(1)
        gate.open()

    sim.process(proc())
    sim.process(opener())
    sim.run()
    assert log == [1, 2]
