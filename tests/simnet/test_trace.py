"""Tracer: category filtering and the socket layer's emit points."""

import pytest

from repro.simnet import Network, Tracer
from repro.simnet.trace import TraceRecord


def test_disabled_by_default():
    t = Tracer()
    t.emit(1.0, "connect", src="a")
    assert len(t) == 0


def test_category_filtering():
    t = Tracer()
    t.enable("connect")
    t.emit(1.0, "connect", src="a")
    t.emit(2.0, "msg.deliver", nbytes=10)
    assert len(t) == 1
    assert t.count("connect") == 1
    assert t.count("msg.deliver") == 0


def test_enable_all_and_disable():
    t = Tracer()
    t.enable_all()
    t.emit(1.0, "anything", x=1)
    assert t.is_enabled("whatever")
    t2 = Tracer()
    t2.enable("a", "b")
    t2.disable("a")
    assert not t2.is_enabled("a") and t2.is_enabled("b")


def test_record_access():
    r = TraceRecord(1.5, "connect", {"src": "a:1", "dst": "b:2"})
    assert r["src"] == "a:1"
    assert r.time == 1.5


def test_clear_and_iter():
    t = Tracer()
    t.enable_all()
    t.emit(1.0, "x")
    t.emit(2.0, "y")
    assert [r.category for r in t] == ["x", "y"]
    t.clear()
    assert len(t) == 0


def test_index_survives_direct_records_append():
    """Code that appends to ``.records`` directly (bypassing ``emit``)
    still gets correct ``of``/``count`` — the index detects the drift
    and rebuilds."""
    t = Tracer()
    t.enable_all()
    t.emit(1.0, "a", n=1)
    assert t.count("a") == 1  # index built
    t.records.append(TraceRecord(2.0, "a", {"n": 2}))
    t.records.append(TraceRecord(3.0, "b", {}))
    assert t.count("a") == 2
    assert t.count("b") == 1
    assert [r.time for r in t.of("a")] == [1.0, 2.0]
    # And emit keeps working after a rebuild.
    t.emit(4.0, "a", n=3)
    assert t.count("a") == 3
    t.clear()
    assert t.count("a") == 0 and len(t) == 0


def test_of_is_time_ordered_per_category():
    t = Tracer()
    t.enable_all()
    for i in range(6):
        t.emit(float(i), "even" if i % 2 == 0 else "odd", i=i)
    assert [r["i"] for r in t.of("even")] == [0, 2, 4]
    assert [r["i"] for r in t.of("odd")] == [1, 3, 5]


def test_to_obs_bridges_into_recorder():
    from repro.obs.spans import ObsRecorder

    t = Tracer()
    t.enable_all()
    t.emit(1.0, "connect", src="a")
    t.emit(2.5, "msg.deliver", nbytes=10)
    rec = ObsRecorder()
    assert t.to_obs(rec, track="net") == 2
    assert len(rec) == 2
    ev = rec.events[1]
    assert ev.domain == "sim" and ev.cat == "msg.deliver"
    assert ev.ts == 2.5 and ev.track == "net"
    assert ev.args == {"nbytes": 10}


def test_socket_layer_emits_connects_and_deliveries():
    net = Network()
    net.tracer.enable("connect", "msg.deliver")
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, 1e-4, 1e7)

    def server():
        ls = b.listen(1)
        conn = yield ls.accept()
        for _ in range(3):
            yield conn.recv()

    def client():
        conn = yield from a.connect(("b", 1))
        for i in range(3):
            yield conn.send(i, nbytes=100)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert net.tracer.count("connect") == 1
    deliveries = list(net.tracer.of("msg.deliver"))
    assert len(deliveries) == 3
    assert all(r["nbytes"] == 100 for r in deliveries)
    assert all(r["transit"] > 0 for r in deliveries)
    # Time-ordered.
    times = [r.time for r in deliveries]
    assert times == sorted(times)


def test_blocked_connects_traced():
    from repro.simnet import Firewall, FirewallBlocked

    net = Network()
    net.tracer.enable("connect.blocked")
    fw = Firewall.typical(reject=True)
    site = net.add_site("s", firewall=fw)
    inside = net.add_host("inside", site=site)
    outside = net.add_host("outside")
    net.link(inside, outside, 1e-3, 1e6)

    def attacker():
        with pytest.raises(FirewallBlocked):
            yield from outside.connect(("inside", 22))

    net.sim.process(attacker())
    net.sim.run()
    [rec] = list(net.tracer.of("connect.blocked"))
    assert rec["firewall"] == "fw:s"
    assert rec["silent"] is False  # reject mode
