"""Link model: serialization, propagation, pipelining, contention."""

import pytest

from repro.simnet.kernel import SimError, Simulator
from repro.simnet.link import DuplexLink, Link


def test_single_frame_timing():
    sim = Simulator()
    link = Link(sim, latency=0.010, bandwidth=1000.0)
    done = []

    def proc():
        yield from link.transmit(500)  # 0.5 s serialization + 10 ms latency
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [pytest.approx(0.510)]


def test_zero_latency_link():
    sim = Simulator()
    link = Link(sim, latency=0.0, bandwidth=1000.0)

    def proc():
        yield from link.transmit(1000)

    p = sim.process(proc())
    sim.run()
    assert p.triggered
    assert sim.now == pytest.approx(1.0)


def test_back_to_back_frames_pipeline():
    """Propagation overlaps the next frame's serialization."""
    sim = Simulator()
    link = Link(sim, latency=1.0, bandwidth=100.0)
    arrivals = []

    def sender(tag):
        yield from link.transmit(100)  # 1 s serialize + 1 s propagate
        arrivals.append((tag, sim.now))

    sim.process(sender("a"))
    sim.process(sender("b"))
    sim.run()
    # a: serialize 0-1, arrive 2.  b: serialize 1-2, arrive 3.
    # (Store-and-forward *without* pipelining would put b at 4.)
    assert arrivals == [("a", pytest.approx(2.0)), ("b", pytest.approx(3.0))]


def test_contention_is_fifo():
    sim = Simulator()
    link = Link(sim, latency=0.0, bandwidth=10.0)
    order = []

    def sender(tag, delay):
        yield sim.timeout(delay)
        yield from link.transmit(10)
        order.append(tag)

    sim.process(sender("late", 0.5))
    sim.process(sender("early", 0.0))
    sim.run()
    # early grabs the link at t=0 and holds it to t=1; late queued.
    assert order == ["early", "late"]


def test_counters_and_utilization():
    sim = Simulator()
    link = Link(sim, latency=0.0, bandwidth=100.0)

    def proc():
        yield from link.transmit(50)
        yield sim.timeout(0.5)

    sim.process(proc())
    sim.run()
    assert link.bytes_sent == 50
    assert link.frames_sent == 1
    assert link.busy_time == pytest.approx(0.5)
    assert link.utilization() == pytest.approx(0.5)


def test_utilization_at_time_zero():
    sim = Simulator()
    link = Link(sim, latency=0.0, bandwidth=100.0)
    assert link.utilization() == 0.0


def test_invalid_parameters():
    sim = Simulator()
    with pytest.raises(SimError):
        Link(sim, latency=-1, bandwidth=1)
    with pytest.raises(SimError):
        Link(sim, latency=0, bandwidth=0)


def test_negative_frame_rejected():
    sim = Simulator()
    link = Link(sim, latency=0, bandwidth=1)

    def proc():
        yield from link.transmit(-1)

    sim.process(proc())
    with pytest.raises(SimError):
        sim.run()


def test_duplex_directions_independent():
    sim = Simulator()
    duplex = DuplexLink(sim, latency=0.0, bandwidth=10.0, name="d")
    arrivals = []

    def fwd():
        yield from duplex.forward.transmit(10)
        arrivals.append(("fwd", sim.now))

    def rev():
        yield from duplex.reverse.transmit(10)
        arrivals.append(("rev", sim.now))

    sim.process(fwd())
    sim.process(rev())
    sim.run()
    # Both complete at t=1: no cross-direction contention.
    assert sorted(arrivals) == [
        ("fwd", pytest.approx(1.0)),
        ("rev", pytest.approx(1.0)),
    ]


def test_duplex_direction_selector():
    sim = Simulator()
    duplex = DuplexLink(sim, latency=0.1, bandwidth=10.0)
    assert duplex.direction(True) is duplex.forward
    assert duplex.direction(False) is duplex.reverse
    assert duplex.latency == 0.1
    assert duplex.bandwidth == 10.0


def test_serialization_time():
    sim = Simulator()
    link = Link(sim, latency=0, bandwidth=250.0)
    assert link.serialization_time(1000) == pytest.approx(4.0)
