"""Firewall rule-engine tests (deny-based in / allow-based out)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simnet.firewall import Action, Direction, Firewall, Rule


def test_typical_configuration():
    fw = Firewall.typical()
    assert fw.inbound_default is Action.DENY
    assert fw.outbound_default is Action.ALLOW
    assert not fw.permits(Direction.INBOUND, "out", "in", 5000)
    assert fw.permits(Direction.OUTBOUND, "in", "out", 5000)


def test_open_everything():
    fw = Firewall.open_everything()
    assert fw.permits(Direction.INBOUND, "a", "b", 1)
    assert fw.permits(Direction.OUTBOUND, "a", "b", 65535)


def test_open_inbound_port_exact():
    fw = Firewall.typical()
    fw.open_inbound_port(7000)
    assert fw.permits(Direction.INBOUND, "x", "y", 7000)
    assert not fw.permits(Direction.INBOUND, "x", "y", 7001)
    assert not fw.permits(Direction.INBOUND, "x", "y", 6999)


def test_nxport_pinned_to_peers():
    """The paper's minimal hole: outer server -> inner server only."""
    fw = Firewall.typical()
    fw.open_inbound_port(7100, src_host="outer", dst_host="inner", comment="nxport")
    assert fw.permits(Direction.INBOUND, "outer", "inner", 7100)
    # Same port, wrong source or destination: still denied.
    assert not fw.permits(Direction.INBOUND, "attacker", "inner", 7100)
    assert not fw.permits(Direction.INBOUND, "outer", "workstation", 7100)


def test_open_port_range():
    fw = Firewall.typical()
    fw.open_port_range(40000, 40009)
    assert fw.permits(Direction.INBOUND, "x", "y", 40000)
    assert fw.permits(Direction.INBOUND, "x", "y", 40009)
    assert not fw.permits(Direction.INBOUND, "x", "y", 40010)


def test_empty_port_range_rejected():
    fw = Firewall.typical()
    with pytest.raises(ValueError):
        fw.open_port_range(5, 4)


def test_close_outbound_port():
    fw = Firewall.typical()
    fw.close_outbound_port(25)
    assert not fw.permits(Direction.OUTBOUND, "in", "out", 25)
    assert fw.permits(Direction.OUTBOUND, "in", "out", 80)


def test_first_match_wins():
    fw = Firewall.typical()
    fw.add_rule(Rule(Direction.INBOUND, Action.DENY, port_min=80, port_max=80))
    fw.open_inbound_port(80)  # later allow is shadowed
    assert not fw.permits(Direction.INBOUND, "x", "y", 80)


def test_denied_counter():
    fw = Firewall.typical()
    fw.permits(Direction.INBOUND, "x", "y", 1)
    fw.permits(Direction.INBOUND, "x", "y", 2)
    fw.permits(Direction.OUTBOUND, "x", "y", 3)
    assert fw.denied[Direction.INBOUND] == 2
    assert fw.denied[Direction.OUTBOUND] == 0


def test_allow_everything_and_restore():
    """The §4.2 footnote: config temporarily changed for direct runs."""
    fw = Firewall.typical()
    assert not fw.permits(Direction.INBOUND, "x", "y", 9999)
    fw.allow_everything()
    assert fw.permits(Direction.INBOUND, "x", "y", 9999)
    fw.restore_typical()
    assert not fw.permits(Direction.INBOUND, "x", "y", 9999)


def test_exposure_proxy_vs_port_range():
    """Quantifies the paper's security argument (§1, §3)."""
    proxied = Firewall.typical()
    proxied.open_inbound_port(7100, src_host="outer", dst_host="inner")
    assert proxied.exposure() == 1

    globus11 = Firewall.typical()
    globus11.open_port_range(40000, 40099)  # TCP_MIN_PORT..TCP_MAX_PORT
    assert globus11.exposure() == 100

    assert proxied.exposure() < globus11.exposure()


def test_exposure_allow_default_is_total():
    fw = Firewall.open_everything()
    assert fw.exposure() == 65535


def test_rule_direction_mismatch():
    r = Rule(Direction.INBOUND, Action.ALLOW, port_min=1, port_max=10)
    assert not r.matches(Direction.OUTBOUND, "a", "b", 5)
    assert r.matches(Direction.INBOUND, "a", "b", 5)


@given(st.integers(min_value=1, max_value=65535))
def test_typical_denies_every_unopened_inbound_port(port):
    fw = Firewall.typical()
    assert fw.evaluate(Direction.INBOUND, "a", "b", port) is Action.DENY
    assert fw.evaluate(Direction.OUTBOUND, "a", "b", port) is Action.ALLOW


@given(
    st.integers(min_value=1, max_value=65535),
    st.integers(min_value=0, max_value=200),
)
def test_range_rule_boundary(lo, width):
    hi = min(65535, lo + width)
    fw = Firewall.typical()
    fw.open_port_range(lo, hi)
    assert fw.permits(Direction.INBOUND, "x", "y", lo)
    assert fw.permits(Direction.INBOUND, "x", "y", hi)
    if lo > 1:
        assert not fw.permits(Direction.INBOUND, "x", "y", lo - 1)
    if hi < 65535:
        assert not fw.permits(Direction.INBOUND, "x", "y", hi + 1)
