"""Simulated TCP: connect/accept/send/recv, firewalls, timing, teardown."""

import pytest

from repro.simnet import (
    Address,
    ConnectionRefused,
    ConnectionReset,
    ConnectTimeout,
    Firewall,
    FirewallBlocked,
    NetConfig,
    Network,
    SocketError,
)


def two_hosts(latency=1e-3, bandwidth=1e6, config=None):
    net = Network(config=config)
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, latency=latency, bandwidth=bandwidth)
    return net, a, b


def test_connect_and_exchange():
    net, a, b = two_hosts()
    out = {}

    def server():
        lsock = b.listen(9000)
        conn = yield lsock.accept()
        msg = yield conn.recv()
        out["server_got"] = msg.payload
        yield conn.send("reply")

    def client():
        conn = yield from a.connect(("b", 9000))
        yield conn.send("hello")
        msg = yield conn.recv()
        out["client_got"] = msg.payload

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert out == {"server_got": "hello", "client_got": "reply"}


def test_connect_refused_when_nothing_listens():
    net, a, b = two_hosts()

    def client():
        with pytest.raises(ConnectionRefused):
            yield from a.connect(("b", 12345))
        return "done"

    p = net.sim.process(client())
    net.sim.run()
    assert p.value == "done"
    # Refusal costs a full RTT (SYN there, RST back).
    assert net.sim.now == pytest.approx(2e-3)


def test_connect_unknown_host():
    net, a, _ = two_hosts()

    def client():
        with pytest.raises(SocketError, match="no such host"):
            yield from a.connect(("ghost", 1))
        yield net.sim.timeout(0)

    net.sim.process(client())
    net.sim.run()


def test_connect_handshake_takes_one_and_a_half_rtt_to_data():
    cfg = NetConfig(connect_overhead=0.0, send_overhead=0.0,
                    per_segment_cpu=0.0, recv_overhead=0.0)
    net, a, b = two_hosts(latency=10e-3, bandwidth=1e9, config=cfg)
    t = {}

    def server():
        lsock = b.listen(1)
        conn = yield lsock.accept()
        yield conn.recv()
        t["srv_done"] = net.sim.now

    def client():
        conn = yield from a.connect(("b", 1))
        t["connected"] = net.sim.now
        yield conn.send(b"x", nbytes=1)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    # connect: SYN (10ms) + SYN/ACK (10ms); first byte lands 10ms later.
    assert t["connected"] == pytest.approx(20e-3)
    assert t["srv_done"] == pytest.approx(30e-3, rel=1e-3)


def test_firewall_silent_drop_times_out():
    net = Network()
    fw = Firewall.typical()  # drop mode
    site = net.add_site("s", firewall=fw)
    inside = net.add_host("inside", site=site)
    outside = net.add_host("outside")
    net.link(inside, outside, latency=1e-3, bandwidth=1e6)

    def server():
        inside.listen(5000)
        yield net.sim.timeout(0)

    def client():
        with pytest.raises(FirewallBlocked) as ei:
            yield from outside.connect(("inside", 5000), timeout=2.0)
        assert ei.value.silent_drop
        return net.sim.now

    net.sim.process(server())
    p = net.sim.process(client())
    net.sim.run()
    assert p.value == pytest.approx(2.0)


def test_firewall_reject_fails_fast():
    net = Network()
    fw = Firewall.typical(reject=True)
    site = net.add_site("s", firewall=fw)
    inside = net.add_host("inside", site=site)
    outside = net.add_host("outside")
    net.link(inside, outside, latency=1e-3, bandwidth=1e6)

    def client():
        with pytest.raises(FirewallBlocked) as ei:
            yield from outside.connect(("inside", 5000))
        assert not ei.value.silent_drop
        return net.sim.now

    p = net.sim.process(client())
    net.sim.run()
    assert p.value == pytest.approx(2e-3)  # one RTT, not 30 s


def test_intra_site_traffic_not_filtered():
    net = Network()
    fw = Firewall.typical(reject=True)
    site = net.add_site("s", firewall=fw)
    h1 = net.add_host("h1", site=site)
    h2 = net.add_host("h2", site=site)
    net.link(h1, h2, latency=1e-4, bandwidth=1e7)
    ok = []

    def server():
        lsock = h2.listen(80)
        conn = yield lsock.accept()
        yield conn.recv()
        ok.append(True)

    def client():
        conn = yield from h1.connect(("h2", 80))
        yield conn.send(b"hi")

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert ok == [True]


def test_outbound_filtering():
    net = Network()
    fw = Firewall.typical(reject=True)
    fw.close_outbound_port(6000)
    site = net.add_site("s", firewall=fw)
    inside = net.add_host("inside", site=site)
    outside = net.add_host("outside")
    net.link(inside, outside, latency=1e-3, bandwidth=1e6)

    def server():
        outside.listen(6000)
        outside.listen(6001)
        yield net.sim.timeout(0)

    def client():
        with pytest.raises(FirewallBlocked):
            yield from inside.connect(("outside", 6000))
        conn = yield from inside.connect(("outside", 6001))
        return conn is not None

    net.sim.process(server())
    p = net.sim.process(client())
    net.sim.run()
    assert p.value is True


def test_message_order_preserved():
    net, a, b = two_hosts()
    got = []

    def server():
        lsock = b.listen(1)
        conn = yield lsock.accept()
        for _ in range(20):
            msg = yield conn.recv()
            got.append(msg.payload)

    def client():
        conn = yield from a.connect(("b", 1))
        for i in range(20):
            yield conn.send(i, nbytes=100 + 37 * i)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert got == list(range(20))


def test_large_message_segmentation_counts_all_bytes():
    net, a, b = two_hosts(bandwidth=1e6)
    size = 1_000_000
    out = {}

    def server():
        lsock = b.listen(1)
        conn = yield lsock.accept()
        msg = yield conn.recv()
        out["nbytes"] = msg.nbytes
        out["t"] = net.sim.now

    def client():
        conn = yield from a.connect(("b", 1))
        yield conn.send(b"", nbytes=size)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert out["nbytes"] == size
    # Dominated by serialization: ~1 s on a 1 MB/s link.
    assert 1.0 < out["t"] < 1.2


def test_bandwidth_approaches_link_rate_for_large_messages():
    cfg = NetConfig()
    net, a, b = two_hosts(latency=5e-3, bandwidth=6.5e6, config=cfg)
    res = {}

    def server():
        lsock = b.listen(1)
        conn = yield lsock.accept()
        t0 = net.sim.now
        msg = yield conn.recv()
        res["bw"] = msg.nbytes / (net.sim.now - msg.sent_at)

    def client():
        conn = yield from a.connect(("b", 1))
        yield conn.send(b"", nbytes=8 * 1024 * 1024)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert res["bw"] == pytest.approx(6.5e6, rel=0.05)


def test_loopback_connection():
    net = Network()
    a = net.add_host("a")
    out = {}

    def server():
        lsock = a.listen(4000)
        conn = yield lsock.accept()
        msg = yield conn.recv()
        out["got"] = msg.payload

    def client():
        conn = yield from a.connect(("a", 4000))
        yield conn.send("local")

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert out["got"] == "local"
    assert net.sim.now < 1e-3


def test_double_bind_rejected():
    net, a, _ = two_hosts()
    a.listen(1234)
    with pytest.raises(SocketError, match="already bound"):
        a.listen(1234)


def test_rebind_after_close():
    net, a, _ = two_hosts()
    s = a.listen(1234)
    s.close()
    a.listen(1234)  # fine now


def test_ephemeral_ports_unique():
    net, a, _ = two_hosts()
    s1 = a.listen()
    s2 = a.listen()
    assert s1.port != s2.port
    assert s1.port >= 49152


def test_close_resets_peer_recv():
    net, a, b = two_hosts()
    out = {}

    def server():
        lsock = b.listen(1)
        conn = yield lsock.accept()
        with pytest.raises(ConnectionReset):
            yield conn.recv()
        out["reset_at"] = net.sim.now

    def client():
        conn = yield from a.connect(("b", 1))
        yield net.sim.timeout(0.5)
        out["closed_at"] = net.sim.now
        conn.close()

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    # FIN takes one path latency (1 ms) plus small per-frame costs.
    assert out["reset_at"] == pytest.approx(out["closed_at"] + 1e-3, abs=2e-4)


def test_send_on_closed_connection_raises():
    net, a, b = two_hosts()

    def server():
        lsock = b.listen(1)
        conn = yield lsock.accept()
        return conn

    def client():
        conn = yield from a.connect(("b", 1))
        conn.close()
        with pytest.raises(ConnectionReset):
            conn.send("x")

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()


def test_queued_data_delivered_before_fin():
    net, a, b = two_hosts()
    got = []

    def server():
        lsock = b.listen(1)
        conn = yield lsock.accept()
        msg = yield conn.recv()
        got.append(msg.payload)
        with pytest.raises(ConnectionReset):
            yield conn.recv()

    def client():
        conn = yield from a.connect(("b", 1))
        yield conn.send("last words", nbytes=10)
        conn.close()

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert got == ["last words"]


def test_recv_timeout():
    net, a, b = two_hosts()

    def server():
        lsock = b.listen(1)
        conn = yield lsock.accept()
        with pytest.raises(ConnectTimeout):
            yield conn.recv(timeout=0.25)
        # Message arriving after the timeout is not lost.
        msg = yield conn.recv()
        return msg.payload

    def client():
        conn = yield from a.connect(("b", 1))
        yield net.sim.timeout(0.5)
        yield conn.send("late")

    p = net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert p.value == "late"


def test_accept_timeout():
    net, a, b = two_hosts()

    def server():
        lsock = b.listen(1)
        with pytest.raises(ConnectTimeout):
            yield lsock.accept(timeout=0.1)
        return net.sim.now

    p = net.sim.process(server())
    net.sim.run()
    assert p.value == pytest.approx(0.1)


def test_transit_time_recorded():
    net, a, b = two_hosts(latency=20e-3)
    out = {}

    def server():
        lsock = b.listen(1)
        conn = yield lsock.accept()
        msg = yield conn.recv()
        out["transit"] = msg.transit_time

    def client():
        conn = yield from a.connect(("b", 1))
        yield conn.send(b"x", nbytes=64)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert out["transit"] >= 20e-3


def test_address_str():
    assert str(Address("h", 80)) == "h:80"


def test_connect_counters():
    net, a, b = two_hosts()

    def server():
        lsock = b.listen(1)
        conn = yield lsock.accept()
        yield conn.recv()
        assert conn.messages_received == 1
        assert conn.bytes_received == 640

    def client():
        conn = yield from a.connect(("b", 1))
        yield conn.send(b"x" * 640)
        # Sender-side counters update when the send process finishes.
        yield net.sim.timeout(1)
        assert conn.messages_sent == 1
        assert conn.bytes_sent == 640

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
