"""Network construction, routing and multi-hop behaviour."""

import pytest

from repro.simnet import Firewall, Network, SimError
from repro.simnet.link import Link


def chain_network(n=4, latency=1e-3, bandwidth=1e6):
    """h0 -- h1 -- ... -- h{n-1}."""
    net = Network()
    hosts = [net.add_host(f"h{i}") for i in range(n)]
    for x, y in zip(hosts, hosts[1:]):
        net.link(x, y, latency=latency, bandwidth=bandwidth)
    return net, hosts


def test_duplicate_host_rejected():
    net = Network()
    net.add_host("x")
    with pytest.raises(SimError):
        net.add_host("x")


def test_duplicate_site_rejected():
    net = Network()
    net.add_site("s")
    with pytest.raises(SimError):
        net.add_site("s")


def test_link_validation():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    with pytest.raises(SimError):
        net.link(a, "ghost", 1e-3, 1e6)
    with pytest.raises(SimError):
        net.link(a, a, 1e-3, 1e6)
    net.link(a, b, 1e-3, 1e6)
    with pytest.raises(SimError):
        net.link(a, b, 1e-3, 1e6)  # duplicate


def test_path_links_orientation():
    net, hosts = chain_network(3)
    path = net.path_links(hosts[0], hosts[2])
    assert len(path) == 2
    assert all(isinstance(l, Link) for l in path)
    back = net.path_links(hosts[2], hosts[0])
    assert len(back) == 2
    # Opposite directions use distinct unidirectional links.
    assert {id(l) for l in path}.isdisjoint({id(l) for l in back})


def test_loopback_path_empty():
    net, hosts = chain_network(2)
    assert net.path_links(hosts[0], hosts[0]) == []


def test_no_route_raises():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")  # not linked
    with pytest.raises(SimError, match="no route"):
        net.path_links(a, b)


def test_shortest_path_prefers_low_latency():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    slow = net.add_host("slow")
    fast = net.add_host("fast")
    net.link(a, slow, latency=50e-3, bandwidth=1e6)
    net.link(slow, b, latency=50e-3, bandwidth=1e6)
    net.link(a, fast, latency=1e-3, bandwidth=1e6)
    net.link(fast, b, latency=1e-3, bandwidth=1e6)
    path = net.path_links(a, b)
    assert sum(l.latency for l in path) == pytest.approx(2e-3)


def test_rtt_and_hop_count():
    net, hosts = chain_network(4, latency=2e-3)
    assert net.hop_count(hosts[0], hosts[3]) == 3
    assert net.rtt_between(hosts[0], hosts[3]) == pytest.approx(12e-3)


def test_multi_hop_delivery():
    net, hosts = chain_network(4, latency=1e-3, bandwidth=1e6)
    out = {}

    def server():
        lsock = hosts[3].listen(1)
        conn = yield lsock.accept()
        msg = yield conn.recv()
        out["t"] = net.sim.now
        out["payload"] = msg.payload

    def client():
        conn = yield from hosts[0].connect(("h3", 1))
        yield conn.send("end-to-end", nbytes=1000)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert out["payload"] == "end-to-end"
    # handshake (2 * 3ms) + data one-way (3ms + 3 * 1ms serialization) + cpu
    assert 0.011 < out["t"] < 0.016


def test_route_cache_invalidated_on_new_link():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    c = net.add_host("c")
    net.link(a, b, latency=10e-3, bandwidth=1e6)
    net.link(b, c, latency=10e-3, bandwidth=1e6)
    assert net.hop_count(a, c) == 2
    net.link(a, c, latency=1e-3, bandwidth=1e6)  # direct shortcut
    assert net.hop_count(a, c) == 1


def test_can_connect_static_check():
    net = Network()
    fw = Firewall.typical()
    fw.open_inbound_port(7100, src_host="outer", dst_host="inner")
    site = net.add_site("rwcp", firewall=fw)
    inner = net.add_host("inner", site=site)
    outer = net.add_host("outer")
    other = net.add_host("other")
    net.link(inner, outer, 1e-3, 1e6)
    net.link(outer, other, 1e-3, 1e6)
    assert net.can_connect("outer", "inner", 7100)
    assert not net.can_connect("other", "inner", 7100)
    assert not net.can_connect("outer", "inner", 7101)
    assert net.can_connect("inner", "outer", 12345)  # outbound allowed


def test_hosts_in_site_and_lookup():
    net = Network()
    site = net.add_site("s")
    h1 = net.add_host("h1", site="s")
    h2 = net.add_host("h2", site=site)
    net.add_host("h3")
    assert set(net.hosts_in_site("s")) == {h1, h2}
    assert net.host("h1") is h1
    with pytest.raises(SimError):
        net.host("ghost")


def test_site_host_names_and_repr():
    net = Network()
    site = net.add_site("s", firewall=Firewall.typical())
    net.add_host("h", site=site)
    assert site.host_names == ["h"]
    assert site.firewall.name == "fw:s"


def test_links_iterator():
    net, _ = chain_network(3)
    assert len(list(net.links())) == 2
