"""Hypothesis property tests over the simulation substrate.

Invariants that must hold for *any* topology, traffic pattern or rule
set — the safety net under every calibrated experiment.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import Firewall, NetConfig, Network
from repro.simnet.kernel import Simulator


# -- random trees route correctly ------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    parents=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=9),
    src_i=st.integers(min_value=0, max_value=9),
    dst_i=st.integers(min_value=0, max_value=9),
)
def test_tree_topologies_always_route(parents, src_i, dst_i):
    """On a random tree every host pair has a route, and hop counts
    are symmetric."""
    net = Network()
    hosts = [net.add_host("h0")]
    for i, p in enumerate(parents, start=1):
        h = net.add_host(f"h{i}")
        net.link(h, hosts[p % len(hosts)], 1e-4, 1e6)
        hosts.append(h)
    src = hosts[src_i % len(hosts)]
    dst = hosts[dst_i % len(hosts)]
    fwd = net.path_links(src, dst)
    rev = net.path_links(dst, src)
    assert len(fwd) == len(rev)
    if src is dst:
        assert fwd == []


# -- message conservation under arbitrary traffic -----------------------------


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=100_000), min_size=1,
                   max_size=30),
)
def test_byte_and_message_conservation(sizes):
    """Whatever the sender sends, the receiver receives: counts,
    bytes, order, and per-message sizes all conserved."""
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, 1e-4, 1e7)
    got = []

    def server():
        ls = b.listen(1)
        conn = yield ls.accept()
        for _ in sizes:
            msg = yield conn.recv()
            got.append((msg.payload, msg.nbytes))
        assert conn.bytes_received == sum(sizes)
        assert conn.messages_received == len(sizes)

    def client():
        conn = yield from a.connect(("b", 1))
        for i, size in enumerate(sizes):
            yield conn.send(i, nbytes=size)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert got == [(i, s) for i, s in enumerate(sizes)]


# -- delivery times respect physics ---------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    latency=st.floats(min_value=1e-5, max_value=0.1),
    bandwidth=st.floats(min_value=1e3, max_value=1e8),
    nbytes=st.integers(min_value=1, max_value=1_000_000),
)
def test_transit_time_lower_bound(latency, bandwidth, nbytes):
    """No message arrives faster than latency + size/bandwidth."""
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, latency, bandwidth)
    out = {}

    def server():
        ls = b.listen(1)
        conn = yield ls.accept()
        msg = yield conn.recv()
        out["transit"] = msg.transit_time

    def client():
        conn = yield from a.connect(("b", 1))
        yield conn.send(b"", nbytes=nbytes)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    floor = latency + nbytes / bandwidth
    assert out["transit"] >= floor * 0.999  # fp slack


# -- firewall rule-engine properties -----------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    rules=st.lists(
        st.tuples(
            st.booleans(),  # allow?
            st.integers(min_value=1, max_value=100),  # lo
            st.integers(min_value=0, max_value=50),  # width
        ),
        max_size=8,
    ),
    port=st.integers(min_value=1, max_value=200),
)
def test_first_match_wins_is_deterministic(rules, port):
    """evaluate() equals a reference first-match interpreter."""
    from repro.simnet.firewall import Action, Direction, Rule

    fw = Firewall.typical()
    for allow, lo, width in rules:
        fw.add_rule(
            Rule(
                Direction.INBOUND,
                Action.ALLOW if allow else Action.DENY,
                port_min=lo,
                port_max=lo + width,
            )
        )
    got = fw.evaluate(Direction.INBOUND, "x", "y", port)
    expected = Action.DENY  # default
    for allow, lo, width in rules:
        if lo <= port <= lo + width:
            expected = Action.ALLOW if allow else Action.DENY
            break
    assert got is expected


# -- DES determinism -----------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1,
        max_size=40,
    )
)
def test_simulation_is_replayable(delays):
    """Identical programs produce identical traces."""

    def run():
        sim = Simulator()
        trace = []

        def make(i, d):
            def proc():
                yield sim.timeout(d)
                trace.append((i, sim.now))
                yield sim.timeout(d / 2)
                trace.append((i, sim.now))

            return proc

        for i, d in enumerate(delays):
            sim.process(make(i, d)())
        sim.run()
        return trace

    assert run() == run()
