"""Fast-path kernel regressions: the ``mode="fast"`` machinery
(callback slot, Timeout free-list, inlined drain loop) must be
behaviourally invisible.

Two layers of guarantee:

* scenario tests exercising the edge cases the fast path could
  plausibly break — interrupt delivery while waiting on a condition,
  same-instant FIFO dispatch through the slot/list promotion,
  strict-failure propagation out of ``run()``, and free-list recycling
  never resurrecting state a caller still holds;
* a trace-hash determinism test: the *exact* event trace (time +
  event type, in dispatch order) of a real wide-area knapsack run is
  bit-identical between ``mode="seed"`` and ``mode="fast"``.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.simnet.kernel import (
    AnyOf,
    Interrupt,
    SimError,
    Simulator,
    Timeout,
)


@pytest.fixture(params=["seed", "fast"])
def sim(request) -> Simulator:
    return Simulator(mode=request.param)


# -- interrupt during AnyOf ---------------------------------------------------


def test_interrupt_during_anyof(sim: Simulator) -> None:
    """An interrupt mid-AnyOf detaches the waiter; the process can
    catch it and wait again on the still-pending events."""
    log: list = []
    a = sim.event()
    b = sim.event()

    def firer():
        yield sim.timeout(10.0)
        a.succeed("a")
        yield sim.timeout(10.0)
        b.succeed("b")

    def waiter():
        try:
            yield AnyOf(sim, [a, b])
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))
        # Wait again: the original events are still live.
        got = yield AnyOf(sim, [a, b])
        log.append(("woke", sim.now, sorted(got.values())))

    def interrupter(target):
        yield sim.timeout(5.0)
        target.interrupt("steal-request")

    sim.process(firer())
    proc = sim.process(waiter())
    sim.process(interrupter(proc))
    sim.run()
    assert log == [
        ("interrupted", 5.0, "steal-request"),
        ("woke", 10.0, ["a"]),
    ]


def test_interrupt_of_finished_process_is_noop(sim: Simulator) -> None:
    def quick():
        yield sim.timeout(1.0)
        return "done"

    proc = sim.process(quick())
    sim.run()
    proc.interrupt("too late")
    sim.run()
    assert proc.value == "done"


# -- same-instant FIFO --------------------------------------------------------


def test_same_instant_timeouts_fire_in_scheduling_order(sim: Simulator) -> None:
    order: list[int] = []

    def waiter(tag: int, delay: float):
        yield sim.timeout(delay)
        order.append(tag)

    # Three timeouts for the same instant, scheduled 0..2; then one
    # earlier-scheduled but later-firing timeout to prove the key is
    # (time, eid), not just eid.
    sim.process(waiter(0, 5.0))
    sim.process(waiter(1, 5.0))
    sim.process(waiter(2, 5.0))
    sim.process(waiter(3, 4.0))
    sim.run()
    assert order == [3, 0, 1, 2]


def test_multiwaiter_dispatch_is_fifo(sim: Simulator) -> None:
    """Slot -> list promotion keeps registration order, and a raw
    callback appended through the public list after two waiters have
    registered still dispatches last."""
    ev = sim.event()
    order: list[str] = []

    def waiter(tag: str):
        yield ev
        order.append(tag)

    sim.process(waiter("first"))
    sim.process(waiter("second"))

    def trigger():
        yield sim.timeout(1.0)
        # Both waiters are registered by now (slot promoted to list);
        # materializing the public list must preserve their order.
        cbs = ev.callbacks
        assert cbs is not None and len(cbs) == 2
        cbs.append(lambda e: order.append("third"))
        ev.succeed()

    sim.process(trigger())
    sim.run()
    assert order == ["first", "second", "third"]


def test_slot_promotion_direct() -> None:
    """_add_callback: slot for one waiter, promotion to a list for the
    second, public materialization for the third — FIFO throughout."""
    sim = Simulator(mode="fast")
    ev = sim.event()
    order: list[str] = []
    ev._add_callback(lambda e: order.append("first"))
    assert ev._cb1 is not None and ev._cbs is None
    ev._add_callback(lambda e: order.append("second"))
    assert ev._cb1 is None and len(ev._cbs) == 2
    ev.callbacks.append(lambda e: order.append("third"))
    ev.succeed()
    sim.run()
    assert order == ["first", "second", "third"]


def test_callbacks_is_none_after_processing(sim: Simulator) -> None:
    ev = sim.event()
    assert ev.callbacks == []
    ev.succeed("v")
    sim.run()
    assert ev.processed
    assert ev.callbacks is None


# -- strict failure -----------------------------------------------------------


def test_unwaited_failed_event_raises_out_of_run(sim: Simulator) -> None:
    class Boom(RuntimeError):
        pass

    sim.event().fail(Boom("nobody listening"))
    with pytest.raises(Boom):
        sim.run()


def test_unwaited_failed_process_raises_out_of_run(sim: Simulator) -> None:
    def dies():
        yield sim.timeout(1.0)
        raise ValueError("daemon died")

    sim.process(dies())
    with pytest.raises(ValueError, match="daemon died"):
        sim.run()


def test_defused_failure_does_not_raise(sim: Simulator) -> None:
    ev = sim.event()
    ev.fail(RuntimeError("handled"))
    ev.defuse()
    sim.run()
    assert not ev.ok


# -- free-list safety ---------------------------------------------------------


def test_pool_never_recycles_a_held_timeout() -> None:
    sim = Simulator(mode="fast")
    held = sim.timeout(1.0, value="keep-me")
    sim.run()
    assert held.processed and held.value == "keep-me"
    # The held timeout must not come back from the pool.
    fresh = [sim.timeout(float(i)) for i in range(8)]
    assert all(t is not held for t in fresh)
    sim.run()
    assert held.value == "keep-me"


def test_recycled_timeouts_have_fresh_state() -> None:
    sim = Simulator(mode="fast")
    times: list[tuple[float, object]] = []

    def looper():
        for i in range(50):
            value = yield sim.timeout(1.0, value=i)
            times.append((sim.now, value))

    sim.process(looper())
    sim.run()
    assert times == [(float(i + 1), i) for i in range(50)]
    # Recycling happened (pool non-empty) yet every wait saw its own
    # delay and value.
    assert sim._pool, "free-list never engaged"


def test_pooled_timeout_class_only() -> None:
    """Subclasses (Process, _Initialize, conditions) are never pooled."""
    sim = Simulator(mode="fast")

    def body():
        yield sim.timeout(1.0)
        return "x"

    proc = sim.process(body(), name="p")
    sim.run()
    assert all(type(t) is Timeout for t in sim._pool)
    assert proc.value == "x"


# -- misc kernel contract kept by both modes ---------------------------------


def test_negative_timeout_rejected(sim: Simulator) -> None:
    with pytest.raises(SimError):
        sim.timeout(-0.5)
    # Also on the pooled path.
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(SimError):
        sim.timeout(-0.5)


def test_events_scheduled_counts_posts(sim: Simulator) -> None:
    base = sim.events_scheduled

    def body():
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)

    sim.process(body())
    sim.run()
    # _Initialize + 2 timeouts + process completion.
    assert sim.events_scheduled - base == 4


# -- trace-hash determinism ---------------------------------------------------


def _trace_hash(mode: str, monkeypatch) -> str:
    """Sha256 over the (time, event-type) dispatch sequence of a small
    wide-area knapsack run."""
    from repro.apps.knapsack.driver import run_system
    from repro.apps.knapsack.instance import scaled_instance
    from repro.apps.knapsack.master_slave import SchedulingParams
    from repro.cluster.testbed import Testbed

    monkeypatch.setenv("REPRO_SIM_KERNEL", mode)
    testbed = Testbed()
    assert testbed.sim.mode == mode
    digest = hashlib.sha256()
    update = digest.update

    def hook(t: float, ev) -> None:
        update(f"{t!r}:{type(ev).__name__}\n".encode())

    testbed.sim.on_event = hook
    instance = scaled_instance(n=24, target_nodes=60_000, seed=5)
    result = run_system(
        testbed, "Wide-area Cluster", instance, SchedulingParams()
    )
    update(f"{result.execution_time!r}:{result.total_nodes}\n".encode())
    return digest.hexdigest()


def test_trace_identical_between_kernel_modes(monkeypatch) -> None:
    assert _trace_hash("seed", monkeypatch) == _trace_hash("fast", monkeypatch)
