"""Failure injection: host crashes, daemon deaths, recovery."""

import pytest

from repro.simnet import (
    ConnectionReset,
    ConnectTimeout,
    Network,
    SocketError,
)


def make_pair():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, 1e-3, 1e6)
    return net, a, b


def test_crash_resets_established_connections():
    net, a, b = make_pair()
    out = {}

    def server():
        ls = b.listen(1)
        conn = yield ls.accept()
        with pytest.raises(ConnectionReset):
            yield conn.recv()
        out["reset_at"] = net.sim.now

    def client():
        conn = yield from a.connect(("b", 1))
        yield net.sim.timeout(1.0)
        out["crashed_at"] = net.sim.now
        a.crash()

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    # The peer learns after one propagation delay (1 ms link).
    assert out["reset_at"] == pytest.approx(out["crashed_at"] + 1e-3, abs=1e-5)


def test_connect_to_crashed_host_times_out():
    net, a, b = make_pair()
    b.listen(1)
    b.crash()

    def client():
        with pytest.raises(ConnectTimeout, match="down"):
            yield from a.connect(("b", 1), timeout=0.5)
        return net.sim.now

    p = net.sim.process(client())
    net.sim.run()
    assert p.value == pytest.approx(0.5)


def test_crash_closes_listeners():
    net, a, b = make_pair()
    ls = b.listen(1)
    b.crash()
    assert ls.closed
    assert not b.is_listening(1)


def test_crash_is_idempotent_and_recoverable():
    net, a, b = make_pair()
    b.listen(1)
    b.crash()
    b.crash()  # no error
    b.recover()
    assert not b.crashed
    # A restarted daemon can bind the same port again.
    ls = b.listen(1)
    out = {}

    def server():
        conn = yield ls.accept()
        msg = yield conn.recv()
        out["got"] = msg.payload

    def client():
        conn = yield from a.connect(("b", 1))
        yield conn.send("back online")

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert out["got"] == "back online"


def test_send_after_peer_crash_raises():
    net, a, b = make_pair()

    def server():
        ls = b.listen(1)
        conn = yield ls.accept()
        return conn

    def client():
        conn = yield from a.connect(("b", 1))
        yield net.sim.timeout(0.5)
        b.crash()
        yield net.sim.timeout(0.1)  # RST propagates
        with pytest.raises(ConnectionReset):
            conn.send("into the void")
        return True

    net.sim.process(server())
    p = net.sim.process(client())
    net.sim.run()
    assert p.value is True


def test_outer_server_crash_breaks_relayed_streams():
    """A relay daemon death resets both legs of the chain."""
    from repro.cluster import Testbed
    from repro.core import NexusProxyClient

    tb = Testbed()
    out = {}

    def inside():
        proxy = NexusProxyClient(tb.rwcp_sun, **tb.proxy_addrs)
        framed = yield from proxy.connect(("etl-sun", 9000))
        yield framed.send(b"first", nbytes=64)
        with pytest.raises(ConnectionReset):
            while True:
                yield from framed.recv()

        out["inside_reset"] = True

    def outside():
        ls = tb.etl_sun.listen(9000)
        conn = yield ls.accept()
        from repro.core import FramedConnection

        framed = FramedConnection(conn, tb.relay_config.chunk_bytes)
        yield from framed.recv()
        # The relay host dies mid-conversation.
        tb.outer_host.crash()
        with pytest.raises(ConnectionReset):
            while True:
                yield from framed.recv()
        out["outside_reset"] = True

    net = tb.net
    net.sim.process(inside())
    net.sim.process(outside())
    net.sim.run()
    assert out == {"inside_reset": True, "outside_reset": True}


def test_qserver_crash_surfaces_as_rmf_error():
    from repro.rmf import JobSpec, QClient, QServer, RMFError

    net = Network()
    res = net.add_host("resource")
    sub = net.add_host("submitter")
    net.link(res, sub, 1e-3, 1e6)
    qs = QServer(res).start()
    qc = QClient(sub)

    def killer():
        yield net.sim.timeout(2.0)
        res.crash()

    def submit():
        with pytest.raises(RMFError, match="dropped"):
            yield from qc.submit(
                ("resource", qs.port), JobSpec(executable="sleep", arguments=("60",))
            )
        return True

    net.sim.process(killer())
    p = net.sim.process(submit())
    net.sim.run()
    assert p.value is True


def test_cpu_utilization_accounting():
    net = Network()
    h = net.add_host("h", cores=2)

    def worker():
        yield from h.execute(3.0)

    net.sim.process(worker())
    net.sim.process(worker())
    net.sim.run(until=10.0)
    # 6 core-seconds over 10 s * 2 cores.
    assert h.cpu_utilization() == pytest.approx(0.3)


def test_utilization_zero_at_start():
    net = Network()
    h = net.add_host("h")
    assert h.cpu_utilization() == 0.0
