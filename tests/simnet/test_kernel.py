"""DES kernel semantics: scheduling order, processes, interrupts, conditions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simnet.kernel import (
    AllOf,
    AnyOf,
    Interrupt,
    SimError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(1.5)
        seen.append(sim.now)
        yield sim.timeout(0.5)
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen == [1.5, 2.0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.timeout(-1)


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc():
        got.append((yield sim.timeout(1, value="hello")))

    sim.process(proc())
    sim.run()
    assert got == ["hello"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def make(tag):
        def proc():
            yield sim.timeout(1.0)
            order.append(tag)

        return proc

    for tag in range(10):
        sim.process(make(tag)())
    sim.run()
    assert order == list(range(10))


def test_process_return_value():
    sim = Simulator()

    def child():
        yield sim.timeout(2)
        return 42

    def parent():
        value = yield sim.process(child())
        return value * 2

    p = sim.process(parent())
    sim.run()
    assert p.value == 84
    assert sim.now == 2


def test_run_until_event_returns_value():
    sim = Simulator()

    def child():
        yield sim.timeout(3)
        return "done"

    assert sim.run(until=sim.process(child())) == "done"
    assert sim.now == 3


def test_run_until_time_stops_early():
    sim = Simulator()
    seen = []

    def proc():
        for _ in range(10):
            yield sim.timeout(1)
            seen.append(sim.now)

    sim.process(proc())
    sim.run(until=4.5)
    assert seen == [1, 2, 3, 4]
    assert sim.now == 4.5
    sim.run()
    assert seen[-1] == 10


def test_run_until_past_raises():
    sim = Simulator()

    def proc():
        yield sim.timeout(5)

    sim.process(proc())
    sim.run()
    assert sim.now == 5
    with pytest.raises(SimError):
        sim.run(until=sim.now - 1)


def test_process_body_must_be_generator():
    sim = Simulator()
    with pytest.raises(SimError, match="generator"):
        sim.process(iter([]))  # plain iterator, no .send


def test_unhandled_process_exception_propagates():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("boom")

    sim.process(bad())
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_waiting_parent_receives_child_exception():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.process(bad())
        except ValueError:
            return "caught"
        return "missed"

    p = sim.process(parent())
    sim.run()
    assert p.value == "caught"


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(SimError, match="not an Event"):
        sim.run()


def test_cross_simulator_event_rejected():
    sim1, sim2 = Simulator(), Simulator()

    def bad():
        yield sim2.timeout(1)

    sim1.process(bad())
    with pytest.raises(SimError, match="different simulator"):
        sim1.run()


def test_interrupt_wakes_sleeper():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100)
            log.append("slept")
        except Interrupt as i:
            log.append(("interrupted", i.cause, sim.now))

    p = sim.process(sleeper())

    def waker():
        yield sim.timeout(5)
        p.interrupt("wake up")

    sim.process(waker())
    sim.run()
    assert log == [("interrupted", "wake up", 5)]


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run()
    p.interrupt()  # no exception
    assert p.triggered


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def tough():
        try:
            yield sim.timeout(100)
        except Interrupt:
            pass
        yield sim.timeout(10)
        log.append(sim.now)

    p = sim.process(tough())

    def waker():
        yield sim.timeout(5)
        p.interrupt()

    sim.process(waker())
    sim.run()
    assert log == [15]


def test_uncaught_interrupt_propagates():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100)

    p = sim.process(sleeper())

    def waker():
        yield sim.timeout(1)
        p.interrupt("die")

    sim.process(waker())
    with pytest.raises(Interrupt):
        sim.run()


def test_event_succeed_twice_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_anyof_first_wins():
    sim = Simulator()
    got = []

    def proc():
        t1 = sim.timeout(5, value="slow")
        t2 = sim.timeout(2, value="fast")
        result = yield AnyOf(sim, [t1, t2])
        got.append((sim.now, list(result.values())))

    sim.process(proc())
    sim.run()
    assert got[0][0] == 2
    assert "fast" in got[0][1]


def test_allof_waits_for_all():
    sim = Simulator()
    got = []

    def proc():
        evs = [sim.timeout(t, value=t) for t in (3, 1, 2)]
        result = yield AllOf(sim, evs)
        got.append((sim.now, sorted(result.values())))

    sim.process(proc())
    sim.run()
    assert got == [(3, [1, 2, 3])]


def test_empty_condition_fires_immediately():
    sim = Simulator()
    done = []

    def proc():
        yield AllOf(sim, [])
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [0.0]


def test_yield_already_processed_event():
    sim = Simulator()
    log = []

    def proc():
        t = sim.timeout(1, value="x")
        yield sim.timeout(5)  # t fires and is processed meanwhile
        v = yield t
        log.append((sim.now, v))

    sim.process(proc())
    sim.run()
    assert log == [(5, "x")]


def test_step_on_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.step()


def test_peek_empty_is_inf():
    assert Simulator().peek() == float("inf")


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    never = sim.event()
    with pytest.raises(SimError, match="never fired"):
        sim.run(until=never)


def test_self_interrupt_rejected():
    sim = Simulator()

    def proc():
        me = sim.active_process
        with pytest.raises(SimError):
            me.interrupt()
        yield sim.timeout(0)

    sim.process(proc())
    sim.run()


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=60))
def test_events_processed_in_time_order(delays):
    sim = Simulator()
    fired = []

    def make(d):
        def proc():
            yield sim.timeout(d)
            fired.append(sim.now)

        return proc

    for d in delays:
        sim.process(make(d)())
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


def test_anyof_fails_when_first_event_fails():
    sim = Simulator()

    def failer():
        yield sim.timeout(1)
        raise ValueError("inner boom")

    def waiter():
        p = sim.process(failer())
        t = sim.timeout(5)
        try:
            yield AnyOf(sim, [p, t])
        except ValueError:
            return "caught"
        return "missed"

    w = sim.process(waiter())
    sim.run()
    assert w.value == "caught"


def test_allof_fails_fast_on_member_failure():
    sim = Simulator()

    def failer():
        yield sim.timeout(1)
        raise RuntimeError("member died")

    def waiter():
        p = sim.process(failer())
        t = sim.timeout(100)
        try:
            yield AllOf(sim, [p, t])
        except RuntimeError:
            return sim.now
        return None

    w = sim.process(waiter())
    sim.run()
    assert w.value == 1  # did not wait for the 100 s timeout


def test_condition_rejects_cross_simulator_events():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(SimError, match="different simulators"):
        AllOf(sim1, [sim1.timeout(1), sim2.timeout(1)])


def test_timeout_value_defaults_to_none():
    sim = Simulator()
    got = []

    def proc():
        got.append((yield sim.timeout(1)))

    sim.process(proc())
    sim.run()
    assert got == [None]
