"""Daemon CLI argument parsing (without running the servers)."""

import pytest

from repro.core.aio import cli


def test_outer_parser_defaults(monkeypatch):
    captured = {}

    def fake_run(coro):
        coro.close()
        captured["ran"] = True

    monkeypatch.setattr(cli.asyncio, "run", fake_run)
    assert cli.outer_main([]) == 0
    assert captured["ran"]


def test_outer_parser_options(monkeypatch):
    built = {}

    class FakeServer:
        def __init__(self, host, port, chunk, secret, pump_mode, mux):
            built.update(host=host, port=port, chunk=chunk, secret=secret,
                         pump_mode=pump_mode, mux=mux)

    monkeypatch.setattr(cli, "AioOuterServer", FakeServer)
    monkeypatch.setattr(cli.asyncio, "run", lambda coro: coro.close())
    cli.outer_main(
        ["--host", "0.0.0.0", "--control-port", "7777",
         "--chunk", "1024", "--secret", "s3cret", "--pump", "fixed", "--no-mux"]
    )
    assert built == {"host": "0.0.0.0", "port": 7777, "chunk": 1024,
                     "secret": "s3cret", "pump_mode": "fixed", "mux": False}


def test_outer_parser_mux_default_on(monkeypatch):
    built = {}

    class FakeServer:
        def __init__(self, host, port, chunk, secret, pump_mode, mux):
            built.update(pump_mode=pump_mode, mux=mux)

    monkeypatch.setattr(cli, "AioOuterServer", FakeServer)
    monkeypatch.setattr(cli.asyncio, "run", lambda coro: coro.close())
    cli.outer_main([])
    assert built == {"pump_mode": "adaptive", "mux": True}


def test_inner_parser_options(monkeypatch):
    built = {}

    class FakeServer:
        def __init__(self, host, nxport, chunk, allowed_peers, pump_mode):
            built.update(host=host, nxport=nxport, chunk=chunk,
                         allowed_peers=allowed_peers, pump_mode=pump_mode)

    monkeypatch.setattr(cli, "AioInnerServer", FakeServer)
    monkeypatch.setattr(cli.asyncio, "run", lambda coro: coro.close())
    cli.inner_main(
        ["--nxport", "7100", "--allow-from", "203.0.113.1",
         "--allow-from", "203.0.113.2"]
    )
    assert built["nxport"] == 7100
    assert built["allowed_peers"] == ["203.0.113.1", "203.0.113.2"]


def test_inner_allow_from_defaults_to_open(monkeypatch):
    built = {}

    class FakeServer:
        def __init__(self, host, nxport, chunk, allowed_peers, pump_mode):
            built["allowed_peers"] = allowed_peers

    monkeypatch.setattr(cli, "AioInnerServer", FakeServer)
    monkeypatch.setattr(cli.asyncio, "run", lambda coro: coro.close())
    cli.inner_main([])
    assert built["allowed_peers"] is None


def test_bad_arguments_exit():
    with pytest.raises(SystemExit):
        cli.outer_main(["--control-port", "not-a-port"])
