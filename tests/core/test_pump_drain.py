"""Regression: the relay must not lose a sender's tail on close.

The write-then-close pattern (send the last message, hang up) is how
every request/reply protocol ends a conversation.  Inside the relay,
chunks sit in the non-occupying forwarding delay when the FIN arrives
on the source leg — an early implementation closed the destination leg
immediately and dropped them.  These tests pin the drain-aware close.
"""

import pytest

from repro.core import FramedConnection, NexusProxyClient
from repro.simnet import ConnectionReset


def make_dep():
    from tests.core.conftest import Deployment

    return Deployment()


def test_write_then_close_delivers_tail_through_one_relay():
    dep = make_dep()
    out = {}

    def pb_server():
        ls = dep.pb.listen(9000)
        conn = yield ls.accept()
        framed = FramedConnection(conn, dep.config.chunk_bytes)
        got = []
        try:
            while True:
                payload, n = yield from framed.recv()
                got.append((payload, n))
        except ConnectionReset:
            out["got"] = got

    def pa_client():
        framed = yield from dep.client().connect(("pb", 9000))
        for i in range(5):
            yield framed.send(i, nbytes=3000)  # multi-chunk messages
        framed.close()  # immediately after the last awaited send

    dep.sim.process(pb_server())
    dep.sim.process(pa_client())
    dep.sim.run()
    assert out["got"] == [(i, 3000) for i in range(5)]


def test_write_then_close_through_two_relays():
    dep = make_dep()
    out = {}

    def inside_listener():
        listener = yield from dep.client().bind()

        def outside_peer():
            conn = yield from dep.pb.connect(listener.proxy_addr)
            framed = FramedConnection(conn, dep.config.chunk_bytes)
            yield framed.send("the last word", nbytes=5000)
            framed.close()

        dep.sim.process(outside_peer())
        framed = yield from listener.accept()
        try:
            while True:
                payload, n = yield from framed.recv()
                out["msg"] = (payload, n)
        except ConnectionReset:
            pass

    p = dep.sim.process(inside_listener())
    dep.sim.run(until=p)
    assert out["msg"] == ("the last word", 5000)


def test_reset_still_propagates_when_nothing_in_flight():
    dep = make_dep()
    out = {}

    def pb_server():
        ls = dep.pb.listen(9000)
        conn = yield ls.accept()
        framed = FramedConnection(conn, dep.config.chunk_bytes)
        t0 = dep.sim.now
        try:
            yield from framed.recv()
        except ConnectionReset:
            out["reset_after"] = dep.sim.now - t0

    def pa_client():
        framed = yield from dep.client().connect(("pb", 9000))
        framed.close()  # no data at all

    dep.sim.process(pb_server())
    dep.sim.process(pa_client())
    dep.sim.run()
    # Propagates promptly (no indefinite drain wait).
    assert out["reset_after"] < 1.0
