"""Shared-secret authentication on the relay control port (both planes)."""

import asyncio

import pytest

from repro.core import NexusProxyClient, NXProxyError, RelayConfig
from repro.core.aio import AioInnerServer, AioOuterServer, AioProxyClient


# -- simulated plane -----------------------------------------------------------


def make_secured_deployment():
    from repro.core import InnerServer, OuterServer
    from repro.simnet import Firewall, Network

    cfg = RelayConfig(secret="s3cret")
    net = Network()
    fw = Firewall.typical(reject=True)
    site = net.add_site("rwcp", firewall=fw)
    pa = net.add_host("pa", site=site)
    innerh = net.add_host("innerh", site=site)
    lan = net.add_router("lan", site=site)
    outerh = net.add_host("outerh", cores=2)
    pb = net.add_host("pb")
    net.link(pa, lan, 1e-4, 6.9e6)
    net.link(innerh, lan, 1e-4, 6.9e6)
    net.link(lan, outerh, 1e-4, 6.9e6)
    net.link(outerh, pb, 3.5e-3, 187.5e3)
    outer = OuterServer(outerh, cfg).start()
    inner = InnerServer(innerh, cfg)
    inner.open_firewall_pinhole("outerh")
    inner.start()
    return net, cfg, pa, pb, outer, inner


def test_sim_correct_secret_accepted():
    net, cfg, pa, pb, outer, inner = make_secured_deployment()
    out = {}

    def server():
        ls = pb.listen(9000)
        conn = yield ls.accept()
        from repro.core import FramedConnection

        framed = FramedConnection(conn, cfg.chunk_bytes)
        payload, _ = yield from framed.recv()
        out["got"] = payload

    def client():
        proxy = NexusProxyClient(pa, outer_addr=outer.control_addr,
                                 inner_addr=inner.addr, config=cfg)
        framed = yield from proxy.connect(("pb", 9000))
        yield framed.send("authenticated", nbytes=64)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert out["got"] == "authenticated"


def test_sim_wrong_secret_refused():
    net, cfg, pa, pb, outer, inner = make_secured_deployment()
    bad_cfg = cfg.with_overrides(secret="wrong")

    def client():
        proxy = NexusProxyClient(pa, outer_addr=outer.control_addr,
                                 inner_addr=inner.addr, config=bad_cfg)
        with pytest.raises(NXProxyError, match="authentication failed"):
            yield from proxy.connect(("pb", 9000))
        with pytest.raises(NXProxyError, match="authentication failed"):
            yield from proxy.bind()
        return True

    p = net.sim.process(client())
    net.sim.run()
    assert p.value is True
    assert outer.stats.failed_requests == 2


def test_sim_missing_secret_refused():
    net, cfg, pa, pb, outer, inner = make_secured_deployment()
    no_secret = cfg.with_overrides(secret=None)

    def client():
        proxy = NexusProxyClient(pa, outer_addr=outer.control_addr,
                                 inner_addr=inner.addr, config=no_secret)
        with pytest.raises(NXProxyError, match="authentication failed"):
            yield from proxy.connect(("pb", 9000))
        return True

    p = net.sim.process(client())
    net.sim.run()
    assert p.value is True


# -- live plane ---------------------------------------------------------------------


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=20))


def test_aio_secret_enforced():
    async def main():
        outer = await AioOuterServer(secret="hunter2").start()
        inner = await AioInnerServer().start()

        async def echo(reader, writer):
            data = await reader.read(100)
            writer.write(data)
            await writer.drain()
            writer.close()

        echo_srv = await asyncio.start_server(echo, "127.0.0.1", 0)
        echo_port = echo_srv.sockets[0].getsockname()[1]
        try:
            good = AioProxyClient(
                outer_addr=("127.0.0.1", outer.control_port),
                inner_addr=("127.0.0.1", inner.nxport),
                secret="hunter2",
            )
            r, w = await good.connect("127.0.0.1", echo_port)
            w.write(b"ok")
            await w.drain()
            assert await r.readexactly(2) == b"ok"
            w.close()

            bad = AioProxyClient(
                outer_addr=("127.0.0.1", outer.control_port),
                inner_addr=("127.0.0.1", inner.nxport),
                secret="wrong",
            )
            with pytest.raises(NXProxyError, match="authentication failed"):
                await bad.connect("127.0.0.1", echo_port)
            with pytest.raises(NXProxyError, match="authentication failed"):
                await bad.bind()

            anonymous = AioProxyClient(
                outer_addr=("127.0.0.1", outer.control_port),
                inner_addr=("127.0.0.1", inner.nxport),
            )
            with pytest.raises(NXProxyError, match="authentication failed"):
                await anonymous.connect("127.0.0.1", echo_port)
            assert outer.stats.failed_requests == 3
        finally:
            echo_srv.close()
            await outer.stop()
            await inner.stop()

    run(main())


def test_aio_no_secret_means_open():
    async def main():
        outer = await AioOuterServer().start()  # no secret
        try:
            client = AioProxyClient(outer_addr=("127.0.0.1", outer.control_port))
            # Request with a gratuitous secret is fine too.
            client.secret = "whatever"
            with pytest.raises(NXProxyError, match="connect failed"):
                await client.connect("127.0.0.1", 1)  # auth passed, dest dead
        finally:
            await outer.stop()

    run(main())
