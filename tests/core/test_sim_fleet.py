"""Sim-plane fleet: placement policy over N simulated outer servers."""

import pytest

from repro.core import (
    FramedConnection,
    NexusProxyClient,
    OuterServer,
    RelayConfig,
    SimFleet,
)
from repro.simnet import Firewall, Network

from tests.core.test_placement import FLEET_SNAPSHOT_KEYS


class FleetDeployment:
    """Reduced Fig. 5 with the outer relay sharded over two hosts."""

    def __init__(self, **fleet_kwargs) -> None:
        self.config = RelayConfig()
        self.net = Network()
        self.rwcp = self.net.add_site(
            "rwcp", firewall=Firewall.typical(reject=True)
        )
        self.pa = self.net.add_host("pa", site=self.rwcp)
        self.lan = self.net.add_router("lan", site=self.rwcp)
        self.outer_hosts = [
            self.net.add_host(f"outer{i}", cores=2) for i in range(2)
        ]
        self.pb = self.net.add_host("pb")
        self.net.link(self.pa, self.lan, 0.1e-3, 6.9e6)
        for oh in self.outer_hosts:
            self.net.link(self.lan, oh, 0.1e-3, 6.9e6)
            self.net.link(oh, self.pb, 3.5e-3, 187.5e3)
        self.outers = [OuterServer(oh, self.config) for oh in self.outer_hosts]
        for outer in self.outers:
            outer.start()
        self.fleet = SimFleet(self.net.sim, self.outers, **fleet_kwargs)

    @property
    def sim(self):
        return self.net.sim


def test_place_release_and_quota():
    dep = FleetDeployment(max_chains_per_client=2)
    fleet = dep.fleet
    a1 = fleet.place("pa")
    a2 = fleet.place("pa")
    assert a1 is not None and a2 is not None
    # Third concurrent chain for the same client: refused at the edge.
    assert fleet.place("pa") is None
    assert fleet.snapshot()["rejected_quota"] == 1
    # A different client is unaffected.
    assert fleet.place("pb") is not None
    fleet.release("pa", a1.host)
    assert fleet.place("pa") is not None
    snap = fleet.snapshot()
    assert snap["handoffs"] == 4
    assert sum(w["active_chains"] for w in snap["workers"].values()) == 3


def test_cold_fleet_places_by_hash_and_warm_by_rate():
    dep = FleetDeployment()
    fleet = dep.fleet
    # Cold (no heartbeats yet): hash-ring spread, deterministic.
    first = [fleet.place("pa", chain_key=f"c{i}") for i in range(32)]
    assert fleet.snapshot()["placed_hash_ring"] == 32
    assert len({a.host for a in first}) == 2  # both workers got chains
    # Warm the views with two heartbeat rounds while outer0 relays
    # hard and outer1 sits idle.
    fleet.observe()
    dep.outers[0].stats.bytes_relayed += 50_000_000
    dep.sim.run(until=dep.sim.now + 1.0)
    fleet.start()
    dep.sim.run(until=dep.sim.now + 1.0)
    addr = fleet.place("pa", chain_key="hot")
    assert addr is not None
    assert addr.host == dep.outers[1].host.name
    assert fleet.snapshot()["placed_least_loaded"] == 1


def test_drain_excludes_worker_and_completes_on_release():
    dep = FleetDeployment()
    fleet = dep.fleet
    placed = {}
    for i in range(8):
        addr = fleet.place("pa", chain_key=f"c{i}")
        placed.setdefault(addr.host, []).append(f"c{i}")
    victim = dep.outers[0].host.name
    fleet.drain(victim)
    snap = fleet.snapshot()
    assert snap["drains_started"] == 1
    assert snap["workers"][victim]["state"] == "draining"
    # No new chains land on the draining worker.
    for i in range(8, 16):
        addr = fleet.place("pa", chain_key=f"c{i}")
        assert addr.host != victim
    # Releasing its last chain completes the drain.
    for _ in placed.get(victim, []):
        fleet.release("pa", victim)
    snap = fleet.snapshot()
    assert snap["drains_completed"] == 1
    assert snap["workers"][victim]["state"] == "gone"
    # Draining an idle worker completes immediately.
    other = dep.outers[1].host.name
    for _ in placed.get(other, []):
        fleet.release("pa", other)
    for i in range(8, 16):
        fleet.release("pa", dep.outers[1].host.name)
    fleet.drain(other)
    assert fleet.snapshot()["workers"][other]["state"] == "gone"
    # Nobody left: the edge refuses with rejected_no_worker.
    assert fleet.place("pa") is None
    assert fleet.snapshot()["rejected_no_worker"] == 1


def test_edge_rate_cap_delays_in_sim_time():
    dep = FleetDeployment(
        edge_rate_bytes_per_s=1_000_000, edge_burst_bytes=500_000
    )
    fleet = dep.fleet
    assert fleet.edge_delay(500_000) == 0.0  # burst absorbs the first
    delay = fleet.edge_delay(500_000)
    assert delay == pytest.approx(0.5)
    snap = fleet.snapshot()
    assert snap["edge_throttle_waits"] == 1
    # After simulated time passes, the bucket has refilled.
    dep.sim.run(until=dep.sim.now + 2.0)
    assert fleet.edge_delay(100_000) == 0.0


def test_placed_worker_carries_real_sim_traffic():
    """A chain placed by the fleet relays actual Fig. 3 traffic
    through the chosen simulated worker."""
    dep = FleetDeployment()
    fleet = dep.fleet

    result = {}

    def server():
        ls = dep.pb.listen(9000)
        conn = yield ls.accept()
        fc = FramedConnection(conn, dep.config.chunk_bytes)
        payload, n = yield from fc.recv()
        result["pb"] = (payload, n)
        yield fc.send("pong", nbytes=100)

    def client_proc():
        addr = fleet.place("pa", chain_key="t1")
        assert addr is not None
        client = NexusProxyClient(
            dep.pa, outer_addr=addr, config=dep.config
        )
        fc = yield from client.connect(("pb", 9000))
        yield fc.send("ping", nbytes=4096)
        payload, n = yield from fc.recv()
        result["pa"] = (payload, n)
        fleet.release("pa", addr.host)

    dep.sim.process(server())
    dep.sim.process(client_proc())
    dep.sim.run()
    assert result["pb"] == ("ping", 4096)
    assert result["pa"] == ("pong", 100)
    placed = fleet.snapshot()["workers"]
    assert sum(w["bytes_relayed"] for w in placed.values()) == 0  # pre-observe
    fleet.observe()
    placed = fleet.snapshot()["workers"]
    assert sum(w["bytes_relayed"] for w in placed.values()) > 0


def test_sim_snapshot_schema_matches_shared_builder():
    dep = FleetDeployment()
    snap = dep.fleet.snapshot()
    assert set(snap) == FLEET_SNAPSHOT_KEYS
    assert snap["mode"] == "sim"
    for w in snap["workers"].values():
        assert set(w) == {
            "state", "active_chains", "bytes_relayed", "byte_rate",
            "heartbeats",
        }
