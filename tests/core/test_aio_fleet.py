"""Live relay fleet: front-door handoff, quotas, drain-by-redial.

Every test spawns real worker processes; startup is seconds, not
milliseconds, so the fleet count per test is kept minimal and the
heavyweight drain integration is marked ``slow``.
"""

import asyncio
import contextlib
import json

import pytest

from repro.core.aio import AioProxyClient
from repro.core.aio.fleet import HAVE_REUSEPORT, FleetManager, FleetSpec
from repro.core.aio.streams import StripeSink, recv_striped, send_striped

from tests.core.test_placement import FLEET_SNAPSHOT_KEYS

MB = 1024 * 1024


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def start_echo_server():
    async def echo(reader, writer):
        while True:
            data = await reader.read(4096)
            if not data:
                break
            writer.write(data)
            await writer.drain()
        writer.close()

    server = await asyncio.start_server(echo, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


async def dial_chain(fleet_port: int, host: str, port: int):
    """One active-open relay chain through the fleet endpoint.

    Raises :class:`ConnectionError` on edge rejection or a refused
    handoff (connection closed before the reply) — the same signal a
    striping redial handles.
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", fleet_port)
    try:
        writer.write(
            json.dumps({"op": "connect", "host": host, "port": port}).encode()
            + b"\n"
        )
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ConnectionError("fleet endpoint closed the connection")
        try:
            reply = json.loads(line)
        except ValueError:
            raise ConnectionError(f"garbled fleet reply: {line!r}") from None
        if not reply.get("ok"):
            raise ConnectionError(str(reply.get("error", "refused")))
        return reader, writer
    except BaseException:
        with contextlib.suppress(Exception):
            writer.close()
        raise


def test_handoff_fleet_relays_and_snapshot_parity():
    async def main():
        fleet = await FleetManager(
            FleetSpec(workers=2, heartbeat_s=0.1)
        ).start()
        echo_srv, echo_port = await start_echo_server()
        try:
            conns = []
            for i in range(4):
                conns.append(
                    await dial_chain(fleet.port, "127.0.0.1", echo_port)
                )
            for i, (reader, writer) in enumerate(conns):
                msg = f"fleet echo {i}".encode()
                writer.write(msg)
                await writer.drain()
                assert await reader.readexactly(len(msg)) == msg
            snap = fleet.snapshot()
            # Live snapshot schema is the sim mirror's, by construction.
            assert set(snap) == FLEET_SNAPSHOT_KEYS
            assert snap["mode"] == "handoff"
            assert snap["handoffs"] == 4
            assert snap["placed_chains"] == 4
            assert set(snap["workers"]) == {"w0", "w1"}
            for wsnap in snap["workers"].values():
                assert set(wsnap) == {
                    "state", "active_chains", "bytes_relayed", "byte_rate",
                    "heartbeats",
                }
                assert wsnap["state"] == "up"
            # Heartbeats are flowing.
            await asyncio.sleep(0.3)
            snap = fleet.snapshot()
            assert all(
                w["heartbeats"] >= 1 for w in snap["workers"].values()
            )
            assert sum(
                w["bytes_relayed"] for w in snap["workers"].values()
            ) > 0
            for _reader, writer in conns:
                writer.close()
        finally:
            echo_srv.close()
            await fleet.stop()

    run(main())


def test_front_door_quota_rejects_then_recovers():
    async def main():
        fleet = await FleetManager(
            FleetSpec(workers=2, max_chains_per_client=1, heartbeat_s=0.1)
        ).start()
        echo_srv, echo_port = await start_echo_server()
        try:
            r1, w1 = await dial_chain(fleet.port, "127.0.0.1", echo_port)
            # Second concurrent chain from the same client address:
            # refused at the edge with a JSON error line, no handoff.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", fleet.port
            )
            reply = json.loads(await reader.readline())
            assert reply["ok"] is False
            assert "quota" in reply["error"]
            assert await reader.read(1) == b""  # and the door closed it
            writer.close()
            snap = fleet.snapshot()
            assert snap["rejected_quota"] == 1
            assert snap["handoffs"] == 1
            # Ending the held chain releases the slot (the worker's
            # 'closed' notification travels back to the manager).
            w1.close()
            for _ in range(100):
                try:
                    r3, w3 = await dial_chain(
                        fleet.port, "127.0.0.1", echo_port
                    )
                    break
                except ConnectionError:
                    await asyncio.sleep(0.05)
            else:
                pytest.fail("quota slot never released after chain close")
            w3.close()
        finally:
            echo_srv.close()
            await fleet.stop()

    run(main())


@pytest.mark.skipif(not HAVE_REUSEPORT, reason="needs SO_REUSEPORT")
def test_reuseport_fleet_shares_one_port():
    async def main():
        fleet = await FleetManager(
            FleetSpec(workers=2, mode="reuseport", heartbeat_s=0.1)
        ).start()
        echo_srv, echo_port = await start_echo_server()
        try:
            # The kernel spreads connections; no front door, no
            # handoffs — every dial still relays through some worker.
            for i in range(4):
                reader, writer = await dial_chain(
                    fleet.port, "127.0.0.1", echo_port
                )
                msg = f"reuseport {i}".encode()
                writer.write(msg)
                await writer.drain()
                assert await reader.readexactly(len(msg)) == msg
                writer.close()
            snap = fleet.snapshot()
            assert snap["mode"] == "reuseport"
            assert snap["handoffs"] == 0
            await asyncio.sleep(0.3)
            snap = fleet.snapshot()
            assert sum(
                w["bytes_relayed"] for w in snap["workers"].values()
            ) > 0
        finally:
            echo_srv.close()
            await fleet.stop()

    run(main())


@pytest.mark.slow
def test_drain_migrates_striped_transfer_with_zero_loss(tmp_path):
    """The acceptance scenario: drain a worker while a striped
    transfer is in flight; dead streams redial through the logical
    endpoint onto the survivor and resume from restart markers, so the
    sink reassembles the payload bit-exact — zero lost or duplicated
    bytes.  Worker + client traces assemble into one flow-linked
    Chrome trace with no unresolved parents."""
    from repro.obs import spans as _obs
    from repro.obs import trace as _trace
    from repro.obs.assemble import assemble
    from repro.obs.export import write_artifacts

    payload = bytes(bytearray(range(256)) * (8 * MB // 256))

    async def main():
        spec = FleetSpec(
            workers=2,
            heartbeat_s=0.1,
            drain_grace_s=0.4,
            # Throttle the edge so an 8 MB transfer takes ~1.2 s: the
            # drain's abort (0.35 s sleep + 0.4 s grace) demonstrably
            # lands mid-flight even on a fast run.  12 MB/s with a 1 MB
            # burst let the transfer finish inside the grace window,
            # yielding reconnects == 0.
            edge_rate_bytes_per_s=7 * MB,
            edge_burst_bytes=256 * 1024,
            trace_dir=str(tmp_path),
        )
        fleet = await FleetManager(spec).start()
        client = AioProxyClient(outer_addr=("127.0.0.1", fleet.port))

        sink_conns: "asyncio.Queue" = asyncio.Queue()

        async def on_conn(reader, writer):
            await sink_conns.put((reader, writer))

        sink_srv = await asyncio.start_server(on_conn, "127.0.0.1", 0)
        sink_port = sink_srv.sockets[0].getsockname()[1]

        async def accept():
            return await sink_conns.get()

        async def dial():
            return await client.connect("127.0.0.1", sink_port)

        # StripeSink, not one-shot recv_striped: a stream the drain
        # aborts just as the last block lands redials after the
        # payload is complete, and needs the sink's completed-transfer
        # memory to learn the final watermark.
        sink = StripeSink(accept)
        try:
            recv_task = asyncio.ensure_future(sink.recv())
            send_task = asyncio.ensure_future(
                send_striped(
                    dial, payload, streams=4,
                    block_bytes=64 * 1024, window_blocks=8,
                )
            )
            # Let the transfer get going and the heartbeats report who
            # carries chains, then retire the busier worker.
            await asyncio.sleep(0.35)
            assert not send_task.done(), "transfer finished before drain"
            snap = fleet.snapshot()
            victim = max(
                snap["workers"],
                key=lambda w: snap["workers"][w]["active_chains"],
            )
            assert snap["workers"][victim]["active_chains"] > 0
            await fleet.drain(victim, grace_s=0.4)
            report = await send_task
            data, _sink_report = await recv_task
            assert data == payload  # bit-exact: nothing lost, nothing doubled
            assert report["reconnects"] >= 1  # the victim's streams redialed
            snap = fleet.snapshot()
            assert snap["workers"][victim]["state"] == "gone"
            assert snap["drains_started"] == 1
            assert snap["drains_completed"] == 1
            # Redials were placed through the front door again.
            assert snap["placed_chains"] >= 4 + report["reconnects"]
        finally:
            await sink.close()
            sink_srv.close()
            await fleet.stop()
        return fleet

    # Client-side tracing so worker spans have cross-process parents.
    rec = _obs.ObsRecorder()
    _obs.install(rec)
    _trace.enable("client")
    try:
        fleet = run(main())
    finally:
        _obs.uninstall()
        _trace.disable()
    client_base = tmp_path / "client"
    write_artifacts(rec, str(client_base))

    traces = []
    for stem in ("client", "worker-w0", "worker-w1"):
        path = tmp_path / f"{stem}.trace.json"
        assert path.exists(), f"missing trace artifact {path}"
        traces.append((stem, json.loads(path.read_text())))
    merged = assemble(traces)
    info = merged["otherData"]["assembled"]
    assert info["unresolved_parents"] == 0
    assert info["flows"] > 0  # the chains really linked across processes


def test_striped_transfer_with_more_streams_than_workers():
    """k=4 stripes over a 1-worker fleet: every stream lands on the
    same worker and the transfer still completes intact (stream count
    is a client choice, not a fleet property)."""
    payload = bytes(bytearray(range(256)) * (2 * MB // 256))

    async def main():
        fleet = await FleetManager(
            FleetSpec(
                workers=1,
                heartbeat_s=0.1,
                # Throttle so the 2 MB transfer (~0.3 s) outlasts the
                # three later streams' dial+handoff: unthrottled, the
                # first stream can push the whole payload on fast runs
                # and streams_seen lands below 4.  The 256 KB burst is
                # smaller than an adaptive pump chunk can grow, so this
                # also exercises installment debits in TokenBucket.
                edge_rate_bytes_per_s=8 * MB,
                edge_burst_bytes=256 * 1024,
            )
        ).start()
        sink_conns: "asyncio.Queue" = asyncio.Queue()

        async def on_conn(reader, writer):
            await sink_conns.put((reader, writer))

        sink_srv = await asyncio.start_server(on_conn, "127.0.0.1", 0)
        sink_port = sink_srv.sockets[0].getsockname()[1]

        async def accept():
            return await sink_conns.get()

        async def dial():
            return await dial_chain(fleet.port, "127.0.0.1", sink_port)

        try:
            recv_task = asyncio.ensure_future(recv_striped(accept))
            report = await send_striped(
                dial, payload, streams=4, block_bytes=128 * 1024
            )
            data, sink_report = await recv_task
            assert data == payload
            assert report["reconnects"] == 0
            assert sink_report["streams_seen"] == 4
            assert fleet.snapshot()["handoffs"] == 4
        finally:
            sink_srv.close()
            await fleet.stop()

    run(main())
