"""Unit tests for the plane-neutral fleet policy pieces."""

import pytest

from repro.core.placement import (
    RATE_TIE_EPSILON,
    WORKER_DRAINING,
    WORKER_UP,
    AdmissionControl,
    ConsistentHashRing,
    LeastLoadedPlacer,
    TokenBucketCore,
    WorkerView,
    fleet_snapshot,
)


# -- consistent hash ring ---------------------------------------------------


def test_ring_is_deterministic_and_stable_under_removal():
    ring = ConsistentHashRing()
    for wid in ("w0", "w1", "w2"):
        ring.add(wid)
    keys = [f"chain-{i}" for i in range(200)]
    before = {k: ring.pick(k) for k in keys}
    # Deterministic: same key, same owner, every time.
    assert before == {k: ring.pick(k) for k in keys}
    # All workers own some arc at 64 vnodes each.
    assert set(before.values()) == {"w0", "w1", "w2"}
    ring.remove("w1")
    after = {k: ring.pick(k) for k in keys}
    # Only w1's chains moved; survivors' placements are untouched.
    moved = [k for k in keys if before[k] != after[k]]
    assert all(before[k] == "w1" for k in moved)
    assert "w1" not in set(after.values())


def test_ring_eligible_filter_and_empty():
    ring = ConsistentHashRing()
    assert ring.pick("x") is None
    ring.add("w0")
    ring.add("w1")
    assert ring.pick("x", {"w1"}) == "w1"
    assert ring.pick("x", set()) is None


# -- worker views -----------------------------------------------------------


def test_worker_view_rate_ewma_and_staleness():
    view = WorkerView("w0")
    assert not view.rate_known(0.0)
    view.observe(0.0, 0, 0)
    assert not view.rate_known(0.0)  # one sample: no interval yet
    view.observe(1.0, 1_000_000, 2)
    assert view.rate_known(1.0)
    # EWMA with alpha=0.5 from 0: half the instantaneous rate.
    assert view.byte_rate == pytest.approx(500_000.0)
    view.observe(2.0, 2_000_000, 2)
    assert view.byte_rate == pytest.approx(750_000.0)
    # Stale heartbeat: the rate stops being trustworthy.
    assert not view.rate_known(100.0)
    snap = view.snapshot()
    assert set(snap) == {
        "state", "active_chains", "bytes_relayed", "byte_rate", "heartbeats"
    }


# -- placer -----------------------------------------------------------------


def _warm_views(rates):
    views = {}
    for wid, rate in rates.items():
        v = WorkerView(wid)
        v.observe(0.0, 0, 0)
        # Two observations at alpha=0.5 from 0 leave byte_rate at
        # 0.75x the steady instantaneous rate; feed a constant rate.
        v.observe(1.0, int(rate), 0)
        v.observe(2.0, int(2 * rate), 0)
        views[wid] = v
    return views


def test_placer_least_loaded_when_rates_distinguishable():
    placer = LeastLoadedPlacer()
    views = _warm_views({"w0": 8_000_000, "w1": 1_000, "w2": 4_000_000})
    for v in views.values():
        placer.add_worker(v)
    wid, method = placer.place("c1", views, now=2.0)
    assert (wid, method) == ("w1", "least_loaded")
    assert placer.stats.placed_least_loaded == 1


def test_placer_spreads_dial_bursts_between_heartbeats():
    # Heartbeats lag placement: a burst of dials arriving between two
    # samples must not all herd onto the momentarily-idlest worker.
    placer = LeastLoadedPlacer()
    views = _warm_views({"w0": 8_000_000, "w1": 1_000, "w2": 2_000})
    for v in views.values():
        placer.add_worker(v)
    first, m1 = placer.place("b1", views, now=2.0)
    second, m2 = placer.place("b2", views, now=2.0)
    assert m1 == m2 == "least_loaded"
    assert {first, second} == {"w1", "w2"}
    assert views[first].pending_chains == 1
    # The next heartbeat carries the real load of those chains; the
    # pending surcharge resets with it.
    views[first].observe(3.0, views[first].bytes_relayed + 1_000, 1)
    assert views[first].pending_chains == 0


def test_placer_hash_ring_on_cold_fleet_and_ties():
    placer = LeastLoadedPlacer()
    views = {wid: WorkerView(wid) for wid in ("w0", "w1")}
    for v in views.values():
        placer.add_worker(v)
    wid, method = placer.place("c1", views, now=0.0)
    assert method == "hash_ring" and wid in views
    # Warm but indistinguishable rates (< epsilon apart): still hash.
    views = _warm_views({"w0": 0, "w1": RATE_TIE_EPSILON / 4})
    wid, method = placer.place("c2", views, now=2.0)
    assert method == "hash_ring"
    assert placer.stats.placed_hash_ring == 2


def test_placer_skips_draining_and_counts_no_worker():
    placer = LeastLoadedPlacer()
    views = {wid: WorkerView(wid) for wid in ("w0", "w1")}
    for v in views.values():
        placer.add_worker(v)
    views["w0"].state = WORKER_DRAINING
    for key in ("a", "b", "c"):
        wid, _ = placer.place(key, views, now=0.0)
        assert wid == "w1"
    views["w1"].state = WORKER_DRAINING
    wid, method = placer.place("d", views, now=0.0)
    assert (wid, method) == (None, "none")
    assert placer.stats.rejected_no_worker == 1


def test_placer_repairs_ring_view_drift():
    placer = LeastLoadedPlacer()
    v = WorkerView("w9")
    # Eligible worker that was never added to (or was removed from)
    # the ring: the placer must still place, by sorted-id fallback.
    wid, method = placer.place("k", {"w9": v}, now=0.0)
    assert (wid, method) == ("w9", "hash_ring")


# -- admission --------------------------------------------------------------


def test_admission_quota_and_release():
    adm = AdmissionControl(2)
    assert adm.admit("pa") and adm.admit("pa")
    assert not adm.admit("pa")
    assert adm.admit("pb")  # quotas are per client
    adm.release("pa")
    assert adm.admit("pa")
    # Unlimited when None.
    free = AdmissionControl(None)
    assert all(free.admit("pa") for _ in range(100))
    with pytest.raises(ValueError):
        AdmissionControl(0)


# -- token bucket -----------------------------------------------------------


def test_token_bucket_core_refill_and_delay():
    b = TokenBucketCore(rate=1000.0, burst=500.0)
    b.refill(0.0)
    assert b.try_take(500)
    assert not b.try_take(1)
    assert b.delay_for(250) == pytest.approx(0.25)
    b.refill(0.25)
    assert b.try_take(250)
    # Time never runs backwards for the bucket.
    b.refill(0.1)
    assert b.tokens == pytest.approx(0.0)
    # Debts above the burst are clamped to one burst's delay.
    assert b.delay_for(10_000) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        TokenBucketCore(0)


def test_token_bucket_acquire_larger_than_burst_completes():
    """A single acquire for more bytes than the burst must complete in
    installments, not spin forever: the bucket never holds more than
    one burst of tokens, and acquire holds the bucket lock while it
    waits — an unsatisfiable take would freeze every chain sharing the
    edge (an adaptive pump chunk can outgrow a small configured
    burst)."""
    import asyncio

    from repro.core.placement import TokenBucket

    async def main():
        bucket = TokenBucket(rate=1_000_000.0, burst=4096.0)
        # 8x the burst: finishes only if acquire debits in steps.
        await asyncio.wait_for(bucket.acquire(32_768), timeout=5)
        assert bucket.waits >= 1

    asyncio.run(main())


# -- snapshot schema --------------------------------------------------------

FLEET_SNAPSHOT_KEYS = {
    "mode", "workers", "placed_chains", "placed_least_loaded",
    "placed_hash_ring", "rejected_quota", "rejected_no_worker",
    "edge_throttle_waits", "handoffs", "drains_started",
    "drains_completed",
}


def test_fleet_snapshot_schema_and_override():
    placer = LeastLoadedPlacer()
    v = WorkerView("w0")
    v.state = WORKER_UP
    snap = fleet_snapshot("live", [v], placer.stats)
    assert set(snap) == FLEET_SNAPSHOT_KEYS
    assert snap["edge_throttle_waits"] == 0
    snap = fleet_snapshot("live", [v], placer.stats, edge_throttle_waits=7)
    assert snap["edge_throttle_waits"] == 7
