"""Mux observability under faults, and tagged/untagged interop.

Satellite guarantees under test:

* Every chain the mux plane opens produces exactly one closed
  ``mux/chain`` wall span — including chains killed by a link drop —
  so an aborted link can never leak an open span or lose the chain's
  byte accounting.
* Stall/reconnect counters survive the drop (monotonic across link
  generations, never reset).
* A tagging client interoperates with untagged (seed-format) peers in
  both directions: extra ``tctx`` keys are ignored by old inners, and
  missing ones leave the new code's contexts ``None``.
"""

import asyncio

import pytest

from repro.core.aio import AioInnerServer, AioOuterServer, AioProxyClient
from repro.obs import spans, trace


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


@pytest.fixture(autouse=True)
def _obs_env():
    rec = spans.install()
    trace.enable("t")
    yield rec
    trace.disable()
    spans.uninstall()


async def start_deployment(**outer_kwargs):
    outer = await AioOuterServer(**outer_kwargs).start()
    inner = await AioInnerServer().start()
    client = AioProxyClient(
        outer_addr=("127.0.0.1", outer.control_port),
        inner_addr=("127.0.0.1", inner.nxport),
    )
    return outer, inner, client


async def echo_chain(listener):
    async def serve(r, w):
        while True:
            data = await r.read(65536)
            if not data:
                break
            w.write(data)
            await w.drain()
        w.close()

    while True:
        r, w = await listener.accept()
        asyncio.ensure_future(serve(r, w))


def _chain_spans(rec):
    return [ev for ev in rec.events
            if ev.cat == "mux" and ev.name == "chain" and ev.ph == "X"]


def test_chain_spans_closed_across_link_drop(_obs_env):
    """Drop the mux link under a live chain: the chain's lifecycle
    span still closes, and post-reconnect chains record their own."""
    rec = _obs_env

    async def main():
        outer, inner, client = await start_deployment()
        try:
            listener = await client.bind()
            echo_task = asyncio.ensure_future(echo_chain(listener))
            host, port = listener.proxy_addr

            r1, w1 = await asyncio.open_connection(host, port)
            w1.write(b"ping")
            await w1.drain()
            assert await r1.readexactly(4) == b"ping"

            link = outer.mux_link("127.0.0.1", inner.nxport)
            await link.drop_link()
            assert await r1.read(4096) == b""
            w1.close()
            await asyncio.sleep(0.05)

            r2, w2 = await asyncio.open_connection(host, port)
            w2.write(b"recovered")
            await w2.drain()
            assert await r2.readexactly(9) == b"recovered"
            w2.write_eof()
            await r2.read(-1)
            w2.close()
            await asyncio.sleep(0.05)

            assert outer.stats.mux_reconnects == 1
            echo_task.cancel()
            await listener.close()
        finally:
            await outer.stop()
            await inner.stop()
        # Both sides recorded a closed chain span for every chain of
        # both link generations: 2 chains x 2 daemons.
        chains = _chain_spans(rec)
        assert len(chains) == 4, [(e.track, e.args) for e in chains]
        assert all(ev.dur >= 0 for ev in chains)
        # Chains carry their causal tag (bind minted one) even after
        # the reconnect.
        tagged = [ev for ev in chains if "trace" in ev.args]
        assert len(tagged) == 4
        # Byte accounting survived the drop: the healed chain moved
        # its 9 bytes.
        assert any(ev.args.get("bytes", 0) >= 9 for ev in chains)

    run(main())


def test_window_stall_counter_survives_reconnect(_obs_env):
    """mux_window_stalls and frame counters are cumulative across link
    generations — a reconnect must never reset them."""

    async def main():
        outer, inner, client = await start_deployment()
        try:
            listener = await client.bind()
            echo_task = asyncio.ensure_future(echo_chain(listener))
            host, port = listener.proxy_addr

            r1, w1 = await asyncio.open_connection(host, port)
            blob = b"x" * (1 << 20)
            w1.write(blob)
            await w1.drain()
            got = bytearray()
            while len(got) < len(blob):
                got.extend(await r1.read(1 << 16))
            w1.close()
            frames_before = outer.stats.mux_frames
            stalls_before = outer.stats.mux_window_stalls
            assert frames_before > 0

            link = outer.mux_link("127.0.0.1", inner.nxport)
            await link.drop_link()
            await asyncio.sleep(0.05)

            r2, w2 = await asyncio.open_connection(host, port)
            w2.write(blob)
            await w2.drain()
            got = bytearray()
            while len(got) < len(blob):
                got.extend(await r2.read(1 << 16))
            w2.close()
            assert outer.stats.mux_frames > frames_before
            assert outer.stats.mux_window_stalls >= stalls_before
            echo_task.cancel()
            await listener.close()
        finally:
            await outer.stop()
            await inner.stop()

    run(main())


def test_tagging_client_vs_untagged_relayto(_obs_env):
    """Legacy (seed wire format) peers interoperate with a tagging
    deployment: the JSON control lines simply carry one extra key that
    old peers would ignore, and its absence parses to None."""
    rec = _obs_env

    async def main():
        outer, inner, client = await start_deployment(mux=False)
        try:
            # Tagging client through the legacy per-chain data plane.
            listener = await client.bind()
            echo_task = asyncio.ensure_future(echo_chain(listener))
            host, port = listener.proxy_addr
            r, w = await asyncio.open_connection(host, port)
            w.write(b"legacy")
            await w.drain()
            assert await r.readexactly(6) == b"legacy"
            w.close()
            echo_task.cancel()
            await listener.close()

            # Seed-format control line (no tctx key) still relays.
            import json as _json

            cr, cw = await asyncio.open_connection(
                "127.0.0.1", outer.control_port
            )
            target_r, target_w = None, None

            async def sink(sr, sw):
                nonlocal target_r, target_w
                target_r, target_w = sr, sw

            srv = await asyncio.start_server(sink, "127.0.0.1", 0)
            tport = srv.sockets[0].getsockname()[1]
            cw.write(_json.dumps(
                {"op": "connect", "host": "127.0.0.1", "port": tport}
            ).encode() + b"\n")
            await cw.drain()
            reply = _json.loads((await cr.readline()).decode())
            assert reply.get("ok")
            cw.write(b"untagged payload")
            await cw.drain()
            await asyncio.sleep(0.1)
            data = await target_r.read(4096)
            assert data == b"untagged payload"
            cw.close()
            srv.close()
        finally:
            await outer.stop()
            await inner.stop()

    run(main())
    # The tagged legacy chain produced a tagged inner-side instant.
    tagged = [ev for ev in rec.events
              if ev.name == "legacy_chain" and "trace" in ev.args]
    assert tagged
    # The untagged connect recorded its span with NO trace args.
    connects = [ev for ev in rec.events if ev.name == "active_chain"]
    assert connects
    assert all("trace" not in ev.args for ev in connects)
