"""Live (asyncio, real-socket) Nexus Proxy integration tests.

Everything runs on loopback with ephemeral ports; each test spins up
its own daemons and tears them down.
"""

import asyncio

import pytest

from repro.core.aio import (
    AioInnerServer,
    AioOuterServer,
    AioProxyClient,
    GuardedDialer,
)
from repro.core.protocol import NXProxyError
from repro.simnet.firewall import Firewall, FirewallBlocked


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=20))


async def start_deployment():
    outer = await AioOuterServer().start()
    inner = await AioInnerServer().start()
    client = AioProxyClient(
        outer_addr=("127.0.0.1", outer.control_port),
        inner_addr=("127.0.0.1", inner.nxport),
    )
    return outer, inner, client


async def start_echo_server():
    async def echo(reader, writer):
        while True:
            data = await reader.read(4096)
            if not data:
                break
            writer.write(data)
            await writer.drain()
        writer.close()

    server = await asyncio.start_server(echo, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


def test_active_open_relays_bytes():
    async def main():
        outer, inner, client = await start_deployment()
        echo_srv, echo_port = await start_echo_server()
        try:
            reader, writer = await client.connect("127.0.0.1", echo_port)
            writer.write(b"hello through the relay")
            await writer.drain()
            got = await reader.readexactly(23)
            assert got == b"hello through the relay"
            writer.close()
            await asyncio.sleep(0.05)
            assert outer.stats.active_connects == 1
            assert outer.stats.bytes_relayed >= 46  # both directions
        finally:
            echo_srv.close()
            await outer.stop()
            await inner.stop()

    run(main())


def test_active_open_large_transfer():
    async def main():
        outer, inner, client = await start_deployment()
        echo_srv, echo_port = await start_echo_server()
        payload = bytes(range(256)) * 4096  # 1 MiB
        try:
            reader, writer = await client.connect("127.0.0.1", echo_port)
            writer.write(payload)
            await writer.drain()
            writer.write_eof()
            got = await reader.readexactly(len(payload))
            assert got == payload
            writer.close()
        finally:
            echo_srv.close()
            await outer.stop()
            await inner.stop()

    run(main())


def test_connect_to_dead_port_reports_error():
    async def main():
        outer, inner, client = await start_deployment()
        try:
            with pytest.raises(NXProxyError, match="connect failed"):
                await client.connect("127.0.0.1", 1)  # nothing listens there
            assert outer.stats.failed_requests == 1
        finally:
            await outer.stop()
            await inner.stop()

    run(main())


def test_passive_open_full_chain():
    """Fig. 4 on real sockets: peer -> outer -> inner -> client."""

    async def main():
        outer, inner, client = await start_deployment()
        try:
            listener = await client.bind()
            proxy_host, proxy_port = listener.proxy_addr
            assert proxy_port != listener.local_addr[1]

            async def peer():
                r, w = await asyncio.open_connection(proxy_host, proxy_port)
                w.write(b"knock knock")
                await w.drain()
                reply = await r.readexactly(7)
                w.close()
                return reply

            peer_task = asyncio.create_task(peer())
            r, w = await listener.accept(timeout=10)
            data = await r.readexactly(11)
            assert data == b"knock knock"
            w.write(b"come in")
            await w.drain()
            assert await peer_task == b"come in"
            await listener.close()
            assert outer.stats.passive_binds == 1
            assert outer.stats.passive_chains == 1
            assert inner.stats.passive_chains == 1
        finally:
            await outer.stop()
            await inner.stop()

    run(main())


def test_bind_released_on_listener_close():
    async def main():
        outer, inner, client = await start_deployment()
        try:
            listener = await client.bind()
            proxy_host, proxy_port = listener.proxy_addr
            await listener.close()
            await asyncio.sleep(0.1)  # let the outer server notice EOF
            with pytest.raises((ConnectionRefusedError, OSError)):
                await asyncio.open_connection(proxy_host, proxy_port)
        finally:
            await outer.stop()
            await inner.stop()

    run(main())


def test_multiple_concurrent_relayed_streams():
    async def main():
        outer, inner, client = await start_deployment()
        echo_srv, echo_port = await start_echo_server()

        async def one(i):
            reader, writer = await client.connect("127.0.0.1", echo_port)
            msg = f"stream-{i}".encode() * 100
            writer.write(msg)
            await writer.drain()
            got = await reader.readexactly(len(msg))
            writer.close()
            return got == msg

        try:
            results = await asyncio.gather(*[one(i) for i in range(8)])
            assert all(results)
            assert outer.stats.active_connects == 8
        finally:
            echo_srv.close()
            await outer.stop()
            await inner.stop()

    run(main())


def test_garbage_on_control_port_is_rejected():
    async def main():
        outer = await AioOuterServer().start()
        try:
            r, w = await asyncio.open_connection("127.0.0.1", outer.control_port)
            w.write(b"GET / HTTP/1.0\r\n\r\n")
            await w.drain()
            line = await r.readline()
            assert b'"ok":false' in line
            w.close()
            assert outer.stats.failed_requests == 1
        finally:
            await outer.stop()

    run(main())


def test_unknown_op_rejected():
    async def main():
        outer = await AioOuterServer().start()
        try:
            r, w = await asyncio.open_connection("127.0.0.1", outer.control_port)
            w.write(b'{"op": "teleport"}\n')
            await w.drain()
            line = await r.readline()
            assert b'"ok":false' in line and b"unknown op" in line
            w.close()
        finally:
            await outer.stop()

    run(main())


def test_inner_rejects_bad_request():
    async def main():
        inner = await AioInnerServer().start()
        try:
            r, w = await asyncio.open_connection("127.0.0.1", inner.nxport)
            w.write(b'{"op": "connect", "host": "x", "port": 1}\n')
            await w.drain()
            line = await r.readline()
            assert b'"ok":false' in line
            w.close()
            assert inner.stats.failed_requests == 1
        finally:
            await inner.stop()

    run(main())


def test_invalid_port_rejected():
    async def main():
        outer = await AioOuterServer().start()
        try:
            r, w = await asyncio.open_connection("127.0.0.1", outer.control_port)
            w.write(b'{"op": "connect", "host": "127.0.0.1", "port": "nope"}\n')
            await w.drain()
            line = await r.readline()
            assert b'"ok":false' in line
            w.close()
        finally:
            await outer.stop()

    run(main())


def test_client_without_outer_is_direct():
    async def main():
        echo_srv, echo_port = await start_echo_server()
        try:
            client = AioProxyClient()  # no proxy configured
            assert not client.enabled
            reader, writer = await client.connect("127.0.0.1", echo_port)
            writer.write(b"direct")
            await writer.drain()
            assert await reader.readexactly(6) == b"direct"
            writer.close()
        finally:
            echo_srv.close()

    run(main())


def test_bind_requires_configuration():
    async def main():
        with pytest.raises(NXProxyError):
            await AioProxyClient().bind()
        with pytest.raises(NXProxyError, match="inner server"):
            await AioProxyClient(outer_addr=("127.0.0.1", 1)).bind()

    run(main())


def test_guarded_dialer_enforces_policy():
    """The loopback 'firewall': inbound denied, proxy path allowed."""

    async def main():
        outer, inner, client = await start_deployment()
        echo_srv, echo_port = await start_echo_server()
        fw = Firewall.typical(name="rwcp", reject=True)
        dialer = GuardedDialer(
            site_of={"pa": "rwcp", "innerh": "rwcp"},  # pb/outerh outside
            firewalls={"rwcp": fw},
            resolve={"pa": ("127.0.0.1", echo_port)},
        )
        try:
            # Outside cannot dial the inside echo server...
            with pytest.raises(FirewallBlocked):
                await dialer.open_connection("pb", "pa")
            # ...but inside can dial out (to the outer server).
            r, w = await dialer.open_connection(
                "pa", "outerh", host="127.0.0.1", port=outer.control_port
            )
            w.close()
            assert fw.denied  # inbound denial was recorded
        finally:
            echo_srv.close()
            await outer.stop()
            await inner.stop()

    run(main())


def test_inner_allowed_peers_enforced():
    """The nxport daemon's defence-in-depth source check."""

    async def main():
        open_inner = await AioInnerServer(allowed_peers=["127.0.0.1"]).start()
        closed_inner = await AioInnerServer(allowed_peers=["203.0.113.9"]).start()
        try:
            # Permitted source: a protocol error reply, not a refusal.
            r, w = await asyncio.open_connection("127.0.0.1", open_inner.nxport)
            w.write(b'{"op": "bogus"}\n')
            await w.drain()
            line = await r.readline()
            assert b"unknown op" in line
            w.close()
            # Forbidden source: refused before any protocol handling.
            r, w = await asyncio.open_connection("127.0.0.1", closed_inner.nxport)
            w.write(b'{"op": "relayto", "host": "x", "port": 1}\n')
            await w.drain()
            line = await r.readline()
            assert b"not permitted" in line
            w.close()
            assert closed_inner.stats.failed_requests == 1
        finally:
            await open_inner.stop()
            await closed_inner.stop()

    run(main())
