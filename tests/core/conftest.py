"""Shared fixtures: a miniature firewalled deployment.

Topology (a reduced Fig. 5)::

    pa, innerh, lan   -- inside site "rwcp" (deny-based firewall)
    outerh, pb        -- outside (the Internet)

    pa -- lan -- outerh -- pb
    innerh -- lan

The firewall rejects (rather than drops) in tests so that blocked
connects fail fast instead of burning simulated timeout.
"""

import pytest

from repro.core import InnerServer, NexusProxyClient, OuterServer, RelayConfig
from repro.simnet import Firewall, Network


class Deployment:
    def __init__(self, config: RelayConfig = RelayConfig()) -> None:
        self.config = config
        self.net = Network()
        self.fw = Firewall.typical(reject=True)
        self.rwcp = self.net.add_site("rwcp", firewall=self.fw)
        self.pa = self.net.add_host("pa", site=self.rwcp)
        self.innerh = self.net.add_host("innerh", site=self.rwcp)
        self.lan = self.net.add_router("lan", site=self.rwcp)
        self.outerh = self.net.add_host("outerh", cores=2)
        self.pb = self.net.add_host("pb")
        self.net.link(self.pa, self.lan, 0.1e-3, 6.9e6)
        self.net.link(self.innerh, self.lan, 0.1e-3, 6.9e6)
        self.net.link(self.lan, self.outerh, 0.1e-3, 6.9e6)
        self.net.link(self.outerh, self.pb, 3.5e-3, 187.5e3)
        self.outer = OuterServer(self.outerh, config)
        self.inner = InnerServer(self.innerh, config)
        self.inner.open_firewall_pinhole("outerh")
        self.outer.start()
        self.inner.start()

    @property
    def sim(self):
        return self.net.sim

    def client(self, host=None) -> NexusProxyClient:
        return NexusProxyClient(
            host or self.pa,
            outer_addr=self.outer.control_addr,
            inner_addr=self.inner.addr,
            config=self.config,
        )


@pytest.fixture
def dep() -> Deployment:
    return Deployment()
