"""Tests for the frame-multiplexed nxport data plane.

The firewall-fidelity property under test: however many passive
chains are live, the outer and inner servers share exactly **one**
TCP connection through the pinhole (``stats.nxport_connections``),
carrying interleaved per-chain frames with flow control; a chain
dying must not disturb its siblings; the link dying must heal by
reconnect.
"""

import asyncio

import pytest

from repro.core.aio import (
    AioInnerServer,
    AioOuterServer,
    AioProxyClient,
)
from repro.core.aio.mux import ChainReset, FrameType, MuxConnector
from repro.core.aio.relay import Histogram


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


async def start_deployment(**outer_kwargs):
    outer = await AioOuterServer(**outer_kwargs).start()
    inner = await AioInnerServer().start()
    client = AioProxyClient(
        outer_addr=("127.0.0.1", outer.control_port),
        inner_addr=("127.0.0.1", inner.nxport),
    )
    return outer, inner, client


async def echo_chain(listener):
    """Serve accepted chains echo-style until cancelled."""
    async def serve(r, w):
        while True:
            data = await r.read(65536)
            if not data:
                break
            w.write(data)
            await w.drain()
        w.close()

    while True:
        r, w = await listener.accept()
        asyncio.ensure_future(serve(r, w))


def test_concurrent_chains_share_one_nxport_connection():
    """The acceptance criterion: N chains, one outer→inner connection."""

    async def main():
        outer, inner, client = await start_deployment()
        try:
            listener = await client.bind()
            echo_task = asyncio.ensure_future(echo_chain(listener))
            host, port = listener.proxy_addr

            async def one_peer(i):
                r, w = await asyncio.open_connection(host, port)
                msg = bytes([i]) * (1024 * (i + 1))
                w.write(msg)
                await w.drain()
                w.write_eof()
                got = await r.read(-1)
                w.close()
                return got == msg

            results = await asyncio.gather(*[one_peer(i) for i in range(16)])
            assert all(results)
            # The tentpole claim: 16 chains, ONE pinhole connection.
            assert inner.stats.nxport_connections == 1
            assert inner.stats.passive_chains == 16
            assert outer.stats.passive_chains == 16
            echo_task.cancel()
            await listener.close()
        finally:
            await outer.stop()
            await inner.stop()

    run(main())


def test_interleaved_frames_preserve_per_chain_ordering():
    """Concurrent chains write patterned streams; each must arrive
    intact and in order despite frame interleaving on the one link."""

    async def main():
        outer, inner, client = await start_deployment()
        try:
            listener = await client.bind()
            echo_task = asyncio.ensure_future(echo_chain(listener))
            host, port = listener.proxy_addr

            async def one_peer(i):
                r, w = await asyncio.open_connection(host, port)
                # 64 writes of a per-chain pattern, trickled so the mux
                # genuinely interleaves chains on the wire.
                pattern = bytes(range(i, i + 16)) * 256  # 4 KB
                received = bytearray()

                async def reader_side():
                    while len(received) < 64 * len(pattern):
                        data = await r.read(65536)
                        assert data, "stream ended early"
                        received.extend(data)

                rt = asyncio.ensure_future(reader_side())
                for _ in range(64):
                    w.write(pattern)
                    await w.drain()
                    await asyncio.sleep(0)
                await rt
                w.close()
                assert bytes(received) == pattern * 64

            await asyncio.gather(*[one_peer(i) for i in range(8)])
            assert inner.stats.nxport_connections == 1
            echo_task.cancel()
            await listener.close()
        finally:
            await outer.stop()
            await inner.stop()

    run(main())


def test_chain_reset_leaves_siblings_alive():
    """Aborting one peer's chain must not disturb the other chain on
    the same mux link."""

    async def main():
        outer, inner, client = await start_deployment()
        try:
            listener = await client.bind()
            echo_task = asyncio.ensure_future(echo_chain(listener))
            host, port = listener.proxy_addr

            # Chain A: long-lived echo conversation.
            ra, wa = await asyncio.open_connection(host, port)
            wa.write(b"before")
            await wa.drain()
            assert await ra.readexactly(6) == b"before"

            # Chain B: connect, start talking, die abruptly (RST).
            rb, wb = await asyncio.open_connection(host, port)
            wb.write(b"doomed")
            await wb.drain()
            await rb.readexactly(6)
            wb.transport.abort()
            await asyncio.sleep(0.1)

            # Chain A still works after B's teardown.
            wa.write(b"after")
            await wa.drain()
            assert await ra.readexactly(5) == b"after"
            wa.close()
            assert inner.stats.nxport_connections == 1
            echo_task.cancel()
            await listener.close()
        finally:
            await outer.stop()
            await inner.stop()

    run(main())


def test_link_drop_reconnects_and_reestablishes_chains():
    """Kill the nxport TCP link mid-flight: live chains die (as their
    real TCP connections would), the connector re-dials with backoff,
    and new chains establish over the fresh link."""

    async def main():
        outer, inner, client = await start_deployment()
        try:
            listener = await client.bind()
            echo_task = asyncio.ensure_future(echo_chain(listener))
            host, port = listener.proxy_addr

            r1, w1 = await asyncio.open_connection(host, port)
            w1.write(b"ping")
            await w1.drain()
            assert await r1.readexactly(4) == b"ping"
            assert inner.stats.nxport_connections == 1

            # Chaos: abort the mux link underneath the chain.
            link = outer.mux_link("127.0.0.1", inner.nxport)
            assert link.connects == 1
            await link.drop_link()
            # The dangling chain observes EOF/reset promptly.
            assert await r1.read(4096) == b""
            w1.close()

            # A new chain heals through the reconnected link.
            r2, w2 = await asyncio.open_connection(host, port)
            w2.write(b"recovered")
            await w2.drain()
            assert await r2.readexactly(9) == b"recovered"
            w2.close()
            assert link.connects == 2
            assert outer.stats.mux_reconnects == 1
            assert inner.stats.nxport_connections == 2
            echo_task.cancel()
            await listener.close()
        finally:
            await outer.stop()
            await inner.stop()

    run(main())


def test_legacy_mode_opens_one_connection_per_chain():
    """mux=False is the seed behaviour: the ablation baseline."""

    async def main():
        outer, inner, client = await start_deployment(mux=False)
        try:
            listener = await client.bind()
            echo_task = asyncio.ensure_future(echo_chain(listener))
            host, port = listener.proxy_addr
            for i in range(3):
                r, w = await asyncio.open_connection(host, port)
                w.write(b"x")
                await w.drain()
                assert await r.readexactly(1) == b"x"
                w.close()
            await asyncio.sleep(0.05)
            assert inner.stats.nxport_connections == 3
            echo_task.cancel()
            await listener.close()
        finally:
            await outer.stop()
            await inner.stop()

    run(main())


def test_open_to_dead_client_port_fails_chain_only():
    """An OPEN toward a dead client listener yields OPEN_ERR for that
    chain; the link survives and serves the next chain."""

    async def main():
        inner = await AioInnerServer().start()
        stats_outer = AioOuterServer().stats  # standalone stats holder
        link = MuxConnector("127.0.0.1", inner.nxport, stats_outer)
        try:
            with pytest.raises((ChainReset, ConnectionError)):
                await link.open_chain("127.0.0.1", 1)  # nothing listens
            assert inner.stats.failed_requests == 1

            # Same link still opens good chains.
            srv = await asyncio.start_server(
                lambda r, w: w.close(), "127.0.0.1", 0
            )
            good_port = srv.sockets[0].getsockname()[1]
            chain, session = await link.open_chain("127.0.0.1", good_port)
            assert session.alive
            chain.send_rst()
            srv.close()
            assert inner.stats.nxport_connections == 1
        finally:
            await link.stop()
            await inner.stop()

    run(main())


def test_stats_snapshot_and_histograms():
    async def main():
        outer, inner, client = await start_deployment()
        try:
            listener = await client.bind()
            echo_task = asyncio.ensure_future(echo_chain(listener))
            host, port = listener.proxy_addr
            r, w = await asyncio.open_connection(host, port)
            payload = b"z" * 100_000
            w.write(payload)
            await w.drain()
            w.write_eof()
            assert await r.read(-1) == payload
            w.close()
            await asyncio.sleep(0.05)
            snap = outer.stats.snapshot()
            assert snap["passive_chains"] == 1
            assert snap["bytes_relayed"] >= 2 * len(payload)
            assert snap["mux_frames"] > 0
            assert sum(snap["chunk_bytes_hist"].values()) == snap["chunks_relayed"]
            # Chain completed: its byte total and setup latency recorded.
            assert sum(snap["chain_bytes_hist"].values()) == 1
            assert sum(snap["chain_setup_us_hist"].values()) == 1
            echo_task.cancel()
            await listener.close()
        finally:
            await outer.stop()
            await inner.stop()

    run(main())


def test_histogram_bucketing():
    h = Histogram()
    for v in (0, 1, 2, 3, 4, 1023, 1024, 10**12):
        h.record(v)
    assert h.total == 8
    d = h.to_dict()
    assert d["<=0"] == 1          # value 0
    assert d["<=1"] == 1          # value 1
    assert d["<=3"] == 2          # values 2, 3
    assert d["<=7"] == 1          # value 4
    assert d["<=1023"] == 1       # value 1023
    assert d["<=2047"] == 1       # value 1024
    assert d[f"<={(1 << 31) - 1}"] == 1  # 10**12 clamps to the last bucket


def test_frame_type_names_complete():
    for value, name in FrameType.NAMES.items():
        assert getattr(FrameType, name) == value
