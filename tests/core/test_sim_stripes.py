"""Striped bulk transfers on the simulated plane: the sim mirror of
:mod:`repro.core.aio.streams` (same block/offset wire structure, same
restart-marker recovery), plus snapshot-schema parity between the two
planes' relay stats.
"""

import pytest

from repro.core import FrameError, RelayConfig, StripeBlock
from repro.core.frames import send_striped
from repro.core.outer import RelayStats
from repro.core.aio.relay import AioRelayStats

from .conftest import Deployment


def test_striped_transfer_inside_to_inside(dep):
    """k=4 parallel relay chains carry one striped transfer between
    two inside hosts; both reports agree and every chain saw traffic."""
    out = {}
    total = 1_000_000

    def listener_side():
        listener = yield from dep.client(dep.pa).bind()

        def sender_side():
            out["send"] = yield from dep.client(dep.innerh).send_striped(
                listener.proxy_addr, total, streams=4, block_bytes=64 * 1024
            )

        dep.sim.process(sender_side())
        out["recv"] = yield from listener.recv_striped()
        listener.close()

    dep.sim.process(listener_side())
    dep.sim.run()
    assert out["send"]["bytes_sent"] == total
    assert out["send"]["requeued_blocks"] == 0
    assert out["recv"]["total_bytes"] == total
    assert out["recv"]["streams_seen"] == 4
    assert out["recv"]["duplicate_blocks"] == 0
    # Each stream is its own passive chain through both relays.
    assert dep.outer.stats.passive_chains == 4
    assert dep.inner.stats.passive_chains == 4


def test_striped_transfer_empty_and_single_block(dep):
    out = {}

    def listener_side():
        listener = yield from dep.client(dep.pa).bind()

        def sender_side():
            out["s0"] = yield from dep.client(dep.innerh).send_striped(
                listener.proxy_addr, 0, streams=2
            )

        dep.sim.process(sender_side())
        out["r0"] = yield from listener.recv_striped()

        def sender_one():
            out["s1"] = yield from dep.client(dep.innerh).send_striped(
                listener.proxy_addr, 1, streams=3
            )

        dep.sim.process(sender_one())
        out["r1"] = yield from listener.recv_striped()
        listener.close()

    dep.sim.process(listener_side())
    dep.sim.run()
    assert out["s0"]["bytes_sent"] == 0
    assert out["r0"]["total_bytes"] == 0
    assert out["s1"]["blocks_sent"] == 1
    assert out["r1"]["total_bytes"] == 1


def test_striped_transfer_survives_stream_death(dep):
    """Close one of the k connections mid-transfer: the dead stream's
    unacknowledged blocks ride the siblings from the restart marker —
    no restart from offset 0, dedupe absorbs any overlap."""
    out = {}
    total = 2_000_000
    block = 32 * 1024

    def listener_side():
        listener = yield from dep.client(dep.pa).bind()
        client = dep.client(dep.innerh)

        def sender_side():
            conns = []
            for _ in range(4):
                fc = yield from client.connect(listener.proxy_addr)
                conns.append(fc)

            def killer():
                # Mid-transfer (well before the ~0.6 s the transfer
                # needs over the 6.9 MB/s LAN), kill stream 1.
                yield dep.sim.timeout(0.05)
                conns[1].close()

            dep.sim.process(killer())
            out["send"] = yield from send_striped(conns, total, block_bytes=block)
            for fc in conns:
                fc.close()

        dep.sim.process(sender_side())
        out["recv"] = yield from listener.recv_striped()
        listener.close()

    dep.sim.process(listener_side())
    dep.sim.run()
    assert out["recv"]["total_bytes"] == total
    assert out["send"]["dead_streams"] == 1
    assert out["send"]["requeued_blocks"] >= 1
    # Bounded retransmission: far less than a restart from zero.
    assert out["send"]["bytes_sent"] < 1.5 * total


def test_striped_transfer_all_streams_dead_raises(dep):
    out = {}

    def listener_side():
        listener = yield from dep.client(dep.pa).bind()
        client = dep.client(dep.innerh)

        def sender_side():
            conns = []
            for _ in range(2):
                fc = yield from client.connect(listener.proxy_addr)
                conns.append(fc)

            def killer():
                yield dep.sim.timeout(0.05)
                for fc in conns:
                    fc.close()

            dep.sim.process(killer())
            try:
                yield from send_striped(conns, 2_000_000, block_bytes=32 * 1024)
            except FrameError:
                out["raised"] = True

        dep.sim.process(sender_side())
        # Drain until the sink's streams die too.
        try:
            yield from listener.recv_striped()
        except FrameError:
            out["sink_raised"] = True
        listener.close()

    dep.sim.process(listener_side())
    dep.sim.run()
    assert out.get("raised")
    assert out.get("sink_raised")


def test_stripe_block_wire_sizes():
    hello = StripeBlock("x", 0, "hello", total=100, streams=4, block=10)
    blk = StripeBlock("x", 0, "block", offset=0, length=500, total=100)
    mark = StripeBlock("x", 0, "mark", offset=50)
    assert hello.wire_bytes == 64
    assert blk.wire_bytes == 13 + 500
    assert mark.wire_bytes == 13


def test_adaptive_relay_accounts_coalesced_flushes():
    """With adaptive chunking on, multi-frame wake-ups land in the
    coalesce counters — the sim analogue of scatter-gather flushes."""
    dep = Deployment(
        RelayConfig(adaptive_chunking=True, max_chunk_bytes=65536)
    )
    out = {}

    def listener_side():
        listener = yield from dep.client(dep.pa).bind()

        def sender_side():
            out["send"] = yield from dep.client(dep.innerh).send_striped(
                listener.proxy_addr, 500_000, streams=2, block_bytes=32 * 1024
            )

        dep.sim.process(sender_side())
        out["recv"] = yield from listener.recv_striped()
        listener.close()

    dep.sim.process(listener_side())
    dep.sim.run()
    assert out["recv"]["total_bytes"] == 500_000
    snap = dep.outer.stats.snapshot()
    assert snap["coalesced_flushes"] > 0
    assert sum(snap["coalesce_bytes_hist"].values()) == snap["coalesced_flushes"]


def test_relay_stats_schema_parity_between_planes():
    """The sim and live relay snapshots must share one key schema so
    BENCH JSON from either plane is directly comparable."""
    sim_keys = set(RelayStats().snapshot())
    live_keys = set(AioRelayStats().snapshot())
    assert sim_keys == live_keys
