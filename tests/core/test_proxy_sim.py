"""Functional tests of the simulated Nexus Proxy (Figures 3 and 4)."""

import pytest

from repro.core import FramedConnection, NXProxyError
from repro.simnet import FirewallBlocked


def test_direct_inbound_is_blocked(dep):
    """The problem statement: without the proxy, outside cannot reach in."""

    def server():
        dep.pa.listen(9000)
        yield dep.sim.timeout(0)

    def client():
        with pytest.raises(FirewallBlocked):
            yield from dep.pb.connect(("pa", 9000))
        return True

    dep.sim.process(server())
    p = dep.sim.process(client())
    dep.sim.run()
    assert p.value is True


def test_active_open_relays_through_outer(dep):
    """Fig. 3: PA (inside) reaches PB (outside) via the outer server."""
    out = {}

    def pb_server():
        ls = dep.pb.listen(9000)
        conn = yield ls.accept()
        fc = FramedConnection(conn, dep.config.chunk_bytes)
        payload, n = yield from fc.recv()
        out["pb"] = (payload, n)
        yield fc.send("pong", nbytes=100)

    def pa_client():
        fc = yield from dep.client().connect(("pb", 9000))
        yield fc.send("ping", nbytes=4096)
        payload, n = yield from fc.recv()
        out["pa"] = (payload, n)

    dep.sim.process(pb_server())
    dep.sim.process(pa_client())
    dep.sim.run()
    assert out["pb"] == ("ping", 4096)
    assert out["pa"] == ("pong", 100)
    assert dep.outer.stats.active_connects == 1
    assert dep.outer.stats.bytes_relayed >= 4196
    # The active chain does not involve the inner server.
    assert dep.inner.stats.frames_relayed == 0


def test_passive_open_chains_through_both_servers(dep):
    """Fig. 4: a peer reaches a firewalled listener via outer + inner."""
    out = {}

    def pa_side():
        listener = yield from dep.client().bind()
        out["proxy_addr"] = listener.proxy_addr
        # Announced address is on the outer server, not on pa.
        assert listener.proxy_addr.host == "outerh"
        assert listener.local_addr.host == "pa"

        def pb_side():
            conn = yield from dep.pb.connect(out["proxy_addr"])
            fc = FramedConnection(conn, dep.config.chunk_bytes)
            yield fc.send("from-outside", nbytes=2048)
            payload, _ = yield from fc.recv()
            out["pb"] = payload

        dep.sim.process(pb_side())
        fc = yield from listener.accept()
        payload, n = yield from fc.recv()
        out["pa"] = (payload, n)
        yield fc.send("ack", nbytes=64)

    dep.sim.process(pa_side())
    dep.sim.run()
    assert out["pa"] == ("from-outside", 2048)
    assert out["pb"] == "ack"
    assert dep.outer.stats.passive_binds == 1
    assert dep.outer.stats.passive_chains == 1
    assert dep.inner.stats.passive_chains == 1
    # Data flowed through both relays.
    assert dep.inner.stats.frames_relayed > 0


def test_inner_to_inner_roundtrip(dep):
    """Both endpoints inside (the RWCP-Sun ↔ COMPaS case): passive
    chains carry traffic out through the outer server and back in."""
    out = {}

    def listener_side():
        listener = yield from dep.client(dep.pa).bind()

        def connector_side():
            # The second inside host connects actively via the proxy.
            fc = yield from dep.client(dep.innerh).connect(listener.proxy_addr)
            yield fc.send("inside-to-inside", nbytes=1024)
            p, _ = yield from fc.recv()
            out["connector"] = p

        dep.sim.process(connector_side())
        fc = yield from listener.accept()
        p, _ = yield from fc.recv()
        out["listener"] = p
        yield fc.send("back", nbytes=64)

    dep.sim.process(listener_side())
    dep.sim.run()
    assert out == {"listener": "inside-to-inside", "connector": "back"}


def test_connect_to_dead_destination_reports_error(dep):
    def pa_client():
        with pytest.raises(NXProxyError, match="refused"):
            yield from dep.client().connect(("pb", 404))
        return True

    p = dep.sim.process(pa_client())
    dep.sim.run()
    assert p.value is True
    assert dep.outer.stats.failed_requests == 1


def test_bind_requires_inner_server_address(dep):
    from repro.core import NexusProxyClient

    def pa_client():
        client = NexusProxyClient(dep.pa, outer_addr=dep.outer.control_addr)
        with pytest.raises(NXProxyError, match="inner server"):
            yield from client.bind()
        return True

    p = dep.sim.process(pa_client())
    dep.sim.run()
    assert p.value is True


def test_unconfigured_client_falls_back_to_direct(dep):
    """'Otherwise, the original communication is done.' (§3)"""
    from repro.core import NexusProxyClient

    out = {}

    def pb_server():
        ls = dep.pb.listen(9000)
        conn = yield ls.accept()
        fc = FramedConnection(conn, 1024)
        p, _ = yield from fc.recv()
        out["pb"] = p
        out["peer_host"] = conn.remote_addr.host

    def pa_client():
        client = NexusProxyClient(dep.pa)  # no env vars
        assert not client.enabled
        fc = yield from client.connect(("pb", 9000))
        yield fc.send("direct", nbytes=64)

    dep.sim.process(pb_server())
    dep.sim.process(pa_client())
    dep.sim.run()
    assert out["pb"] == "direct"
    # Direct: PB sees PA itself, not the outer server.
    assert out["peer_host"] == "pa"


def test_unconfigured_bind_is_direct(dep):
    from repro.core import NexusProxyClient

    out = {}

    def pa_side():
        client = NexusProxyClient(dep.pa)
        listener = yield from client.bind()
        assert listener.proxy_addr.host == "pa"

        def inside_peer():
            conn = yield from dep.innerh.connect(listener.proxy_addr)
            fc = FramedConnection(conn, 1024)
            yield fc.send("lan-direct", nbytes=64)

        dep.sim.process(inside_peer())
        fc = yield from listener.accept()
        p, _ = yield from fc.recv()
        out["got"] = p
        listener.close()

    dep.sim.process(pa_side())
    dep.sim.run()
    assert out["got"] == "lan-direct"


def test_closing_listener_releases_public_port(dep):
    out = {}

    def pa_side():
        listener = yield from dep.client().bind()
        public = listener.proxy_addr
        assert dep.outerh.is_listening(public.port)
        listener.close()
        # Give the FIN time to reach the outer server.
        yield dep.sim.timeout(1.0)
        out["still_listening"] = dep.outerh.is_listening(public.port)
        out["registrations"] = len(dep.outer.bind_registrations)

    dep.sim.process(pa_side())
    dep.sim.run()
    assert out["still_listening"] is False
    assert out["registrations"] == 0


def test_two_binds_get_distinct_public_ports(dep):
    out = {}

    def pa_side():
        l1 = yield from dep.client().bind()
        l2 = yield from dep.client().bind()
        out["ports"] = (l1.proxy_addr.port, l2.proxy_addr.port)

    dep.sim.process(pa_side())
    dep.sim.run()
    p1, p2 = out["ports"]
    assert p1 != p2
    assert p1 >= dep.config.public_port_base


def test_peer_close_propagates_through_chain(dep):
    out = {}

    def pb_server():
        ls = dep.pb.listen(9000)
        conn = yield ls.accept()
        fc = FramedConnection(conn, 1024)
        p, _ = yield from fc.recv()
        conn.close()

    def pa_client():
        from repro.simnet import ConnectionReset

        fc = yield from dep.client().connect(("pb", 9000))
        yield fc.send("bye", nbytes=64)
        with pytest.raises(ConnectionReset):
            yield from fc.recv()
        out["reset_seen"] = True

    dep.sim.process(pb_server())
    dep.sim.process(pa_client())
    dep.sim.run()
    assert out["reset_seen"] is True


def test_outer_rejects_garbage_request(dep):
    out = {}

    def rogue():
        conn = yield from dep.pa.connect(dep.outer.control_addr)
        yield conn.send("what is this", nbytes=64)
        msg = yield conn.recv()
        out["reply"] = msg.payload

    dep.sim.process(rogue())
    dep.sim.run()
    assert out["reply"].ok is False
    assert "bad request" in out["reply"].error


def test_inner_rejects_garbage_request(dep):
    out = {}

    def rogue():
        # The outer host itself speaks garbage to the inner server.
        conn = yield from dep.outerh.connect(dep.inner.addr)
        yield conn.send("nonsense", nbytes=64)
        msg = yield conn.recv()
        out["reply"] = msg.payload

    dep.sim.process(rogue())
    dep.sim.run()
    assert out["reply"].ok is False


def test_inner_unreachable_from_arbitrary_outside_host(dep):
    """The nxport pinhole is pinned to the outer server's address."""

    def attacker():
        with pytest.raises(FirewallBlocked):
            yield from dep.pb.connect(dep.inner.addr)
        return True

    p = dep.sim.process(attacker())
    dep.sim.run()
    assert p.value is True


def test_double_start_rejected(dep):
    from repro.simnet import SocketError

    with pytest.raises(SocketError):
        dep.outer.start()
    with pytest.raises(SocketError):
        dep.inner.start()


def test_stop_closes_listeners(dep):
    dep.outer.stop()
    dep.inner.stop()
    assert not dep.outer.running
    assert not dep.inner.running


def test_many_concurrent_relayed_connections(dep):
    """Several streams share the relay daemons without interference."""
    N = 6
    results = {}

    def pb_server():
        ls = dep.pb.listen(9000)
        for _ in range(N):
            conn = yield ls.accept()
            dep.sim.process(echo(conn))

    def echo(conn):
        fc = FramedConnection(conn, 1024)
        payload, n = yield from fc.recv()
        yield fc.send(payload, nbytes=n)

    def pa_client(i):
        fc = yield from dep.client().connect(("pb", 9000))
        yield fc.send(f"stream-{i}", nbytes=512 * (i + 1))
        payload, n = yield from fc.recv()
        results[i] = (payload, n)

    dep.sim.process(pb_server())
    for i in range(N):
        dep.sim.process(pa_client(i))
    dep.sim.run()
    assert results == {i: (f"stream-{i}", 512 * (i + 1)) for i in range(N)}
