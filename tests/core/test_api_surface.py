"""Table 1: the library functions exist under their paper names."""

from repro.core import NexusProxyClient, ProxiedListener
from repro.core.config import DEFAULT_RELAY_CONFIG, RelayConfig
import pytest


def test_table1_function_names():
    # Table 1 lists NXProxyConnect, NXProxyBind, NXProxyAccept.
    assert callable(NexusProxyClient.NXProxyConnect)
    assert callable(NexusProxyClient.NXProxyBind)
    assert callable(ProxiedListener.NXProxyAccept)


def test_table1_aliases_are_the_canonical_methods():
    assert NexusProxyClient.NXProxyConnect is NexusProxyClient.connect
    assert NexusProxyClient.NXProxyBind is NexusProxyClient.bind
    assert ProxiedListener.NXProxyAccept is ProxiedListener.accept


def test_relay_config_defaults_valid():
    DEFAULT_RELAY_CONFIG.validate()
    assert DEFAULT_RELAY_CONFIG.nxport != DEFAULT_RELAY_CONFIG.control_port


def test_relay_config_overrides():
    cfg = DEFAULT_RELAY_CONFIG.with_overrides(chunk_bytes=4096)
    assert cfg.chunk_bytes == 4096
    assert cfg.nxport == DEFAULT_RELAY_CONFIG.nxport


def test_relay_config_validation_errors():
    with pytest.raises(ValueError):
        RelayConfig(chunk_bytes=0).validate()
    with pytest.raises(ValueError):
        RelayConfig(per_chunk_cpu=-1).validate()
    with pytest.raises(ValueError):
        RelayConfig(control_port=7000, nxport=7000).validate()
    with pytest.raises(ValueError):
        RelayConfig(control_port=0).validate()


def test_chunk_helpers():
    cfg = RelayConfig(chunk_bytes=1000, per_chunk_cpu=1e-3, per_byte_cpu=1e-6)
    assert cfg.chunks_for(1) == 1
    assert cfg.chunks_for(1000) == 1
    assert cfg.chunks_for(1001) == 2
    assert cfg.chunk_cost(500) == pytest.approx(1.5e-3)
