"""Analytic chain model, and its agreement with the simulation."""

import pytest

from repro.core import ChainModel, FramedConnection, RelayStage, WireLeg
from repro.core.frames import FRAME_HEADER_BYTES
from repro.simnet import NetConfig, Network


def test_one_way_single_wire_leg():
    m = ChainModel(stages=[WireLeg(latency=0.010, bandwidth=1000.0)], chunk_bytes=100)
    # 100 bytes: 1 chunk, 10 ms latency + 0.1 s serialization.
    assert m.one_way_time(100) == pytest.approx(0.110)
    # 300 bytes: 3 chunks pipelined on one stage = 0.3 s + latency.
    assert m.one_way_time(300) == pytest.approx(0.310)


def test_relay_dominates_when_slow():
    m = ChainModel(
        stages=[
            WireLeg(latency=0.0, bandwidth=1e9),
            RelayStage(per_chunk_cpu=0.010),
            WireLeg(latency=0.0, bandwidth=1e9),
        ],
        chunk_bytes=1000,
    )
    # 10 chunks through a 10 ms/chunk relay ≈ 100 ms.
    assert m.one_way_time(10_000) == pytest.approx(0.100, rel=0.01)
    assert m.asymptotic_bandwidth() == pytest.approx(1000 / 0.010, rel=0.01)


def test_relay_cpu_speed_scaling():
    fast = RelayStage(per_chunk_cpu=0.010, cpu_speed=2.0)
    assert fast.stage_time(1000) == pytest.approx(0.005)


def test_bandwidth_monotone_in_message_size():
    m = ChainModel(
        stages=[WireLeg(latency=5e-3, bandwidth=1e6), RelayStage(per_chunk_cpu=1e-3)],
        chunk_bytes=1024,
    )
    sizes = [1024, 4096, 65536, 1 << 20]
    bws = [m.bandwidth(s) for s in sizes]
    assert bws == sorted(bws)
    # And converges below the asymptote.
    assert bws[-1] <= m.asymptotic_bandwidth()


def test_relay_count():
    m = ChainModel(
        stages=[WireLeg(0, 1e6), RelayStage(1e-3), WireLeg(0, 1e6), RelayStage(1e-3),
                WireLeg(0, 1e6)],
        chunk_bytes=1024,
    )
    assert m.relay_count == 2


def test_invalid_size_rejected():
    m = ChainModel(stages=[WireLeg(0, 1e6)], chunk_bytes=1024)
    with pytest.raises(ValueError):
        m.one_way_time(0)


def test_ping_pong_latency_is_small_message_time():
    m = ChainModel(stages=[WireLeg(latency=2e-3, bandwidth=1e6)], chunk_bytes=1024)
    assert m.ping_pong_latency() == m.one_way_time(16)


@pytest.mark.parametrize("nbytes", [512, 4096, 65536])
def test_model_matches_simulation_single_link(nbytes):
    """The closed form and the DES agree on a plain framed link."""
    latency, bandwidth, chunk = 2e-3, 0.5e6, 1024
    cfg = NetConfig(
        connect_overhead=0.0, send_overhead=0.0,
        per_segment_cpu=0.0, recv_overhead=0.0, mss=chunk + FRAME_HEADER_BYTES,
    )
    net = Network(config=cfg)
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, latency, bandwidth)
    out = {}

    def server():
        ls = b.listen(1)
        conn = yield ls.accept()
        fc = FramedConnection(conn, chunk)
        t0 = net.sim.now
        out["t0"] = t0
        _, n = yield from fc.recv()
        out["elapsed"] = net.sim.now - t0

    def client():
        conn = yield from a.connect(("b", 1))
        fc = FramedConnection(conn, chunk)
        yield fc.send(b"", nbytes=nbytes)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()

    model = ChainModel(
        stages=[WireLeg(latency=latency, bandwidth=bandwidth)],
        chunk_bytes=chunk,
        header_bytes=FRAME_HEADER_BYTES,
    )
    predicted = model.one_way_time(nbytes)
    # Within 5%: the DES adds only event-granularity effects.
    assert out["elapsed"] == pytest.approx(predicted, rel=0.05)
