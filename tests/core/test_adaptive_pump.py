"""Adaptive chunking: live-pump policy units and the simulated
fixed-vs-adaptive ablation.

The live side pins the AdaptiveChunker growth/shrink law and the
drain-only-on-high-water discipline; the simulated side shows the
Table 2 regeneration knob actually moves: the same transfer through
the same relay finishes faster (less occupying relay CPU) with
``adaptive_chunking=True``, without breaking ordering or the
drain-aware close.
"""

import asyncio

import pytest

from repro.core import FramedConnection, RelayConfig
from repro.core.aio.pump import (
    MAX_CHUNK,
    MIN_CHUNK,
    AdaptiveChunker,
    pump,
    writer_backpressured,
)
from repro.simnet import ConnectionReset


# -- live policy units -------------------------------------------------------


def test_chunker_grows_on_full_reads():
    c = AdaptiveChunker()
    assert c.size == MIN_CHUNK
    sizes = []
    for _ in range(10):
        sizes.append(c.size)
        c.on_read(c.size)  # every read fills the budget
    assert sizes[0] == MIN_CHUNK
    assert c.size == MAX_CHUNK
    assert all(b == min(2 * a, MAX_CHUNK) for a, b in zip(sizes, sizes[1:]))


def test_chunker_does_not_grow_on_short_reads():
    c = AdaptiveChunker()
    c.on_read(c.size - 1)
    assert c.size == MIN_CHUNK


def test_chunker_shrinks_on_backpressure():
    c = AdaptiveChunker()
    for _ in range(10):
        c.on_read(c.size)
    assert c.size == MAX_CHUNK
    c.on_backpressure()
    assert c.size == MAX_CHUNK // 2
    for _ in range(20):
        c.on_backpressure()
    assert c.size == MIN_CHUNK  # clamped


def test_chunker_rejects_bad_bounds():
    with pytest.raises(ValueError):
        AdaptiveChunker(0, 1024)
    with pytest.raises(ValueError):
        AdaptiveChunker(4096, 1024)


def test_live_pump_moves_bytes_and_half_closes():
    async def main():
        done = asyncio.Event()
        received = bytearray()

        async def sink(reader, writer):
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                received.extend(data)
            done.set()
            writer.close()

        srv = await asyncio.start_server(sink, "127.0.0.1", 0)
        port = srv.sockets[0].getsockname()[1]

        payload = bytes(range(256)) * 2048  # 512 KiB
        src_r = asyncio.StreamReader()
        src_r.feed_data(payload)
        src_r.feed_eof()
        _, dst_w = await asyncio.open_connection("127.0.0.1", port)
        chunks = []
        moved = await pump(src_r, dst_w, on_chunk=chunks.append)
        await asyncio.wait_for(done.wait(), 5)
        assert moved == len(payload)
        assert bytes(received) == payload
        assert sum(chunks) == len(payload)
        dst_w.close()
        srv.close()
        await srv.wait_closed()

    asyncio.run(asyncio.wait_for(main(), 20))


def test_fixed_pump_reads_fixed_chunks():
    async def main():
        src_r = asyncio.StreamReader()
        src_r.feed_data(b"x" * 20_000)
        src_r.feed_eof()

        sink_r = asyncio.StreamReader()

        class NullWriter:
            """Minimal StreamWriter stand-in recording write sizes."""

            def __init__(self):
                self.sizes = []
                self.transport = None

            def write(self, data):
                self.sizes.append(len(data))

            async def drain(self):
                pass

            def write_eof(self):
                pass

        w = NullWriter()
        moved = await pump(src_r, w, fixed_chunk=4096)
        assert moved == 20_000
        assert all(s <= 4096 for s in w.sizes)
        assert w.sizes.count(4096) >= 4

    asyncio.run(main())


def test_writer_backpressured_without_flow_control_introspection():
    class NoIntrospection:
        transport = object()  # no get_write_buffer_limits

    # Fallback must be conservative: claim backpressure → always drain.
    assert writer_backpressured(NoIntrospection()) is True


# -- simulated ablation ------------------------------------------------------


def make_dep(config=None):
    from tests.core.conftest import Deployment

    return Deployment(config) if config is not None else Deployment()


class _LanDeployment:
    """A proxied all-LAN topology (the Table 2 'proxied LAN' shape):
    every link fast, so the relay's per-chunk CPU is the bottleneck —
    the regime adaptive chunking is for.  (The conftest Deployment's
    1.5 Mbps WAN hides the relay entirely, which is the paper's own
    point about WAN overhead being negligible.)"""

    def __init__(self, config: RelayConfig) -> None:
        from repro.core import InnerServer, NexusProxyClient, OuterServer
        from repro.simnet import Firewall, Network

        self.config = config
        self.net = Network()
        self.rwcp = self.net.add_site(
            "rwcp", firewall=Firewall.typical(reject=True)
        )
        self.pa = self.net.add_host("pa", site=self.rwcp)
        self.innerh = self.net.add_host("innerh", site=self.rwcp)
        self.lan = self.net.add_router("lan", site=self.rwcp)
        self.outerh = self.net.add_host("outerh", cores=2)
        self.pb = self.net.add_host("pb")
        for a, b in ((self.pa, self.lan), (self.innerh, self.lan),
                     (self.lan, self.outerh), (self.outerh, self.pb)):
            self.net.link(a, b, 0.1e-3, 12.5e6)  # 100 Mbit everywhere
        self.outer = OuterServer(self.outerh, config)
        self.inner = InnerServer(self.innerh, config)
        self.inner.open_firewall_pinhole("outerh")
        self.outer.start()
        self.inner.start()
        self._client_cls = NexusProxyClient

    @property
    def sim(self):
        return self.net.sim

    def client(self):
        return self._client_cls(
            self.pa,
            outer_addr=self.outer.control_addr,
            inner_addr=self.inner.addr,
            config=self.config,
        )


def _one_way_transfer_time(config: RelayConfig, nbytes: int) -> float:
    """Sim time for one client→server message through the relay."""
    dep = _LanDeployment(config)
    t = {}

    def pb_server():
        ls = dep.pb.listen(9000)
        conn = yield ls.accept()
        framed = FramedConnection(conn, dep.config.chunk_bytes)
        yield from framed.recv()
        t["done"] = dep.sim.now

    def pa_client():
        framed = yield from dep.client().connect(("pb", 9000))
        yield framed.send("bulk", nbytes=nbytes)
        framed.close()

    dep.sim.process(pb_server())
    dep.sim.process(pa_client())
    dep.sim.run()
    return t["done"]


def test_adaptive_chunking_cuts_relay_cpu_time():
    fixed = _one_way_transfer_time(RelayConfig(), 512 * 1024)
    adaptive = _one_way_transfer_time(
        RelayConfig(adaptive_chunking=True), 512 * 1024
    )
    # 512 KiB in 1 KiB chunks is 512 per-chunk CPU charges at 3 ms
    # each; batching must reclaim most of them.
    assert adaptive < fixed * 0.7, (fixed, adaptive)


def test_adaptive_chunking_preserves_framing_and_order():
    dep = make_dep(RelayConfig(adaptive_chunking=True))
    out = {}

    def pb_server():
        ls = dep.pb.listen(9000)
        conn = yield ls.accept()
        framed = FramedConnection(conn, dep.config.chunk_bytes)
        got = []
        try:
            while True:
                payload, n = yield from framed.recv()
                got.append((payload, n))
        except ConnectionReset:
            out["got"] = got

    def pa_client():
        framed = yield from dep.client().connect(("pb", 9000))
        for i in range(8):
            yield framed.send(i, nbytes=5000)
        framed.close()

    dep.sim.process(pb_server())
    dep.sim.process(pa_client())
    dep.sim.run()
    assert out["got"] == [(i, 5000) for i in range(8)]


def test_adaptive_chunking_keeps_drain_aware_close():
    """The write-then-close tail must survive batching too."""
    dep = make_dep(RelayConfig(adaptive_chunking=True, max_chunk_bytes=8192))
    out = {}

    def pb_server():
        ls = dep.pb.listen(9000)
        conn = yield ls.accept()
        framed = FramedConnection(conn, dep.config.chunk_bytes)
        got = []
        try:
            while True:
                payload, n = yield from framed.recv()
                got.append(payload)
        except ConnectionReset:
            out["got"] = got

    def pa_client():
        framed = yield from dep.client().connect(("pb", 9000))
        for i in range(5):
            yield framed.send(i, nbytes=3000)
        framed.close()

    dep.sim.process(pb_server())
    dep.sim.process(pa_client())
    dep.sim.run()
    assert out["got"] == list(range(5))


def test_config_validates_max_chunk_bytes():
    with pytest.raises(ValueError, match="max_chunk_bytes"):
        RelayConfig(chunk_bytes=4096, max_chunk_bytes=1024).validate()
    RelayConfig(adaptive_chunking=True).validate()  # defaults consistent
