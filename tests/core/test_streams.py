"""Tests for GridFTP-style parallel-stream striping
(:mod:`repro.core.aio.streams`): round trips over plain sockets and
full relay deployments, reassembly edge cases, and the acceptance
criterion — killing one stream mid-transfer must not restart the
transfer from offset 0.
"""

import asyncio
import hashlib

import pytest

from repro.core.aio import (
    AioInnerServer,
    AioOuterServer,
    AioProxyClient,
    StripeError,
    StripeSink,
    recv_striped,
    send_striped,
)
from repro.core.aio.streams import (
    _FRAME,
    _MARK,
    _RecvState,
    _SendState,
    _hello_line,
)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


def _payload(n: int) -> bytes:
    # Position-dependent pattern: any misplaced block changes the hash.
    return bytes((i * 31 + (i >> 8)) & 0xFF for i in range(n))


async def _loopback_pair():
    """A plain TCP rendezvous: connect() dials, accept() yields the
    server side of each dial — no relay in between."""
    queue: asyncio.Queue = asyncio.Queue()

    async def on_conn(r, w):
        await queue.put((r, w))

    server = await asyncio.start_server(on_conn, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]

    async def connect():
        return await asyncio.open_connection("127.0.0.1", port)

    return server, connect, queue.get


@pytest.mark.parametrize("streams,nbytes,block", [
    (1, 100_000, 16 * 1024),
    (4, 1_000_000, 32 * 1024),
    (4, 1_000_001, 32 * 1024),   # ragged tail block
    (8, 64 * 1024, 64 * 1024),   # more streams than blocks
])
def test_striped_roundtrip_loopback(streams, nbytes, block):
    async def main():
        server, connect, accept = await _loopback_pair()
        data = _payload(nbytes)
        recv_task = asyncio.ensure_future(recv_striped(accept))
        report = await send_striped(
            connect, data, streams=streams, block_bytes=block
        )
        got, rreport = await recv_task
        assert got == data
        assert report["bytes_sent"] == nbytes
        assert report["requeued_blocks"] == 0
        assert rreport["duplicate_blocks"] == 0
        assert rreport["streams_seen"] >= 1
        server.close()
        await server.wait_closed()

    run(main())


def test_striped_single_byte_payload():
    async def main():
        server, connect, accept = await _loopback_pair()
        recv_task = asyncio.ensure_future(recv_striped(accept))
        report = await send_striped(connect, b"\x42", streams=4)
        got, _ = await recv_task
        assert got == b"\x42"
        assert report["blocks_sent"] == 1
        server.close()
        await server.wait_closed()

    run(main())


def test_striped_empty_payload_completes():
    async def main():
        server, connect, accept = await _loopback_pair()
        recv_task = asyncio.ensure_future(recv_striped(accept))
        report = await send_striped(connect, b"", streams=4)
        got, rreport = await recv_task
        assert got == b""
        assert report["total_bytes"] == 0
        assert rreport["total_bytes"] == 0
        server.close()
        await server.wait_closed()

    run(main())


def test_sink_answers_redial_after_completion():
    """A stream that redials after its transfer already completed must
    be handed the final restart marker, not left waiting forever —
    this is exactly what a drained relay worker's aborted stream does
    when the abort races the last block's delivery."""

    async def main():
        server, connect, accept = await _loopback_pair()
        data = _payload(300_000)
        sink = StripeSink(accept)
        recv_task = asyncio.ensure_future(sink.recv())
        report = await send_striped(
            connect, data, streams=2, block_bytes=32 * 1024,
            xfer_id="deadbeef00000001",
        )
        got, _ = await recv_task
        assert got == data
        # Late redial for the now-finished transfer: the sink's
        # completed-transfer memory answers with watermark == total.
        r, w = await connect()
        w.write(_hello_line("deadbeef00000001", 0, 2, len(data),
                            32 * 1024))
        await w.drain()
        ftype, offset, _length = _FRAME.unpack(
            await r.readexactly(_FRAME.size)
        )
        assert ftype == _MARK
        assert offset == len(data)
        assert await r.read() == b""  # sink closes after answering
        w.close()
        assert report["total_bytes"] == len(data)
        await sink.close()
        server.close()
        await server.wait_closed()

    run(main())


def test_sink_serves_sequential_transfers():
    """One StripeSink over one listener carries back-to-back transfers
    (the sub-transfer wave pattern) without cross-talk."""

    async def main():
        server, connect, accept = await _loopback_pair()
        sink = StripeSink(accept)
        for round_no in range(3):
            data = _payload(150_000 + round_no)
            recv_task = asyncio.ensure_future(sink.recv())
            await send_striped(
                connect, data, streams=2, block_bytes=16 * 1024
            )
            got, rreport = await recv_task
            assert got == data
            assert rreport["total_bytes"] == len(data)
        await sink.close()
        server.close()
        await server.wait_closed()

    run(main())


def test_recv_state_out_of_order_blocks():
    """Blocks landing in any order reassemble exactly; the contiguous
    watermark only advances over filled prefixes."""

    async def main():
        hello = {"xfer": "t1", "total": 40, "block": 10}
        state = _RecvState(hello)
        data = _payload(40)
        assert state.accept_block(30, data[30:40])
        assert state.watermark == 0  # gap at 0: no advance
        assert state.accept_block(10, data[10:20])
        assert state.watermark == 0
        assert state.accept_block(0, data[0:10])
        assert state.watermark == 20  # 0 and 10 contiguous now
        assert not state.done.is_set()
        assert state.accept_block(20, data[20:30])
        assert state.watermark == 40
        assert state.done.is_set()
        assert bytes(state.buf) == data

    run(main())


def test_recv_state_duplicate_blocks_deduped():
    """A requeued block racing its original must not corrupt the
    buffer or double-count."""

    async def main():
        state = _RecvState({"xfer": "t2", "total": 20, "block": 10})
        data = _payload(20)
        assert state.accept_block(0, data[0:10])
        assert not state.accept_block(0, b"X" * 10)  # duplicate: dropped
        assert state.duplicate_blocks == 1
        assert state.accept_block(10, data[10:20])
        assert bytes(state.buf) == data
        assert state.done.is_set()

    run(main())


def test_send_state_duplicate_restart_marker_is_idempotent():
    """After a reconnect the sink re-sends its watermark; stale or
    repeated markers must never regress progress or requeue twice."""

    async def main():
        state = _SendState(memoryview(bytes(100)), 10)
        state.mark(50)
        assert state.watermark == 50
        state.mark(50)  # duplicate marker (rejoining stream)
        state.mark(30)  # stale marker from a slow stream
        assert state.watermark == 50
        # Requeue of a dead stream's inflight: acked blocks skipped,
        # repeated requeue doesn't duplicate pending entries.
        state.pending.clear()
        state.requeue({20, 40, 50, 60})
        assert sorted(state.pending) == [50, 60]
        state.requeue({50, 60})
        assert sorted(state.pending) == [50, 60]
        assert state.requeued_blocks == 2

    run(main())


def test_send_state_requeue_puts_gap_blocks_first():
    """A dead stream's blocks are the lowest unacked offsets, and the
    sink's watermark is gated on them.  They must come off the queue
    before the unsent backlog: appended at the tail they hide behind it,
    and once every surviving stream fills its window with post-gap
    blocks the transfer deadlocks (windows only drain when the watermark
    moves, and the watermark is stuck below the requeued gap)."""

    async def main():
        state = _SendState(memoryview(bytes(100)), 10)
        # Streams have popped 0..40; 50..90 remain unsent.
        for _ in range(5):
            state.pending.popleft()
        state.mark(10)  # sink acked the first block only
        # The stream holding 10..40 dies; its blocks come back in play.
        state.requeue({10, 20, 30, 40})
        assert list(state.pending) == [10, 20, 30, 40, 50, 60, 70, 80, 90]

    run(main())


async def _start_deployment():
    outer = await AioOuterServer().start()
    inner = await AioInnerServer().start()
    client = AioProxyClient(
        outer_addr=("127.0.0.1", outer.control_port),
        inner_addr=("127.0.0.1", inner.nxport),
    )
    return outer, inner, client


def test_striped_transfer_through_relay_deployment():
    """End-to-end: k relay chains through outer+inner carry one
    striped transfer; client API spelling (send_striped/recv_striped)."""

    async def main():
        outer, inner, client = await _start_deployment()
        try:
            listener = await client.bind()
            host, port = listener.proxy_addr
            data = _payload(2_000_000)
            recv_task = asyncio.ensure_future(listener.recv_striped())
            report = await client.send_striped(
                host, port, data, streams=4, block_bytes=64 * 1024
            )
            got, rreport = await recv_task
            assert hashlib.sha256(got).digest() == hashlib.sha256(data).digest()
            assert report["bytes_sent"] == len(data)
            assert rreport["streams_seen"] == 4
            await listener.close()
        finally:
            await outer.stop()
            await inner.stop()

    run(main())


def test_kill_one_stream_mid_transfer_resumes_from_marker():
    """Acceptance criterion: abort one stream's connection mid-
    transfer.  The transfer must complete with correct bytes (hash)
    WITHOUT restarting from offset 0 — only the dead stream's
    unacknowledged blocks are retransmitted."""

    async def main():
        outer, inner, client = await _start_deployment()
        try:
            listener = await client.bind()
            host, port = listener.proxy_addr
            data = _payload(3_000_000)
            block = 32 * 1024

            writers = []

            async def dial():
                r, w = await client.connect(host, port)
                writers.append(w)
                return r, w

            blocks_sent = [0]

            def on_block(stream_idx, offset, length):
                blocks_sent[0] += 1
                # A third of the way in, nuke the second connection.
                if blocks_sent[0] == 30 and len(writers) > 1:
                    writers[1].transport.abort()

            recv_task = asyncio.ensure_future(recv_striped(listener.accept))
            report = await send_striped(
                dial, data, streams=4, block_bytes=block,
                reconnect=True, on_block=on_block,
            )
            got, rreport = await recv_task
            assert hashlib.sha256(got).digest() == hashlib.sha256(data).digest()
            assert report["reconnects"] >= 1
            # No restart-from-zero: retransmission is bounded by the
            # dead stream's unacknowledged inflight, a small fraction
            # of the transfer.
            assert report["bytes_sent"] < 1.5 * len(data)
            assert report["requeued_blocks"] < len(data) // block // 2
            await listener.close()
        finally:
            await outer.stop()
            await inner.stop()

    run(main())


def test_stream_death_without_reconnect_rides_siblings():
    """reconnect=False: the dead stream's blocks are requeued onto its
    siblings; the transfer still completes from the restart marker."""

    async def main():
        server, connect, accept = await _loopback_pair()
        data = _payload(1_500_000)
        writers = []

        async def dial():
            r, w = await connect()
            writers.append(w)
            return r, w

        count = [0]

        def on_block(stream_idx, offset, length):
            count[0] += 1
            if count[0] == 10 and len(writers) > 1:
                writers[1].transport.abort()

        recv_task = asyncio.ensure_future(recv_striped(accept))
        report = await send_striped(
            dial, data, streams=4, block_bytes=32 * 1024,
            reconnect=False, on_block=on_block,
        )
        got, _ = await recv_task
        assert got == data
        assert report["reconnects"] == 0
        server.close()
        await server.wait_closed()

    run(main())


def test_all_streams_dead_raises_stripe_error():
    """With every stream dead and no reconnect budget, the send fails
    loudly instead of hanging."""

    async def main():
        server, connect, accept = await _loopback_pair()
        data = _payload(500_000)
        writers = []

        async def dial():
            r, w = await connect()
            writers.append(w)
            return r, w

        def on_block(stream_idx, offset, length):
            for w in writers:
                w.transport.abort()

        recv_task = asyncio.ensure_future(recv_striped(accept))
        with pytest.raises(StripeError):
            await send_striped(
                dial, data, streams=2, block_bytes=64 * 1024,
                reconnect=False, on_block=on_block,
            )
        recv_task.cancel()
        server.close()
        await server.wait_closed()

    run(main())


def test_daemon_stop_aborts_mid_transfer_streams():
    """Satellite: daemon shutdown must abort per-stream sockets
    registered mid-transfer, not leave them (and their pumps) alive."""

    async def main():
        outer, inner, client = await _start_deployment()
        listener = await client.bind()
        host, port = listener.proxy_addr

        # Open a chain and park it mid-transfer (no EOF, data pending).
        r, w = await client.connect(host, port)
        peer_r, peer_w = await listener.accept()
        w.write(b"hello across the relay")
        await w.drain()
        await peer_r.readexactly(22)

        await outer.stop()
        await inner.stop()
        # The parked chain's sockets were aborted by stop(): both ends
        # observe EOF/reset promptly instead of hanging.
        got = await asyncio.wait_for(peer_r.read(1024), timeout=5)
        assert got == b""
        with pytest.raises((ConnectionError, asyncio.IncompleteReadError)):
            data = await asyncio.wait_for(r.read(1024), timeout=5)
            if data == b"":
                raise ConnectionResetError("clean EOF")
        w.close()
        peer_w.close()
        await listener.close()

    run(main())
