"""Tests for the zero-copy write/read primitives in
:mod:`repro.core.aio.pump`: scatter-gather sends, frame coalescing,
and the BufferedProtocol relay ends.
"""

import asyncio
import hashlib

from repro.core.aio.pump import (
    COALESCE_BUDGET,
    SegmentBatcher,
    relay_sockets_zero_copy,
    segment_nbytes,
    send_segments,
    tune_stream,
)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


async def _pipe():
    """One accepted TCP connection: returns (client r/w, server r/w)."""
    queue: asyncio.Queue = asyncio.Queue()

    async def on_conn(r, w):
        await queue.put((r, w))

    server = await asyncio.start_server(on_conn, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    cr, cw = await asyncio.open_connection("127.0.0.1", port)
    sr, sw = await queue.get()
    return server, (cr, cw), (sr, sw)


def test_segment_nbytes_mixed_types():
    segs = [b"abc", bytearray(b"de"), memoryview(b"fghi")[1:]]
    assert segment_nbytes(segs) == 3 + 2 + 3
    assert segment_nbytes([]) == 0


def test_send_segments_scatter_gather_roundtrip():
    """Header + payload views sent as separate segments arrive joined,
    in order, without the caller ever concatenating them."""

    async def main():
        server, (cr, cw), (sr, sw) = await _pipe()
        payload = bytes(range(256)) * 64
        view = memoryview(payload)
        n = send_segments(cw, [b"HDR1", view[:100], b"HDR2", view[100:]])
        assert n == 8 + len(payload)
        cw.write_eof()
        got = await sr.read(-1)
        assert got == b"HDR1" + payload[:100] + b"HDR2" + payload[100:]
        cw.close()
        sw.close()
        server.close()
        await server.wait_closed()

    run(main())


def test_send_segments_empty_is_noop():
    async def main():
        server, (cr, cw), (sr, sw) = await _pipe()
        assert send_segments(cw, []) == 0
        assert send_segments(cw, [b"", memoryview(b"")]) == 0
        cw.write_eof()
        assert await sr.read(-1) == b""
        cw.close()
        sw.close()
        server.close()
        await server.wait_closed()

    run(main())


def test_send_segments_under_backpressure_preserves_order():
    """When the kernel buffer fills, the direct path sends a prefix and
    the remainder rides the transport — bytes must not reorder."""

    async def main():
        server, (cr, cw), (sr, sw) = await _pipe()
        tune_stream(cw)
        blob = b"x" * (1 << 20)
        digest = hashlib.sha256()
        total = 0
        for i in range(8):
            marker = bytes([i]) * 7
            send_segments(cw, [marker, memoryview(blob)])
            digest.update(marker)
            digest.update(blob)
            total += 7 + len(blob)

        got = hashlib.sha256()
        received = 0

        async def drainer():
            nonlocal received
            while received < total:
                data = await sr.read(1 << 18)
                assert data
                got.update(data)
                received += len(data)

        await asyncio.gather(drainer(), cw.drain())
        assert got.digest() == digest.digest()
        cw.close()
        sw.close()
        server.close()
        await server.wait_closed()

    run(main())


def test_batcher_coalesces_one_flush_per_tick():
    """Many small adds inside one event-loop tick leave in a single
    flush (one sendmsg), not one write per frame."""

    async def main():
        server, (cr, cw), (sr, sw) = await _pipe()
        flushes = []
        batcher = SegmentBatcher(cw, on_flush=lambda n, s: flushes.append((n, s)))
        for i in range(10):
            batcher.add(b"h", bytes([i]) * 10)
        assert batcher.flushes == 0  # nothing sent yet this tick
        await asyncio.sleep(0)  # let the call_soon flush run
        assert batcher.flushes == 1
        assert flushes == [(110, 20)]
        cw.write_eof()
        got = await sr.read(-1)
        assert len(got) == 110
        cw.close()
        sw.close()
        server.close()
        await server.wait_closed()

    run(main())


def test_batcher_empty_flush_sends_nothing():
    async def main():
        server, (cr, cw), (sr, sw) = await _pipe()
        calls = []
        batcher = SegmentBatcher(cw, on_flush=lambda n, s: calls.append(n))
        assert batcher.flush() == 0
        batcher.add(b"", memoryview(b""))  # zero-length segments dropped
        assert batcher.pending_bytes == 0
        assert batcher.flush() == 0
        assert calls == []
        assert batcher.flushes == 0
        cw.close()
        sw.close()
        server.close()
        await server.wait_closed()

    run(main())


def test_batcher_single_byte_payload():
    async def main():
        server, (cr, cw), (sr, sw) = await _pipe()
        batcher = SegmentBatcher(cw)
        batcher.add(b"\x2a")
        assert batcher.pending_bytes == 1
        assert batcher.flush() == 1
        cw.write_eof()
        assert await sr.read(-1) == b"\x2a"
        cw.close()
        sw.close()
        server.close()
        await server.wait_closed()

    run(main())


def test_batcher_budget_boundary_flushes_immediately():
    """A block landing exactly on the coalesce budget flushes inline,
    without waiting for the end of the tick."""

    async def main():
        server, (cr, cw), (sr, sw) = await _pipe()
        batcher = SegmentBatcher(cw, budget=1024)
        batcher.add(b"a" * 1023)
        assert batcher.flushes == 0  # one under budget: waits
        batcher.add(b"b")  # exactly at budget now
        assert batcher.flushes == 1
        assert batcher.bytes_flushed == 1024
        # And strictly-over-budget in one add also flushes inline.
        batcher.add(b"c" * 2048)
        assert batcher.flushes == 2
        cw.close()
        sw.close()
        server.close()
        await server.wait_closed()

    run(main())


def test_batcher_close_discards_pending():
    async def main():
        server, (cr, cw), (sr, sw) = await _pipe()
        batcher = SegmentBatcher(cw)
        batcher.add(b"doomed")
        batcher.close()
        assert batcher.flush() == 0
        batcher.add(b"ignored after close")
        await asyncio.sleep(0)
        assert batcher.flushes == 0
        cw.write_eof()
        assert await sr.read(-1) == b""
        cw.close()
        sw.close()
        server.close()
        await server.wait_closed()

    run(main())


def test_default_budget_is_sane():
    assert 0 < COALESCE_BUDGET <= 1 << 20


def test_zero_copy_relay_bidirectional_with_leftover():
    """Protocol-swap relay: payload pipelined behind the 'handshake'
    (already in the StreamReader buffer) survives the swap, both
    directions flow, EOFs propagate, byte totals are exact."""

    async def main():
        # Two independent client connections to one server; the server
        # relays between its two accepted ends.
        server_a, (a_cr, a_cw), (a_sr, a_sw) = await _pipe()
        server_b, (b_cr, b_cw), (b_sr, b_sw) = await _pipe()

        # Client A sends a handshake line plus pipelined payload.
        head = b"HELLO"
        pipelined = b"P" * 3000
        a_cw.write(head + pipelined)
        await a_cw.drain()
        assert await a_sr.readexactly(5) == head  # server consumes handshake
        await asyncio.sleep(0.05)  # let the payload land in the buffer

        relay = asyncio.ensure_future(
            relay_sockets_zero_copy(a_sr, a_sw, b_sr, b_sw)
        )
        payload_a = b"A" * 500_000
        payload_b = b"B" * 250_000

        async def side_a():
            a_cw.write(payload_a)
            await a_cw.drain()
            a_cw.write_eof()
            return await a_cr.read(-1)

        async def side_b():
            b_cw.write(payload_b)
            await b_cw.drain()
            b_cw.write_eof()
            return await b_cr.read(-1)

        got_b, got_a = await asyncio.gather(side_a(), side_b())
        assert got_a == pipelined + payload_a  # B saw leftover first
        assert got_b == payload_b
        moved = await relay
        assert moved is not None
        a_to_b, b_to_a = moved
        assert a_to_b == len(pipelined) + len(payload_a)
        assert b_to_a == len(payload_b)
        for w in (a_cw, b_cw):
            w.close()
        for srv in (server_a, server_b):
            srv.close()
            await srv.wait_closed()

    run(main())


def test_zero_copy_relay_counts_chunks():
    async def main():
        server_a, (a_cr, a_cw), (a_sr, a_sw) = await _pipe()
        server_b, (b_cr, b_cw), (b_sr, b_sw) = await _pipe()
        chunks = []
        relay = asyncio.ensure_future(
            relay_sockets_zero_copy(a_sr, a_sw, b_sr, b_sw,
                                    on_chunk=chunks.append)
        )
        a_cw.write(b"z" * 10_000)
        a_cw.write_eof()
        b_cw.write_eof()
        got = await b_cr.read(-1)
        assert got == b"z" * 10_000
        await relay
        assert sum(chunks) == 10_000
        for w in (a_cw, b_cw):
            w.close()
        for srv in (server_a, server_b):
            srv.close()
            await srv.wait_closed()

    run(main())
