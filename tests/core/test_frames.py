"""Chunk framing: splitting, reassembly, protocol violations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frames import FRAME_HEADER_BYTES, DataFrame, FrameError, FramedConnection
from repro.simnet import Network


def make_pair():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, 1e-4, 1e7)
    pair = {}

    def server():
        ls = b.listen(1)
        pair["server"] = yield ls.accept()

    def client():
        pair["client"] = yield from a.connect(("b", 1))

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    return net, pair["client"], pair["server"]


def test_dataframe_properties():
    f = DataFrame(stream_id=1, msg_seq=1, index=2, count=3, chunk_bytes=100,
                  total_bytes=2148)
    assert f.is_last
    assert f.wire_bytes == 100 + FRAME_HEADER_BYTES


def test_single_chunk_message():
    net, c, s = make_pair()
    fc_c = FramedConnection(c, 1024)
    fc_s = FramedConnection(s, 1024)
    out = {}

    def sender():
        yield fc_c.send("small", nbytes=100)

    def receiver():
        payload, n = yield from fc_s.recv()
        out["msg"] = (payload, n)

    net.sim.process(sender())
    net.sim.process(receiver())
    net.sim.run()
    assert out["msg"] == ("small", 100)
    assert fc_s.messages_received == 1


def test_multi_chunk_reassembly():
    net, c, s = make_pair()
    fc_c = FramedConnection(c, 1000)
    fc_s = FramedConnection(s, 1000)
    out = {}

    def sender():
        yield fc_c.send("big", nbytes=5500)  # 6 chunks

    def receiver():
        payload, n = yield from fc_s.recv()
        out["msg"] = (payload, n)

    net.sim.process(sender())
    net.sim.process(receiver())
    net.sim.run()
    assert out["msg"] == ("big", 5500)
    # The transport saw 6 separate frames.
    assert s.messages_received == 6


def test_exact_multiple_chunking():
    net, c, s = make_pair()
    fc_c = FramedConnection(c, 1024)
    fc_s = FramedConnection(s, 1024)
    out = {}

    def sender():
        yield fc_c.send(b"", nbytes=4096)  # exactly 4 chunks

    def receiver():
        _, n = yield from fc_s.recv()
        out["n"] = n

    net.sim.process(sender())
    net.sim.process(receiver())
    net.sim.run()
    assert out["n"] == 4096
    assert s.messages_received == 4


def test_back_to_back_messages_keep_boundaries():
    net, c, s = make_pair()
    fc_c = FramedConnection(c, 512)
    fc_s = FramedConnection(s, 512)
    got = []

    def sender():
        for i, size in enumerate([100, 2000, 512, 513]):
            yield fc_c.send(i, nbytes=size)

    def receiver():
        for _ in range(4):
            payload, n = yield from fc_s.recv()
            got.append((payload, n))

    net.sim.process(sender())
    net.sim.process(receiver())
    net.sim.run()
    assert got == [(0, 100), (1, 2000), (2, 512), (3, 513)]


def test_non_frame_payload_rejected():
    net, c, s = make_pair()
    fc_s = FramedConnection(s, 1024)

    def sender():
        yield c.send("raw, unframed", nbytes=64)

    def receiver():
        with pytest.raises(FrameError, match="expected DataFrame"):
            yield from fc_s.recv()
        return True

    net.sim.process(sender())
    p = net.sim.process(receiver())
    net.sim.run()
    assert p.value is True


def test_mid_message_start_rejected():
    net, c, s = make_pair()
    fc_s = FramedConnection(s, 1024)

    def sender():
        frame = DataFrame(stream_id=9, msg_seq=1, index=1, count=3,
                          chunk_bytes=10, total_bytes=30)
        yield c.send(frame, nbytes=frame.wire_bytes)

    def receiver():
        with pytest.raises(FrameError, match="starts at chunk 1"):
            yield from fc_s.recv()
        return True

    net.sim.process(sender())
    p = net.sim.process(receiver())
    net.sim.run()
    assert p.value is True


def test_invalid_chunk_size_rejected():
    net, c, _ = make_pair()
    with pytest.raises(FrameError):
        FramedConnection(c, 0)


def test_invalid_message_size_rejected():
    net, c, _ = make_pair()
    fc = FramedConnection(c, 1024)
    with pytest.raises(FrameError):
        fc.send("x", nbytes=0)


@pytest.mark.slow
@settings(max_examples=25, deadline=None)
@given(
    nbytes=st.integers(min_value=1, max_value=50_000),
    chunk=st.integers(min_value=1, max_value=8192),
)
def test_chunk_count_invariant(nbytes, chunk):
    """Frames always cover the message exactly, regardless of sizes."""
    net, c, s = make_pair()
    fc_c = FramedConnection(c, chunk)
    fc_s = FramedConnection(s, chunk)
    out = {}

    def sender():
        yield fc_c.send("payload", nbytes=nbytes)

    def receiver():
        payload, n = yield from fc_s.recv()
        out["n"] = n

    net.sim.process(sender())
    net.sim.process(receiver())
    net.sim.run()
    assert out["n"] == nbytes
    expected_frames = -(-nbytes // chunk)
    assert s.messages_received == expected_frames
    # Conservation: transport bytes = payload + per-frame headers.
    assert s.bytes_received == nbytes + expected_frames * FRAME_HEADER_BYTES
