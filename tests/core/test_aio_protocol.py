"""Unit tests for the live relay's byte-level control protocol."""

import asyncio

import pytest

from repro.core.aio.protocol import (
    MAX_CONTROL_LINE,
    ProtocolError,
    error_reply,
    ok_reply,
    read_control,
    require_fields,
    require_port,
    write_control,
)


def run(coro):
    return asyncio.run(coro)


def make_reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def test_read_control_roundtrip():
    async def main():
        reader = make_reader(b'{"op": "connect", "host": "h", "port": 5}\n')
        msg = await read_control(reader)
        assert msg == {"op": "connect", "host": "h", "port": 5}

    run(main())


def test_read_control_rejects_garbage():
    async def main():
        with pytest.raises(ProtocolError, match="not JSON"):
            await read_control(make_reader(b"not json\n"))

    run(main())


def test_read_control_rejects_non_object():
    async def main():
        with pytest.raises(ProtocolError, match="must be an object"):
            await read_control(make_reader(b"[1, 2]\n"))

    run(main())


def test_read_control_rejects_eof():
    async def main():
        with pytest.raises(ProtocolError, match="closed before"):
            await read_control(make_reader(b""))

    run(main())


def test_write_control_line_format():
    class FakeWriter:
        def __init__(self):
            self.data = b""

        def write(self, b):
            self.data += b

    w = FakeWriter()
    write_control(w, ok_reply(proxy_port=7))
    assert w.data == b'{"ok":true,"proxy_port":7}\n'


def test_write_control_rejects_oversize():
    class FakeWriter:
        def write(self, b):
            pass

    with pytest.raises(ProtocolError, match="too long"):
        write_control(FakeWriter(), {"blob": "x" * (MAX_CONTROL_LINE + 10)})


def test_reply_helpers():
    assert ok_reply() == {"ok": True}
    assert ok_reply(a=1) == {"ok": True, "a": 1}
    assert error_reply("nope") == {"ok": False, "error": "nope"}


def test_require_fields():
    require_fields({"a": 1, "b": 2}, "a", "b")
    with pytest.raises(ProtocolError, match="missing fields.*'c'"):
        require_fields({"a": 1}, "a", "c")


@pytest.mark.parametrize("bad", ["80", 0, -1, 65536, None, 3.14])
def test_require_port_rejects(bad):
    with pytest.raises(ProtocolError, match="invalid port"):
        require_port(bad)


@pytest.mark.parametrize("good", [1, 80, 65535])
def test_require_port_accepts(good):
    assert require_port(good) == good
