"""Search correctness against analytic ground truth (vectorized DP)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.knapsack import (
    KnapsackInstance,
    SearchState,
    depth_profile,
    optimal_selection,
    optimal_value,
    random_instance,
    solve,
    tree_size,
)
from repro.apps.knapsack.search import root_node


def small_instances():
    return [
        random_instance(n, seed=seed)
        for n, seed in [(8, 1), (12, 2), (16, 3), (20, 4), (14, 5)]
    ]


def test_root_node():
    inst = random_instance(6, seed=1)
    assert root_node(inst) == (0, 0, inst.capacity)


@pytest.mark.parametrize("inst", small_instances(), ids=lambda i: i.name)
def test_unpruned_traversal_matches_tree_size(inst):
    res = solve(inst, prune=False)
    assert res.nodes_traversed == tree_size(inst)


@pytest.mark.parametrize("inst", small_instances(), ids=lambda i: i.name)
def test_best_value_matches_dp(inst):
    assert solve(inst, prune=False).best_value == optimal_value(inst)


@pytest.mark.parametrize("inst", small_instances(), ids=lambda i: i.name)
def test_pruned_solver_agrees_and_visits_fewer(inst):
    pruned = solve(inst, prune=True)
    assert pruned.best_value == optimal_value(inst)
    assert pruned.nodes_traversed <= tree_size(inst)


def test_optimal_selection_is_feasible_and_optimal():
    inst = random_instance(15, seed=8)
    value, chosen = optimal_selection(inst)
    assert value == optimal_value(inst)
    assert sum(inst.weights[i] for i in chosen) <= inst.capacity
    assert sum(inst.profits[i] for i in chosen) == value


def test_depth_profile_sums_to_tree_size():
    inst = random_instance(12, seed=6)
    profile = depth_profile(inst)
    assert len(profile) == inst.n + 1
    assert profile[0] == 1
    assert int(profile.sum()) == tree_size(inst)


def test_zero_capacity_tree_is_a_chain():
    # Nothing fits: every node has exactly one (exclude) child.
    inst = KnapsackInstance(profits=(5, 4, 3), weights=(2, 2, 2), capacity=1)
    assert tree_size(inst) == 4  # root + 3 exclude nodes
    res = solve(inst)
    assert res.nodes_traversed == 4
    assert res.best_value == 0


def test_everything_fits_tree_is_full_binary():
    inst = KnapsackInstance(profits=(1, 1, 1), weights=(1, 1, 1), capacity=3)
    assert tree_size(inst) == 2**4 - 1
    assert solve(inst).best_value == 3


def test_branch_in_batches_equivalent_to_one_shot():
    inst = random_instance(14, seed=10)
    one = SearchState(inst)
    one.push_root()
    one.run_to_exhaustion()
    batched = SearchState(inst)
    batched.push_root()
    while not batched.exhausted:
        batched.branch(7)
    assert batched.nodes_traversed == one.nodes_traversed
    assert batched.best_value == one.best_value


def test_take_from_top_and_bottom():
    inst = random_instance(10, seed=3)
    st_ = SearchState(inst)
    st_.push_nodes([(1, 0, 5), (2, 0, 5), (3, 0, 5), (4, 0, 5)])
    top = st_.take_from_top(2)
    assert top == [(3, 0, 5), (4, 0, 5)]
    bottom = st_.take_from_bottom(1)
    assert bottom == [(1, 0, 5)]
    assert st_.depth == 1
    assert st_.take_from_top(0) == []
    assert st_.take_from_bottom(-1) == []
    # Taking more than available drains without error.
    assert len(st_.take_from_top(99)) == 1
    assert st_.exhausted


def test_work_splitting_conserves_tree():
    """Splitting a stack across workers traverses each node once."""
    inst = random_instance(16, seed=11)
    main = SearchState(inst)
    main.push_root()
    main.branch(50)
    stolen = main.take_from_top(3)
    worker = SearchState(inst)
    worker.push_nodes(stolen)
    main.run_to_exhaustion()
    worker.run_to_exhaustion()
    assert main.nodes_traversed + worker.nodes_traversed == tree_size(inst)
    assert max(main.best_value, worker.best_value) == optimal_value(inst)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=12),
    seed=st.integers(0, 10_000),
    cap_frac=st.floats(min_value=0.0, max_value=1.0),
)
def test_traversal_invariants_property(n, seed, cap_frac):
    inst = random_instance(n, seed=seed)
    inst = KnapsackInstance(
        inst.profits, inst.weights, int(inst.total_weight * cap_frac)
    )
    res = solve(inst)
    assert res.nodes_traversed == tree_size(inst)
    assert res.best_value == optimal_value(inst)
    # The tree is bounded by the full binary tree and contains at
    # least the exclude chain.
    assert n + 1 <= res.nodes_traversed <= 2 ** (n + 1) - 1


def test_upper_bound_dominates_subtree_optimum():
    """The fractional bound is admissible: never below the best leaf
    reachable from the node."""
    inst = random_instance(10, seed=12)
    state = SearchState(inst, prune=True)
    # Evaluate the bound at the root: must be >= the global optimum.
    bound = state.upper_bound(0, 0, inst.capacity)
    assert bound >= optimal_value(inst)
