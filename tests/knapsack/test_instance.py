"""Knapsack instance construction, serialization, generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.knapsack import (
    KnapsackInstance,
    random_instance,
    scaled_instance,
    tree_size,
)


def test_from_items_sorts_by_ratio():
    inst = KnapsackInstance.from_items([1, 10, 4], [2, 2, 2], capacity=4)
    assert inst.profits == (10, 4, 1)
    assert inst.weights == (2, 2, 2)


def test_validation():
    with pytest.raises(ValueError, match="equal length"):
        KnapsackInstance((1, 2), (1,), 5)
    with pytest.raises(ValueError, match="at least one"):
        KnapsackInstance((), (), 5)
    with pytest.raises(ValueError, match="capacity"):
        KnapsackInstance((1,), (1,), -1)
    with pytest.raises(ValueError, match="positive"):
        KnapsackInstance((1,), (0,), 5)
    with pytest.raises(ValueError, match="non-negative"):
        KnapsackInstance((-1,), (1,), 5)
    with pytest.raises(ValueError, match="sorted"):
        KnapsackInstance((1, 10), (2, 2), 5)


def test_serialize_parse_roundtrip():
    inst = random_instance(12, seed=4)
    again = KnapsackInstance.parse(inst.serialize())
    assert again.profits == inst.profits
    assert again.weights == inst.weights
    assert again.capacity == inst.capacity


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        KnapsackInstance.parse("")
    with pytest.raises(ValueError):
        KnapsackInstance.parse("2 10\n1 1\n")  # missing a row


def test_random_instance_deterministic():
    a = random_instance(10, seed=7)
    b = random_instance(10, seed=7)
    assert a.profits == b.profits and a.weights == b.weights


def test_random_instance_default_capacity_half_weight():
    inst = random_instance(30, seed=2)
    assert inst.capacity == inst.total_weight // 2


def test_scaled_instance_hits_target():
    target = 50_000
    inst = scaled_instance(n=28, target_nodes=target, seed=9)
    size = tree_size(inst)
    assert 0.5 * target <= size <= 1.5 * target


def test_scaled_instance_impossible_target():
    with pytest.raises(ValueError):
        scaled_instance(n=5, target_nodes=3, seed=1)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=20), seed=st.integers(0, 1000))
def test_random_instances_always_valid(n, seed):
    inst = random_instance(n, seed=seed)
    assert inst.n == n
    ratios = [p / w for p, w in zip(inst.profits, inst.weights)]
    assert ratios == sorted(ratios, reverse=True)
