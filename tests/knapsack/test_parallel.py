"""Parallel master/slave knapsack: correctness and scheduling behaviour."""

import pytest

from repro.apps.knapsack import (
    SchedulingParams,
    knapsack_rank_main,
    optimal_value,
    random_instance,
    scaled_instance,
    solve,
    tree_size,
)
from repro.mpi import MPIWorld
from repro.simnet import Network

from tests.mpi.test_mpi import flat_network


def run_parallel(inst, nprocs=4, params=None, hosts=None, net=None):
    if net is None:
        net, hosts = flat_network(nprocs)
    world = MPIWorld(net)
    world.add_ranks(hosts)
    if params is None:
        params = SchedulingParams(node_cost=1e-6)

    def driver():
        return (yield from world.launch(knapsack_rank_main, inst, params))

    p = net.sim.process(driver())
    net.sim.run()
    return p.value


SMALL = scaled_instance(n=28, target_nodes=60_000, seed=2)


def test_parallel_finds_optimum():
    results = run_parallel(SMALL)
    assert results[0].global_best == optimal_value(SMALL)
    assert all(r.global_best == results[0].global_best for r in results)


def test_work_conservation():
    """Every node is traversed exactly once across all ranks."""
    results = run_parallel(SMALL, nprocs=6)
    assert sum(r.nodes_traversed for r in results) == tree_size(SMALL)


def test_single_process_degenerates_to_sequential():
    results = run_parallel(SMALL, nprocs=1)
    [master] = results
    assert master.is_master
    assert master.nodes_traversed == tree_size(SMALL)
    assert master.global_best == optimal_value(SMALL)
    assert master.steal_requests == 0


def test_two_processes():
    results = run_parallel(SMALL, nprocs=2)
    assert sum(r.nodes_traversed for r in results) == tree_size(SMALL)
    assert results[1].steal_requests >= 1


def test_all_slaves_participate():
    results = run_parallel(SMALL, nprocs=6)
    slaves = [r for r in results if not r.is_master]
    assert all(s.nodes_traversed > 0 for s in slaves)


def test_parallel_with_pruning():
    inst = random_instance(22, seed=5)
    params = SchedulingParams(node_cost=1e-6, prune=True)
    results = run_parallel(inst, nprocs=4, params=params)
    assert results[0].global_best == optimal_value(inst)
    # Pruning visits at most the full tree (bounds are rank-local, so
    # less pruning than sequential is possible, never more nodes than
    # the unpruned tree).
    assert sum(r.nodes_traversed for r in results) <= tree_size(inst)


def test_steal_accounting_consistency():
    results = run_parallel(SMALL, nprocs=5)
    master = results[0]
    slaves = results[1:]
    # Master's served steals <= slaves' sent requests (unserved ones
    # park the slave until termination).
    assert master.steal_requests <= sum(s.steal_requests for s in slaves)
    # Conservation of shipped nodes.
    assert master.nodes_sent == sum(s.nodes_received for s in slaves)
    assert master.nodes_received == sum(s.nodes_sent for s in slaves)


def test_send_back_engages_on_periodic_schedule():
    params = SchedulingParams(
        node_cost=1e-6, back_every=4, back_threshold=4, backunit=2
    )
    results = run_parallel(SMALL, nprocs=4, params=params)
    assert sum(r.back_transfers for r in results) > 0
    assert sum(r.nodes_traversed for r in results) == tree_size(SMALL)


def test_send_back_disabled():
    params = SchedulingParams(node_cost=1e-6, back_threshold=0)
    results = run_parallel(SMALL, nprocs=4, params=params)
    assert sum(r.back_transfers for r in results) == 0
    assert sum(r.nodes_traversed for r in results) == tree_size(SMALL)


def test_steal_from_bottom_variant():
    params = SchedulingParams(node_cost=1e-6, steal_from="bottom")
    results = run_parallel(SMALL, nprocs=4, params=params)
    assert sum(r.nodes_traversed for r in results) == tree_size(SMALL)
    assert results[0].global_best == optimal_value(SMALL)


def test_params_validation():
    with pytest.raises(ValueError):
        SchedulingParams(interval=0)
    with pytest.raises(ValueError):
        SchedulingParams(stealunit=0)
    with pytest.raises(ValueError):
        SchedulingParams(backunit=0)
    with pytest.raises(ValueError):
        SchedulingParams(back_threshold=3, backunit=4)
    with pytest.raises(ValueError):
        SchedulingParams(keep_on_serve=-1)
    with pytest.raises(ValueError):
        SchedulingParams(node_cost=-1)
    with pytest.raises(ValueError):
        SchedulingParams(steal_from="middle")
    with pytest.raises(ValueError):
        SchedulingParams(back_every=0)
    # threshold 0 disables send-back and is legal.
    SchedulingParams(back_threshold=0)


def test_auto_back_threshold():
    p = SchedulingParams()
    assert p.resolve_back_threshold(44) == max(p.backunit + 2, 6)
    p2 = SchedulingParams(back_threshold=9, backunit=2)
    assert p2.resolve_back_threshold(44) == 9


def test_heterogeneous_hosts_share_by_speed():
    """Faster hosts traverse proportionally more nodes."""
    net = Network()
    switch = net.add_router("switch")
    hosts = []
    for i, speed in enumerate([1.0, 1.0, 0.25, 0.25]):
        h = net.add_host(f"h{i}", cpu_speed=speed)
        net.link(h, switch, 1e-4, 1e7)
        hosts.append(h)
    inst = scaled_instance(n=30, target_nodes=120_000, seed=7)
    results = run_parallel(inst, hosts=hosts, net=net,
                           params=SchedulingParams(node_cost=20e-6))
    assert sum(r.nodes_traversed for r in results) == tree_size(inst)
    fast = results[1].nodes_traversed  # slave on a speed-1.0 host
    slow = results[2].nodes_traversed  # slave on a speed-0.25 host
    assert fast > 2 * slow  # ~4x expected; leave slack for endgame noise
