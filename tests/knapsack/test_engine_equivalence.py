"""The fast branch engine must be *indistinguishable* from the seed
engine at every observable point: per-batch ops, the decoded stack at
every batch boundary, the best value, steal/send-back interop, and the
fused slave loop.  These are the invariants that make the Table 4/5/6
outputs byte-identical between engines.
"""

from __future__ import annotations

import random

import pytest

from repro.apps.knapsack.instance import KnapsackInstance, scaled_instance
from repro.apps.knapsack.search import SearchState, resolve_engine


def _random_instance(rng: random.Random) -> KnapsackInstance:
    n = rng.randint(1, 16)
    items = [(rng.randint(1, 50), rng.randint(1, 30)) for _ in range(n)]
    items.sort(key=lambda pw: pw[0] / pw[1], reverse=True)
    return KnapsackInstance(
        tuple(p for p, _ in items),
        tuple(w for _, w in items),
        rng.randint(0, 60),
    )


def test_resolve_engine(monkeypatch) -> None:
    assert resolve_engine("fast") == "fast"
    assert resolve_engine("seed") == "seed"
    monkeypatch.delenv("REPRO_SEARCH_ENGINE", raising=False)
    assert resolve_engine(None) == "fast"
    assert resolve_engine("auto") == "fast"
    monkeypatch.setenv("REPRO_SEARCH_ENGINE", "seed")
    assert resolve_engine(None) == "seed"
    with pytest.raises(ValueError):
        resolve_engine("turbo")


@pytest.mark.parametrize("prune", [False, True])
def test_lockstep_batch_equivalence(prune: bool) -> None:
    """Drive both engines in identical batches on random instances;
    ops, best value and the (decoded) stack must match at every
    boundary."""
    rng = random.Random(7)
    for _ in range(25):
        instance = _random_instance(rng)
        seed = SearchState(instance, prune=prune, engine="seed")
        fast = SearchState(instance, prune=prune, engine="fast")
        seed.push_root()
        fast.push_root()
        step = rng.randint(1, 13)
        while not (seed.exhausted and fast.exhausted):
            assert seed.branch(step) == fast.branch(step)
            assert seed.best_value == fast.best_value
            assert seed.stack == fast._decode(fast.stack)
        assert seed.nodes_traversed == fast.nodes_traversed


def test_steal_interop_between_engines() -> None:
    """Nodes stolen from one engine's stack feed the other's: the wire
    format is the (index, value, capacity) tuple either way."""
    rng = random.Random(11)
    for _ in range(10):
        instance = _random_instance(rng)
        seed = SearchState(instance, engine="seed")
        fast = SearchState(instance, engine="fast")
        seed.push_root()
        fast.push_root()
        seed.branch(9)
        fast.branch(9)
        top_s, top_f = seed.take_from_top(2), fast.take_from_top(2)
        assert top_s == top_f
        bot_s, bot_f = seed.take_from_bottom(1), fast.take_from_bottom(1)
        assert bot_s == bot_f
        # Cross-feed: give the seed engine's nodes to the fast engine
        # and vice versa, then finish both; totals must agree.
        seed.push_nodes(top_f + bot_f)
        fast.push_nodes(top_s + bot_s)
        seed.run_to_exhaustion()
        fast.run_to_exhaustion()
        assert seed.best_value == fast.best_value
        assert seed.nodes_traversed == fast.nodes_traversed


def test_fused_matches_batched_loop() -> None:
    """branch_fused == branch(interval) in a loop with the slave's
    send-back checks between batches."""
    instance = scaled_instance(n=20, target_nodes=30_000, seed=5)
    interval, node_cost = 25, 1e-4
    back_every, back_threshold = 4, 3

    fused = SearchState(instance, engine="fast")
    fused.push_root()
    ref = SearchState(instance, engine="seed")
    ref.push_root()

    fused_backs = ref_backs = 0
    while not fused.exhausted or not ref.exhausted:
        cost_f, fused_backs = fused.branch_fused(
            interval, node_cost, fused_backs, back_every, back_threshold
        )
        cost_r = 0.0
        while True:
            cost_r += ref.branch(interval) * node_cost
            ref_backs += 1
            if not ref.stack:
                break
            if (
                back_threshold
                and ref_backs >= back_every
                and len(ref.stack) > back_threshold
            ):
                break
        assert fused_backs == ref_backs
        assert cost_f == pytest.approx(cost_r, rel=1e-12)
        assert ref.stack == fused._decode(fused.stack)
        assert ref.best_value == fused.best_value
        # Both loops stop at a send-back point: emulate the send-back
        # so the loop makes progress, feeding the same nodes to both.
        if fused.stack:
            sent_f = fused.take_from_bottom(2)
            sent_r = ref.take_from_bottom(2)
            assert sent_f == sent_r
            fused_backs = ref_backs = 0
    assert ref.nodes_traversed == fused.nodes_traversed


def test_full_solve_equivalence_scaled_instance() -> None:
    """End-to-end on a Table 4-family instance: same best, same count."""
    instance = scaled_instance(n=24, target_nodes=60_000, seed=5)
    results = {}
    for engine in ("seed", "fast"):
        state = SearchState(instance, engine=engine)
        state.push_root()
        state.run_to_exhaustion()
        results[engine] = (state.best_value, state.nodes_traversed)
    assert results["seed"] == results["fast"]
