"""The shared-bound pruning extension (beyond the paper)."""

import pytest

from repro.apps.knapsack import (
    SchedulingParams,
    optimal_value,
    random_instance,
    tree_size,
)

from tests.knapsack.test_parallel import run_parallel


@pytest.fixture(scope="module")
def instance():
    # Uncorrelated instances prune well: the fractional bound is tight.
    return random_instance(24, seed=13)


def test_share_bounds_requires_prune():
    with pytest.raises(ValueError, match="requires prune"):
        SchedulingParams(share_bounds=True)
    SchedulingParams(share_bounds=True, prune=True)  # fine


def test_shared_bounds_correct(instance):
    params = SchedulingParams(node_cost=1e-6, prune=True, share_bounds=True)
    results = run_parallel(instance, nprocs=4, params=params)
    assert results[0].global_best == optimal_value(instance)
    assert all(r.global_best == results[0].global_best for r in results)


def test_pruning_visits_fewer_nodes_than_full_tree(instance):
    full = tree_size(instance)
    params = SchedulingParams(node_cost=1e-6, prune=True, share_bounds=True)
    results = run_parallel(instance, nprocs=4, params=params)
    visited = sum(r.nodes_traversed for r in results)
    assert visited < full


def test_shared_bounds_not_worse_than_local_bounds(instance):
    """Global incumbents can only tighten pruning (modulo scheduling
    noise, bounded generously)."""
    local = SchedulingParams(node_cost=1e-6, prune=True)
    shared = SchedulingParams(node_cost=1e-6, prune=True, share_bounds=True)
    n_local = sum(
        r.nodes_traversed for r in run_parallel(instance, nprocs=4, params=local)
    )
    n_shared = sum(
        r.nodes_traversed for r in run_parallel(instance, nprocs=4, params=shared)
    )
    assert n_shared <= n_local * 1.25


def test_shared_bounds_with_send_back_engaged(instance):
    params = SchedulingParams(
        node_cost=1e-6, prune=True, share_bounds=True,
        back_every=4, back_threshold=4, backunit=2,
    )
    results = run_parallel(instance, nprocs=4, params=params)
    assert results[0].global_best == optimal_value(instance)


def test_single_process_shared_bounds(instance):
    params = SchedulingParams(node_cost=1e-6, prune=True, share_bounds=True)
    [master] = run_parallel(instance, nprocs=1, params=params)
    assert master.global_best == optimal_value(instance)
    assert master.nodes_traversed <= tree_size(instance)
