"""Driver-level plumbing: rank grouping, run-result aggregation, RMF exe."""

import pytest

from repro.apps.knapsack import (
    SchedulingParams,
    optimal_value,
    rank_groups,
    register_knapsack_executable,
    run_sequential_baseline,
    run_system,
    scaled_instance,
    tree_size,
)
from repro.cluster import Testbed
from repro.rmf.executables import ExecutableRegistry
from repro.rmf.jobs import JobSpec


INSTANCE = scaled_instance(n=28, target_nodes=60_000, seed=2)
PARAMS = SchedulingParams(node_cost=5e-6)


def test_rank_groups_shapes():
    assert rank_groups("COMPaS") == ["COMPaS"] * 8
    assert rank_groups("ETL-O2K") == ["ETL-O2K"] * 8
    assert rank_groups("Local-area Cluster") == ["RWCP-Sun"] * 4 + ["COMPaS"] * 8
    wide = rank_groups("Wide-area Cluster")
    assert wide == ["RWCP-Sun"] * 4 + ["COMPaS"] * 8 + ["ETL-O2K"] * 8


@pytest.fixture(scope="module")
def run():
    return run_system(Testbed(), "Local-area Cluster", INSTANCE, PARAMS)


def test_run_result_aggregates(run):
    assert run.nprocs == 12
    assert run.total_nodes == tree_size(INSTANCE)
    assert run.best_value == optimal_value(INSTANCE)
    assert run.master_stats.is_master
    assert run.total_steals == run.master_stats.steal_requests


def test_groups_exclude_master(run):
    groups = {g.group: g for g in run.groups()}
    assert set(groups) == {"RWCP-Sun", "COMPaS"}
    # Master (rank 0, on RWCP-Sun) excluded: 3 slaves there, 8 on COMPaS.
    assert groups["RWCP-Sun"].steals.count == 3
    assert groups["COMPaS"].nodes.count == 8


def test_speedup_computation(run):
    seq = run_sequential_baseline(Testbed(), INSTANCE, PARAMS)
    assert run.speedup(seq) == pytest.approx(seq / run.execution_time)


def test_speedup_rejects_zero_duration(run):
    import dataclasses

    broken = dataclasses.replace(run, execution_time=0.0)
    with pytest.raises(ValueError):
        broken.speedup(1.0)


def test_rmf_executable_validates_arguments():
    tb = Testbed()
    reg = ExecutableRegistry()
    register_knapsack_executable(reg)
    from repro.rmf import QClient, QServer

    qs = QServer(tb.rwcp_sun, registry=reg).start()
    qc = QClient(tb.etl_sun)
    tb.open_firewall_for_direct_runs()

    def flow():
        res = yield from qc.submit(
            (tb.rwcp_sun.name, qs.port), JobSpec(executable="knapsack")
        )
        return res

    p = tb.sim.process(flow())
    res = tb.sim.run(until=p)
    assert not res.ok
    assert "filename" in res.error


def test_rmf_executable_runs_and_stages_out():
    tb = Testbed()
    reg = ExecutableRegistry()
    register_knapsack_executable(reg)
    from repro.rmf import QClient, QServer

    qs = QServer(tb.compas[0], registry=reg).start()
    qc = QClient(tb.rwcp_sun)
    qc.staging.put("inst.txt", INSTANCE.serialize())

    def flow():
        res = yield from qc.submit(
            (tb.compas[0].name, qs.port),
            JobSpec(
                executable="knapsack",
                count=2,
                arguments=("inst.txt",),
                stage_in=("inst.txt",),
                stage_out=("out.txt",),
            ),
            nprocs=2,
        )
        return res

    p = tb.sim.process(flow())
    res = tb.sim.run(until=p)
    assert res.ok
    best, total = res.output_files["out.txt"].split()
    assert int(best) == optimal_value(INSTANCE)
    assert int(total) == tree_size(INSTANCE)
