"""Testbed (Fig. 5) and cluster systems (Table 3)."""

import pytest

from repro.cluster import CATALOGUE, SYSTEMS, Testbed, build_world, system
from repro.cluster.machine import MachineSpec
from repro.mpi import MPIWorld
from repro.simnet import FirewallBlocked


@pytest.fixture(scope="module")
def tb():
    return Testbed()


def test_catalogue_matches_figure5():
    assert CATALOGUE["RWCP-Sun"].cpus == 4
    assert CATALOGUE["ETL-Sun"].cpus == 6
    assert CATALOGUE["ETL-O2K"].cpus == 16
    assert CATALOGUE["COMPaS-node"].cpus == 4
    assert CATALOGUE["Inner-Server"].cpus == 2
    assert CATALOGUE["Outer-Server"].cpus == 2
    # The speedup baseline machine defines speed 1.0.
    assert CATALOGUE["RWCP-Sun"].cpu_speed == 1.0


def test_machine_spec_validation():
    with pytest.raises(ValueError):
        MachineSpec("x", "d", "s", cpus=0, cpu_speed=1)
    with pytest.raises(ValueError):
        MachineSpec("x", "d", "s", cpus=1, cpu_speed=0)


def test_testbed_hosts_exist(tb):
    for name in ["rwcp-sun", "inner-server", "outer-server", "etl-sun", "etl-o2k"]:
        assert tb.host(name) is not None
    assert len(tb.compas) == 8


def test_relay_servers_running(tb):
    assert tb.outer_server.running
    assert tb.inner_server.running


def test_firewall_blocks_inbound_to_rwcp(tb):
    assert not tb.net.can_connect("etl-sun", "rwcp-sun", 5000)
    # Outbound from RWCP is fine.
    assert tb.net.can_connect("rwcp-sun", "etl-sun", 5000)
    # The nxport pinhole exists, pinned to the outer server.
    assert tb.net.can_connect(
        "outer-server", "inner-server", tb.relay_config.nxport
    )
    assert not tb.net.can_connect("etl-sun", "inner-server", tb.relay_config.nxport)


def test_wan_latency_matches_table2_direct():
    """One-way RWCP-Sun -> ETL-Sun propagation ≈ the 3.9 ms direct
    latency of Table 2 (endpoint costs add the small remainder)."""
    tb = Testbed()
    rtt = tb.net.rtt_between(tb.host("rwcp-sun"), tb.host("etl-sun"))
    assert 6e-3 < rtt < 8.5e-3  # 2 x ~3.55 ms propagation


def test_lan_path_is_short(tb):
    rtt = tb.net.rtt_between(tb.host("rwcp-sun"), tb.host("compas-0"))
    assert rtt < 1e-3


def test_direct_run_footnote():
    tb = Testbed()
    assert not tb.net.can_connect("etl-sun", "rwcp-sun", 5000)
    tb.open_firewall_for_direct_runs()
    assert tb.net.can_connect("etl-sun", "rwcp-sun", 5000)
    tb.restore_firewall()
    assert not tb.net.can_connect("etl-sun", "rwcp-sun", 5000)


def test_table3_processor_counts():
    assert system("COMPaS").nprocs == 8
    assert system("ETL-O2K").nprocs == 8
    assert system("Local-area Cluster").nprocs == 12
    assert system("Wide-area Cluster").nprocs == 20


def test_table3_descriptions_name_the_devices():
    assert "ch_p4" in system("COMPaS").description
    assert "vendor" in system("ETL-O2K").description
    assert "Globus" in system("Local-area Cluster").description
    assert "Globus" in system("Wide-area Cluster").description


def test_unknown_system():
    with pytest.raises(KeyError, match="unknown system"):
        system("MegaCluster")


def test_compas_is_one_rank_per_node():
    spec = system("COMPaS")
    hosts = [p.host for p in spec.placements]
    assert hosts == [f"compas-{i}" for i in range(8)]
    assert all(p.nprocs == 1 for p in spec.placements)


def test_build_world_counts():
    tb = Testbed()
    for name, expected in [
        ("COMPaS", 8),
        ("ETL-O2K", 8),
        ("Local-area Cluster", 12),
        ("Wide-area Cluster", 20),
    ]:
        world = build_world(tb, name)
        assert isinstance(world, MPIWorld)
        assert world.size == expected


def test_build_world_proxy_flags():
    tb = Testbed()
    world = build_world(tb, "Wide-area Cluster")
    proxied = [s.proxied for s in world.specs]
    # 4 RWCP-Sun + 8 COMPaS proxied; 8 ETL-O2K direct.
    assert sum(proxied) == 12
    assert proxied[-8:] == [False] * 8


def test_build_world_without_proxy_opens_firewall():
    tb = Testbed()
    world = build_world(tb, "Wide-area Cluster", use_proxy=False)
    assert all(not s.proxied for s in world.specs)
    # The footnote's temporary firewall change happened.
    assert tb.net.can_connect("etl-sun", "rwcp-sun", 5000)


def test_single_site_systems_reject_proxy():
    tb = Testbed()
    with pytest.raises(ValueError, match="Globus device"):
        build_world(tb, "COMPaS", use_proxy=True)


def test_wide_area_world_runs_mpi():
    """Smoke: a 20-rank ring across the whole testbed, through the
    proxy for the firewalled ranks."""
    tb = Testbed()
    world = build_world(tb, "Wide-area Cluster")

    def main(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        yield from comm.send(comm.rank, dest=right, tag=1, nbytes=64)
        payload, _ = yield from comm.recv(source=left, tag=1)
        return payload

    def driver():
        return (yield from world.launch(main))

    p = tb.sim.process(driver())
    tb.sim.run()
    assert p.value == [(r - 1) % 20 for r in range(20)]
