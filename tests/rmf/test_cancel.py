"""Job cancellation through the Q system."""

import pytest

from repro.rmf import JobSpec, JobState, QClient, QServer
from repro.simnet import Network


def make_pair(slots=1):
    net = Network()
    server_h = net.add_host("resource", cores=2)
    client_h = net.add_host("submitter")
    net.link(server_h, client_h, 1e-4, 1e7)
    qs = QServer(server_h, slots=slots).start()
    qc = QClient(client_h)
    return net, qs, qc


def test_cancel_running_job():
    net, qs, qc = make_pair()

    def flow():
        handle = yield from qc.submit_handle(
            ("resource", qs.port), JobSpec(executable="sleep", arguments=("100",))
        )
        yield net.sim.timeout(5.0)  # the job is running by now
        yield from handle.cancel()
        result = yield from handle.wait()
        return result

    p = net.sim.process(flow())
    result = net.sim.run(until=p)
    assert result.state is JobState.FAILED
    assert "cancelled" in result.error
    # The cancel ended the run long before the 100 s sleep.
    assert net.sim.now < 20.0
    assert qs.jobs_cancelled == 1


def test_cancel_queued_job():
    net, qs, qc = make_pair(slots=1)

    def blocker():
        res = yield from qc.submit(
            ("resource", qs.port), JobSpec(executable="sleep", arguments=("30",))
        )
        return res

    def flow():
        yield net.sim.timeout(1.0)  # let the blocker occupy the slot
        handle = yield from qc.submit_handle(
            ("resource", qs.port), JobSpec(executable="sleep", arguments=("30",))
        )
        yield net.sim.timeout(1.0)
        yield from handle.cancel()
        result = yield from handle.wait()
        return result

    blocked = net.sim.process(blocker())
    p = net.sim.process(flow())
    net.sim.run()
    assert p.value.state is JobState.FAILED
    assert "cancelled" in p.value.error
    # The queued job never ran; the blocker completed normally.
    assert blocked.value.ok
    assert qs.jobs_run == 1


def test_cancel_after_completion_is_noop():
    net, qs, qc = make_pair()

    def flow():
        handle = yield from qc.submit_handle(
            ("resource", qs.port), JobSpec(executable="echo", arguments=("fast",))
        )
        result = yield from handle.wait()
        yield from handle.cancel()  # nothing to do
        again = yield from handle.wait()  # idempotent
        return result, again

    p = net.sim.process(flow())
    net.sim.run()
    result, again = p.value
    assert result.ok and result is again
    assert qs.jobs_cancelled == 0


def test_slot_freed_after_cancel():
    """A cancelled job releases its slot for the next one."""
    net, qs, qc = make_pair(slots=1)

    def flow():
        handle = yield from qc.submit_handle(
            ("resource", qs.port), JobSpec(executable="sleep", arguments=("1000",))
        )
        yield net.sim.timeout(2.0)
        yield from handle.cancel()
        yield from handle.wait()
        result = yield from qc.submit(
            ("resource", qs.port), JobSpec(executable="echo", arguments=("next",))
        )
        return result

    p = net.sim.process(flow())
    result = net.sim.run(until=p)
    assert result.ok
    assert result.stdout == "next\n"
    assert net.sim.now < 30.0


def test_job_may_catch_the_interrupt():
    """An executable can trap cancellation and clean up."""
    from repro.simnet.kernel import Interrupt

    net, qs, qc = make_pair()

    def stubborn(ctx):
        try:
            yield ctx.sim.timeout(1000)
        except Interrupt:
            ctx.write("cleaned up\n")
            return 0  # exits gracefully

    qs.registry.register("stubborn", stubborn)

    def flow():
        handle = yield from qc.submit_handle(
            ("resource", qs.port), JobSpec(executable="stubborn")
        )
        yield net.sim.timeout(2.0)
        yield from handle.cancel()
        return (yield from handle.wait())

    p = net.sim.process(flow())
    net.sim.run()
    # Graceful trap: the job DONE with its cleanup output.
    assert p.value.state is JobState.DONE
    assert p.value.stdout == "cleaned up\n"
