"""Q server / Q client tests."""

import pytest

from repro.rmf import FileStore, JobSpec, JobState, QClient, QServer, RMFError
from repro.rmf.executables import default_registry
from repro.simnet import Network


def make_pair(slots=1, cores=2):
    net = Network()
    server_h = net.add_host("resource", cores=cores)
    client_h = net.add_host("submitter")
    net.link(server_h, client_h, 1e-4, 1e7)
    qs = QServer(server_h, slots=slots).start()
    qc = QClient(client_h)
    return net, qs, qc


def run_submit(net, qc, qs, spec, nprocs=1):
    p = net.sim.process(qc.submit(("resource", qs.port), spec, nprocs=nprocs))
    net.sim.run()
    return p.value


def test_echo_job():
    net, qs, qc = make_pair()
    res = run_submit(net, qc, qs, JobSpec(executable="echo", arguments=("hi", "there")))
    assert res.ok
    assert res.stdout == "hi there\n"
    assert res.state is JobState.DONE
    assert qs.jobs_run == 1


def test_sleep_job_takes_time():
    net, qs, qc = make_pair()
    res = run_submit(net, qc, qs, JobSpec(executable="sleep", arguments=("5",)))
    assert res.ok
    assert res.run_time == pytest.approx(5.0, abs=0.1)


def test_spin_scales_with_cpu_speed():
    net = Network()
    slow = net.add_host("resource", cpu_speed=0.5)
    client_h = net.add_host("submitter")
    net.link(slow, client_h, 1e-4, 1e7)
    qs = QServer(slow).start()
    qc = QClient(client_h)
    res = run_submit(net, qc, qs, JobSpec(executable="spin", arguments=("2",)))
    # 2 reference-seconds on a half-speed host = 4 s.
    assert res.run_time == pytest.approx(4.0, abs=0.1)


def test_unknown_executable_fails_fast():
    net, qs, qc = make_pair()
    res = run_submit(net, qc, qs, JobSpec(executable="sl"))
    assert not res.ok
    assert res.state is JobState.FAILED
    assert res.exit_code == 127
    assert "no such executable" in res.error


def test_nonzero_exit_code():
    net, qs, qc = make_pair()
    res = run_submit(net, qc, qs, JobSpec(executable="false"))
    assert res.state is JobState.DONE
    assert res.exit_code == 1
    assert not res.ok


def test_crashing_executable_reports_failure():
    net, qs, qc = make_pair()

    def boom(ctx):
        yield ctx.sim.timeout(1)
        raise RuntimeError("kaboom")

    qs.registry.register("boom", boom)
    res = run_submit(net, qc, qs, JobSpec(executable="boom"))
    assert res.state is JobState.FAILED
    assert "kaboom" in res.error
    # The server survives and runs the next job.
    res2 = run_submit(net, qc, qs, JobSpec(executable="echo", arguments=("ok",)))
    assert res2.ok


def test_stage_in_and_out():
    net, qs, qc = make_pair()
    qc.staging.put("input.txt", "staged content")

    def copier(ctx):
        ctx.files.put("output.txt", ctx.files.get_text("input.txt").upper())
        yield ctx.sim.timeout(0)

    qs.registry.register("copier", copier)
    spec = JobSpec(
        executable="copier", stage_in=("input.txt",), stage_out=("output.txt",)
    )
    res = run_submit(net, qc, qs, spec)
    assert res.ok
    assert res.output_files["output.txt"] == b"STAGED CONTENT"
    # The output landed back in the client's staging store too.
    assert qc.staging.get_text("output.txt") == "STAGED CONTENT"


def test_stage_in_missing_file_raises_client_side():
    net, qs, qc = make_pair()
    spec = JobSpec(executable="echo", stage_in=("ghost.txt",))

    def submitter():
        with pytest.raises(Exception, match="no such file"):
            yield from qc.submit(("resource", qs.port), spec)
        return True

    p = net.sim.process(submitter())
    net.sim.run()
    assert p.value is True


def test_jobs_queue_fifo_with_one_slot():
    net, qs, qc = make_pair(slots=1)
    results = {}

    def submit(i):
        res = yield from qc.submit(
            ("resource", qs.port), JobSpec(executable="sleep", arguments=("10",))
        )
        results[i] = (res, net.sim.now)

    for i in range(3):
        net.sim.process(submit(i))
    net.sim.run()
    finish_times = sorted(t for (_, t) in results.values())
    # Serialized: ~10, ~20, ~30.
    assert finish_times[0] == pytest.approx(10, abs=0.5)
    assert finish_times[1] == pytest.approx(20, abs=0.5)
    assert finish_times[2] == pytest.approx(30, abs=0.5)
    # Queued time visible to the client.
    qtimes = sorted(r.queued_time for (r, _) in results.values())
    assert qtimes[-1] == pytest.approx(20, abs=0.5)


def test_two_slots_run_concurrently():
    net, qs, qc = make_pair(slots=2)
    results = {}

    def submit(i):
        res = yield from qc.submit(
            ("resource", qs.port), JobSpec(executable="sleep", arguments=("10",))
        )
        results[i] = net.sim.now

    for i in range(2):
        net.sim.process(submit(i))
    net.sim.run()
    assert max(results.values()) == pytest.approx(10, abs=0.5)


def test_execution_context_nprocs_passed():
    net, qs, qc = make_pair()
    seen = {}

    def probe(ctx):
        seen["nprocs"] = ctx.nprocs
        yield ctx.sim.timeout(0)

    qs.registry.register("probe", probe)
    run_submit(net, qc, qs, JobSpec(executable="probe", count=4), nprocs=4)
    assert seen["nprocs"] == 4


def test_server_validation():
    net = Network()
    h = net.add_host("h")
    with pytest.raises(RMFError):
        QServer(h, slots=0)
    qs = QServer(h).start()
    with pytest.raises(RMFError):
        qs.start()


def test_registry_duplicate_and_missing():
    reg = default_registry()
    with pytest.raises(RMFError):
        reg.register("echo", lambda ctx: iter(()))
    with pytest.raises(RMFError):
        reg.get("nope")
    assert "echo" in reg
    assert "sleep" in reg.names()
