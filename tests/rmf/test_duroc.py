"""DUROC-style co-allocation: multi-gatekeeper MPI job startup."""

import pytest

from repro.cluster import Testbed
from repro.mpi.collectives import allreduce, gather
from repro.nexus import NexusContext
from repro.rmf import RMFError, RMFSystem
from repro.rmf.duroc import (
    RendezvousServer,
    SubJob,
    co_allocate,
    make_mpi_executable,
)


def test_rendezvous_releases_when_world_complete():
    from repro.simnet import Network

    net = Network()
    server_h = net.add_host("rv")
    hosts = [net.add_host(f"h{i}") for i in range(3)]
    switch = net.add_router("switch")
    for h in (server_h, *hosts):
        net.link(h, switch, 1e-4, 1e7)
    rv = RendezvousServer(server_h).start()
    from repro.rmf.duroc import _rendezvous
    from repro.simnet.socket import Address

    tables = {}

    def joiner(i, delay):
        yield net.sim.timeout(delay)
        addrs = yield from _rendezvous(
            hosts[i], rv.addr, "job-1", i, 3, Address(f"h{i}", 1000 + i)
        )
        tables[i] = (addrs, net.sim.now)

    for i, delay in enumerate([0.0, 0.5, 1.0]):
        net.sim.process(joiner(i, delay))
    net.sim.run()
    # Everyone released together, after the last joiner.
    release_times = [t for _, t in tables.values()]
    assert min(release_times) >= 1.0
    expected = [Address(f"h{i}", 1000 + i) for i in range(3)]
    for addrs, _ in tables.values():
        assert addrs == expected
    assert rv.jobs_completed == 1


def test_rendezvous_rejects_inconsistencies():
    from repro.simnet import Network
    from repro.rmf.duroc import _rendezvous
    from repro.simnet.socket import Address

    net = Network()
    server_h = net.add_host("rv")
    a = net.add_host("a")
    b = net.add_host("b")
    switch = net.add_router("s")
    for h in (server_h, a, b):
        net.link(h, switch, 1e-4, 1e7)
    rv = RendezvousServer(server_h).start()

    def first():
        # Parks waiting for the rest of a 2-rank world.
        yield from _rendezvous(a, rv.addr, "j", 0, 2, Address("a", 1))

    def mismatched_world():
        with pytest.raises(RMFError, match="world-size mismatch"):
            yield from _rendezvous(b, rv.addr, "j", 1, 3, Address("b", 1))
        with pytest.raises(RMFError, match="duplicate rank"):
            yield from _rendezvous(b, rv.addr, "j", 0, 2, Address("b", 1))
        # Finally join correctly, releasing both.
        addrs = yield from _rendezvous(b, rv.addr, "j", 1, 2, Address("b", 2))
        return addrs

    net.sim.process(first())
    p = net.sim.process(mismatched_world())
    net.sim.run()
    assert p.value == [Address("a", 1), Address("b", 2)]


@pytest.fixture
def dual_gram_testbed():
    """Two RMF deployments on one testbed: one fronting the firewalled
    RWCP resources, one fronting ETL."""
    tb = Testbed()
    rv = RendezvousServer(tb.outer_host).start()

    rmf_rwcp = RMFSystem(tb.outer_host, tb.inner_host)
    rmf_rwcp.gatekeeper.port = 2119
    rmf_rwcp.add_resource(tb.rwcp_sun, name="RWCP-Sun", cpus=4)

    from repro.rmf.gatekeeper import Gatekeeper
    from repro.rmf.allocator import ResourceAllocator

    alloc_etl = ResourceAllocator(tb.etl_sun, port=7301)
    gk_etl = Gatekeeper(tb.etl_sun, alloc_etl.addr, port=2120)
    from repro.rmf.qsystem import QServer

    qs_etl = QServer(tb.etl_o2k, resource_name="ETL-O2K", cpus=8)
    alloc_etl.add_resource("ETL-O2K", tb.etl_o2k.name, qs_etl.port, cpus=8)

    rmf_rwcp.start()
    alloc_etl.start()
    gk_etl.start()
    qs_etl.start()
    return tb, rv, rmf_rwcp, gk_etl, qs_etl


def test_co_allocated_cross_site_mpi_job(dual_gram_testbed):
    """One client call starts a 4-rank MPI world spanning two
    gatekeepers, with the RWCP ranks publishing through the proxy."""
    tb, rv, rmf_rwcp, gk_etl, qs_etl = dual_gram_testbed

    def rank_main(comm):
        names = yield from gather(comm, comm.host.name, root=0)
        total = yield from allreduce(comm, comm.rank, lambda a, b: a + b)
        return (total, names)

    proxied = tb.proxy_addrs

    def rwcp_factory(host):
        return NexusContext(host, **proxied)

    # Each deployment's registry gets the executable with the right
    # proxy wiring for its site.
    rmf_rwcp.registry.register(
        "mpi-app",
        make_mpi_executable(rank_main, rv.addr, context_factory=rwcp_factory),
    )
    qs_etl.registry.register(
        "mpi-app", make_mpi_executable(rank_main, rv.addr)
    )

    def client():
        replies = yield from co_allocate(
            tb.etl_sun,
            [
                SubJob(
                    rmf_rwcp.gatekeeper.addr,
                    "&(executable=mpi-app)(count=2)(arguments=job42 4 0)"
                    "(resource=RWCP-Sun)",
                ),
                SubJob(
                    gk_etl.addr,
                    "&(executable=mpi-app)(count=2)(arguments=job42 4 2)"
                    "(resource=ETL-O2K)",
                ),
            ],
        )
        return replies

    p = tb.sim.process(client())
    replies = tb.sim.run(until=p)
    assert all(r.all_succeeded for r in replies)
    stdout = "".join(r.stdout for r in replies)
    # Every rank computed allreduce(0+1+2+3) = 6 over the full world.
    assert stdout.count(": (6,") == 4
    # Rank 0 gathered hostnames from both sites.
    assert "rwcp-sun" in stdout and "etl-o2k" in stdout
    assert rv.jobs_completed == 1


def test_co_allocate_validation():
    tb = Testbed()

    def run():
        with pytest.raises(RMFError, match="at least one"):
            yield from co_allocate(tb.etl_sun, [])
        return True

    p = tb.sim.process(run())
    tb.sim.run()
    assert p.value is True


def test_partial_failure_is_visible(dual_gram_testbed):
    """A bad sub-job RSL fails its reply without hanging the rest."""
    tb, rv, rmf_rwcp, gk_etl, qs_etl = dual_gram_testbed

    def client():
        replies = yield from co_allocate(
            tb.etl_sun,
            [
                SubJob(rmf_rwcp.gatekeeper.addr, "&(executable=echo)(arguments=ok)"),
                SubJob(gk_etl.addr, "&(count=broken)"),
            ],
        )
        return replies

    p = tb.sim.process(client())
    replies = tb.sim.run(until=p)
    assert replies[0].all_succeeded
    assert not replies[1].ok
