"""Dynamic registration, heartbeats, and liveness-based placement."""

import pytest

from repro.rmf import JobSpec, QServer, RMFError, ResourceAllocator
from repro.simnet import Network


def make_world():
    net = Network()
    alloc_h = net.add_host("alloc-host")
    r1 = net.add_host("res-1", cores=4)
    r2 = net.add_host("res-2", cores=4)
    switch = net.add_router("switch")
    for h in (alloc_h, r1, r2):
        net.link(h, switch, 1e-4, 1e7)
    alloc = ResourceAllocator(alloc_h, liveness_timeout=25.0).start()
    qs1 = QServer(r1, resource_name="R1", allocator_addr=alloc.addr,
                  heartbeat_interval=10.0).start()
    qs2 = QServer(r2, resource_name="R2", allocator_addr=alloc.addr,
                  heartbeat_interval=10.0).start()
    return net, alloc, qs1, qs2, r1, r2


def test_dynamic_registration_via_heartbeat():
    net, alloc, qs1, qs2, r1, r2 = make_world()
    net.sim.run(until=1.0)
    assert set(alloc.resources) == {"R1", "R2"}
    assert alloc.resources["R1"].cpus == 4


def test_heartbeats_keep_resources_alive():
    net, alloc, qs1, qs2, r1, r2 = make_world()
    net.sim.run(until=100.0)
    assert qs1.heartbeats_sent >= 9
    spec = JobSpec(executable="echo", count=8)
    assignments = alloc.select(spec)
    assert {a.resource for a in assignments} == {"R1", "R2"}


def test_crashed_resource_excluded_after_timeout():
    net, alloc, qs1, qs2, r1, r2 = make_world()
    net.sim.run(until=5.0)
    r1.crash()
    net.sim.run(until=60.0)  # > liveness_timeout past the last beat
    [a] = alloc.select(JobSpec(executable="echo", count=4))
    assert a.resource == "R2"
    with pytest.raises(RMFError, match="not responding"):
        alloc.select(JobSpec(executable="echo", count=4, resource="R1"))


def test_all_resources_dead():
    net, alloc, qs1, qs2, r1, r2 = make_world()
    net.sim.run(until=5.0)
    r1.crash()
    r2.crash()
    net.sim.run(until=60.0)
    with pytest.raises(RMFError, match="no live resources"):
        alloc.select(JobSpec(executable="echo", count=1))


def test_recovered_resource_rejoins():
    net, alloc, qs1, qs2, r1, r2 = make_world()
    net.sim.run(until=5.0)
    r1.crash()
    net.sim.run(until=60.0)
    # Bring the machine and a fresh daemon back.
    r1.recover()
    qs1b = QServer(r1, resource_name="R1", allocator_addr=alloc.addr,
                   heartbeat_interval=10.0).start()
    net.sim.run(until=80.0)
    assignments = alloc.select(JobSpec(executable="echo", count=8))
    assert {a.resource for a in assignments} == {"R1", "R2"}


def test_heartbeat_survives_allocator_restart():
    net, alloc, qs1, qs2, r1, r2 = make_world()
    net.sim.run(until=5.0)
    alloc.stop()
    net.sim.run(until=40.0)  # heartbeats fail silently, keep retrying
    alloc2 = ResourceAllocator(alloc.host, liveness_timeout=25.0).start()
    net.sim.run(until=80.0)
    # Both servers re-registered with the new allocator instance.
    assert set(alloc2.resources) == {"R1", "R2"}


def test_heartbeat_interval_validation():
    net = Network()
    h = net.add_host("h")
    with pytest.raises(RMFError):
        QServer(h, heartbeat_interval=0)
