"""Job lifecycle and GASS file-store tests."""

import pytest

from repro.rmf.gass import FileStore, StagingError
from repro.rmf.jobs import JobRecord, JobSpec, JobState, RMFError


# -- JobSpec ------------------------------------------------------------------


def test_spec_validation():
    with pytest.raises(RMFError):
        JobSpec(executable="")
    with pytest.raises(RMFError):
        JobSpec(executable="x", count=0)
    with pytest.raises(RMFError):
        JobSpec(executable="x", max_time=0)


def test_spec_defaults():
    s = JobSpec(executable="echo")
    assert s.count == 1 and s.resource is None and s.stage_in == ()


# -- JobRecord lifecycle --------------------------------------------------------


def make_record():
    return JobRecord(job_id=1, spec=JobSpec(executable="echo"), submitted_at=10.0)


def test_happy_path_transitions():
    r = make_record()
    assert r.state is JobState.PENDING
    r.mark_active(now=12.0)
    assert r.state is JobState.ACTIVE
    r.mark_done(now=15.0, exit_code=0, stdout="hi\n")
    assert r.state is JobState.DONE
    assert r.queued_time == pytest.approx(2.0)
    assert r.run_time == pytest.approx(3.0)


def test_failure_from_pending_and_active():
    r = make_record()
    r.mark_failed(now=11.0, error="no executable")
    assert r.state is JobState.FAILED
    assert r.exit_code == 1

    r2 = make_record()
    r2.mark_active(now=11.0)
    r2.mark_failed(now=12.0, error="crash")
    assert r2.state is JobState.FAILED


def test_illegal_transitions_rejected():
    r = make_record()
    with pytest.raises(RMFError):
        r.mark_done(now=1.0, exit_code=0, stdout="")
    r.mark_active(now=1.0)
    with pytest.raises(RMFError):
        r.mark_active(now=2.0)
    r.mark_done(now=2.0, exit_code=0, stdout="")
    with pytest.raises(RMFError):
        r.mark_failed(now=3.0, error="too late")


def test_terminal_property():
    assert JobState.DONE.terminal and JobState.FAILED.terminal
    assert not JobState.PENDING.terminal and not JobState.ACTIVE.terminal


# -- FileStore -------------------------------------------------------------------


def test_put_get_text_and_bytes():
    fs = FileStore("h")
    fs.put("a.txt", "hello")
    fs.put("b.bin", b"\x00\x01")
    assert fs.get_text("a.txt") == "hello"
    assert fs.get("b.bin") == b"\x00\x01"
    assert fs.size("a.txt") == 5
    assert fs.names() == ["a.txt", "b.bin"]
    assert len(fs) == 2


def test_missing_file_raises():
    fs = FileStore("h")
    with pytest.raises(StagingError, match="no such file"):
        fs.get("ghost")


def test_empty_name_rejected():
    fs = FileStore("h")
    with pytest.raises(StagingError):
        fs.put("", "x")


def test_delete_and_exists():
    fs = FileStore("h")
    fs.put("x", "1")
    assert fs.exists("x")
    fs.delete("x")
    assert not fs.exists("x")
    fs.delete("x")  # idempotent


def test_bundle_roundtrip():
    src = FileStore("src")
    src.put("in1", "aaa")
    src.put("in2", b"bbbb")
    bundle = src.bundle(["in1", "in2"])
    dst = FileStore("dst")
    dst.unbundle(bundle)
    assert dst.get_text("in1") == "aaa"
    assert dst.get("in2") == b"bbbb"


def test_bundle_missing_file_raises():
    with pytest.raises(StagingError):
        FileStore("src").bundle(["nope"])


def test_bundle_bytes_accounts_headers():
    assert FileStore.bundle_bytes({"a": b"xyz", "b": b""}) == 3 + 2 * 64
    assert FileStore.bundle_bytes({}) == 0
