"""Resource allocator: placement policy and wire protocol."""

import pytest

from repro.rmf.allocator import ResourceAllocator
from repro.rmf.jobs import JobSpec, RMFError
from repro.simnet import Network


def make_allocator():
    net = Network()
    h = net.add_host("alloc-host")
    alloc = ResourceAllocator(h)
    alloc.add_resource("compas", "compas-0", 7200, cpus=8, cpu_speed=0.5)
    alloc.add_resource("rwcp-sun", "rwcp-sun", 7200, cpus=4, cpu_speed=1.0)
    alloc.add_resource("etl-o2k", "etl-o2k", 7200, cpus=8, cpu_speed=0.9)
    return net, alloc


def test_pinned_resource():
    _, alloc = make_allocator()
    spec = JobSpec(executable="x", count=4, resource="rwcp-sun")
    [a] = alloc.select(spec)
    assert a.resource == "rwcp-sun" and a.nprocs == 4


def test_pinned_resource_too_small():
    _, alloc = make_allocator()
    with pytest.raises(RMFError, match="has 4 cpus"):
        alloc.select(JobSpec(executable="x", count=5, resource="rwcp-sun"))


def test_pinned_resource_unknown():
    _, alloc = make_allocator()
    with pytest.raises(RMFError, match="no such resource"):
        alloc.select(JobSpec(executable="x", count=1, resource="ghost"))


def test_single_resource_fit_prefers_big_idle_resource():
    _, alloc = make_allocator()
    [a] = alloc.select(JobSpec(executable="x", count=8))
    assert a.resource == "compas"  # 8 cpus, load 0, registered first


def test_spreads_across_resources_when_needed():
    _, alloc = make_allocator()
    assignments = alloc.select(JobSpec(executable="x", count=20))
    assert sum(a.nprocs for a in assignments) == 20
    assert {a.resource for a in assignments} == {"compas", "rwcp-sun", "etl-o2k"}
    for a in assignments:
        assert a.nprocs <= {"compas": 8, "rwcp-sun": 4, "etl-o2k": 8}[a.resource]


def test_overcommit_rejected():
    _, alloc = make_allocator()
    with pytest.raises(RMFError, match="only 20 cpus"):
        alloc.select(JobSpec(executable="x", count=21))


def test_load_steering():
    _, alloc = make_allocator()
    alloc.resources["compas"].running = 5
    alloc.resources["etl-o2k"].running = 1
    [a] = alloc.select(JobSpec(executable="x", count=4))
    assert a.resource == "rwcp-sun"  # the only idle one


def test_no_resources():
    net = Network()
    alloc = ResourceAllocator(net.add_host("h"))
    with pytest.raises(RMFError, match="no resources"):
        alloc.select(JobSpec(executable="x"))


def test_duplicate_resource_rejected():
    _, alloc = make_allocator()
    with pytest.raises(RMFError, match="duplicate"):
        alloc.add_resource("compas", "again", 7200, cpus=1)


def test_wire_protocol_register_load_alloc():
    from repro.rmf.allocator import AllocReply, AllocRequest, LoadReport, RegisterResource

    net = Network()
    ah = net.add_host("alloc-host")
    client_h = net.add_host("client")
    net.link(ah, client_h, 1e-4, 1e7)
    alloc = ResourceAllocator(ah).start()
    out = {}

    def client():
        conn = yield from client_h.connect(alloc.addr)
        yield conn.send(RegisterResource("r1", "host1", 7200, cpus=4))
        yield conn.send(RegisterResource("r2", "host2", 7200, cpus=2))
        yield conn.send(LoadReport("r1", running=3, queued=2))
        yield conn.send(AllocRequest(JobSpec(executable="x", count=2)))
        msg = yield conn.recv()
        out["reply"] = msg.payload
        conn.close()

    net.sim.process(client())
    net.sim.run()
    reply = out["reply"]
    assert reply.ok
    [a] = reply.assignments
    assert a.resource == "r2"  # r1 is loaded
    assert alloc.requests_served == 1
    # Optimistic load accounting bumped r2's queue.
    assert alloc.resources["r2"].queued == 1


def test_wire_protocol_bad_request():
    net = Network()
    ah = net.add_host("alloc-host")
    ch = net.add_host("client")
    net.link(ah, ch, 1e-4, 1e7)
    alloc = ResourceAllocator(ah).start()
    out = {}

    def client():
        conn = yield from ch.connect(alloc.addr)
        yield conn.send(12345)
        msg = yield conn.recv()
        out["reply"] = msg.payload
        conn.close()

    net.sim.process(client())
    net.sim.run()
    assert not out["reply"].ok
    assert "bad request" in out["reply"].error


def test_alloc_failure_reported_on_wire():
    from repro.rmf.allocator import AllocRequest

    net = Network()
    ah = net.add_host("alloc-host")
    ch = net.add_host("client")
    net.link(ah, ch, 1e-4, 1e7)
    alloc = ResourceAllocator(ah).start()  # no resources registered
    out = {}

    def client():
        conn = yield from ch.connect(alloc.addr)
        yield conn.send(AllocRequest(JobSpec(executable="x")))
        msg = yield conn.recv()
        out["reply"] = msg.payload
        conn.close()

    net.sim.process(client())
    net.sim.run()
    assert not out["reply"].ok
    assert "no resources" in out["reply"].error
