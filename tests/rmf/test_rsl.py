"""RSL parser tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rmf.jobs import JobSpec
from repro.rmf.rsl import RSLError, parse_relations, parse_rsl, unparse_rsl


def test_minimal():
    spec = parse_rsl("&(executable=echo)")
    assert spec.executable == "echo"
    assert spec.count == 1
    assert spec.arguments == ()


def test_full_request():
    spec = parse_rsl(
        '&(executable=knapsack)(count=8)(arguments="data.txt" 50)'
        "(resource=COMPaS)(maxTime=120)(stage_in=data.txt)(stage_out=result.txt)"
    )
    assert spec.executable == "knapsack"
    assert spec.count == 8
    assert spec.arguments == ("data.txt", "50")
    assert spec.resource == "COMPaS"
    assert spec.max_time == 120.0
    assert spec.stage_in == ("data.txt",)
    assert spec.stage_out == ("result.txt",)


def test_ampersand_optional_and_whitespace():
    spec = parse_rsl("  (executable = echo)\n (count = 3) ")
    assert spec.count == 3


def test_quoted_values_with_spaces():
    spec = parse_rsl('&(executable=echo)(arguments="hello world" \'single\')')
    assert spec.arguments == ("hello world", "single")


def test_case_insensitive_attributes():
    spec = parse_rsl("&(EXECUTABLE=echo)(Count=2)(MAXTIME=5)")
    assert spec.count == 2
    assert spec.max_time == 5.0


@pytest.mark.parametrize(
    "bad, match",
    [
        ("", "empty"),
        ("&executable=echo", "expected '\\('"),
        ("&(=echo)", "attribute name"),
        ("&(executable echo)", "expected '='"),
        ("&(executable=)", "no value"),
        ("&(executable=echo", "expected '\\)'"),
        ("&(executable=echo)(executable=cat)", "duplicate"),
        ('&(executable="unterminated)', "unterminated"),
        ("&(frobnicate=1)(executable=echo)", "unknown"),
        ("&(count=1)", "must specify"),
        ("&(executable=echo)(count=many)", "not an integer"),
        ("&(executable=echo)(maxtime=soon)", "not a number"),
        ("&(executable=echo)(count=1 2)", "one value"),
        ("&(executable=echo)(count=0)", "count"),
    ],
)
def test_rejects_malformed(bad, match):
    with pytest.raises(RSLError, match=match):
        parse_rsl(bad)


def test_parse_relations_raw():
    rel = parse_relations("&(a=1)(b=x y z)")
    assert rel == {"a": ["1"], "b": ["x", "y", "z"]}


def test_unparse_roundtrip():
    spec = JobSpec(
        executable="knapsack",
        count=20,
        arguments=("input file.txt", "50"),
        resource="Wide-area",
        stage_in=("input file.txt",),
        stage_out=("out.txt",),
        max_time=600.0,
    )
    assert parse_rsl(unparse_rsl(spec)) == spec


@given(
    executable=st.text(
        alphabet=st.characters(blacklist_characters="&()='\"", blacklist_categories=("Cs", "Cc")),
        min_size=1,
    ).filter(lambda s: s.strip() == s and s.strip() != ""),
    count=st.integers(min_value=1, max_value=4096),
    args=st.lists(
        st.text(
            alphabet=st.characters(blacklist_characters="&()='\"", blacklist_categories=("Cs", "Cc")),
            min_size=1,
        ).filter(lambda s: s.strip() == s),
        max_size=5,
    ),
)
def test_roundtrip_property(executable, count, args):
    spec = JobSpec(executable=executable, count=count, arguments=tuple(args))
    assert parse_rsl(unparse_rsl(spec)) == spec
