"""Figure 2 end-to-end: the full six-step RMF submission flow,
through a deny-based firewall."""

import pytest

from repro.rmf import RMFError, RMFSystem, parse_rsl, submit_job
from repro.simnet import Firewall, FirewallBlocked, Network


def make_deployment(gridmap=None):
    """Gatekeeper outside; allocator + two cluster resources inside."""
    net = Network()
    fw = Firewall.typical(reject=True)
    site = net.add_site("rwcp", firewall=fw)
    lan = net.add_router("lan", site=site)
    alloc_h = net.add_host("alloc-host", site=site)
    compas = net.add_host("compas", site=site, cpu_speed=0.5, cores=8)
    sun = net.add_host("rwcp-sun", site=site, cpu_speed=1.0, cores=4)
    gk_h = net.add_host("gatekeeper-host")
    user_h = net.add_host("user")
    for h in (alloc_h, compas, sun):
        net.link(h, lan, 1e-4, 6.9e6)
    net.link(lan, gk_h, 1e-3, 1e6)
    net.link(gk_h, user_h, 5e-3, 187.5e3)

    rmf = RMFSystem(gk_h, alloc_h, gridmap=gridmap)
    rmf.add_resource(compas, name="COMPaS", cpus=8)
    rmf.add_resource(sun, name="RWCP-Sun", cpus=4)
    rmf.start()
    return net, fw, rmf, user_h


def submit(net, rmf, user_h, rsl, subject="anonymous"):
    p = net.sim.process(rmf.submit(user_h, rsl, subject))
    net.sim.run()
    return p.value


def test_six_step_flow_echo():
    net, fw, rmf, user_h = make_deployment()
    reply = submit(net, rmf, user_h, "&(executable=echo)(arguments=grid hello)")
    assert reply.ok and reply.all_succeeded
    assert reply.stdout == "grid hello\n"
    assert rmf.gatekeeper.requests_handled == 1
    assert rmf.allocator.requests_served == 1


def test_job_runs_inside_the_firewall():
    """The whole point: the resource is unreachable directly, yet
    serves jobs through RMF."""
    net, fw, rmf, user_h = make_deployment()

    def direct_attempt():
        with pytest.raises(FirewallBlocked):
            yield from user_h.connect(("compas", 7200))
        return True

    p = net.sim.process(direct_attempt())
    net.sim.run()
    assert p.value is True

    reply = submit(net, rmf, user_h, "&(executable=echo)(arguments=via rmf)(resource=COMPaS)")
    assert reply.all_succeeded
    assert reply.results[0].resource == "compas"


def test_pinned_resource_respected():
    net, fw, rmf, user_h = make_deployment()
    reply = submit(net, rmf, user_h, "&(executable=sleep)(arguments=1)(resource=RWCP-Sun)")
    assert reply.all_succeeded
    assert reply.results[0].resource == "rwcp-sun"


def test_multi_resource_fanout():
    """A 12-way job does not fit one resource: the allocator splits it
    and the job manager collects both sub-results."""
    net, fw, rmf, user_h = make_deployment()
    reply = submit(net, rmf, user_h, "&(executable=echo)(count=12)(arguments=part)")
    assert reply.ok
    assert len(reply.results) == 2
    assert {r.resource for r in reply.results} == {"compas", "rwcp-sun"}
    assert reply.all_succeeded


def test_authentication_gridmap():
    net, fw, rmf, user_h = make_deployment(gridmap={"/O=Grid/CN=alice": "alice"})
    denied = submit(net, rmf, user_h, "&(executable=echo)", subject="/O=Grid/CN=mallory")
    assert not denied.ok
    assert "authentication failed" in denied.error
    assert rmf.gatekeeper.auth_failures == 1

    allowed = submit(net, rmf, user_h, "&(executable=echo)(arguments=hi)",
                     subject="/O=Grid/CN=alice")
    assert allowed.all_succeeded


def test_bad_rsl_reported():
    net, fw, rmf, user_h = make_deployment()
    reply = submit(net, rmf, user_h, "&(count=2)")
    assert not reply.ok
    assert "executable" in reply.error


def test_unallocatable_job_reported():
    net, fw, rmf, user_h = make_deployment()
    reply = submit(net, rmf, user_h, "&(executable=echo)(count=999)")
    assert not reply.ok
    assert "allocation failed" in reply.error


def test_file_staging_through_the_flow():
    net, fw, rmf, user_h = make_deployment()
    rmf.gatekeeper.staging.put("data.txt", "payload from outside")
    reply = submit(
        net, rmf, user_h,
        "&(executable=cat)(arguments=data.txt)(stage_in=data.txt)(resource=COMPaS)",
    )
    assert reply.all_succeeded
    assert reply.stdout == "payload from outside"


def test_failed_subjob_visible_in_reply():
    net, fw, rmf, user_h = make_deployment()
    reply = submit(net, rmf, user_h, "&(executable=false)")
    assert reply.ok  # the *flow* worked
    assert not reply.all_succeeded  # but the job exited 1
    assert reply.results[0].exit_code == 1


def test_pinholes_are_minimal():
    """RMF opens exactly three pinholes (allocator + 2 Q servers), all
    pinned to the gatekeeper host."""
    net, fw, rmf, user_h = make_deployment()
    # Three pinned rules; two distinct port numbers (both Q servers
    # share 7200 on different hosts).
    assert len(fw.rules) == 3
    assert fw.exposure() == 2
    for rule in fw.rules:
        assert rule.src_host == "gatekeeper-host"
        assert rule.dst_host is not None


def test_concurrent_submissions_spread_by_load():
    net, fw, rmf, user_h = make_deployment()
    results = {}

    def one(i):
        reply = yield from rmf.submit(user_h, "&(executable=sleep)(arguments=5)")
        results[i] = reply.results[0].resource

    for i in range(2):
        net.sim.process(one(i))
    net.sim.run()
    # Optimistic load accounting sends the second job elsewhere.
    assert set(results.values()) == {"compas", "rwcp-sun"}
