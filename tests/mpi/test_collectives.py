"""Collective operations."""

import operator

import pytest

from repro.mpi import MPIError, MPIWorld, allreduce, barrier, bcast, gather, reduce, scatter

from .test_mpi import flat_network, launch  # noqa: F401  (helper reuse)


def test_barrier_synchronizes():
    net, hosts = flat_network(4)

    def main(comm):
        # Each rank sleeps a different time before the barrier.
        yield comm.sim.timeout(comm.rank * 2.0)
        yield from barrier(comm)
        return comm.wtime()

    times = launch(net, hosts, main)
    slowest = max(times)
    # Nobody leaves before the slowest entered (6.0 s).
    assert all(t >= 6.0 for t in times)
    assert slowest - min(times) < 0.5  # release is near-simultaneous


def test_bcast():
    net, hosts = flat_network(4)

    def main(comm):
        value = {"params": [1, 2, 3]} if comm.rank == 0 else None
        got = yield from bcast(comm, value, root=0, nbytes=200)
        return got

    results = launch(net, hosts, main)
    assert all(r == {"params": [1, 2, 3]} for r in results)


def test_bcast_nonzero_root():
    net, hosts = flat_network(3)

    def main(comm):
        value = "from-2" if comm.rank == 2 else None
        return (yield from bcast(comm, value, root=2))

    assert launch(net, hosts, main) == ["from-2"] * 3


def test_gather():
    net, hosts = flat_network(4)

    def main(comm):
        return (yield from gather(comm, comm.rank * 10, root=0))

    results = launch(net, hosts, main)
    assert results[0] == [0, 10, 20, 30]
    assert results[1:] == [None, None, None]


def test_reduce_sum():
    net, hosts = flat_network(5)

    def main(comm):
        return (yield from reduce(comm, comm.rank + 1, operator.add, root=0))

    results = launch(net, hosts, main)
    assert results[0] == 15
    assert results[1:] == [None] * 4


def test_allreduce_max():
    net, hosts = flat_network(4)

    def main(comm):
        return (yield from allreduce(comm, comm.rank * 7, max))

    assert launch(net, hosts, main) == [21] * 4


def test_scatter():
    net, hosts = flat_network(3)

    def main(comm):
        values = ["a", "b", "c"] if comm.rank == 0 else None
        return (yield from scatter(comm, values, root=0))

    assert launch(net, hosts, main) == ["a", "b", "c"]


def test_scatter_wrong_arity():
    net, hosts = flat_network(2)

    def main(comm):
        yield comm.sim.timeout(0)
        if comm.rank == 0:
            with pytest.raises(MPIError, match="exactly 2 values"):
                yield from scatter(comm, ["only-one"], root=0)
            # Unblock rank 1 with a real scatter.
            return (yield from scatter(comm, ["x", "y"], root=0))
        return (yield from scatter(comm, None, root=0))

    # Both scatter calls must use the same collective sequence; the
    # failed attempt on rank 0 must not have consumed a tag.
    results = launch(net, hosts, main)
    assert results == ["x", "y"]


def test_consecutive_collectives_do_not_cross_talk():
    net, hosts = flat_network(3)

    def main(comm):
        a = yield from bcast(comm, "first" if comm.rank == 0 else None)
        b = yield from bcast(comm, "second" if comm.rank == 0 else None)
        yield from barrier(comm)
        c = yield from allreduce(comm, 1, operator.add)
        return (a, b, c)

    results = launch(net, hosts, main)
    assert all(r == ("first", "second", 3) for r in results)


def test_collectives_coexist_with_p2p_traffic():
    net, hosts = flat_network(2)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send("p2p", dest=1, tag=0)
            v = yield from bcast(comm, "coll", root=0)
            return v
        v = yield from bcast(comm, None, root=0)
        payload, _ = yield from comm.recv(source=0, tag=0)
        return (v, payload)

    results = launch(net, hosts, main)
    assert results[0] == "coll"
    assert results[1] == ("coll", "p2p")
