"""Nonblocking MPI operations: irecv/isend/sendrecv/waitall."""

import pytest

from repro.mpi import ANY_SOURCE, MPIError, waitall

from tests.mpi.test_mpi import flat_network, launch


def test_irecv_completes_on_arrival():
    net, hosts = flat_network(2)

    def main(comm):
        if comm.rank == 0:
            yield comm.sim.timeout(1.0)
            yield from comm.send("late", dest=1, tag=4, nbytes=80)
            return None
        req = comm.irecv(source=0, tag=4)
        assert not req.completed
        assert req.test() is None
        payload, status = yield from req.wait()
        return (payload, status.tag, comm.wtime() >= 1.0)

    results = launch(net, hosts, main)
    assert results[1] == ("late", 4, True)


def test_irecv_matches_already_pending():
    net, hosts = flat_network(2)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send("early", dest=1)
            return None
        comm.iprobe()  # starts the delivery pump
        yield comm.sim.timeout(1.0)  # message arrives meanwhile
        req = comm.irecv(source=0)
        assert req.completed
        got = req.test()
        assert got is not None
        payload, status = got
        return payload

    results = launch(net, hosts, main)
    assert results[1] == "early"


def test_isend_overlaps_computation():
    net, hosts = flat_network(2)

    def main(comm):
        if comm.rank == 0:
            req = comm.isend("payload", dest=1, nbytes=5000)
            # Compute while the send progresses.
            yield comm.sim.timeout(0.5)
            yield from req.wait()
            return True
        payload, _ = yield from comm.recv(source=0)
        return payload

    results = launch(net, hosts, main)
    assert results == [True, "payload"]


def test_double_wait_rejected():
    net, hosts = flat_network(2)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send("x", dest=1)
            return True
        req = comm.irecv(source=0)
        yield from req.wait()
        with pytest.raises(MPIError, match="already waited"):
            yield from req.wait()
        return True

    assert launch(net, hosts, main) == [True, True]


def test_waitall_collects_in_order():
    net, hosts = flat_network(3)

    def main(comm):
        if comm.rank == 0:
            reqs = [comm.irecv(source=s, tag=1) for s in (1, 2)]
            results = yield from waitall(reqs)
            return [payload for payload, _ in results]
        yield comm.sim.timeout(0.1 * comm.rank)
        yield from comm.send(f"from-{comm.rank}", dest=0, tag=1)
        return None

    results = launch(net, hosts, main)
    assert results[0] == ["from-1", "from-2"]


def test_waitall_empty():
    net, hosts = flat_network(1)

    def main(comm):
        out = yield from waitall([])
        yield comm.sim.timeout(0)
        return out

    assert launch(net, hosts, main) == [[]]


def test_sendrecv_ring_shift_no_deadlock():
    """Every rank simultaneously sends right and receives from left —
    the pattern that deadlocks with naive blocking sends."""
    net, hosts = flat_network(5)

    def main(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        payload, status = yield from comm.sendrecv(
            comm.rank, dest=right, source=left, sendtag=9, recvtag=9
        )
        return (payload, status.source)

    results = launch(net, hosts, main)
    assert results == [((r - 1) % 5, (r - 1) % 5) for r in range(5)]


def test_mixed_blocking_and_nonblocking_ordering():
    """Waiters (blocking or not) match arrivals in registration order."""
    net, hosts = flat_network(2)

    def main(comm):
        if comm.rank == 0:
            for i in range(3):
                yield from comm.send(i, dest=1, tag=2)
            return None
        req_a = comm.irecv(source=0, tag=2)
        req_b = comm.irecv(source=0, tag=2)
        last, _ = yield from comm.recv(source=0, tag=2)
        a, _ = yield from req_a.wait()
        b, _ = yield from req_b.wait()
        return (a, b, last)

    results = launch(net, hosts, main)
    assert results[1] == (0, 1, 2)


def test_isend_validation():
    net, hosts = flat_network(2)

    def main(comm):
        yield comm.sim.timeout(0)
        if comm.rank == 0:
            with pytest.raises(MPIError):
                comm.isend("x", dest=9)
            with pytest.raises(MPIError):
                comm.isend("x", dest=1, tag=-1)
        return True

    assert launch(net, hosts, main) == [True, True]
