"""MPI layer: point-to-point semantics, wildcards, worlds."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, MPIError, MPIWorld
from repro.simnet import Network


def flat_network(n=4, latency=1e-4, bandwidth=1e7):
    """n hosts on a switch."""
    net = Network()
    switch = net.add_router("switch")
    hosts = []
    for i in range(n):
        h = net.add_host(f"h{i}")
        net.link(h, switch, latency, bandwidth)
        hosts.append(h)
    return net, hosts


def launch(net, hosts, main, *args):
    world = MPIWorld(net)
    world.add_ranks(hosts)

    def driver():
        return (yield from world.launch(main, *args))

    p = net.sim.process(driver())
    net.sim.run()
    return p.value


def test_rank_and_size():
    net, hosts = flat_network(3)

    def main(comm):
        yield comm.sim.timeout(0)
        return (comm.rank, comm.size)

    results = launch(net, hosts, main)
    assert results == [(0, 3), (1, 3), (2, 3)]


def test_send_recv_pair():
    net, hosts = flat_network(2)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send({"x": 42}, dest=1, tag=7, nbytes=100)
            return None
        payload, status = yield from comm.recv(source=0, tag=7)
        return (payload, status.source, status.tag, status.nbytes)

    results = launch(net, hosts, main)
    assert results[1] == ({"x": 42}, 0, 7, 100)


def test_messages_from_one_sender_arrive_in_order():
    net, hosts = flat_network(2)

    def main(comm):
        if comm.rank == 0:
            for i in range(10):
                yield from comm.send(i, dest=1, tag=0, nbytes=50)
            return None
        got = []
        for _ in range(10):
            payload, _ = yield from comm.recv(source=0, tag=0)
            got.append(payload)
        return got

    results = launch(net, hosts, main)
    assert results[1] == list(range(10))


def test_tag_selective_recv():
    """recv(tag=5) skips an earlier-arrived tag-3 message."""
    net, hosts = flat_network(2)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send("three", dest=1, tag=3)
            yield from comm.send("five", dest=1, tag=5)
            return None
        payload5, _ = yield from comm.recv(source=0, tag=5)
        payload3, _ = yield from comm.recv(source=0, tag=3)
        return (payload5, payload3)

    results = launch(net, hosts, main)
    assert results[1] == ("five", "three")


def test_any_source_any_tag():
    net, hosts = flat_network(3)

    def main(comm):
        if comm.rank == 0:
            got = []
            for _ in range(2):
                payload, status = yield from comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                got.append((payload, status.source))
            return sorted(got)
        yield from comm.send(f"from-{comm.rank}", dest=0, tag=comm.rank)
        return None

    results = launch(net, hosts, main)
    assert results[0] == [("from-1", 1), ("from-2", 2)]


def test_self_send():
    net, hosts = flat_network(1)

    def main(comm):
        yield from comm.send("me", dest=0, tag=1)
        payload, status = yield from comm.recv()
        return (payload, status.source)

    results = launch(net, hosts, main)
    assert results[0] == ("me", 0)


def test_iprobe():
    net, hosts = flat_network(2)

    def main(comm):
        if comm.rank == 0:
            yield comm.sim.timeout(1.0)
            yield from comm.send("x", dest=1, tag=9)
            return None
        assert comm.iprobe() is None
        yield comm.sim.timeout(2.0)
        st = comm.iprobe(source=0, tag=9)
        assert st is not None and st.tag == 9
        # iprobe does not consume:
        payload, _ = yield from comm.recv(source=0, tag=9)
        return payload

    results = launch(net, hosts, main)
    assert results[1] == "x"


def test_probe_blocks_until_message():
    net, hosts = flat_network(2)

    def main(comm):
        if comm.rank == 0:
            yield comm.sim.timeout(3.0)
            yield from comm.send("late", dest=1, tag=2, nbytes=80)
            return None
        st = yield from comm.probe(source=0, tag=2)
        assert comm.sim.now >= 3.0
        assert st.nbytes == 80
        payload, _ = yield from comm.recv(source=0, tag=2)
        return payload

    results = launch(net, hosts, main)
    assert results[1] == "late"


def test_invalid_ranks_and_tags():
    net, hosts = flat_network(2)

    def main(comm):
        yield comm.sim.timeout(0)
        if comm.rank == 0:
            with pytest.raises(MPIError):
                yield from comm.send("x", dest=5)
            with pytest.raises(MPIError):
                yield from comm.send("x", dest=0, tag=-3)
            with pytest.raises(MPIError):
                yield from comm.recv(source=7)
        return True

    assert launch(net, hosts, main) == [True, True]


def test_counters():
    net, hosts = flat_network(2)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send("x", dest=1, nbytes=500)
            return (comm.messages_sent, comm.bytes_sent)
        yield from comm.recv()
        return (comm.messages_received, comm.bytes_received)

    results = launch(net, hosts, main)
    assert results[0] == (1, 500)
    assert results[1] == (1, 500)


def test_world_validation():
    net, hosts = flat_network(2)
    world = MPIWorld(net)

    def init_empty():
        yield from world.initialize()

    p = net.sim.process(init_empty())
    with pytest.raises(MPIError, match="no ranks"):
        net.sim.run()

    world2 = MPIWorld(net)
    world2.add_rank(hosts[0])

    def init_twice():
        yield from world2.initialize()
        with pytest.raises(MPIError, match="already initialized"):
            yield from world2.initialize()
        with pytest.raises(MPIError, match="already initialized"):
            world2.add_rank(hosts[1])
        return True

    p2 = net.sim.process(init_twice())
    net.sim.run()
    assert p2.value is True


def test_first_message_pays_connection_setup():
    net, hosts = flat_network(2, latency=5e-3)

    def main(comm):
        if comm.rank == 0:
            t0 = comm.wtime()
            yield from comm.send("a", dest=1, nbytes=10)
            t1 = comm.wtime()
            yield from comm.send("b", dest=1, nbytes=10)
            t2 = comm.wtime()
            return (t1 - t0, t2 - t1)
        yield from comm.recv()
        yield from comm.recv()
        return None

    results = launch(net, hosts, main)
    first, second = results[0]
    # First send waits for the TCP handshake (~2 * 10 ms RTT legs);
    # the second reuses the cached connection.
    assert first > 15e-3
    assert second < first / 3
