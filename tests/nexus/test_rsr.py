"""Remote service requests: handler registration and dispatch."""

import pytest

from repro.nexus import NexusContext, NexusError, RSREnvelope
from repro.simnet import Network


def make_pair():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, 1e-4, 1e7)
    return net, a, b


def test_rsr_invokes_handler():
    net, a, b = make_pair()
    calls = []
    out = {}

    def handler(endpoint, payload, nbytes):
        calls.append((payload, nbytes))
        yield endpoint.sim.timeout(0)

    def server():
        ctx = NexusContext(b)
        ep = yield from ctx.create_endpoint("svc")
        ep.register_handler(7, handler)
        out["addr"] = ep.addr
        yield net.sim.timeout(5.0)
        out["dispatched"] = ep.rsrs_dispatched
        out["queued"] = ep.pending

    def client():
        while "addr" not in out:
            yield net.sim.timeout(1e-4)
        ctx = NexusContext(a)
        sp = ctx.startpoint(out["addr"])
        yield from sp.send_rsr(7, {"op": "work"}, nbytes=100)
        yield from sp.send_rsr(7, {"op": "more"}, nbytes=50)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert [c[0] for c in calls] == [{"op": "work"}, {"op": "more"}]
    assert all(n >= 50 for _, n in calls)
    assert out["dispatched"] == 2
    assert out["queued"] == 0  # handler traffic bypasses the queue


def test_unknown_handler_falls_back_to_queue():
    net, a, b = make_pair()
    out = {}

    def server():
        ctx = NexusContext(b)
        ep = yield from ctx.create_endpoint("svc")
        out["addr"] = ep.addr
        d = yield ep.receive()
        out["stray"] = d.payload
        out["unhandled"] = ep.rsrs_unhandled

    def client():
        while "addr" not in out:
            yield net.sim.timeout(1e-4)
        ctx = NexusContext(a)
        yield from ctx.startpoint(out["addr"]).send_rsr(99, "lost", nbytes=10)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert isinstance(out["stray"], RSREnvelope)
    assert out["stray"].handler_id == 99
    assert out["unhandled"] == 1


def test_handler_and_queue_traffic_coexist():
    net, a, b = make_pair()
    handled = []
    out = {}

    def handler(endpoint, payload, nbytes):
        handled.append(payload)
        yield endpoint.sim.timeout(0)

    def server():
        ctx = NexusContext(b)
        ep = yield from ctx.create_endpoint("svc")
        ep.register_handler(1, handler)
        out["addr"] = ep.addr
        d = yield ep.receive()
        out["queued"] = d.payload

    def client():
        while "addr" not in out:
            yield net.sim.timeout(1e-4)
        ctx = NexusContext(a)
        sp = ctx.startpoint(out["addr"])
        yield from sp.send_rsr(1, "for-the-handler", nbytes=20)
        yield from sp.send("for-the-queue", nbytes=20)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert handled == ["for-the-handler"]
    assert out["queued"] == "for-the-queue"


def test_handler_can_reply_via_startpoint():
    """The RPC shape: request handler issues an RSR back to the caller."""
    net, a, b = make_pair()
    out = {}

    def server():
        ctx = NexusContext(b)
        ep = yield from ctx.create_endpoint("svc")

        def compute_handler(endpoint, payload, nbytes):
            reply_to, x = payload
            sp = ctx.startpoint(reply_to)
            yield from sp.send_rsr(2, x * x, nbytes=16)

        ep.register_handler(1, compute_handler)
        out["addr"] = ep.addr

    def client():
        while "addr" not in out:
            yield net.sim.timeout(1e-4)
        ctx = NexusContext(a)
        ep = yield from ctx.create_endpoint("reply")
        done = net.sim.event()

        def reply_handler(endpoint, payload, nbytes):
            out["answer"] = payload
            done.succeed()
            yield endpoint.sim.timeout(0)

        ep.register_handler(2, reply_handler)
        yield from ctx.startpoint(out["addr"]).send_rsr(1, (ep.addr, 12), nbytes=32)
        yield done

    net.sim.process(server())
    p = net.sim.process(client())
    net.sim.run(until=p)
    assert out["answer"] == 144


def test_duplicate_handler_rejected():
    net, a, b = make_pair()

    def proc():
        ctx = NexusContext(b)
        ep = yield from ctx.create_endpoint("svc")
        ep.register_handler(1, lambda e, p, n: iter(()))
        with pytest.raises(NexusError, match="already registered"):
            ep.register_handler(1, lambda e, p, n: iter(()))
        ep.unregister_handler(1)
        ep.register_handler(1, lambda e, p, n: iter(()))  # fine now
        ep.unregister_handler(42)  # unknown id: no-op
        return True

    p = net.sim.process(proc())
    net.sim.run()
    assert p.value is True


def test_rsr_through_the_proxy():
    """Handlers fire across the firewall like everything else."""
    from repro.cluster import Testbed

    tb = Testbed()
    out = {}

    def inside():
        ctx = NexusContext(tb.rwcp_sun, **tb.proxy_addrs)
        ep = yield from ctx.create_endpoint("svc")

        def handler(endpoint, payload, nbytes):
            out["payload"] = payload
            yield endpoint.sim.timeout(0)

        ep.register_handler(5, handler)
        out["addr"] = ep.addr

    def outside():
        while "addr" not in out:
            yield tb.sim.timeout(1e-3)
        ctx = NexusContext(tb.etl_sun)
        yield from ctx.startpoint(out["addr"]).send_rsr(5, "over the wall", nbytes=64)
        yield tb.sim.timeout(1.0)

    tb.sim.process(inside())
    p = tb.sim.process(outside())
    tb.sim.run(until=p)
    assert out["payload"] == "over the wall"
