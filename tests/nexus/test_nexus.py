"""Nexus layer: contexts, endpoints, startpoints in all three modes."""

import pytest

from repro.core import InnerServer, OuterServer
from repro.nexus import NexusContext, NexusError, PortRangeExhausted, TcpProtocolModule
from repro.simnet import Firewall, Network


def make_world():
    """Two sites: 'rwcp' firewalled (with relay servers), 'etl' open."""
    net = Network()
    fw = Firewall.typical(reject=True)
    rwcp = net.add_site("rwcp", firewall=fw)
    etl = net.add_site("etl")
    pa = net.add_host("pa", site=rwcp)
    innerh = net.add_host("innerh", site=rwcp)
    lan = net.add_router("lan", site=rwcp)
    outerh = net.add_host("outerh", cores=2)
    pb = net.add_host("pb", site=etl)
    net.link(pa, lan, 1e-4, 6.9e6)
    net.link(innerh, lan, 1e-4, 6.9e6)
    net.link(lan, outerh, 1e-4, 6.9e6)
    net.link(outerh, pb, 3.5e-3, 187.5e3)
    outer = OuterServer(outerh).start()
    inner = InnerServer(innerh)
    inner.open_firewall_pinhole("outerh")
    inner.start()
    return net, fw, pa, pb, innerh, outer, inner


def test_proxy_mode_endpoint_is_published_on_outer():
    net, fw, pa, pb, innerh, outer, inner = make_world()
    out = {}

    def inside():
        ctx = NexusContext(pa, outer_addr=outer.control_addr, inner_addr=inner.addr)
        assert ctx.proxied
        ep = yield from ctx.create_endpoint("svc")
        assert ep.is_proxied
        assert ep.addr.host == "outerh"
        out["addr"] = ep.addr

        delivery = yield ep.receive()
        out["got"] = (delivery.payload, delivery.nbytes)

    def outside():
        while "addr" not in out:
            yield net.sim.timeout(1e-3)
        ctx = NexusContext(pb)  # open mode
        sp = ctx.startpoint(out["addr"])
        yield from sp.send("over the wall", nbytes=2000)

    net.sim.process(inside())
    net.sim.process(outside())
    net.sim.run()
    assert out["got"] == ("over the wall", 2000)


def test_open_mode_endpoint_is_direct():
    net, fw, pa, pb, innerh, outer, inner = make_world()
    out = {}

    def server():
        ctx = NexusContext(pb)
        ep = yield from ctx.create_endpoint("svc")
        assert not ep.is_proxied
        assert ep.addr.host == "pb"
        out["addr"] = ep.addr
        d = yield ep.receive()
        out["got"] = d.payload

    def client():
        while "addr" not in out:
            yield net.sim.timeout(1e-3)
        # innerh is inside but outbound is allowed: direct connect works.
        ctx = NexusContext(innerh)
        yield from ctx.startpoint(out["addr"]).send("direct out", nbytes=100)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert out["got"] == "direct out"


def test_port_range_mode_reproduces_globus11():
    net, fw, pa, pb, innerh, outer, inner = make_world()
    out = {}

    def inside():
        ctx = NexusContext(pa, port_min=40000, port_max=40004)
        ctx.tcp.open_firewall_range()
        ep = yield from ctx.create_endpoint("svc")
        assert 40000 <= ep.addr.port <= 40004
        out["addr"] = ep.addr
        d = yield ep.receive()
        out["got"] = d.payload

    def outside():
        while "addr" not in out:
            yield net.sim.timeout(1e-3)
        ctx = NexusContext(pb)
        yield from ctx.startpoint(out["addr"]).send("through the range", nbytes=64)

    net.sim.process(inside())
    net.sim.process(outside())
    net.sim.run()
    assert out["got"] == "through the range"
    # Security cost: the whole range is now exposed (plus the nxport
    # pinhole the deployment already had).
    assert fw.exposure() == 6


def test_port_range_exhaustion():
    net = Network()
    h = net.add_host("h")
    tcp = TcpProtocolModule(h, 50000, 50002)
    assert tcp.range_width == 3
    for _ in range(3):
        tcp.listen()
    with pytest.raises(PortRangeExhausted):
        tcp.listen()


def test_tcpproto_validation():
    net = Network()
    h = net.add_host("h")
    with pytest.raises(ValueError):
        TcpProtocolModule(h, 40000, None)
    with pytest.raises(ValueError):
        TcpProtocolModule(h, 40005, 40000)
    assert not TcpProtocolModule(h).confined


def test_proxy_and_port_range_exclusive():
    net = Network()
    h = net.add_host("h")
    with pytest.raises(NexusError):
        NexusContext(h, outer_addr=("o", 7000), port_min=1, port_max=2)


def test_duplicate_endpoint_name_rejected():
    net = Network()
    h = net.add_host("h")

    def proc():
        ctx = NexusContext(h)
        yield from ctx.create_endpoint("e")
        with pytest.raises(NexusError, match="duplicate"):
            yield from ctx.create_endpoint("e")
        return True

    p = net.sim.process(proc())
    net.sim.run()
    assert p.value is True


def test_startpoint_lazy_and_cached():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, 1e-4, 1e7)
    out = {}

    def server():
        ctx = NexusContext(b)
        ep = yield from ctx.create_endpoint("e")
        out["addr"] = ep.addr
        d1 = yield ep.receive()
        d2 = yield ep.receive()
        out["msgs"] = [d1.payload, d2.payload]
        out["conns"] = ep.connections_accepted

    def client():
        while "addr" not in out:
            yield net.sim.timeout(1e-4)
        ctx = NexusContext(a)
        sp1 = ctx.startpoint(out["addr"])
        assert not sp1.connected  # lazy
        yield from sp1.send("one", nbytes=10)
        assert sp1.connected
        sp2 = ctx.startpoint(out["addr"])
        assert sp2 is sp1  # cached
        yield from sp2.send("two", nbytes=10)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert out["msgs"] == ["one", "two"]
    assert out["conns"] == 1  # one connection for both messages


def test_startpoint_connect_failure():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, 1e-4, 1e7)

    def client():
        ctx = NexusContext(a)
        sp = ctx.startpoint(("b", 12345))  # nothing there
        with pytest.raises(NexusError, match="failed"):
            yield from sp.send("x", nbytes=10)
        return True

    p = net.sim.process(client())
    net.sim.run()
    assert p.value is True


def test_endpoint_receive_timeout_preserves_messages():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, 1e-4, 1e7)
    out = {}

    def server():
        ctx = NexusContext(b)
        ep = yield from ctx.create_endpoint("e")
        out["addr"] = ep.addr
        with pytest.raises(TimeoutError):
            yield ep.receive(timeout=0.05)
        d = yield ep.receive()
        out["late"] = d.payload

    def client():
        while "addr" not in out:
            yield net.sim.timeout(1e-4)
        yield net.sim.timeout(0.2)
        ctx = NexusContext(a)
        yield from ctx.startpoint(out["addr"]).send("late", nbytes=10)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert out["late"] == "late"


def test_context_shutdown_closes_everything():
    net = Network()
    h = net.add_host("h")

    def proc():
        ctx = NexusContext(h)
        ep = yield from ctx.create_endpoint("e")
        ctx.shutdown()
        assert ep.closed
        with pytest.raises(NexusError):
            yield ep.receive()
        return True

    p = net.sim.process(proc())
    net.sim.run()
    assert p.value is True


def test_try_receive_and_pending():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, 1e-4, 1e7)
    out = {}

    def server():
        ctx = NexusContext(b)
        ep = yield from ctx.create_endpoint("e")
        out["addr"] = ep.addr
        assert ep.try_receive() is None
        yield net.sim.timeout(1.0)  # let the message arrive
        out["pending"] = ep.pending
        d = ep.try_receive()
        out["got"] = d.payload if d else None

    def client():
        while "addr" not in out:
            yield net.sim.timeout(1e-4)
        ctx = NexusContext(a)
        yield from ctx.startpoint(out["addr"]).send("queued", nbytes=10)

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
    assert out["pending"] == 1
    assert out["got"] == "queued"
