"""Causal trace contexts: minting, propagation, byte-stability.

The two contracts under test:

* **Off means invisible**: with tracing disabled (the default), every
  instrumentation point added for causal tracing is a no-op — a run
  that once had tracing enabled and then disabled exports bytes
  identical to a run that never heard of it.
* **On means connected**: with tracing enabled, an RMF submission's
  spans across client, gatekeeper, relay, and queue system all carry
  the same trace id, and every ``parent`` link resolves to a recorded
  span — the invariant ``repro-obs assemble`` builds flow events from.
"""

import pytest

from repro.obs import spans
from repro.obs import trace
from repro.obs.export import dumps, to_chrome
from repro.rmf import RMFSystem
from repro.simnet import Firewall, Network


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    trace.disable()


# -- unit: the context algebra ------------------------------------------------


def test_mint_returns_none_when_disabled():
    assert not trace.ENABLED
    assert trace.mint("op") is None
    assert trace.child(None) is None
    assert trace.span_args(None) == {}
    assert trace.wire_args(None) == {}


def test_mint_child_accept_when_enabled():
    trace.enable("cli")
    root = trace.mint("submit")
    assert root is not None
    assert root.trace_id == "clisubmit-1"
    assert root.parent_id is None
    kid = trace.child(root)
    assert kid.trace_id == root.trace_id
    assert kid.parent_id == root.span_id
    assert kid.span_id != root.span_id
    hop = trace.accept(kid.to_wire())
    assert hop.trace_id == root.trace_id
    assert hop.parent_id == kid.span_id


def test_ids_are_deterministic_across_reruns():
    trace.enable("s")
    first = [trace.mint("op").to_wire() for _ in range(3)]
    trace.enable("s")  # reset counters, same site
    second = [trace.mint("op").to_wire() for _ in range(3)]
    assert first == second


def test_wire_roundtrip_and_tolerant_parse():
    trace.enable("x")
    ctx = trace.mint("connect")
    back = trace.TraceContext.from_wire(ctx.to_wire())
    assert back.trace_id == ctx.trace_id
    assert back.span_id == ctx.span_id
    # Malformed wire forms from old/foreign peers parse to None.
    for bad in (None, 42, "", "a", "a/b", "a/b/zz", "//1", "a//1"):
        assert trace.TraceContext.from_wire(bad) is None
        assert trace.accept(bad) is None
    assert trace.wire_args("a/b/1") == {"trace": "a", "parent": "b"}


def test_accept_works_with_local_tracing_off():
    """A tag on the wire means the origin opted in; the receiver must
    honour it even if its own tracing is off."""
    assert not trace.ENABLED
    hop = trace.accept("t-1/s1/1")
    assert hop is not None
    assert hop.trace_id == "t-1"
    assert trace.span_args(hop)["trace"] == "t-1"


def test_span_args_shape():
    trace.enable("")
    root = trace.mint("op")
    args = trace.span_args(root)
    assert set(args) == {"trace", "span"}
    kid_args = trace.span_args(trace.child(root))
    assert set(kid_args) == {"trace", "span", "parent"}
    assert kid_args["parent"] == args["span"]


# -- integration: an RMF submission through the sim stack ---------------------


def _rmf_deployment():
    net = Network()
    fw = Firewall.typical(reject=True)
    site = net.add_site("rwcp", firewall=fw)
    lan = net.add_router("lan", site=site)
    alloc_h = net.add_host("alloc-host", site=site)
    compas = net.add_host("compas", site=site, cpu_speed=0.5, cores=8)
    gk_h = net.add_host("gatekeeper-host")
    user_h = net.add_host("user")
    for h in (alloc_h, compas):
        net.link(h, lan, 1e-4, 6.9e6)
    net.link(lan, gk_h, 1e-3, 1e6)
    net.link(gk_h, user_h, 5e-3, 187.5e3)
    rmf = RMFSystem(gk_h, alloc_h)
    rmf.add_resource(compas, name="COMPaS", cpus=8)
    rmf.start()
    return net, rmf, user_h


def _run_submission(rec):
    import itertools

    from repro.rmf import jobs as rmf_jobs

    # Job ids come from a process-global counter; pin it so two runs
    # in one test process produce comparable span args.
    rmf_jobs._job_ids = itertools.count(1)
    net, rmf, user_h = _rmf_deployment()
    with spans.observe(rec):
        p = net.sim.process(
            rmf.submit(user_h, "&(executable=echo)(arguments=traced)")
        )
        net.sim.run()
    assert p.value.ok
    return rec


def _sim_bytes(rec):
    chrome = to_chrome(rec)
    sim_events = [
        ev for ev in chrome["traceEvents"] if ev.get("pid") == 1
    ]
    return dumps(sim_events)


def test_disabled_tracing_is_byte_invisible():
    """enable()+disable() before a run leaves the export identical to
    a run where tracing never existed."""
    never = _sim_bytes(_run_submission(spans.ObsRecorder()))
    trace.enable("site")
    trace.disable()
    toggled = _sim_bytes(_run_submission(spans.ObsRecorder()))
    assert never == toggled
    assert '"trace"' not in never


def test_traced_submission_forms_connected_tree():
    trace.enable("u")
    rec = _run_submission(spans.ObsRecorder())
    tagged = [ev for ev in rec.events if "trace" in ev.args]
    assert tagged, "no spans carried trace args"
    trace_ids = {ev.args["trace"] for ev in tagged}
    assert "usubmit-1" in trace_ids
    # Hops span multiple subsystems and tracks of the one submission.
    sub = [ev for ev in tagged if ev.args["trace"] == "usubmit-1"]
    cats = {ev.cat for ev in sub}
    assert {"rmf", "rmf.job"} <= cats, cats
    tracks = {ev.track for ev in sub}
    assert len(tracks) >= 4, tracks  # client, gatekeeper, qserver, job
    # Every parent link resolves to a span recorded in this process.
    spans_seen = {ev.args["span"] for ev in tagged if "span" in ev.args}
    parents = [ev.args["parent"] for ev in tagged if "parent" in ev.args]
    assert parents, "no parent links recorded"
    missing = [p for p in parents if p not in spans_seen]
    assert not missing, f"unresolved parents: {missing}"


def test_traced_run_leaves_sim_results_unchanged():
    """Tracing may add spans (the origin's submit span exists only
    when a context was minted) but must never shift the timing of any
    pre-existing one."""
    rec_plain = _run_submission(spans.ObsRecorder())
    trace.enable("u")
    rec_traced = _run_submission(spans.ObsRecorder())
    trace.disable()
    plain = [(e.cat, e.name, e.ts, e.dur) for e in rec_plain.events
             if e.domain == "sim"]
    traced = [(e.cat, e.name, e.ts, e.dur) for e in rec_traced.events
              if e.domain == "sim"]
    missing = [t for t in plain if t not in traced]
    assert not missing, f"tracing shifted existing spans: {missing[:5]}"
