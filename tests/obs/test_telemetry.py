"""The live telemetry plane: Prometheus rendering and the HTTP endpoint."""

import asyncio
import json

from repro.obs.metrics import LogHistogram, MetricsRegistry
from repro.obs.telemetry import (
    TELEMETRY_FORMAT_TAG,
    TELEMETRY_SCHEMA_VERSION,
    TelemetryServer,
    render_prometheus,
)


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("relay.chunks").inc(7)
    reg.gauge("phase.wall_s").set(1.5)
    reg.counter2d("mpi.bytes", "0->1").inc(64)
    reg.counter2d("mpi.bytes", "1->0").inc(128)
    hist = reg.histogram("chunk_bytes")
    hist.record(3)
    hist.record(3)
    hist.record(4000)
    reg.register_collector("stats", lambda: {"nested": {"deep": 2}, "flat": 5})
    return reg


def test_render_prometheus_shapes():
    text = render_prometheus(_populated_registry().snapshot())
    lines = text.splitlines()
    assert "# TYPE repro_relay_chunks counter" in lines
    assert "repro_relay_chunks 7" in lines
    assert "repro_phase_wall_s 1.5" in lines
    assert 'repro_mpi_bytes{key="0->1"} 64' in lines
    assert 'repro_mpi_bytes{key="1->0"} 128' in lines
    # Histogram buckets are cumulative and end with +Inf and _count.
    assert 'repro_chunk_bytes_bucket{le="3"} 2' in lines
    assert 'repro_chunk_bytes_bucket{le="4095"} 3' in lines
    assert 'repro_chunk_bytes_bucket{le="+Inf"} 3' in lines
    assert "repro_chunk_bytes_count 3" in lines
    # Collector snapshots flatten with underscores; an all-numeric
    # inner dict renders as one labelled family.
    assert "repro_stats_flat 5" in lines
    assert 'repro_stats_nested{key="deep"} 2' in lines


def test_render_sanitizes_names():
    text = render_prometheus({"weird-name.with spaces": 1})
    assert "repro_weird_name_with_spaces 1" in text


async def _http_get(port: int, path: str) -> "tuple[int, str]":
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.0\r\nHost: x\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    head, _, body = raw.decode().partition("\r\n\r\n")
    status = int(head.split()[1])
    return status, body


def test_telemetry_server_serves_both_endpoints():
    reg = _populated_registry()

    async def main():
        server = await TelemetryServer(
            reg.snapshot, port=0, extra={"role": "test"}
        ).start()
        try:
            status, body = await _http_get(server.bound_port, "/metrics")
            assert status == 200
            assert "repro_relay_chunks 7" in body
            status, body = await _http_get(server.bound_port, "/metrics.json")
            assert status == 200
            payload = json.loads(body)
            assert payload["format"] == TELEMETRY_FORMAT_TAG
            assert payload["schema_version"] == TELEMETRY_SCHEMA_VERSION
            # Emit-time provenance (v2): resolved once at start().
            assert payload["git_sha"] is None or isinstance(
                payload["git_sha"], str
            )
            assert isinstance(payload["dirty"], bool)
            assert payload["role"] == "test"
            assert payload["registry"]["relay.chunks"] == 7
            assert payload["scrapes"] == 2
            status, _ = await _http_get(server.bound_port, "/nope")
            assert status == 404
        finally:
            await server.stop()

    asyncio.run(asyncio.wait_for(main(), timeout=15))


def test_telemetry_reflects_live_updates():
    reg = MetricsRegistry()
    c = reg.counter("live.count")

    async def main():
        server = await TelemetryServer(reg.snapshot, port=0).start()
        try:
            _, body = await _http_get(server.bound_port, "/metrics.json")
            assert json.loads(body)["registry"]["live.count"] == 0
            c.inc(41)
            c.inc()
            _, body = await _http_get(server.bound_port, "/metrics.json")
            assert json.loads(body)["registry"]["live.count"] == 42
        finally:
            await server.stop()

    asyncio.run(asyncio.wait_for(main(), timeout=15))


def test_obs_tail_follows_endpoint(capsys):
    """`repro-obs tail --count 2` polls the JSON endpoint and prints
    series deltas."""
    from repro.obs.cli import main as obs_main

    reg = MetricsRegistry()
    reg.counter("tailed.value").inc(5)
    result: dict = {}

    async def main():
        server = await TelemetryServer(reg.snapshot, port=0).start()
        try:
            loop = asyncio.get_running_loop()
            result["code"] = await loop.run_in_executor(
                None, obs_main,
                ["tail", f"127.0.0.1:{server.bound_port}",
                 "--count", "2", "--interval", "0.05"],
            )
        finally:
            await server.stop()

    asyncio.run(asyncio.wait_for(main(), timeout=15))
    assert result["code"] == 0
    out = capsys.readouterr().out
    assert "tailed.value = 5" in out
    assert "1 series" in out


def test_obs_tail_unreachable_exhausts_retries_exits_3(capsys):
    from repro.obs.cli import EXIT_RETRIES, main as obs_main

    code = obs_main([
        "tail", "127.0.0.1:1", "--count", "1", "--timeout", "1",
        "--retries", "0",
    ])
    assert code == EXIT_RETRIES == 3
    assert "repro-obs:" in capsys.readouterr().err
