"""SLO rules and the alert engine: spec parsing, fire/resolve state
machines, and the recorded alert spans + trace tags."""

import json

import pytest

from repro.obs import spans, trace
from repro.obs.slo import (
    Rule,
    SLOEngine,
    SLOSpecError,
    default_slo_rules,
    load_slo_spec,
    parse_slo_spec,
)
from repro.obs.timeseries import TimeSeriesSampler


@pytest.fixture(autouse=True)
def clean_obs_state():
    assert spans.RECORDER is None
    yield
    spans.uninstall()
    trace.disable()
    trace.set_current(None)


def _rollup(scalars=None, hists=None):
    return {"scalars": scalars or {}, "hists": hists or {}}


# -- spec validation ------------------------------------------------------


def test_rule_validation_errors():
    with pytest.raises(SLOSpecError):
        Rule({"name": "x", "kind": "nonsense"})
    with pytest.raises(SLOSpecError):
        Rule({"kind": "threshold", "metric": "m"})  # no name
    with pytest.raises(SLOSpecError):
        Rule({"name": "x", "kind": "threshold"})  # no metric
    with pytest.raises(SLOSpecError):
        Rule({"name": "x", "metric": "m", "stat": "p42", "op": ">=",
              "bound": 1})
    with pytest.raises(SLOSpecError):
        Rule({"name": "x", "metric": "m", "op": "~=", "bound": 1})
    with pytest.raises(SLOSpecError):
        Rule({"name": "x", "metric": "m", "op": ">=", "bound": "soon"})
    with pytest.raises(SLOSpecError):
        Rule({"name": "x", "kind": "recovery", "start_metric": "a"})
    with pytest.raises(SLOSpecError):
        parse_slo_spec([])
    with pytest.raises(SLOSpecError):
        parse_slo_spec({"not_slos": []})


def test_default_rules_parse_and_describe():
    rules = default_slo_rules()
    names = [r.name for r in rules]
    assert "fleet-throughput-floor" in names
    assert "drain-recovery" in names
    for rule in rules:
        desc = rule.describe()
        assert desc["name"] == rule.name and desc["kind"] == rule.kind


def test_load_slo_spec_json(tmp_path):
    path = tmp_path / "slo.json"
    path.write_text(json.dumps({"slos": [
        {"name": "floor", "metric": "m", "stat": "rate", "op": ">=",
         "bound": 10},
    ]}))
    rules = load_slo_spec(str(path))
    assert [r.name for r in rules] == ["floor"]
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(SLOSpecError, match="bad JSON"):
        load_slo_spec(str(bad))
    with pytest.raises(SLOSpecError, match="cannot read"):
        load_slo_spec(str(tmp_path / "missing.json"))


def test_load_slo_spec_yaml_is_gated(tmp_path, monkeypatch):
    path = tmp_path / "slo.yaml"
    path.write_text(
        "slos:\n"
        "  - name: floor\n"
        "    metric: m\n"
        "    stat: rate\n"
        "    op: '>='\n"
        "    bound: 10\n"
    )
    try:
        import yaml  # noqa: F401  (present locally, absent in CI)
    except ImportError:
        with pytest.raises(SLOSpecError, match="PyYAML is not installed"):
            load_slo_spec(str(path))
    else:
        assert [r.name for r in load_slo_spec(str(path))] == ["floor"]
        # The ImportError path must hold even where PyYAML exists.
        import sys

        monkeypatch.setitem(sys.modules, "yaml", None)
        with pytest.raises(SLOSpecError, match="PyYAML is not installed"):
            load_slo_spec(str(path))


# -- threshold rules ------------------------------------------------------


def test_threshold_fire_and_resolve_with_holddown():
    rule = Rule({"name": "floor", "metric": "mb", "stat": "last",
                 "op": ">=", "bound": 5, "for_s": 1.0})
    engine = SLOEngine([rule])
    # Breach observed but inside the hold-down: pending, no alert.
    assert engine.evaluate(_rollup({"mb": {"last": 2}}), t=0.0) == []
    assert engine.states["floor"] == "pending"
    assert engine.evaluate(_rollup({"mb": {"last": 2}}), t=0.5) == []
    # Hold-down satisfied: fires.
    fired = engine.evaluate(_rollup({"mb": {"last": 2}}), t=1.0)
    assert [a.rule.name for a in fired] == ["floor"]
    assert engine.states["floor"] == "firing"
    assert engine.active["floor"].value == 2
    # Recovery resolves and closes the episode.
    resolved = engine.evaluate(_rollup({"mb": {"last": 9}}), t=2.0)
    assert resolved[0].state == "resolved"
    assert resolved[0].duration_s == 1.0
    assert engine.states["floor"] == "ok"
    assert engine.active == {}
    assert [a.state for a in engine.history] == ["resolved"]


def test_threshold_holddown_resets_on_recovery():
    rule = Rule({"name": "floor", "metric": "mb", "stat": "last",
                 "op": ">=", "bound": 5, "for_s": 1.0})
    engine = SLOEngine([rule])
    engine.evaluate(_rollup({"mb": {"last": 2}}), t=0.0)
    # A good sample clears the pending clock; the next breach starts
    # its hold-down from scratch.
    engine.evaluate(_rollup({"mb": {"last": 9}}), t=0.5)
    assert engine.states["floor"] == "ok"
    assert engine.evaluate(_rollup({"mb": {"last": 2}}), t=1.5) == []
    assert engine.states["floor"] == "pending"


def test_threshold_no_data_stays_quiet():
    rule = Rule({"name": "p99", "metric": "workers.*.lat_hist",
                 "stat": "p99", "op": "<=", "bound": 100})
    engine = SLOEngine([rule])
    assert engine.evaluate(_rollup(), t=0.0) == []
    assert engine.states["p99"] == "ok"


def test_threshold_wildcard_takes_worst_match():
    ceiling = Rule({"name": "p99", "metric": "workers.*.lat_hist",
                    "stat": "p99", "op": "<=", "bound": 100})
    floor = Rule({"name": "rate", "metric": "workers.*.rate",
                  "stat": "last", "op": ">=", "bound": 10})
    engine = SLOEngine([ceiling, floor])
    fired = engine.evaluate(_rollup(
        scalars={
            "workers.w0.rate": {"last": 50},
            "workers.w1.rate": {"last": 3},  # worst for the floor
        },
        hists={
            "workers.w0.lat_hist": {"p99": 40},
            "workers.w1.lat_hist": {"p99": 4000},  # worst for the ceiling
        },
    ), t=0.0)
    assert {a.rule.name for a in fired} == {"p99", "rate"}
    assert engine.active["p99"].value == 4000
    assert engine.active["rate"].value == 3


# -- recovery rules -------------------------------------------------------


def test_recovery_fire_resolve_and_breach_flag():
    rule = Rule({"name": "drain", "kind": "recovery",
                 "start_metric": "started", "done_metric": "done",
                 "bound_s": 1.0})
    engine = SLOEngine([rule])

    def step(started, done, t):
        return engine.evaluate(_rollup({
            "started": {"last": started}, "done": {"last": done},
        }), t)

    assert step(0, 0, 0.0) == []
    fired = step(1, 0, 1.0)
    assert fired[0].state == "firing" and fired[0].value == 1
    # Still pending past the bound: flagged breached while firing.
    step(1, 0, 2.5)
    assert engine.active["drain"].breached
    resolved = step(1, 1, 3.0)
    assert resolved[0].state == "resolved"
    assert resolved[0].duration_s == 2.0
    assert resolved[0].breached  # episode outlived bound_s

    # A fast episode resolves unbreached.
    fired = step(2, 1, 4.0)
    resolved = step(2, 2, 4.5)
    assert resolved[0].duration_s == 0.5
    assert not resolved[0].breached


# -- recording ------------------------------------------------------------


def test_alerts_record_spans_with_trace_context():
    rec = spans.ObsRecorder()
    spans.install(rec)
    trace.enable("slotest")
    rule = Rule({"name": "floor", "metric": "mb", "stat": "last",
                 "op": ">=", "bound": 5})
    engine = SLOEngine([rule])
    engine.evaluate(_rollup({"mb": {"last": 1}}), t=0.0)
    alert = engine.history[0]
    # A fresh root context was minted for the alert.
    assert alert.trace_id and alert.trace_id.startswith("slotest")
    assert alert.span_id
    engine.evaluate(_rollup({"mb": {"last": 9}}), t=1.0)

    events = [e.to_dict() for e in rec.events if e.cat == "slo"]
    names = [e["name"] for e in events]
    assert "fired:floor" in names
    assert "alert:floor" in names
    fired = next(e for e in events if e["name"] == "fired:floor")
    assert fired["args"]["trace"] == alert.trace_id
    assert fired["args"]["value"] == 1
    span = next(e for e in events if e["name"] == "alert:floor")
    assert span["args"]["trace"] == alert.trace_id
    assert span["args"]["duration_s"] == 1.0
    # The episode is JSON-ready for /alerts.
    doc = engine.status()
    assert doc["history"][0]["trace"] == alert.trace_id
    assert doc["history"][0]["state"] == "resolved"


def test_alert_joins_ambient_trace_when_present():
    rec = spans.ObsRecorder()
    spans.install(rec)
    trace.enable("amb")
    root = trace.mint("drain")
    trace.set_current(root)
    rule = Rule({"name": "floor", "metric": "mb", "stat": "last",
                 "op": ">=", "bound": 5})
    engine = SLOEngine([rule])
    engine.evaluate(_rollup({"mb": {"last": 1}}), t=0.0)
    alert = engine.history[0]
    # Child of the ambient context: same trace, parented span.
    assert alert.trace_id == root.trace_id
    fired = next(
        e.to_dict() for e in rec.events if e.name == "fired:floor"
    )
    assert fired["args"]["parent"] == root.span_id


def test_engine_without_recorder_still_tracks_state():
    rule = Rule({"name": "floor", "metric": "mb", "stat": "last",
                 "op": ">=", "bound": 5})
    engine = SLOEngine([rule])
    engine.evaluate(_rollup({"mb": {"last": 1}}), t=0.0)
    engine.evaluate(_rollup({"mb": {"last": 9}}), t=1.0)
    assert [a.state for a in engine.history] == ["resolved"]


# -- sampler integration --------------------------------------------------


def test_evaluate_sampler_uses_per_rule_windows():
    sampler = TimeSeriesSampler(dict, interval_s=1.0, capacity=64)
    # A counter that stalled recently: rate over the long window is
    # healthy, rate over the short window is zero.
    for t in range(10):
        sampler.samples.append(
            (float(t), {"bytes": min(t, 5) * 100}, {})
        )
    short = Rule({"name": "short", "metric": "bytes", "stat": "rate",
                  "op": ">=", "bound": 1, "window_s": 2.0})
    long = Rule({"name": "long", "metric": "bytes", "stat": "rate",
                 "op": ">=", "bound": 1, "window_s": 100.0})
    engine = SLOEngine([short, long])
    fired = engine.evaluate_sampler(sampler, t=9.0)
    assert [a.rule.name for a in fired] == ["short"]
    assert engine.states == {"short": "firing", "long": "ok"}


def test_alerts_route_shape():
    engine = SLOEngine()
    ctype, body = engine.alerts_route()
    assert ctype == "application/json"
    doc = json.loads(body)
    assert doc["format"] == "repro-obs-slo-v1"
    assert {r["name"] for r in doc["rules"]} == {
        r.name for r in engine.rules
    }
