"""The ``repro-obs top`` dashboard: pure rendering plus the CLI
subcommands against a live aggregated endpoint."""

import asyncio
import json

from repro.obs.cli import EXIT_DIFFERS, EXIT_OK, EXIT_RETRIES
from repro.obs.cli import main as obs_main
from repro.obs.top import fmt_bytes, fmt_rate, render, sparkline


def _payload():
    return {
        "aggregate": {
            "admin_ok": True,
            "rounds": 12,
            "fleet": {
                "mode": "handoff",
                "placed_chains": 9,
                "drains_started": 1,
                "drains_completed": 0,
                "workers": {
                    "w0": {"state": "up", "active_chains": 3,
                           "bytes_relayed": 5 * 1024 * 1024,
                           "byte_rate": 0.0, "heartbeats": 40},
                    "w1": {"state": "draining", "active_chains": 1,
                           "bytes_relayed": 2048,
                           "byte_rate": 0.0, "heartbeats": 38},
                },
            },
            "workers": {
                "w0": {"scraped": True, "stale": False, "age_s": 0.2},
                "w1": {"scraped": True, "stale": True, "age_s": 4.0},
            },
            "derived": {
                "bytes_relayed_total": 5 * 1024 * 1024 + 2048,
                "active_chains_total": 4,
                "workers_up": 1,
                "workers_stale": 1,
                "mixed_versions": True,
            },
        },
        "rollup": {
            "scalars": {
                "derived.bytes_relayed_total": {"rate": 2.5 * 1024 * 1024},
                "workers.w0.relay.bytes_relayed": {"rate": 1024.0},
            },
        },
    }


def test_formatting_helpers():
    assert fmt_bytes(None) == "-"
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(2048) == "2.0 KB"
    assert fmt_bytes(5 * 1024 * 1024) == "5.0 MB"
    assert fmt_rate(1024.0) == "1.0 KB/s"
    assert sparkline([]) == " " * 40
    line = sparkline([0, 1, 2, 4], width=8)
    assert len(line) == 8
    assert line.endswith("@")  # max maps to the densest glyph


def test_render_frame_shape():
    frame = render(_payload(), alerts=None, rate_history=[1.0, 2.0, 4.0])
    assert "\x1b" not in frame  # pipe/CI-safe: never any escape codes
    lines = frame.splitlines()
    assert lines[0].startswith("repro fleet top  mode=handoff")
    assert "workers=2 up=1 stale=1" in lines[0]
    assert "admin=ok" in lines[0]
    assert any("WARNING: workers report mixed git revisions" == l.strip()
               for l in lines)
    assert any("5.0 MB relayed" in l and "pending_drains=1" in l
               for l in lines)
    assert any("2.5 MB/s" in l for l in lines)
    w0 = next(l for l in lines if l.startswith("w0"))
    assert "up" in w0 and "1.0 KB/s" in w0 and "0.2s ago" in w0
    w1 = next(l for l in lines if l.startswith("w1"))
    assert "draining" in w1 and "stale" in w1
    assert any("no SLO engine attached" in l for l in lines)


def test_render_alerts_section():
    alerts = {
        "evaluations": 7,
        "rules": [
            {"name": "floor", "state": "firing", "value": 3.0},
            {"name": "ceiling", "state": "ok", "value": 12.0},
        ],
        "active": {"floor": {}},
        "history": [
            {"rule": "drain-recovery", "state": "resolved",
             "duration_s": 0.8, "breached": False},
            {"rule": "floor", "state": "firing"},
        ],
    }
    frame = render(_payload(), alerts=alerts)
    assert "alerts: 2 rules, 1 firing (7 evaluations)" in frame
    assert "[!!] floor" in frame
    assert "[ok] ceiling" in frame
    assert "resolved drain-recovery after 0.80s" in frame


def test_render_empty_payload():
    frame = render({})
    assert "(no workers discovered yet)" in frame
    assert "rate:  -" in frame


class _FiringEngine:
    """Minimal /alerts document source with one firing alert."""

    def __init__(self, firing: bool) -> None:
        self.firing = firing

    def route(self):
        doc = {
            "format": "repro-obs-slo-v1",
            "evaluations": 3,
            "rules": [{"name": "floor",
                       "state": "firing" if self.firing else "ok",
                       "value": 1.0}],
            "active": {"floor": {"rule": "floor"}} if self.firing else {},
            "history": [],
        }
        return ("application/json", json.dumps(doc) + "\n")


def _serve_and_run(argv_fn, firing=False):
    """Serve _payload() + /alerts on a real socket, run obs_main in a
    worker thread, return (exit_code, endpoint)."""
    from repro.obs.telemetry import TelemetryServer

    payload = _payload()
    engine = _FiringEngine(firing)
    result: dict = {}

    async def main():
        server = await TelemetryServer(
            dict, port=0,
            extra_fn=lambda: payload,
            routes={"/alerts": engine.route},
        ).start()
        try:
            endpoint = f"127.0.0.1:{server.bound_port}"
            loop = asyncio.get_running_loop()
            result["code"] = await loop.run_in_executor(
                None, obs_main, argv_fn(endpoint)
            )
        finally:
            await server.stop()

    asyncio.run(asyncio.wait_for(main(), timeout=15))
    return result["code"]


def test_top_once_renders_from_live_endpoint(capsys):
    code = _serve_and_run(lambda ep: ["top", ep, "--once"])
    assert code == EXIT_OK
    out = capsys.readouterr().out
    assert "repro fleet top  mode=handoff" in out
    assert "\x1b" not in out
    assert "[!!] floor" not in out  # engine not firing
    assert "[ok] floor" in out  # but its rules are listed


def test_alerts_once_exit_codes(capsys):
    assert _serve_and_run(
        lambda ep: ["alerts", ep, "--once"], firing=False
    ) == EXIT_OK
    assert "floor" in capsys.readouterr().out
    # A firing alert is a semantic failure for scripts/CI.
    assert _serve_and_run(
        lambda ep: ["alerts", ep, "--once"], firing=True
    ) == EXIT_DIFFERS


def test_alerts_json_output(capsys):
    code = _serve_and_run(lambda ep: ["alerts", ep, "--once", "--json"])
    assert code == EXIT_OK
    doc = json.loads(capsys.readouterr().out)
    assert doc["format"] == "repro-obs-slo-v1"


def test_top_unreachable_exhausts_retries(capsys):
    code = obs_main([
        "top", "127.0.0.1:1", "--once", "--timeout", "1", "--retries", "0",
    ])
    assert code == EXIT_RETRIES
    assert "retries exhausted" in capsys.readouterr().err
