"""Metrics primitives and the registry's aggregation contract."""

import json

import pytest

from repro.obs.metrics import Counter, Gauge, LogHistogram, MetricsRegistry


def test_counter_and_gauge_basics():
    c = Counter("c")
    c.inc()
    c.inc(4)
    assert c.snapshot() == 5
    g = Gauge("g")
    g.set(2.5)
    g.add(0.5)
    assert g.snapshot() == 3.0


def test_histogram_bucketing():
    h = LogHistogram()
    for v in (0, 1, 2, 3, 4, 1023, 1024):
        h.record(v)
    d = h.to_dict()
    # 0 -> bucket 0 ("<=0"); 1 -> "<=1"; 2,3 -> "<=3"; 4 -> "<=7";
    # 1023 -> "<=1023"; 1024 -> "<=2047".
    assert d == {"<=0": 1, "<=1": 1, "<=3": 2, "<=7": 1,
                 "<=1023": 1, "<=2047": 1}
    assert h.total == 7


def test_histogram_overflow_and_merge():
    h = LogHistogram()
    h.record(1 << 60)  # far beyond the last bucket boundary
    assert sum(h.counts) == 1
    assert h.counts[LogHistogram.NBUCKETS - 1] == 1
    other = LogHistogram()
    other.record(5)
    h.merge(other)
    assert h.total == 2


def test_registry_interns_by_name():
    reg = MetricsRegistry()
    assert reg.counter("a.b") is reg.counter("a.b")
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")
    assert len(reg) == 3


def test_registry_type_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_counter2d_families_nest_in_snapshot():
    reg = MetricsRegistry()
    reg.counter2d("mpi.bytes", "0->1").inc(100)
    reg.counter2d("mpi.bytes", "1->0").inc(7)
    assert reg.counter2d("mpi.bytes", "0->1") is reg.counter2d("mpi.bytes", "0->1")
    snap = reg.snapshot()
    assert snap["mpi.bytes"] == {"0->1": 100, "1->0": 7}


def test_collectors_read_live_state():
    class Stats:
        def __init__(self):
            self.n = 0

        def snapshot(self):
            return {"n": self.n}

    reg = MetricsRegistry()
    s = Stats()
    reg.register_collector("relay.outer", s.snapshot)
    s.n = 42  # mutate after registration: snapshot must see it
    assert reg.snapshot()["relay.outer"] == {"n": 42}
    reg.unregister_collector("relay.outer")
    assert "relay.outer" not in reg.snapshot()


def test_snapshot_serializes_deterministically():
    def build(order):
        reg = MetricsRegistry()
        for name in order:
            reg.counter(name).inc()
        reg.counter2d("fam", "b").inc()
        reg.counter2d("fam", "a").inc(2)
        return json.dumps(reg.snapshot(), sort_keys=True)

    assert build(["z", "a", "m"]) == build(["m", "z", "a"])
