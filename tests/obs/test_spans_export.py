"""Recorder event model, the Chrome/summary exporters, and the
``repro-obs`` CLI."""

import json

import pytest

from repro.obs import spans
from repro.obs.cli import main as obs_main
from repro.obs.export import (
    CHROME_FORMAT_TAG,
    diff_summaries,
    dumps,
    summary,
    to_chrome,
    validate_chrome_trace,
    write_artifacts,
)
from repro.obs.spans import NullRecorder, ObsRecorder


def fake_clock(times):
    it = iter(times)
    return lambda: next(it)


def small_recorder() -> ObsRecorder:
    rec = ObsRecorder(wall_clock=fake_clock([0.0, 1.0, 3.5]))
    rec.sim_span("steal", "idle_wait", 1.0, 2.5, track="rank:3", terminated=False)
    rec.sim_instant("rmf.job", "active", 0.5, track="job:1")
    rec.sim_counter("kernel", "events_scheduled", 2.0, {"events": 10}, track="kernel")
    rec.wall_span_end("relay", "active_chain", rec.wall_ts(), track="outer:gw")
    rec.count("chains", 2)
    rec.count_pair("mpi.bytes", "0->1", 64)
    return rec


def test_two_clock_domains_two_pids():
    chrome = to_chrome(small_recorder())
    pids = {ev["pid"] for ev in chrome["traceEvents"] if ev["ph"] != "M"}
    assert pids == {1, 2}  # sim and wall never share a pid
    assert chrome["otherData"]["format"] == CHROME_FORMAT_TAG
    assert chrome["otherData"]["registry"]["chains"] == 2


def test_span_event_shapes():
    chrome = to_chrome(small_recorder())
    by_name = {ev["name"]: ev for ev in chrome["traceEvents"] if ev["ph"] != "M"}
    span = by_name["idle_wait"]
    assert span["ph"] == "X"
    assert span["ts"] == 1_000_000.0 and span["dur"] == 1_500_000.0
    assert span["args"] == {"terminated": False}
    instant = by_name["active"]
    assert instant["ph"] == "i" and instant["s"] == "t"
    counter = by_name["events_scheduled"]
    assert counter["ph"] == "C" and counter["args"] == {"events": 10}
    wall = by_name["active_chain"]
    assert wall["pid"] == 2 and wall["ts"] == 1_000_000.0


def test_tracks_become_named_threads():
    chrome = to_chrome(small_recorder())
    thread_meta = {
        (ev["pid"], ev["tid"]): ev["args"]["name"]
        for ev in chrome["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "thread_name"
    }
    assert "rank:3" in thread_meta.values()
    assert "outer:gw" in thread_meta.values()
    # tids are interned per pid in first-appearance order, starting at 1.
    sim_tids = sorted(tid for (pid, tid) in thread_meta if pid == 1)
    assert sim_tids == list(range(1, len(sim_tids) + 1))


def test_exported_trace_validates():
    chrome = to_chrome(small_recorder())
    assert validate_chrome_trace(chrome) == []


def test_validator_rejects_malformed():
    assert validate_chrome_trace([]) == ["top level: expected object"]
    errors = validate_chrome_trace(
        {"traceEvents": [{"ph": "Q"}], "otherData": {"format": "nope"}}
    )
    assert any("otherData.format" in e for e in errors)
    assert any(".ph" in e for e in errors)
    # A span without dur is flagged.
    chrome = to_chrome(small_recorder())
    for ev in chrome["traceEvents"]:
        if ev["ph"] == "X":
            del ev["dur"]
    assert any(".dur" in e for e in validate_chrome_trace(chrome))


def test_summary_aggregates_and_diff():
    rec = small_recorder()
    summ = summary(rec)
    assert summ["total_events"] == 4
    steal = summ["categories"]["sim:steal"]
    assert steal["spans"] == 1 and steal["span_total_s"] == 1.5
    assert summ["categories"]["wall:relay"]["spans"] == 1
    assert diff_summaries(summ, summ)["changed"] == {}
    rec.count("chains", 1)
    diff = diff_summaries(summ, summary(rec))
    assert diff["changed"]["registry.chains"]["delta"] == 1


def test_dumps_is_byte_deterministic():
    assert dumps({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'
    a, b = small_recorder(), small_recorder()
    assert dumps(to_chrome(a)) == dumps(to_chrome(b))


def test_write_artifacts_round_trip(tmp_path):
    rec = small_recorder()
    trace_path, summary_path = write_artifacts(rec, str(tmp_path / "run"))
    chrome = json.loads(open(trace_path).read())
    assert validate_chrome_trace(chrome) == []
    summ = json.loads(open(summary_path).read())
    assert summ["format"] == "repro-obs-summary-v1"
    assert summ["total_events"] == len(rec)


def test_install_observe_uninstall():
    assert spans.RECORDER is None
    with spans.observe() as rec:
        assert spans.RECORDER is rec
        rec.sim_instant("t", "t", 0.0)
    assert spans.RECORDER is None
    assert len(rec) == 1


def test_null_recorder_retains_nothing():
    rec = NullRecorder()
    rec.sim_span("a", "b", 0.0, 1.0)
    rec.sim_instant("a", "b", 0.0)
    rec.sim_counter("a", "b", 0.0, {"x": 1})
    rec.wall_instant("a", "b")
    with rec.wall_span("a", "b"):
        pass
    rec.count("c")
    rec.count_pair("f", "k")
    rec.adopt("p", object())
    rec.start_kernel_sampler(object())
    assert len(rec) == 0
    assert len(rec.registry) == 0


# -- CLI ----------------------------------------------------------------------


@pytest.fixture
def artifacts(tmp_path):
    return write_artifacts(small_recorder(), str(tmp_path / "run"))


def test_cli_validate_ok(artifacts, capsys):
    trace_path, _ = artifacts
    assert obs_main(["validate", trace_path]) == 0
    assert "OK" in capsys.readouterr().out


def test_cli_validate_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": "nope"}')
    assert obs_main(["validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_cli_summarize_both_artifact_kinds(artifacts, capsys):
    trace_path, summary_path = artifacts
    assert obs_main(["summarize", trace_path]) == 0
    out_trace = capsys.readouterr().out
    assert obs_main(["summarize", summary_path]) == 0
    out_summary = capsys.readouterr().out
    assert "sim:steal" in out_trace and "sim:steal" in out_summary
    assert "4 events" in out_trace


def test_cli_diff_exit_codes(artifacts, tmp_path, capsys):
    _, summary_path = artifacts
    assert obs_main(["diff", summary_path, summary_path]) == 0
    rec = small_recorder()
    rec.sim_instant("extra", "extra", 9.0)
    _, other = write_artifacts(rec, str(tmp_path / "other"))
    assert obs_main(["diff", summary_path, other]) == 1
    assert "sim:extra" in capsys.readouterr().out
