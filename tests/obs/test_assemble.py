"""Assembling per-process traces into one causal Chrome trace, and the
``repro-obs`` exit-code contract (0 ok / 1 differs-or-invalid /
2 unreadable)."""

import json

import pytest

from repro.obs import spans, trace
from repro.obs.assemble import PID_STRIDE, assemble
from repro.obs.cli import EXIT_DIFFERS, EXIT_OK, EXIT_UNREADABLE, main
from repro.obs.export import dumps, to_chrome, validate_chrome_trace


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    trace.disable()


def _two_process_traces():
    """Fake a driver process and a daemon process sharing one trace:
    the driver mints, the daemon accepts off the wire."""
    trace.enable("drv")
    driver = spans.ObsRecorder()
    root = trace.mint("connect")
    driver.sim_span("nxproxy", "connect", 0.0, 0.5, track="user",
                    **trace.span_args(root))
    # As in api.connect: the wire carries the anchored span's context.
    wire = root.to_wire()

    trace.enable("outer")  # second "process": fresh counters, new site
    daemon = spans.ObsRecorder()
    hop = trace.accept(wire)
    t0 = daemon.wall_ts()
    daemon.wall_span_end("relay", "active_chain", t0, track="outer",
                         **trace.span_args(hop))
    trace.disable()
    return to_chrome(driver), to_chrome(daemon)


def test_assemble_links_hops_across_files():
    drv, daemon = _two_process_traces()
    merged = assemble([("driver", drv), ("outer", daemon)])
    assert validate_chrome_trace(merged) == []
    info = merged["otherData"]["assembled"]
    assert info["files"] == ["driver", "outer"]
    assert info["flows"] == 1
    assert info["unresolved_parents"] == 0
    flows = [ev for ev in merged["traceEvents"] if ev.get("ph") in ("s", "f")]
    assert len(flows) == 2
    start = next(ev for ev in flows if ev["ph"] == "s")
    end = next(ev for ev in flows if ev["ph"] == "f")
    assert start["id"] == end["id"]
    assert end["bp"] == "e"
    # Flow crosses file (pid-block) boundaries.
    assert start["pid"] // PID_STRIDE != end["pid"] // PID_STRIDE


def test_assemble_remaps_pids_per_file():
    drv, daemon = _two_process_traces()
    merged = assemble([("driver", drv), ("outer", daemon)])
    pids = {ev["pid"] for ev in merged["traceEvents"]}
    assert all(p >= PID_STRIDE for p in pids)
    # File 1 keeps sim=11/wall=12, file 2 gets 21/22.
    assert {11, 21} & pids or {12, 22} & pids
    names = {
        ev["args"]["name"]
        for ev in merged["traceEvents"]
        if ev.get("ph") == "M" and ev.get("name") == "process_name"
    }
    assert any(n.startswith("driver:") for n in names)
    assert any(n.startswith("outer:") for n in names)


def test_assemble_counts_unresolved_parents():
    trace.enable("a")
    rec = spans.ObsRecorder()
    orphan = trace.accept("t-1/ghost/1")
    rec.sim_instant("x", "hop", 0.0, track="t", **trace.span_args(orphan))
    trace.disable()
    merged = assemble([("only", to_chrome(rec))])
    info = merged["otherData"]["assembled"]
    assert info["flows"] == 0
    assert info["unresolved_parents"] == 1
    assert info["traces"] == {"t-1": 1}


# -- the repro-obs CLI exit-code contract -------------------------------------


def _write(tmp_path, name, text):
    p = tmp_path / name
    p.write_text(text)
    return str(p)


def test_cli_missing_file_exits_2(capsys):
    assert main(["summarize", "/nonexistent/nope.json"]) == EXIT_UNREADABLE
    assert "cannot read" in capsys.readouterr().err


def test_cli_empty_file_exits_2(tmp_path, capsys):
    path = _write(tmp_path, "empty.json", "")
    for cmd in (["summarize", path], ["validate", path],
                ["diff", path, path], ["assemble", path]):
        assert main(cmd) == EXIT_UNREADABLE
    assert "empty file" in capsys.readouterr().err


def test_cli_truncated_json_exits_2(tmp_path, capsys):
    rec = spans.ObsRecorder()
    rec.sim_instant("c", "e", 0.0, track="t")
    whole = dumps(to_chrome(rec))
    path = _write(tmp_path, "trunc.json", whole[: len(whole) // 2])
    assert main(["summarize", path]) == EXIT_UNREADABLE
    err = capsys.readouterr().err
    assert "truncated" in err and "line" in err


def test_cli_wrong_shape_exits_2(tmp_path, capsys):
    path = _write(tmp_path, "other.json", '{"hello": "world"}')
    assert main(["summarize", path]) == EXIT_UNREADABLE
    assert "not a repro-obs" in capsys.readouterr().err


def test_cli_diff_exit_codes(tmp_path):
    rec_a = spans.ObsRecorder()
    rec_a.sim_instant("c", "e", 0.0, track="t")
    rec_b = spans.ObsRecorder()
    rec_b.sim_instant("c", "e", 0.0, track="t")
    rec_b.sim_instant("c", "extra", 0.0, track="t")
    a = _write(tmp_path, "a.json", dumps(to_chrome(rec_a)))
    b = _write(tmp_path, "b.json", dumps(to_chrome(rec_b)))
    assert main(["diff", a, a]) == EXIT_OK
    assert main(["diff", a, b]) == EXIT_DIFFERS


def test_cli_validate_invalid_exits_1(tmp_path):
    path = _write(
        tmp_path, "bad.json",
        json.dumps({"traceEvents": [{"ph": "Q"}], "otherData": {}}),
    )
    assert main(["validate", path]) == EXIT_DIFFERS


def test_cli_assemble_writes_valid_trace(tmp_path, capsys):
    drv, daemon = _two_process_traces()
    a = _write(tmp_path, "drv.trace.json", dumps(drv))
    b = _write(tmp_path, "outer.trace.json", dumps(daemon))
    out = str(tmp_path / "merged.trace.json")
    code = main(["assemble", a, b, "-o", out,
                 "--labels", "driver", "outer"])
    assert code == EXIT_OK
    assert "1 causal links" in capsys.readouterr().err
    merged = json.loads(open(out).read())
    assert validate_chrome_trace(merged) == []
    assert main(["validate", out]) == EXIT_OK
    assert main(["summarize", out]) == EXIT_OK
