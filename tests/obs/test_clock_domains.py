"""System-level guarantees of the observability layer:

* sim-domain traces are byte-identical across kernel implementations;
* one traced wide-area run + one RMF submission covers every
  instrumented layer and exports a valid Chrome trace;
* an installed-but-null recorder costs under 3% on a Table 4-style run.
"""

from __future__ import annotations

import time

import pytest

from repro.apps.knapsack import (
    SchedulingParams,
    register_knapsack_executable,
    scaled_instance,
)
from repro.apps.knapsack.driver import run_system
from repro.cluster import Testbed
from repro.obs import spans
from repro.obs.export import dumps, to_chrome, validate_chrome_trace
from repro.obs.spans import NullRecorder
from repro.rmf import RMFSystem


@pytest.fixture(autouse=True)
def no_leftover_recorder():
    assert spans.RECORDER is None
    yield
    spans.uninstall()


def _traced_wide_area_run(rec) -> None:
    testbed = Testbed()
    instance = scaled_instance(n=24, target_nodes=60_000, seed=5)
    with spans.observe(rec):
        run_system(testbed, "Wide-area Cluster", instance, SchedulingParams())


def _sim_domain_bytes(rec) -> str:
    events = [e.to_dict() for e in rec.events if e.domain == spans.SIM]
    return dumps(events) + dumps(rec.registry.snapshot())


def test_sim_trace_byte_identical_across_kernels(monkeypatch) -> None:
    """The determinism the sim domain promises: the recorded events —
    timestamps, ordering, args, registry — are a pure function of the
    simulated program, not of the kernel implementation driving it."""
    payloads = {}
    for mode in ("seed", "fast"):
        monkeypatch.setenv("REPRO_SIM_KERNEL", mode)
        rec = spans.ObsRecorder()
        _traced_wide_area_run(rec)
        assert len(rec.events) > 100  # actually instrumented
        payloads[mode] = _sim_domain_bytes(rec)
    assert payloads["seed"] == payloads["fast"]


def test_traced_run_covers_all_layers(tmp_path) -> None:
    """One recorder session spanning the wide-area knapsack run and an
    RMF submission yields a single valid Chrome trace with events from
    the kernel, the relay, the RMF job lifecycle, and the steal
    protocol."""
    rec = spans.ObsRecorder()
    _traced_wide_area_run(rec)

    tb = Testbed()
    instance = scaled_instance(n=20, target_nodes=10_000, seed=3)
    rmf = RMFSystem(tb.outer_host, tb.inner_host)
    register_knapsack_executable(rmf.registry)
    rmf.add_resource(tb.compas[0], name="COMPaS-0", cpus=4)
    rmf.start()
    rmf.gatekeeper.staging.put("problem.txt", instance.serialize())
    with spans.observe(rec):
        proc = tb.sim.process(
            rmf.submit(
                tb.etl_sun,
                "&(executable=knapsack)(count=4)(arguments=problem.txt)"
                "(stage_in=problem.txt)(stage_out=answer.txt)",
            )
        )
        reply = tb.sim.run(until=proc)
    assert reply.all_succeeded

    chrome = to_chrome(rec)
    assert validate_chrome_trace(chrome) == []
    cats = {ev["cat"] for ev in chrome["traceEvents"] if ev["ph"] != "M"}
    assert {"kernel", "relay", "steal", "run", "rmf", "rmf.job"} <= cats
    # The RMF job went through its whole lifecycle.
    job_states = {
        ev["name"]
        for ev in chrome["traceEvents"]
        if ev.get("cat") == "rmf.job" and ev["ph"] == "i"
    }
    assert {"active", "done"} <= job_states
    # Mux/steal spans carry durations Perfetto can render.
    assert any(
        ev["ph"] == "X" and ev.get("dur", 0) > 0
        for ev in chrome["traceEvents"]
        if ev.get("cat") == "steal"
    )
    path = tmp_path / "four_layer.trace.json"
    path.write_text(dumps(chrome) + "\n")
    assert path.stat().st_size > 1000


def _timed_run(rec) -> float:
    testbed = Testbed()
    instance = scaled_instance(n=26, target_nodes=150_000, seed=5)
    t0 = time.perf_counter()
    if rec is None:
        run_system(testbed, "COMPaS", instance, SchedulingParams())
    else:
        with spans.observe(rec):
            run_system(testbed, "COMPaS", instance, SchedulingParams())
    return time.perf_counter() - t0


def test_disabled_recorder_overhead_under_3_percent() -> None:
    """With no recorder installed every instrumentation point is one
    load + one is-None branch; a NullRecorder adds only no-op dispatch.
    Either way the Table 4-style run must stay within 3%.  Min-of-N
    with retries: we are bounding systematic cost, not host noise."""
    last_ratio = 0.0
    for _ in range(3):
        baseline = min(_timed_run(None) for _ in range(5))
        nulled = min(_timed_run(NullRecorder()) for _ in range(5))
        last_ratio = nulled / baseline
        if last_ratio < 1.03:
            return
    pytest.fail(f"null-recorder overhead {last_ratio:.4f}x exceeds 1.03x")
