"""The acceptance criterion for causal tracing: a real multi-process
run — traced driver + outer daemon + inner daemon, three separate
Python processes — assembles into ONE Chrome trace whose flow events
connect the relay hops across process boundaries."""

import asyncio
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.core.aio import AioProxyClient
from repro.obs import spans, trace
from repro.obs.cli import main as obs_main
from repro.obs.export import validate_chrome_trace, write_artifacts

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _spawn_daemon(entry: str, args: "list[str]") -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    code = (
        f"import sys; from repro.core.aio.cli import {entry}; "
        f"sys.exit({entry}(sys.argv[1:]))"
    )
    return subprocess.Popen(
        [sys.executable, "-c", code, *args],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _wait_port(port: int, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=1):
                return
        except OSError:
            time.sleep(0.05)
    raise TimeoutError(f"port {port} never came up")


def _stop(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


async def _drive_traffic(outer_port: int, nxport: int) -> None:
    """One active connect and one passive bind+chain, both traced."""
    client = AioProxyClient(
        outer_addr=("127.0.0.1", outer_port),
        inner_addr=("127.0.0.1", nxport),
    )

    # Active open toward a local echo endpoint.
    async def echo(r, w):
        data = await r.read(1024)
        w.write(data)
        await w.drain()
        w.close()

    srv = await asyncio.start_server(echo, "127.0.0.1", 0)
    echo_port = srv.sockets[0].getsockname()[1]
    r, w = await client.connect("127.0.0.1", echo_port)
    w.write(b"actively relayed")
    await w.drain()
    assert await r.readexactly(16) == b"actively relayed"
    w.close()
    srv.close()

    # Passive open: a peer reaches us through outer->inner chaining.
    listener = await client.bind()

    async def serve_one():
        cr, cw = await listener.accept(timeout=15)
        data = await cr.read(1024)
        cw.write(data)
        await cw.drain()
        cw.close()

    server_task = asyncio.ensure_future(serve_one())
    host, port = listener.proxy_addr
    pr, pw = await asyncio.open_connection(host, port)
    pw.write(b"chained")
    await pw.drain()
    assert await pr.readexactly(7) == b"chained"
    pw.close()
    await server_task
    await listener.close()
    await asyncio.sleep(0.2)  # let daemon-side chain spans close


@pytest.mark.slow
def test_three_process_run_assembles_into_one_causal_trace(tmp_path):
    nxport = _free_port()
    outer_port = _free_port()
    inner_base = str(tmp_path / "inner")
    outer_base = str(tmp_path / "outer")
    cli_base = str(tmp_path / "cli")

    inner = _spawn_daemon("inner_main", [
        "--host", "127.0.0.1", "--nxport", str(nxport),
        "--trace-out", inner_base, "--trace-site", "inner",
    ])
    outer = _spawn_daemon("outer_main", [
        "--host", "127.0.0.1", "--control-port", str(outer_port),
        "--trace-out", outer_base, "--trace-site", "outer",
    ])
    try:
        _wait_port(nxport)
        _wait_port(outer_port)

        rec = spans.install()
        trace.enable("cli")
        try:
            asyncio.run(
                asyncio.wait_for(_drive_traffic(outer_port, nxport), 30)
            )
        finally:
            trace.disable()
            spans.uninstall()
        write_artifacts(rec, cli_base, extra_meta={"role": "driver"})
    finally:
        _stop(outer)
        _stop(inner)

    paths = [f"{base}.trace.json" for base in (cli_base, outer_base, inner_base)]
    for p in paths:
        assert os.path.exists(p), f"daemon did not write {p} on SIGINT"

    merged_path = str(tmp_path / "merged.trace.json")
    code = obs_main(["assemble", *paths, "-o", merged_path,
                     "--labels", "cli", "outer", "inner"])
    assert code == 0
    merged = json.loads(open(merged_path).read())
    assert validate_chrome_trace(merged) == []

    info = merged["otherData"]["assembled"]
    assert info["files"] == ["cli", "outer", "inner"]
    # Every hop's parent resolved: the causal tree closed.
    assert info["unresolved_parents"] == 0
    assert info["flows"] >= 3
    # Both origins assembled, each spanning more than one process.
    trace_ids = set(info["traces"])
    assert any(t.startswith("cliconnect-") for t in trace_ids)
    assert any(t.startswith("clibind-") for t in trace_ids)
    bind_id = next(t for t in trace_ids if t.startswith("clibind-"))
    assert info["traces"][bind_id] >= 3

    # Flow arrows genuinely cross process (pid-block) boundaries.
    flows = {}
    for ev in merged["traceEvents"]:
        if ev.get("ph") in ("s", "f"):
            flows.setdefault(ev["id"], {})[ev["ph"]] = ev
    assert flows
    crossing = [
        pair for pair in flows.values()
        if pair["s"]["pid"] // 10 != pair["f"]["pid"] // 10
    ]
    assert crossing, "no flow event crosses a process boundary"
    # The daemons' registries rode along (relay collector snapshots).
    regs = merged["otherData"]["registries"]
    assert regs["outer"]["relay"]["passive_chains"] >= 1
    assert regs["inner"]["relay"]["nxport_connections"] >= 1
