"""Fleet telemetry aggregation: discovery, merge, staleness under
churn, and the per-worker-labelled Prometheus re-export."""

import asyncio
import json

import pytest

from repro.obs.aggregate import (
    AGGREGATE_FORMAT_TAG,
    FleetAggregator,
    http_get,
    http_get_json,
    render_fleet_prometheus,
)
from repro.obs.metrics import LogHistogram, MetricsRegistry
from repro.obs.telemetry import TelemetryServer


def _worker_registry(bytes_relayed: int) -> MetricsRegistry:
    """Shaped like a real worker's registry: relay stats under a
    'relay' collector prefix, histogram included."""
    reg = MetricsRegistry()
    hist = LogHistogram()
    hist.record(100)
    hist.record(60_000)
    reg.register_collector("relay", lambda: {
        "bytes_relayed": bytes_relayed,
        "active_chains": 2,
        "chunk_bytes_hist": hist.snapshot(),
    })
    return reg


class _SyntheticFleet:
    """An admin endpoint + N worker telemetry endpoints with no actual
    fleet behind them — the aggregator only ever sees HTTP."""

    def __init__(self, nworkers: int = 2) -> None:
        self.registries = {
            f"w{i}": _worker_registry(1000 * (i + 1)) for i in range(nworkers)
        }
        self.workers: "dict[str, TelemetryServer]" = {}
        self.wiring: "dict[str, dict]" = {}
        self.fleet_snapshot = {
            "mode": "handoff", "drains_started": 0, "drains_completed": 0,
        }
        self.admin_ok = True
        self.admin: TelemetryServer | None = None

    def _fleet_route(self):
        return (
            "application/json",
            json.dumps({
                "ok": self.admin_ok,
                "fleet": self.fleet_snapshot,
                "wiring": self.wiring,
            }) + "\n",
        )

    async def start(self) -> "_SyntheticFleet":
        for wid, reg in self.registries.items():
            server = await TelemetryServer(reg.snapshot, port=0).start()
            self.workers[wid] = server
            self.wiring[wid] = {"telemetry_port": server.bound_port}
        self.admin = await TelemetryServer(
            dict, port=0, routes={"/fleet": self._fleet_route}
        ).start()
        return self

    async def stop(self) -> None:
        for server in self.workers.values():
            await server.stop()
        if self.admin is not None:
            await self.admin.stop()


def test_aggregator_merges_all_live_workers():
    async def main():
        fake = await _SyntheticFleet(2).start()
        try:
            agg = FleetAggregator("127.0.0.1", fake.admin.bound_port)
            view = await agg.refresh(now=10.0)
            assert view["format"] == AGGREGATE_FORMAT_TAG
            assert view["admin_ok"] is True
            assert sorted(view["workers"]) == ["w0", "w1"]
            for wid, w in view["workers"].items():
                assert w["scraped"] and not w["stale"]
                assert w["schema_version"] == 2
                assert w["git_sha"]  # emit-time provenance propagated
                assert w["age_s"] == 0.0
            derived = view["derived"]
            assert derived["bytes_relayed_total"] == 3000
            assert derived["active_chains_total"] == 4
            assert derived["workers_up"] == 2
            assert derived["workers_stale"] == 0
            assert derived["mixed_versions"] is False
            # Each refresh also feeds the fleet time-series.
            assert len(agg.sampler) == 1
            key = "workers.w1.relay.bytes_relayed"
            assert agg.sampler.series(key) == [(10.0, 2000)]
        finally:
            await fake.stop()

    asyncio.run(asyncio.wait_for(main(), timeout=15))


def test_worker_dying_mid_scrape_goes_stale_not_error():
    async def main():
        fake = await _SyntheticFleet(2).start()
        try:
            agg = FleetAggregator("127.0.0.1", fake.admin.bound_port)
            await agg.refresh(now=1.0)
            # w1 dies but stays wired (mid-restart): stale, last
            # payload kept, fleet view still served.
            await fake.workers["w1"].stop()
            view = await agg.refresh(now=2.0)
            w1 = view["workers"]["w1"]
            assert w1["stale"] and w1["scraped"]
            assert w1["registry"]["relay"]["bytes_relayed"] == 2000  # kept
            assert w1["age_s"] == 1.0
            assert view["derived"]["workers_up"] == 1
            assert view["derived"]["workers_stale"] == 1
            assert agg.scrape_failures == 1
            # Once the admin stops wiring it, the worker is dropped.
            del fake.wiring["w1"]
            view = await agg.refresh(now=3.0)
            assert sorted(view["workers"]) == ["w0"]
        finally:
            await fake.stop()

    asyncio.run(asyncio.wait_for(main(), timeout=15))


def test_admin_outage_keeps_last_wiring():
    async def main():
        fake = await _SyntheticFleet(1).start()
        try:
            agg = FleetAggregator("127.0.0.1", fake.admin.bound_port)
            await agg.refresh(now=1.0)
            await fake.admin.stop()
            fake.admin = None
            # Admin gone: workers keep being scraped via the last
            # known wiring instead of vanishing from the view.
            view = await agg.refresh(now=2.0)
            assert view["admin_ok"] is False
            assert view["workers"]["w0"]["scraped"]
            assert not view["workers"]["w0"]["stale"]
        finally:
            await fake.stop()

    asyncio.run(asyncio.wait_for(main(), timeout=15))


def test_render_fleet_prometheus_labels_and_families():
    view = {
        "workers": {
            "w0": {
                "scraped": True, "stale": False,
                "registry": {
                    "relay.bytes_relayed": 1000,
                    "relay.chunk_bytes_hist": {"<=127": 1, "<=65535": 1},
                },
            },
            "w1": {"scraped": True, "stale": True, "registry": {
                "relay.bytes_relayed": 2000,
            }},
        },
        "fleet": {"placed_chains": 4},
        "derived": {"workers_up": 1},
    }
    text = render_fleet_prometheus(view)
    lines = text.splitlines()
    assert 'repro_worker_up{worker="w0"} 1' in lines
    assert 'repro_worker_up{worker="w1"} 0' in lines  # stale == down
    assert 'repro_worker_relay_bytes_relayed{worker="w0"} 1000' in lines
    assert 'repro_worker_relay_bytes_relayed{worker="w1"} 2000' in lines
    hist_lines = [
        l for l in lines if l.startswith("repro_worker_relay_chunk_bytes")
    ]
    assert 'repro_worker_relay_chunk_bytes_hist_bucket{worker="w0",le="127"} 1' in hist_lines
    assert 'repro_worker_relay_chunk_bytes_hist_bucket{worker="w0",le="+Inf"} 2' in hist_lines
    assert 'repro_worker_relay_chunk_bytes_hist_count{worker="w0"} 2' in hist_lines
    # Family samples stay contiguous: every series of one family sits
    # directly under its single # TYPE line.
    type_idx = [i for i, l in enumerate(lines) if l.startswith("# TYPE")]
    for i, idx in enumerate(type_idx):
        end = type_idx[i + 1] if i + 1 < len(type_idx) else len(lines)
        family = lines[idx].split()[2]
        assert all(
            lines[j].startswith(family) for j in range(idx + 1, end)
            if lines[j] and not lines[j].startswith("#")
        )
    # Fleet-level snapshot renders under its own prefix.
    assert "repro_fleet_placed_chains 4" in lines
    assert 'repro_fleet_derived{key="workers_up"} 1' in lines


def test_http_get_maps_failures_to_connection_error():
    async def main():
        with pytest.raises(ConnectionError):
            await http_get("127.0.0.1", 1, "/metrics.json", timeout=1.0)
        server = await TelemetryServer(dict, port=0).start()
        try:
            with pytest.raises(ConnectionError):  # 404 is a failure too
                await http_get_json(
                    "127.0.0.1", server.bound_port, "/nope", timeout=2.0
                )
            body = await http_get_json(
                "127.0.0.1", server.bound_port, "/metrics.json", timeout=2.0
            )
            assert body["schema_version"] == 2
        finally:
            await server.stop()

    asyncio.run(asyncio.wait_for(main(), timeout=15))


def test_aggregated_endpoint_serves_merged_view():
    async def main():
        fake = await _SyntheticFleet(2).start()
        endpoint = None
        try:
            agg = FleetAggregator("127.0.0.1", fake.admin.bound_port)
            await agg.refresh(now=1.0)
            endpoint = await agg.make_endpoint().start()
            payload = await http_get_json(
                "127.0.0.1", endpoint.bound_port, "/metrics.json"
            )
            assert payload["aggregate"]["format"] == AGGREGATE_FORMAT_TAG
            assert sorted(payload["aggregate"]["workers"]) == ["w0", "w1"]
            assert payload["rollup"]["samples"] == 1
            prom = (await http_get(
                "127.0.0.1", endpoint.bound_port, "/metrics"
            )).decode()
            assert 'repro_worker_up{worker="w0"} 1' in prom
            assert 'repro_worker_up{worker="w1"} 1' in prom
        finally:
            if endpoint is not None:
                await endpoint.stop()
            await fake.stop()

    asyncio.run(asyncio.wait_for(main(), timeout=15))


@pytest.mark.slow
def test_concurrent_scrapes_during_real_fleet_drain():
    """Telemetry under churn: the aggregator keeps polling a real
    2-worker fleet while one worker drains away; no round errors, the
    drained (gone, still-wired) worker turns stale with its last
    payload kept, and the survivor stays live."""
    from repro.core.aio.fleet import FleetManager, FleetSpec
    from repro.core.aio.fleetctl import FleetAdminServer

    async def main():
        fleet = await FleetManager(FleetSpec(
            workers=2, heartbeat_s=0.1, telemetry=True,
            sample_interval_s=0.1,
        )).start()
        admin = await FleetAdminServer(fleet).start()
        agg = FleetAggregator(
            "127.0.0.1", admin.bound_port, interval_s=0.05
        )
        try:
            agg.start()
            for _ in range(100):
                await asyncio.sleep(0.05)
                if agg.rounds >= 2:
                    break
            assert sorted(agg.view()["workers"]) == ["w0", "w1"]
            # Scrapes continue concurrently with the drain.
            await fleet.drain("w0", grace_s=0.2)
            for _ in range(100):
                await asyncio.sleep(0.05)
                view = agg.view()
                w0 = view["workers"].get("w0", {})
                if w0.get("stale") and view["fleet"].get(
                    "drains_completed"
                ) == 1:
                    break
            view = agg.view()
            # The gone worker stays wired (the manager keeps its
            # handle for reporting), so the aggregator keeps it as a
            # stale entry with its last-good payload instead of
            # erroring or dropping history.
            w0 = view["workers"]["w0"]
            assert w0["stale"] and w0["scraped"]
            assert view["workers"]["w1"]["scraped"]
            assert not view["workers"]["w1"]["stale"]
            assert view["fleet"]["drains_completed"] == 1
            assert view["fleet"]["workers"]["w0"]["state"] == "gone"
            assert view["derived"]["workers_up"] == 1
            assert view["derived"]["workers_stale"] == 1
            assert len(agg.sampler) >= 2
        finally:
            await agg.stop()
            await admin.stop()
            await fleet.stop()

    asyncio.run(asyncio.wait_for(main(), timeout=60))
