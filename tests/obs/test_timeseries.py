"""Time-series sampler: flattening, rollups, percentiles, and the
sim-domain byte-stability guarantee across kernel modes."""

import asyncio

import pytest

from repro.obs.export import dumps
from repro.obs.timeseries import (
    TIMESERIES_FORMAT_TAG,
    TIMESERIES_SCHEMA_VERSION,
    TimeSeriesSampler,
    flatten_numeric,
    hist_delta,
    hist_quantile,
    hist_total,
)


# -- flattening -----------------------------------------------------------


def test_flatten_numeric_separates_scalars_and_hists():
    scalars, hists = flatten_numeric({
        "relay": {
            "bytes": 42,
            "rate": 1.5,
            "ok": True,
            "name": "ignored-string",
            "chunk_hist": {"<=15": 2, "<=31": 1},
        },
        "top": 7,
    })
    assert scalars == {
        "relay.bytes": 42,
        "relay.rate": 1.5,
        "relay.ok": 1,
        "top": 7,
    }
    assert hists == {"relay.chunk_hist": {"<=15": 2, "<=31": 1}}


def test_flatten_numeric_empty_dict_is_not_a_hist():
    scalars, hists = flatten_numeric({"empty": {}})
    assert scalars == {} and hists == {}


# -- histogram helpers ----------------------------------------------------


def test_hist_delta_is_sparse_and_clamps_resets():
    newer = {"<=15": 5, "<=31": 2, "<=63": 1}
    older = {"<=15": 3, "<=31": 2, "<=127": 9}  # <=127 reset to absent
    assert hist_delta(newer, older) == {"<=15": 2, "<=63": 1}
    assert hist_delta(newer, None) == newer


def test_hist_quantile_upper_bound_semantics():
    hist = {"<=15": 50, "<=31": 40, "<=1023": 10}
    assert hist_total(hist) == 100
    assert hist_quantile(hist, 0.50) == 15
    assert hist_quantile(hist, 0.90) == 31
    assert hist_quantile(hist, 0.99) == 1023
    assert hist_quantile({}, 0.99) == 0


# -- sampler mechanics ----------------------------------------------------


def test_sampler_ring_evicts_and_counts():
    state = {"n": 0}

    def snap():
        state["n"] += 1
        return {"n": state["n"]}

    sampler = TimeSeriesSampler(snap, interval_s=1.0, capacity=4)
    for t in range(6):
        sampler.sample(float(t))
    assert len(sampler) == 4
    assert sampler.evicted == 2
    assert sampler.series("n") == [(2.0, 3), (3.0, 4), (4.0, 5), (5.0, 6)]
    # Windowing is relative to the newest sample.
    assert [t for t, _v in sampler.series("n", window_s=1.0)] == [4.0, 5.0]


def test_sampler_validates_construction():
    with pytest.raises(ValueError):
        TimeSeriesSampler(dict, interval_s=0.0)
    with pytest.raises(ValueError):
        TimeSeriesSampler(dict, capacity=1)
    with pytest.raises(ValueError):
        TimeSeriesSampler(dict, domain="wall").attach_sim(None)


def test_rollup_rates_deltas_and_window_percentiles():
    samples = [
        (0.0, {"bytes": 0, "gauge": 5.0}, {"lat": {"<=15": 10}}),
        (1.0, {"bytes": 512, "gauge": 3.0}, {"lat": {"<=15": 10, "<=31": 5}}),
        (2.0, {"bytes": 2048, "gauge": 9.0},
         {"lat": {"<=15": 10, "<=31": 5, "<=1023": 5}}),
    ]
    sampler = TimeSeriesSampler(dict, interval_s=1.0)
    # Feed pre-flattened samples directly; snapshot flattening is
    # covered above.
    sampler.samples.extend(samples)
    roll = sampler.rollup()
    assert roll["samples"] == 3 and roll["span_s"] == 2.0
    assert roll["scalars"]["bytes"] == {
        "last": 2048, "min": 0, "max": 2048, "delta": 2048, "rate": 1024.0,
    }
    assert roll["scalars"]["gauge"]["min"] == 3.0
    assert roll["scalars"]["gauge"]["max"] == 9.0
    # Percentiles come from the window's bucket-count delta: 5 in
    # <=31 and 5 in <=1023 (the <=15 bucket didn't move).
    lat = roll["hists"]["lat"]
    assert lat["window_is_delta"] is True
    assert lat["count"] == 10
    assert lat["p50"] == 31
    assert lat["p99"] == 1023
    # A narrow window with no histogram movement falls back to the
    # cumulative distribution.
    lat1 = sampler.rollup(window_s=0.0)["hists"]["lat"]
    assert lat1["window_is_delta"] is False
    assert lat1["count"] == 20


def test_export_document_shape():
    sampler = TimeSeriesSampler(lambda: {"v": 1}, interval_s=0.5, capacity=8)
    sampler.sample(0.0)
    sampler.sample(0.5)
    doc = sampler.export(extra_meta={"who": "test"})
    assert doc["format"] == TIMESERIES_FORMAT_TAG
    assert doc["schema_version"] == TIMESERIES_SCHEMA_VERSION
    assert doc["domain"] == "wall"
    assert doc["interval_s"] == 0.5
    assert len(doc["samples"]) == 2
    assert doc["rollup"]["scalars"]["v"]["last"] == 1
    assert doc["meta"] == {"who": "test"}
    dumps(doc)  # must be plain-JSON serializable


def test_wall_sampler_runs_on_the_loop():
    sampler = TimeSeriesSampler(lambda: {"v": 7}, interval_s=0.01)

    async def main():
        sampler.start_wall()
        await asyncio.sleep(0.08)
        await sampler.stop()

    asyncio.run(asyncio.wait_for(main(), timeout=15))
    assert len(sampler) >= 2
    assert all(scalars == {"v": 7} for _t, scalars, _h in sampler.samples)
    with pytest.raises(ValueError):
        TimeSeriesSampler(dict, domain="sim").start_wall()


# -- sim-plane determinism -----------------------------------------------


def _sampled_sim_fleet_export() -> str:
    """A SimFleet scenario with real relayed traffic and an attached
    sim-domain sampler; returns the exported series as canonical JSON."""
    from tests.core.test_sim_fleet import FleetDeployment
    from repro.core import FramedConnection, NexusProxyClient

    dep = FleetDeployment()
    fleet = dep.fleet
    fleet.start()
    sampler = fleet.start_sampler(interval_s=0.05)
    assert fleet.start_sampler() is sampler  # idempotent

    def server():
        ls = dep.pb.listen(9000)
        while True:
            conn = yield ls.accept()
            fc = FramedConnection(conn, dep.config.chunk_bytes)
            yield from fc.recv()
            yield fc.send("pong", nbytes=2048)

    def client_proc(i):
        yield dep.sim.timeout(0.07 * i)
        addr = fleet.place("pa", chain_key=f"c{i}")
        assert addr is not None
        client = NexusProxyClient(dep.pa, outer_addr=addr, config=dep.config)
        fc = yield from client.connect(("pb", 9000))
        yield fc.send("ping", nbytes=8192)
        yield from fc.recv()
        fleet.release("pa", addr.host)

    dep.sim.process(server())
    for i in range(3):
        dep.sim.process(client_proc(i))
    dep.sim.run(until=1.0)
    assert len(sampler) >= 10
    return dumps(sampler.export())


def test_sim_series_byte_identical_across_kernels(monkeypatch):
    """The sampler's wakeups are ordinary heap events
    (:meth:`Simulator.every`), so the exported series — timestamps,
    values, rollup — is a pure function of the simulated program, not
    of the kernel implementation driving it."""
    payloads = {}
    for mode in ("seed", "fast"):
        monkeypatch.setenv("REPRO_SIM_KERNEL", mode)
        payloads[mode] = _sampled_sim_fleet_export()
    assert payloads["seed"] == payloads["fast"]
    import json

    assert json.loads(payloads["seed"])["domain"] == "sim"
