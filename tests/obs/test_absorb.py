"""Merging registry snapshots across process boundaries
(``MetricsRegistry.absorb``) — the mechanism that keeps worker-side
metrics when ``repro-bench --jobs N --profile`` fans out."""

from repro.obs.metrics import MetricsRegistry


def _donor_snapshot() -> dict:
    reg = MetricsRegistry()
    reg.counter("events").inc(10)
    reg.gauge("wall_s").add(1.5)
    reg.counter2d("msgs", "a->b").inc(3)
    hist = reg.histogram("bytes")
    hist.record(3)
    hist.record(3)
    hist.record(100)
    reg.register_collector("relay", lambda: {"chains": 2, "inner": {"deep": 4}})
    return reg.snapshot()


def test_absorb_into_empty_equals_donor():
    reg = MetricsRegistry()
    reg.absorb(_donor_snapshot())
    snap = reg.snapshot()
    assert snap["events"] == 10
    assert snap["wall_s"] == 1.5
    assert snap["msgs"]["a->b"] == 3
    assert snap["bytes"]["<=3"] == 2
    assert sum(snap["bytes"].values()) == 3
    # Collector output is absorbed by shape: flat ints become
    # counters; an all-int inner dict lands as a keyed family under
    # its dotted name.
    assert snap["relay.chains"] == 2
    assert snap["relay.inner"] == {"deep": 4}


def test_absorb_accumulates_counters_and_histograms():
    reg = MetricsRegistry()
    reg.counter("events").inc(5)
    reg.histogram("bytes").record(3)
    reg.absorb(_donor_snapshot())
    reg.absorb(_donor_snapshot())
    snap = reg.snapshot()
    assert snap["events"] == 25
    assert snap["msgs"]["a->b"] == 6
    assert snap["bytes"]["<=3"] == 5
    assert sum(snap["bytes"].values()) == 7
    # Gauges accumulate too (absorb treats them as deltas — the
    # worker's gauge reading is a contribution, not a replacement).
    assert snap["wall_s"] == 3.0


def test_absorb_ignores_bools_and_empty():
    reg = MetricsRegistry()
    reg.absorb({})
    reg.absorb({"flag": True, "n": 1})
    snap = reg.snapshot()
    assert "flag" not in snap
    assert snap["n"] == 1
