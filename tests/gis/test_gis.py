"""Grid Information Service: records, filters, server, client, bridge."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gis import GISClient, GISError, GISServer, Record, publish_rmf_resources
from repro.gis.records import parse_filter
from repro.simnet import Network


# -- records & filters ------------------------------------------------------


def test_record_validation():
    with pytest.raises(GISError):
        Record(dn="", attributes={})
    with pytest.raises(GISError):
        Record(dn="x", attributes={}, ttl=0)


def test_record_expiry():
    r = Record(dn="x", attributes={}, registered_at=10.0, ttl=5.0)
    assert not r.expired(14.9)
    assert r.expired(15.1)


def test_filter_equality_and_wildcard():
    f = parse_filter("(&(type=compute)(site=*))")
    assert f.matches(Record("a", {"type": "compute", "site": "rwcp"}))
    assert not f.matches(Record("b", {"type": "gatekeeper", "site": "rwcp"}))
    assert not f.matches(Record("c", {"type": "compute"}))  # site missing


def test_filter_numeric_operators():
    rec = Record("a", {"cpus": 8, "cpu_speed": 0.55})
    assert parse_filter("(cpus>=8)").matches(rec)
    assert not parse_filter("(cpus>8)").matches(rec)
    assert parse_filter("(cpus<=8)").matches(rec)
    assert parse_filter("(cpu_speed<1)").matches(rec)
    assert not parse_filter("(cpu_speed>=1)").matches(rec)


def test_filter_numeric_on_non_numeric_fails_closed():
    rec = Record("a", {"cpus": "many"})
    assert not parse_filter("(cpus>=1)").matches(rec)


def test_match_all_filters():
    rec = Record("a", {"x": 1})
    for text in ("", "(*)", "*"):
        assert parse_filter(text).matches(rec)


def test_malformed_filters_rejected():
    for bad in ("(", "(cpus)", "(&(a=1)garbage)", "nonsense"):
        with pytest.raises(GISError):
            parse_filter(bad)


@given(
    cpus=st.integers(min_value=0, max_value=128),
    bound=st.integers(min_value=0, max_value=128),
)
def test_filter_numeric_property(cpus, bound):
    rec = Record("a", {"cpus": cpus})
    assert parse_filter(f"(cpus>={bound})").matches(rec) == (cpus >= bound)


# -- server (direct API) -------------------------------------------------------


def make_server():
    net = Network()
    h = net.add_host("gis-host")
    return net, GISServer(h).start()


def test_register_query_unregister():
    net, gis = make_server()
    gis.register("a", {"type": "compute", "cpus": 4})
    gis.register("b", {"type": "compute", "cpus": 16})
    gis.register("c", {"type": "gatekeeper"})
    assert len(gis) == 3
    hits = gis.query("(&(type=compute)(cpus>=8))")
    assert [r.dn for r in hits] == ["b"]
    assert gis.unregister("b")
    assert not gis.unregister("b")
    assert len(gis) == 2


def test_reregistration_refreshes():
    net, gis = make_server()
    gis.register("a", {"v": 1}, ttl=10)
    gis.register("a", {"v": 2}, ttl=10)
    [hit] = gis.query("(v=2)")
    assert hit.get("v") == 2
    assert len(gis) == 1


def test_ttl_expiry_via_clock():
    net, gis = make_server()
    gis.register("a", {"x": 1}, ttl=5.0)

    def later():
        yield net.sim.timeout(6.0)
        return gis.query("")

    p = net.sim.process(later())
    net.sim.run()
    assert p.value == []


def test_double_start_rejected():
    net, gis = make_server()
    with pytest.raises(GISError):
        gis.start()


# -- client over the network ------------------------------------------------------


def test_client_roundtrip():
    net = Network()
    server_h = net.add_host("gis-host")
    client_h = net.add_host("client")
    net.link(server_h, client_h, 1e-3, 1e6)
    gis = GISServer(server_h).start()
    client = GISClient(client_h, gis.addr)
    out = {}

    def proc():
        yield from client.register("res-1", {"type": "compute", "cpus": 8})
        yield from client.register("res-2", {"type": "compute", "cpus": 2})
        hits = yield from client.search("(&(type=compute)(cpus>=4))")
        out["hits"] = [r.dn for r in hits]
        removed = yield from client.unregister("res-1")
        out["removed"] = removed
        out["after"] = [r.dn for r in (yield from client.search(""))]
        client.close()

    net.sim.process(proc())
    net.sim.run()
    assert out["hits"] == ["res-1"]
    assert out["removed"] is True
    assert out["after"] == ["res-2"]
    assert gis.queries_served == 2


def test_client_bad_filter_raises():
    net = Network()
    server_h = net.add_host("gis-host")
    client_h = net.add_host("client")
    net.link(server_h, client_h, 1e-3, 1e6)
    gis = GISServer(server_h).start()
    client = GISClient(client_h, gis.addr)

    def proc():
        with pytest.raises(GISError, match="unparsable"):
            yield from client.search("((((")
        return True

    p = net.sim.process(proc())
    net.sim.run()
    assert p.value is True


def test_firewalled_resource_can_publish_outbound():
    """The asymmetry the whole paper rides on, applied to discovery."""
    from repro.simnet import Firewall

    net = Network()
    fw = Firewall.typical(reject=True)
    site = net.add_site("rwcp", firewall=fw)
    inside = net.add_host("inside", site=site)
    gis_host = net.add_host("gis-host")
    net.link(inside, gis_host, 1e-3, 1e6)
    gis = GISServer(gis_host).start()
    client = GISClient(inside, gis.addr)

    def proc():
        yield from client.register("inside-res", {"type": "compute"})
        return True

    p = net.sim.process(proc())
    net.sim.run()
    assert p.value is True
    assert len(gis) == 1


# -- RMF bridge ---------------------------------------------------------------------


def test_publish_rmf_resources():
    from repro.cluster import Testbed
    from repro.rmf import RMFSystem

    tb = Testbed()
    rmf = RMFSystem(tb.outer_host, tb.inner_host)
    rmf.add_resource(tb.rwcp_sun, name="RWCP-Sun", cpus=4)
    rmf.add_resource(tb.compas[0], name="COMPaS-0", cpus=4)
    gis = GISServer(tb.outer_host).start()
    dns = publish_rmf_resources(gis, rmf, site="rwcp")
    assert len(dns) == 3  # gatekeeper + 2 resources

    gatekeepers = gis.query("(type=gatekeeper)")
    assert len(gatekeepers) == 1
    computes = gis.query("(&(type=compute)(behind_firewall=true))")
    assert {r.get("resource") for r in computes} == {"RWCP-Sun", "COMPaS-0"}
    # Discovery gives a client everything needed to submit.
    gk = gatekeepers[0]
    assert (gk.get("gatekeeper_host"), gk.get("gatekeeper_port")) == rmf.gatekeeper.addr
