"""Summary / RunningStats tests, including Hypothesis equivalence checks."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import RunningStats, Summary, median, summarize

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.maximum == 4.0
    assert s.minimum == 1.0
    assert s.average == pytest.approx(2.5)
    assert s.count == 4
    assert s.total == pytest.approx(10.0)


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_summary_as_row_scaling():
    # Table 6 reports node counts in billions.
    s = summarize([2.5e9, 1.5e9])
    assert s.as_row(scale=1e9) == ["2.50", "1.50", "2.00"]


def test_running_stats_single_value():
    rs = RunningStats()
    rs.add(5.0)
    assert rs.mean == 5.0
    assert rs.variance == 0.0
    assert rs.minimum == rs.maximum == 5.0


def test_running_stats_empty_raises():
    rs = RunningStats()
    for attr in ("mean", "variance", "stdev", "minimum", "maximum"):
        with pytest.raises(ValueError):
            getattr(rs, attr)
    with pytest.raises(ValueError):
        rs.summary()


@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_running_stats_matches_batch(xs):
    rs = RunningStats()
    rs.extend(xs)
    s = summarize(xs)
    assert rs.n == s.count
    assert rs.mean == pytest.approx(s.average, rel=1e-9, abs=1e-6)
    assert rs.minimum == s.minimum
    assert rs.maximum == s.maximum
    # Population variance against the naive two-pass formula.
    mu = sum(xs) / len(xs)
    var = sum((x - mu) ** 2 for x in xs) / len(xs)
    assert rs.variance == pytest.approx(var, rel=1e-6, abs=1e-6)


@given(
    st.lists(finite_floats, min_size=1, max_size=50),
    st.lists(finite_floats, min_size=1, max_size=50),
)
def test_running_stats_merge_equivalence(a, b):
    ra, rb = RunningStats(), RunningStats()
    ra.extend(a)
    rb.extend(b)
    merged = ra.merge(rb)
    whole = RunningStats()
    whole.extend(a + b)
    assert merged.n == whole.n
    assert merged.mean == pytest.approx(whole.mean, rel=1e-9, abs=1e-6)
    assert merged.variance == pytest.approx(whole.variance, rel=1e-6, abs=1e-6)
    assert merged.minimum == whole.minimum
    assert merged.maximum == whole.maximum


def test_merge_with_empty_sides():
    r = RunningStats()
    r.extend([1.0, 2.0])
    empty = RunningStats()
    assert empty.merge(r).mean == pytest.approx(1.5)
    assert r.merge(empty).mean == pytest.approx(1.5)


def test_running_stats_summary_roundtrip():
    rs = RunningStats()
    rs.extend([3.0, 1.0, 2.0])
    s = rs.summary()
    assert isinstance(s, Summary)
    assert s.total == pytest.approx(6.0)
    assert s.count == 3


def test_median_odd_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([4.0, 1.0, 3.0, 2.0]) == pytest.approx(2.5)


def test_median_empty_raises():
    with pytest.raises(ValueError):
        median([])


@given(st.lists(finite_floats, min_size=1, max_size=99))
def test_median_is_order_statistic(xs):
    m = median(xs)
    below = sum(1 for x in xs if x < m)
    above = sum(1 for x in xs if x > m)
    assert below <= len(xs) / 2
    assert above <= len(xs) / 2
    assert not math.isnan(m)
