"""Deterministic RNG plumbing tests."""

import numpy as np

from repro.util.rng import DEFAULT_SEED, make_rng, spawn


def test_default_is_deterministic():
    a = make_rng(None).integers(0, 1 << 30, size=8)
    b = make_rng(None).integers(0, 1 << 30, size=8)
    assert (a == b).all()


def test_seed_changes_stream():
    a = make_rng(1).integers(0, 1 << 30, size=8)
    b = make_rng(2).integers(0, 1 << 30, size=8)
    assert not (a == b).all()


def test_generator_passthrough():
    g = np.random.default_rng(7)
    assert make_rng(g) is g


def test_default_seed_value_documented():
    assert DEFAULT_SEED == 20000801


def test_spawn_streams_independent():
    children = spawn(make_rng(3), 4)
    assert len(children) == 4
    draws = [c.integers(0, 1 << 30, size=4).tolist() for c in children]
    # All pairwise distinct.
    assert len({tuple(d) for d in draws}) == 4


def test_spawn_reproducible():
    a = [c.integers(0, 100, size=3).tolist() for c in spawn(make_rng(9), 3)]
    b = [c.integers(0, 100, size=3).tolist() for c in spawn(make_rng(9), 3)]
    assert a == b
