"""Text-table rendering tests."""

import pytest

from repro.util.tables import Table


def test_basic_render():
    t = Table(["a", "bb"], title="T")
    t.add_row([1, "x"])
    out = t.render()
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1] == "="
    assert "a" in lines[2] and "bb" in lines[2]
    assert lines[4].startswith("1")


def test_column_alignment():
    t = Table(["name", "value"])
    t.add_row(["long-system-name", 1])
    t.add_row(["x", 123456])
    lines = t.render().splitlines()
    # All data lines have the value column starting at the same offset.
    start = lines[2].index("1")
    assert lines[3].index("123456") == start


def test_wrong_arity_rejected():
    t = Table(["a", "b"])
    with pytest.raises(ValueError):
        t.add_row([1])


def test_none_renders_empty():
    t = Table(["a", "b"])
    t.add_row([None, 2])
    assert t.render().splitlines()[-1].strip().startswith("2") or "2" in t.render()


def test_separator_row():
    t = Table(["a"])
    t.add_row(["x"])
    t.add_separator()
    t.add_row(["y"])
    lines = t.render().splitlines()
    assert lines[3].startswith("-")


def test_no_title():
    t = Table(["h"])
    t.add_row(["v"])
    assert t.render().splitlines()[0] == "h"


def test_str_is_render():
    t = Table(["h"])
    t.add_row(["v"])
    assert str(t) == t.render()
