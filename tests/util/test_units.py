"""Unit conversion and formatting tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import units


def test_decimal_constants():
    assert units.KB == 1_000
    assert units.MB == 1_000_000
    assert units.GB == 1_000_000_000


def test_table2_message_sizes():
    # Table 2 uses a 4096-byte and a (binary) 1 MB message.
    assert units.SMALL_MESSAGE == 4096
    assert units.MIB_MESSAGE == 1048576


def test_mbps_imnet():
    # The 1.5 Mbps IMNet carries at most 187.5 KB/s.
    assert units.mbps(1.5) == pytest.approx(187_500)


def test_kbps_and_gbps():
    assert units.kbps(8) == pytest.approx(1_000)
    assert units.gbps(1) == pytest.approx(125_000_000)


def test_bytes_per_sec():
    assert units.bytes_per_sec(1_000_000, 2.0) == pytest.approx(500_000)


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_bytes_per_sec_rejects_nonpositive_duration(bad):
    with pytest.raises(ValueError):
        units.bytes_per_sec(100, bad)


def test_fmt_bytes():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(4096) == "4.1 KB"
    assert units.fmt_bytes(6_320_000) == "6.3 MB"
    assert units.fmt_bytes(2_000_000_000) == "2.0 GB"


def test_fmt_rate_matches_paper_style():
    # 6.32 MB/sec and 70.5 KB/sec are literal Table 2 cells.
    assert units.fmt_rate(6_320_000) == "6.32 MB/sec"
    assert units.fmt_rate(70_500) == "70.5 KB/sec"


def test_fmt_time():
    assert units.fmt_time(0.41e-3) == "0.41 msec"
    assert units.fmt_time(25.0e-3) == "25.00 msec"
    assert units.fmt_time(3.5) == "3.50 sec"
    assert "usec" in units.fmt_time(5e-6)


@given(st.floats(min_value=1, max_value=1e12))
def test_fmt_bytes_total_order(n):
    # Formatting never raises and always returns a unit suffix.
    out = units.fmt_bytes(n)
    assert out.rsplit(" ", 1)[1] in {"B", "KB", "MB", "GB"}
