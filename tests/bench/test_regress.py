"""The benchmark regression gate: direction-aware tolerant comparison
and its exit-code contract."""

import json

from repro.bench.regress import (
    DEFAULT_TOLERANCE,
    REGRESS_FORMAT_TAG,
    classify_key,
    compare,
    main,
)

BASE = {
    "meta": {"git_sha": "abc", "python": "3.11"},
    "single_chain": {"adaptive_mb_per_s": 900.0, "speedup": 2.4},
    "rtt": {"mean_us": 42.0},
    "table4": {"seed": {"nodes": 1000, "wall_s": 10.0}},
}


def _fresh(**overrides):
    fresh = json.loads(json.dumps(BASE))
    for dotted, value in overrides.items():
        node = fresh
        *path, leaf = dotted.split(".")
        for key in path:
            node = node[key]
        node[leaf] = value
    return fresh


def test_classify_key_directions():
    assert classify_key("a.b.adaptive_mb_per_s") == "higher"
    assert classify_key("x.nodes_per_s") == "higher"
    assert classify_key("x.speedup") == "higher"
    assert classify_key("x.wall_s") == "lower"
    assert classify_key("rtt.p95_us") == "lower"
    assert classify_key("t.sequential_sim_time_s") == "lower"
    assert classify_key("table4.seed.nodes") is None
    assert classify_key("meta.cpu_count") is None


def test_identical_passes():
    verdict = compare(_fresh(), BASE)
    assert verdict["format"] == REGRESS_FORMAT_TAG
    assert verdict["status"] == "ok"
    assert verdict["checked"] == 4
    assert verdict["regressions"] == []
    assert verdict["changed"] == []


def test_noise_within_tolerance_passes():
    fresh = _fresh(**{
        "single_chain.adaptive_mb_per_s": 900.0 * (1 - DEFAULT_TOLERANCE + 0.01),
        "rtt.mean_us": 42.0 * (1 + DEFAULT_TOLERANCE - 0.01),
    })
    assert compare(fresh, BASE)["status"] == "ok"


def test_throughput_drop_regresses():
    fresh = _fresh(**{"single_chain.adaptive_mb_per_s": 400.0})
    verdict = compare(fresh, BASE)
    assert verdict["status"] == "regressed"
    [entry] = verdict["regressions"]
    assert entry["key"] == "single_chain.adaptive_mb_per_s"
    assert entry["direction"] == "higher"


def test_latency_rise_regresses():
    fresh = _fresh(**{"rtt.mean_us": 90.0})
    verdict = compare(fresh, BASE)
    assert verdict["status"] == "regressed"
    assert verdict["regressions"][0]["direction"] == "lower"


def test_latency_drop_is_improvement():
    fresh = _fresh(**{"rtt.mean_us": 20.0})
    verdict = compare(fresh, BASE)
    assert verdict["status"] == "ok"
    assert verdict["improvements"][0]["key"] == "rtt.mean_us"


def test_exact_leaf_change_reported_not_regressed():
    fresh = _fresh(**{"table4.seed.nodes": 1001})
    verdict = compare(fresh, BASE)
    assert verdict["status"] == "ok"
    [entry] = verdict["changed"]
    assert entry["key"] == "table4.seed.nodes"


def test_meta_is_ignored_and_missing_reported():
    fresh = _fresh()
    fresh["meta"]["git_sha"] = "zzz"
    del fresh["rtt"]
    verdict = compare(fresh, BASE)
    assert verdict["missing_keys"] == ["rtt.mean_us"]
    assert all(not e["key"].startswith("meta.")
               for e in verdict["changed"])


# -- CLI ----------------------------------------------------------------------


def _write(tmp_path, name, obj):
    p = tmp_path / name
    p.write_text(json.dumps(obj) if isinstance(obj, dict) else obj)
    return str(p)


def test_cli_pass_and_verdict_file(tmp_path, capsys):
    f = _write(tmp_path, "fresh.json", _fresh())
    b = _write(tmp_path, "base.json", BASE)
    out = str(tmp_path / "verdict.json")
    assert main([f, b, "--out", out]) == 0
    assert "ok (4 leaves checked" in capsys.readouterr().out
    verdict = json.loads(open(out).read())
    assert verdict["status"] == "ok"


def test_cli_regression_exits_1(tmp_path, capsys):
    f = _write(tmp_path, "fresh.json",
               _fresh(**{"single_chain.speedup": 1.0}))
    b = _write(tmp_path, "base.json", BASE)
    assert main([f, b]) == 1
    assert "REGRESSED single_chain.speedup" in capsys.readouterr().out


def test_cli_report_only_clamps_to_0(tmp_path):
    f = _write(tmp_path, "fresh.json",
               _fresh(**{"single_chain.speedup": 1.0}))
    b = _write(tmp_path, "base.json", BASE)
    assert main([f, b, "--report-only"]) == 0


def test_cli_unreadable_exits_2_even_report_only(tmp_path, capsys):
    b = _write(tmp_path, "base.json", BASE)
    empty = _write(tmp_path, "empty.json", "")
    trunc = _write(tmp_path, "trunc.json", '{"a": ')
    assert main(["/no/such/file.json", b, "--report-only"]) == 2
    assert main([empty, b, "--report-only"]) == 2
    assert main([trunc, b, "--report-only"]) == 2
    err = capsys.readouterr().err
    assert "cannot read" in err
    assert "empty file" in err
    assert "truncated" in err


def test_cli_dispatch_through_repro_bench(tmp_path):
    from repro.bench.cli import main as bench_main

    f = _write(tmp_path, "fresh.json", _fresh())
    b = _write(tmp_path, "base.json", BASE)
    assert bench_main(["regress", f, b]) == 0
