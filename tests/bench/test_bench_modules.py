"""Harness-module tests (fast, reduced-scale configurations)."""

import pytest

from repro.apps.knapsack import SchedulingParams, scaled_instance
from repro.bench.calibrate import table2_chain_models
from repro.bench.table2 import PAPER_TABLE2, Table2Row, render_table2
from repro.bench.table4 import ROW_ORDER, Table4Config, render_table4, run_table4
from repro.bench.table56 import render_table5, render_table6
from repro.bench.tuning import render_sweep, run_tuning_sweep


@pytest.fixture(scope="module")
def small_results():
    """A miniature Table 4 run set (fast; shapes still hold)."""
    config = Table4Config(
        n_items=36,
        target_nodes=1_000_000,
        seed=5,
        params=SchedulingParams(node_cost=20e-6),
    )
    return run_table4(config)


def test_run_table4_structure(small_results):
    assert set(small_results.runs) == set(ROW_ORDER)
    assert small_results.sequential_time > 0
    for label in ROW_ORDER:
        assert small_results.speedup(label) > 1.0


def test_table4_proxy_overhead_defined(small_results):
    # At the small scale the overhead is noisy but must be a number
    # in a sane band.
    assert -0.5 < small_results.proxy_overhead < 1.0


def test_render_table4_contains_all_rows(small_results):
    out = render_table4(small_results)
    assert "RWCP-Sun (sequential)" in out
    for label in ROW_ORDER:
        assert label in out
    assert "overhead" in out


def test_render_table5_and_6(small_results):
    t5 = render_table5(small_results)
    t6 = render_table6(small_results)
    assert "Number of steals" in t5
    assert "traversed nodes" in t6
    for out in (t5, t6):
        assert "Local-area Cluster" in out
        assert "Wide-area Cluster" in out
        assert "ETL-O2K Max" in out


def test_chain_models_have_all_rows():
    models = table2_chain_models()
    assert set(models) == set(PAPER_TABLE2)
    lan_d = models["RWCP-Sun <-> COMPaS (direct)"]
    lan_i = models["RWCP-Sun <-> COMPaS (indirect)"]
    assert lan_d.relay_count == 0
    assert lan_i.relay_count == 2
    # The indirect chain predicts ~25 ms small-message latency.
    assert lan_i.ping_pong_latency() == pytest.approx(25e-3, rel=0.15)
    assert lan_d.ping_pong_latency() == pytest.approx(0.41e-3, rel=0.3)


def test_chain_model_wan_rows():
    models = table2_chain_models()
    wan_d = models["RWCP-Sun <-> ETL-Sun (direct)"]
    wan_i = models["RWCP-Sun <-> ETL-Sun (indirect)"]
    assert wan_d.ping_pong_latency() == pytest.approx(3.9e-3, rel=0.15)
    # Large-message bandwidth converges to the WAN for both.
    assert wan_i.bandwidth(1 << 20) == pytest.approx(
        wan_d.bandwidth(1 << 20), rel=0.05
    )


def test_render_table2_marks_illegible_cells():
    rows = [
        Table2Row("RWCP-Sun <-> ETL-Sun (indirect)", 25e-3, 70e3, 150e3),
    ]
    out = render_table2(rows)
    assert "(illegible)" in out


def test_tuning_sweep_small_grid():
    inst = scaled_instance(n=30, target_nodes=150_000, seed=7)
    base = SchedulingParams(node_cost=5e-6)
    import dataclasses

    grid = [
        dataclasses.replace(base, interval=i) for i in (10, 100)
    ]
    points = run_tuning_sweep(inst, system_name="COMPaS", grid=grid)
    assert len(points) == 2
    assert points[0].execution_time <= points[1].execution_time
    out = render_sweep(points)
    assert "interval" in out


def test_cli_smoke(capsys):
    from repro.bench.cli import main

    rc = main(["table3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Wide-area Cluster" in out
    assert "vendor provided mpi" in out


def test_cli_trace_writes_valid_artifacts(tmp_path, capsys):
    import json

    from repro.bench.cli import main
    from repro.obs import spans
    from repro.obs.export import validate_chrome_trace

    base = tmp_path / "smoke"
    rc = main([
        "table4", "--target-nodes", "50000",
        "--trace", str(base), "--jobs", "4",
    ])
    assert rc == 0
    assert spans.RECORDER is None  # CLI uninstalls on exit
    err = capsys.readouterr().err
    assert "forces --jobs 1" in err  # --trace cannot fan out
    trace = json.loads((tmp_path / "smoke.trace.json").read_text())
    assert validate_chrome_trace(trace) == []
    assert trace["otherData"]["target_nodes"] == 50000
    cats = {ev["cat"] for ev in trace["traceEvents"] if ev["ph"] != "M"}
    assert {"kernel", "relay", "steal", "run", "bench"} <= cats
    summ = json.loads((tmp_path / "smoke.summary.json").read_text())
    assert summ["total_events"] == sum(
        1 for ev in trace["traceEvents"] if ev["ph"] != "M"
    )
    # The registry routed the profile-style phase gauges.
    assert summ["registry"]["profile.table456_wall_s"] > 0
    assert summ["registry"]["profile.table456_kernel_events"] > 0


def test_cli_profile_writes_registry_snapshot(tmp_path, capsys):
    import json

    from repro.bench.cli import main
    from repro.obs import spans

    pstats_path = tmp_path / "prof.pstats"
    rc = main([
        "tuning", "--points", "2", "--profile", str(pstats_path),
    ])
    assert rc == 0
    assert spans.RECORDER is None
    assert pstats_path.exists()
    obs = json.loads((tmp_path / "prof.pstats.obs.json").read_text())
    assert obs["format"] == "repro-obs-registry-v1"
    assert obs["registry"]["profile.tuning_wall_s"] > 0


def test_cli_causal_trace_assembles_closed_tree(tmp_path):
    import json

    from repro.bench.cli import main
    from repro.obs import trace
    from repro.obs.assemble import assemble

    base = tmp_path / "causal"
    rc = main([
        "table4", "--target-nodes", "50000",
        "--trace", str(base), "--causal", "sim",
    ])
    assert rc == 0
    assert trace.ENABLED is False  # CLI disables on exit
    obj = json.loads((tmp_path / "causal.trace.json").read_text())
    tagged = [
        ev for ev in obj["traceEvents"]
        if isinstance(ev.get("args"), dict) and "trace" in ev["args"]
    ]
    assert tagged, "causal run produced no tagged spans"
    assert any(ev["args"]["trace"].startswith("sim") for ev in tagged)
    # The tree closes: every hop's parent was anchored by some span.
    merged = assemble([("bench", obj)])
    info = merged["otherData"]["assembled"]
    assert info["unresolved_parents"] == 0
    assert info["flows"] > 0


def test_cli_without_causal_has_no_trace_args(tmp_path):
    import json

    from repro.bench.cli import main

    base = tmp_path / "plain"
    rc = main([
        "table4", "--target-nodes", "50000", "--trace", str(base),
    ])
    assert rc == 0
    text = (tmp_path / "plain.trace.json").read_text()
    assert '"trace"' not in text  # byte-stability: no trace args leak
