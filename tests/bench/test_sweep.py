"""The sweep executor's contract: ``jobs=N`` is a pure wall-clock
knob — results, orderings and rendered tables are byte-identical to
the serial path."""

from __future__ import annotations

import os

import pytest

from repro.apps.knapsack.instance import scaled_instance
from repro.apps.knapsack.master_slave import SchedulingParams
from repro.bench.sweep import fan_out, resolve_jobs
from repro.bench.table4 import Table4Config, render_table4, run_table4
from repro.bench.table56 import render_table5, render_table6
from repro.bench.tuning import default_grid, render_sweep, run_tuning_sweep


def _square(x: int) -> int:
    return x * x


def test_resolve_jobs() -> None:
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_fan_out_preserves_task_order() -> None:
    tasks = list(range(20))
    serial = fan_out(_square, tasks, jobs=1)
    parallel = fan_out(_square, tasks, jobs=2)
    assert serial == parallel == [x * x for x in tasks]


def test_fan_out_empty_and_single() -> None:
    assert fan_out(_square, [], jobs=4) == []
    assert fan_out(_square, [3], jobs=4) == [9]


def _small_config() -> Table4Config:
    return Table4Config(n_items=24, target_nodes=60_000, seed=5)


@pytest.mark.slow
def test_table4_parallel_renders_identical_to_serial() -> None:
    """Tables 4/5/6 byte-identical between --jobs 1 and --jobs 2."""
    config = _small_config()
    serial = run_table4(config, jobs=1)
    parallel = run_table4(config, jobs=2)
    assert render_table4(serial) == render_table4(parallel)
    assert render_table5(serial) == render_table5(parallel)
    assert render_table6(serial) == render_table6(parallel)


def test_table4_engine_paths_render_identical(monkeypatch) -> None:
    """Tables 4/5/6 byte-identical between the seed path (seed kernel +
    seed branch engine) and the fast path."""
    config = _small_config()
    renders = {}
    for mode in ("seed", "fast"):
        monkeypatch.setenv("REPRO_SIM_KERNEL", mode)
        monkeypatch.setenv("REPRO_SEARCH_ENGINE", mode)
        results = run_table4(config)
        renders[mode] = (
            render_table4(results),
            render_table5(results),
            render_table6(results),
        )
    assert renders["seed"] == renders["fast"]


def test_run_result_perf_counters() -> None:
    """RunResult carries the events/wall-time the benchmark reports."""
    results = run_table4(_small_config())
    for run in results.runs.values():
        assert run.events > 0
        assert run.wall_time > 0.0


def test_bench_meta_and_write_results(tmp_path) -> None:
    import json

    from repro.bench.results import bench_meta, write_results

    meta = bench_meta(quick=True)
    for key in ("python", "platform", "machine", "cpu_count", "git_sha"):
        assert key in meta
    assert meta["quick"] is True

    out = tmp_path / "r.json"
    path = write_results({"meta": meta}, str(out), "unused.json")
    assert path == out
    assert json.loads(out.read_text())["meta"]["python"] == meta["python"]
    # "-" skips writing (the CI smoke mode).
    assert write_results({}, "-", "unused.json") is None


@pytest.mark.slow
def test_tuning_sweep_parallel_ranking_identical() -> None:
    instance = scaled_instance(n=20, target_nodes=30_000, seed=5)
    grid = default_grid(SchedulingParams())[:3]
    serial = run_tuning_sweep(instance, grid=grid, jobs=1)
    parallel = run_tuning_sweep(instance, grid=grid, jobs=2)
    assert render_sweep(serial) == render_sweep(parallel)
    assert [p.execution_time for p in serial] == [
        p.execution_time for p in parallel
    ]


def _record_metrics(x: int) -> int:
    """Picklable worker task that emits metrics via the installed
    recorder (the pool installs a fresh one per task)."""
    from repro.obs import spans

    rec = spans.RECORDER
    assert rec is not None
    rec.registry.counter("worker.tasks").inc()
    rec.registry.counter("worker.total").inc(x)
    rec.registry.histogram("worker.values").record(x)
    return x * x


def test_fan_out_merges_worker_registries() -> None:
    """With a recorder installed, the parallel path ships each
    worker's registry snapshot home and absorbs it — so
    ``--jobs N --profile`` loses no worker-side metrics."""
    from repro.obs import spans

    tasks = [1, 2, 3, 4]
    rec = spans.install()
    try:
        results = fan_out(_record_metrics, tasks, jobs=2)
    finally:
        spans.uninstall()
    assert results == [1, 4, 9, 16]
    snap = rec.registry.snapshot()
    assert snap["worker.tasks"] == 4
    assert snap["worker.total"] == 10
    assert sum(snap["worker.values"].values()) == 4

    # The serial path records into the parent registry directly and
    # must agree with the merged parallel totals.
    rec2 = spans.install()
    try:
        fan_out(_record_metrics, tasks, jobs=1)
    finally:
        spans.uninstall()
    assert rec2.registry.snapshot()["worker.total"] == 10


def test_fan_out_without_recorder_skips_merge() -> None:
    from repro.obs import spans

    assert spans.RECORDER is None
    assert fan_out(_square, [5, 6], jobs=2) == [25, 36]
