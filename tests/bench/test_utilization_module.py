"""Utilization-report module tests."""

import pytest

from repro.apps.knapsack import SchedulingParams, run_system, scaled_instance
from repro.bench.utilization import UtilizationReport, collect_utilization
from repro.cluster import Testbed


@pytest.fixture(scope="module")
def audited():
    inst = scaled_instance(n=28, target_nodes=60_000, seed=2)
    tb = Testbed()
    run_system(tb, "Wide-area Cluster", inst,
               SchedulingParams(node_cost=20e-6), use_proxy=True)
    return tb, collect_utilization(tb)


def test_report_structure(audited):
    tb, report = audited
    assert report.elapsed == tb.sim.now
    assert set(report.host_cpu) == set(tb.net.hosts)
    assert "IMNet" in report.links


def test_relays_did_work(audited):
    tb, report = audited
    assert report.outer_frames > 0
    assert report.inner_frames > 0
    assert report.host_cpu["outer-server"] > 0


def test_imnet_carried_bytes(audited):
    tb, report = audited
    util, nbytes = report.links["IMNet"]
    assert nbytes > 0
    assert 0 <= util <= 1


def test_render_mentions_busy_resources(audited):
    tb, report = audited
    out = report.render()
    assert "cpu:outer-server" in out
    assert "link:IMNet" in out
    assert "relay frames" in out


def test_fresh_testbed_report_is_quiet():
    tb = Testbed()
    tb.sim.run(until=1.0)
    report = collect_utilization(tb)
    assert all(u == 0 for u in report.host_cpu.values())
    assert report.outer_frames == 0
