"""The resource allocator: RMF's placement daemon (inside the firewall).

"A resource allocator manages computing resources and runs as a daemon
process inside the firewall." (§2).  Q servers register themselves and
report load; Q clients ask it which resources should run a job
(Fig. 2 steps 3–4) and receive a list of ``(resource, host, port,
nprocs)`` assignments.

Placement policy: honour an explicit resource pin if the job carries
one; otherwise pack the request onto the least-loaded resources first
(load = running + queued jobs, ties broken by larger free CPU count,
then by registration order — deterministic by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.rmf.jobs import JobSpec, RMFError
from repro.simnet.host import Host
from repro.simnet.kernel import Event
from repro.simnet.socket import Connection, ConnectionReset, ListenSocket, SocketError

__all__ = [
    "ResourceInfo",
    "Assignment",
    "AllocRequest",
    "AllocReply",
    "RegisterResource",
    "LoadReport",
    "ResourceAllocator",
    "DEFAULT_ALLOCATOR_PORT",
]

DEFAULT_ALLOCATOR_PORT = 7300
_CTRL_BYTES = 128


@dataclass
class ResourceInfo:
    """Allocator-side view of one computing resource."""

    name: str
    host: str
    port: int
    cpus: int
    cpu_speed: float = 1.0
    running: int = 0
    queued: int = 0
    order: int = 0
    #: Simulated time of the last registration or load report.
    last_seen: float = 0.0

    @property
    def load(self) -> int:
        return self.running + self.queued

    def alive(self, now: float, timeout: "Optional[float]") -> bool:
        return timeout is None or now - self.last_seen <= timeout


@dataclass(frozen=True, slots=True)
class Assignment:
    """One sub-job placement."""

    resource: str
    host: str
    port: int
    nprocs: int


@dataclass(frozen=True, slots=True)
class RegisterResource:
    name: str
    host: str
    port: int
    cpus: int
    cpu_speed: float = 1.0


@dataclass(frozen=True, slots=True)
class LoadReport:
    name: str
    running: int
    queued: int


@dataclass(frozen=True, slots=True)
class AllocRequest:
    spec: JobSpec


@dataclass(frozen=True, slots=True)
class AllocReply:
    ok: bool
    assignments: tuple[Assignment, ...] = ()
    error: Optional[str] = None


class ResourceAllocator:
    """The placement daemon."""

    def __init__(
        self,
        host: Host,
        port: int = DEFAULT_ALLOCATOR_PORT,
        liveness_timeout: Optional[float] = None,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.port = port
        #: Resources silent for longer than this are not placed on
        #: (None disables liveness filtering — static deployments).
        self.liveness_timeout = liveness_timeout
        self.resources: dict[str, ResourceInfo] = {}
        self._order = 0
        self._sock: Optional[ListenSocket] = None
        self._sessions: list[Connection] = []
        self.requests_served = 0

    @property
    def addr(self) -> tuple[str, int]:
        return (self.host.name, self.port)

    @property
    def running(self) -> bool:
        return self._sock is not None and not self._sock.closed

    def start(self) -> "ResourceAllocator":
        if self.running:
            raise RMFError(f"allocator on {self.host.name} already running")
        self._sock = self.host.listen(self.port)
        self.sim.process(self._accept_loop(), name=f"allocator@{self.host.name}")
        return self

    def stop(self) -> None:
        """Shut down: close the listener and every active session (so
        heartbeating Q servers observe the outage and reconnect)."""
        if self._sock is not None:
            self._sock.close()
        for conn in self._sessions:
            if not conn.closed:
                conn.close()
        self._sessions.clear()

    # -- registration (also callable directly for static deployments) -----

    def add_resource(
        self, name: str, host: str, port: int, cpus: int, cpu_speed: float = 1.0
    ) -> None:
        if name in self.resources:
            raise RMFError(f"duplicate resource {name!r}")
        self.resources[name] = ResourceInfo(
            name=name, host=host, port=port, cpus=cpus,
            cpu_speed=cpu_speed, order=self._order,
            last_seen=self.sim.now,
        )
        self._order += 1

    # -- placement ------------------------------------------------------------

    def select(self, spec: JobSpec) -> list[Assignment]:
        """Pure placement decision (no I/O) — unit-testable."""
        if not self.resources:
            raise RMFError("no resources registered")
        now = self.sim.now
        if spec.resource is not None:
            info = self.resources.get(spec.resource)
            if info is None:
                raise RMFError(f"no such resource: {spec.resource!r}")
            if not info.alive(now, self.liveness_timeout):
                raise RMFError(f"resource {info.name!r} is not responding")
            if spec.count > info.cpus:
                raise RMFError(
                    f"resource {info.name!r} has {info.cpus} cpus, "
                    f"job wants {spec.count}"
                )
            return [Assignment(info.name, info.host, info.port, spec.count)]
        candidates = sorted(
            (
                r for r in self.resources.values()
                if r.alive(now, self.liveness_timeout)
            ),
            key=lambda r: (r.load, -r.cpus, r.order),
        )
        if not candidates:
            raise RMFError("no live resources")
        total_cpus = sum(r.cpus for r in candidates)
        if spec.count > total_cpus:
            raise RMFError(
                f"job wants {spec.count} processes, only {total_cpus} cpus exist"
            )
        assignments: list[Assignment] = []
        remaining = spec.count
        for info in candidates:
            if remaining <= 0:
                break
            take = min(remaining, info.cpus)
            assignments.append(Assignment(info.name, info.host, info.port, take))
            remaining -= take
        return assignments

    # -- wire protocol ---------------------------------------------------------

    def _accept_loop(self) -> Iterator[Event]:
        assert self._sock is not None
        while True:
            try:
                conn = yield self._sock.accept()
            except SocketError:
                return
            self._sessions.append(conn)
            self.sim.process(
                self._session(conn), name=f"allocator-session@{self.host.name}"
            )

    def _session(self, conn: Connection) -> Iterator[Event]:
        while True:
            try:
                msg = yield conn.recv()
            except ConnectionReset:
                return
            request = msg.payload
            if isinstance(request, RegisterResource):
                if request.name not in self.resources:
                    self.add_resource(
                        request.name, request.host, request.port,
                        request.cpus, request.cpu_speed,
                    )
                else:
                    self.resources[request.name].last_seen = self.sim.now
            elif isinstance(request, LoadReport):
                info = self.resources.get(request.name)
                if info is not None:
                    info.running = request.running
                    info.queued = request.queued
                    info.last_seen = self.sim.now
            elif isinstance(request, AllocRequest):
                self.requests_served += 1
                try:
                    assignments = tuple(self.select(request.spec))
                    reply = AllocReply(ok=True, assignments=assignments)
                    # Optimistically count the placement as queued load
                    # so concurrent requests spread out.
                    for a in assignments:
                        self.resources[a.resource].queued += 1
                except RMFError as exc:
                    reply = AllocReply(ok=False, error=str(exc))
                yield conn.send(reply, nbytes=_CTRL_BYTES)
            else:
                yield conn.send(
                    AllocReply(ok=False, error=f"bad request {type(request).__name__}"),
                    nbytes=_CTRL_BYTES,
                )
