"""A Globus-style RSL (Resource Specification Language) parser.

Job requests arrive at the gatekeeper as RSL strings, e.g.::

    &(executable=knapsack)(count=8)(arguments="data.txt" "50")
     (resource=COMPaS)(maxTime=120)

Grammar (the GRAM-relevant subset)::

    request   := "&" relation+
    relation  := "(" attribute "=" value+ ")"
    value     := WORD | QUOTED

Attribute names are case-insensitive with the conventional aliases
(``max_time``/``maxTime``).  :func:`parse_rsl` returns a
:class:`~repro.rmf.jobs.JobSpec`; :func:`unparse_rsl` is its inverse
(used when a job manager forwards a request).
"""

from __future__ import annotations

from typing import Iterator

from repro.rmf.jobs import JobSpec, RMFError

__all__ = ["RSLError", "parse_rsl", "parse_relations", "unparse_rsl"]


class RSLError(RMFError):
    """Malformed RSL text."""


def _tokens(text: str) -> Iterator[tuple[str, str]]:
    """Lex into (kind, value): PUNCT for ``&()=``, WORD for atoms."""
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c.isspace():
            i += 1
        elif c in "&()=":
            yield ("PUNCT", c)
            i += 1
        elif c in "\"'":
            quote = c
            j = text.find(quote, i + 1)
            if j < 0:
                raise RSLError(f"unterminated quote at offset {i}")
            yield ("WORD", text[i + 1 : j])
            i = j + 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in "&()=\"'":
                j += 1
            yield ("WORD", text[i:j])
            i = j


def parse_relations(text: str) -> dict[str, list[str]]:
    """Parse RSL into an attribute → values mapping (names lowercased)."""
    toks = list(_tokens(text))
    if not toks:
        raise RSLError("empty RSL")
    pos = 0
    if toks[pos] == ("PUNCT", "&"):
        pos += 1
    relations: dict[str, list[str]] = {}
    while pos < len(toks):
        if toks[pos] != ("PUNCT", "("):
            raise RSLError(f"expected '(' at token {pos}: {toks[pos][1]!r}")
        pos += 1
        if pos >= len(toks) or toks[pos][0] != "WORD":
            raise RSLError("expected attribute name")
        attr = toks[pos][1].lower()
        pos += 1
        if pos >= len(toks) or toks[pos] != ("PUNCT", "="):
            raise RSLError(f"expected '=' after attribute {attr!r}")
        pos += 1
        values: list[str] = []
        while pos < len(toks) and toks[pos][0] == "WORD":
            values.append(toks[pos][1])
            pos += 1
        if not values:
            raise RSLError(f"attribute {attr!r} has no value")
        if pos >= len(toks) or toks[pos] != ("PUNCT", ")"):
            raise RSLError(f"expected ')' to close attribute {attr!r}")
        pos += 1
        if attr in relations:
            raise RSLError(f"duplicate attribute {attr!r}")
        relations[attr] = values
    return relations


_ALIASES = {
    "maxtime": "max_time",
    "max_time": "max_time",
    "stagein": "stage_in",
    "stage_in": "stage_in",
    "stageout": "stage_out",
    "stage_out": "stage_out",
}


def parse_rsl(text: str) -> JobSpec:
    """Parse an RSL request into a :class:`JobSpec`."""
    rel = parse_relations(text)
    known = {"executable", "count", "arguments", "resource"} | set(_ALIASES)
    unknown = set(rel) - known
    if unknown:
        raise RSLError(f"unknown RSL attributes: {sorted(unknown)}")

    def single(attr: str) -> str:
        vals = rel[attr]
        if len(vals) != 1:
            raise RSLError(f"attribute {attr!r} wants one value, got {len(vals)}")
        return vals[0]

    if "executable" not in rel:
        raise RSLError("RSL must specify (executable=...)")
    kwargs: dict = {"executable": single("executable")}
    if "count" in rel:
        try:
            kwargs["count"] = int(single("count"))
        except ValueError:
            raise RSLError(f"count is not an integer: {rel['count'][0]!r}")
    if "arguments" in rel:
        kwargs["arguments"] = tuple(rel["arguments"])
    if "resource" in rel:
        kwargs["resource"] = single("resource")
    for raw, canon in _ALIASES.items():
        if raw in rel:
            if canon == "max_time":
                try:
                    kwargs["max_time"] = float(single(raw))
                except ValueError:
                    raise RSLError(f"maxTime is not a number: {rel[raw][0]!r}")
            else:
                kwargs[canon] = tuple(rel[raw])
    try:
        return JobSpec(**kwargs)
    except RMFError as exc:
        raise RSLError(str(exc)) from exc


def _quote(value: str) -> str:
    if value and not any(c.isspace() or c in "&()=\"'" for c in value):
        return value
    return '"' + value + '"'


def unparse_rsl(spec: JobSpec) -> str:
    """Render a :class:`JobSpec` back to RSL (inverse of parse)."""
    parts = [f"(executable={_quote(spec.executable)})", f"(count={spec.count})"]
    if spec.arguments:
        parts.append("(arguments=" + " ".join(_quote(a) for a in spec.arguments) + ")")
    if spec.resource:
        parts.append(f"(resource={_quote(spec.resource)})")
    if spec.stage_in:
        parts.append("(stage_in=" + " ".join(_quote(f) for f in spec.stage_in) + ")")
    if spec.stage_out:
        parts.append("(stage_out=" + " ".join(_quote(f) for f in spec.stage_out) + ")")
    parts.append(f"(max_time={spec.max_time:g})")
    return "&" + "".join(parts)
