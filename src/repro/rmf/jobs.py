"""Job model: specifications, states, records.

A :class:`JobSpec` is what flows from the submitting client through the
gatekeeper, job manager and Q client to a Q server; a :class:`JobRecord`
is the server-side lifecycle bookkeeping.  States follow the GRAM
model: PENDING → ACTIVE → DONE/FAILED.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs import spans as _obs
from repro.obs import trace as _trace

__all__ = ["JobState", "JobSpec", "JobRecord", "JobResult", "RMFError"]


class RMFError(RuntimeError):
    """Failure inside the RMF resource-management system."""


class JobState(enum.Enum):
    PENDING = "pending"
    ACTIVE = "active"
    DONE = "done"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED)


_job_ids = itertools.count(1)


def next_job_id() -> int:
    return next(_job_ids)


@dataclass(frozen=True, slots=True)
class JobSpec:
    """What the user asks to run (parsed from RSL).

    ``executable`` names an entry in the deployment's executable
    registry; ``count`` is the number of processes; ``resource`` may
    pin a specific resource, otherwise the allocator chooses.
    """

    executable: str
    count: int = 1
    arguments: tuple[str, ...] = ()
    resource: Optional[str] = None
    stage_in: tuple[str, ...] = ()
    stage_out: tuple[str, ...] = ()
    #: Soft CPU-seconds estimate, used by the allocator for load.
    max_time: float = 60.0

    def __post_init__(self) -> None:
        if not self.executable:
            raise RMFError("job needs an executable")
        if self.count < 1:
            raise RMFError(f"count must be >= 1, got {self.count}")
        if self.max_time <= 0:
            raise RMFError(f"max_time must be positive, got {self.max_time}")


@dataclass(frozen=True, slots=True)
class JobResult:
    """What comes back to the submitter."""

    job_id: int
    state: JobState
    exit_code: int
    stdout: str = ""
    error: Optional[str] = None
    output_files: dict[str, bytes] = field(default_factory=dict)
    resource: str = ""
    queued_time: float = 0.0
    run_time: float = 0.0

    @property
    def ok(self) -> bool:
        return self.state is JobState.DONE and self.exit_code == 0


@dataclass
class JobRecord:
    """Server-side lifecycle of one job."""

    job_id: int
    spec: JobSpec
    state: JobState = JobState.PENDING
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    exit_code: Optional[int] = None
    stdout: str = ""
    error: Optional[str] = None
    #: Causal trace context adopted from the submission, when the
    #: submitter tagged it; every lifecycle event carries it.
    tctx: "Optional[_trace.TraceContext]" = None

    def _transition_instant(self, now: float) -> None:
        rec = _obs.RECORDER
        if rec is not None:
            rec.sim_instant("rmf.job", self.state.value, now,
                            track=f"job:{self.job_id}",
                            executable=self.spec.executable,
                            **_trace.span_args(self.tctx))

    def mark_active(self, now: float) -> None:
        if self.state is not JobState.PENDING:
            raise RMFError(f"job {self.job_id}: bad transition {self.state}->ACTIVE")
        self.state = JobState.ACTIVE
        self.started_at = now
        self._transition_instant(now)

    def mark_done(self, now: float, exit_code: int, stdout: str) -> None:
        if self.state is not JobState.ACTIVE:
            raise RMFError(f"job {self.job_id}: bad transition {self.state}->DONE")
        self.state = JobState.DONE
        self.finished_at = now
        self.exit_code = exit_code
        self.stdout = stdout
        self._transition_instant(now)

    def mark_failed(self, now: float, error: str) -> None:
        if self.state.terminal:
            raise RMFError(f"job {self.job_id}: already terminal ({self.state})")
        self.state = JobState.FAILED
        self.finished_at = now
        self.exit_code = self.exit_code if self.exit_code is not None else 1
        self.error = error
        self._transition_instant(now)

    @property
    def queued_time(self) -> float:
        if self.started_at is None:
            return 0.0
        return self.started_at - self.submitted_at

    @property
    def run_time(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at
