"""The executable registry: what Q servers can run.

The testbed's jobs were real binaries; in the simulation an
"executable" is a registered generator function run as a simulated
process on the resource host.  It receives an
:class:`ExecutionContext` (host, arguments, staged files, stdout) and
returns an exit code (``None`` ⇒ 0).

A default registry ships with the coreutils of the simulated world
(``echo``, ``sleep``, ``spin``, ``cat``) used by tests and examples;
applications register their own (the knapsack driver registers
``knapsack``).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.rmf.gass import FileStore
from repro.rmf.jobs import JobSpec, RMFError
from repro.simnet.host import Host
from repro.simnet.kernel import Event

__all__ = ["ExecutionContext", "ExecutableRegistry", "default_registry"]

ExecutableFn = Callable[["ExecutionContext"], Iterator[Event]]


class ExecutionContext:
    """Everything an executable sees while running."""

    def __init__(
        self,
        host: Host,
        spec: JobSpec,
        files: FileStore,
        job_id: int,
        nprocs: int,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.spec = spec
        #: The resource host's file store (staged-in files live here).
        self.files = files
        self.job_id = job_id
        #: Processes granted to this (sub-)job on this resource.
        self.nprocs = nprocs
        self._stdout: list[str] = []

    @property
    def args(self) -> tuple[str, ...]:
        return self.spec.arguments

    def write(self, text: str) -> None:
        """Append to the job's stdout."""
        self._stdout.append(text)

    def stdout(self) -> str:
        return "".join(self._stdout)


class ExecutableRegistry:
    """Name → executable mapping, per deployment."""

    def __init__(self) -> None:
        self._fns: dict[str, ExecutableFn] = {}

    def register(self, name: str, fn: ExecutableFn) -> None:
        if not name:
            raise RMFError("executable needs a name")
        if name in self._fns:
            raise RMFError(f"executable {name!r} already registered")
        self._fns[name] = fn

    def get(self, name: str) -> ExecutableFn:
        try:
            return self._fns[name]
        except KeyError:
            raise RMFError(f"no such executable: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._fns

    def names(self) -> list[str]:
        return sorted(self._fns)


def _echo(ctx: ExecutionContext) -> Iterator[Event]:
    ctx.write(" ".join(ctx.args) + "\n")
    yield ctx.sim.timeout(0)


def _sleep(ctx: ExecutionContext) -> Iterator[Event]:
    seconds = float(ctx.args[0]) if ctx.args else 1.0
    yield ctx.sim.timeout(seconds)


def _spin(ctx: ExecutionContext) -> Iterator[Event]:
    """Burn reference-CPU seconds (scaled by the host's speed)."""
    cost = float(ctx.args[0]) if ctx.args else 1.0
    yield ctx.host.compute(cost)


def _cat(ctx: ExecutionContext) -> Iterator[Event]:
    for name in ctx.args:
        ctx.write(ctx.files.get_text(name))
    yield ctx.sim.timeout(0)


def _false(ctx: ExecutionContext) -> Iterator[Event]:
    yield ctx.sim.timeout(0)
    return 1


def default_registry() -> ExecutableRegistry:
    """A registry pre-loaded with the simulated coreutils."""
    reg = ExecutableRegistry()
    reg.register("echo", _echo)
    reg.register("sleep", _sleep)
    reg.register("spin", _spin)
    reg.register("cat", _cat)
    reg.register("false", _false)
    return reg
