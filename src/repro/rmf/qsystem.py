"""The Q system: RMF's job queuing client/server pair.

"The Q system is based on the client-server model.  It provides a
remote job execution mechanism using job queues.  A server of the Q
system (Q server) runs on every computing resource inside the
firewall.  A client of the Q system (Q client) is invoked by a job
manager running outside the firewall." (§2)

Wire messages (plain simulated connections; file bundles carry their
real sizes so staging cost is visible):

* ``QSubmit(spec, files)`` — client → server, one per sub-job;
* ``QAccepted(job_id)``, ``QStarted(job_id)`` — server → client;
* ``QFinished(job_id, state, exit_code, stdout, error, out_files)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.obs import spans as _obs
from repro.obs import trace as _trace
from repro.rmf.executables import ExecutableRegistry, ExecutionContext, default_registry
from repro.rmf.gass import FileStore
from repro.rmf.jobs import JobRecord, JobResult, JobSpec, JobState, RMFError, next_job_id
from repro.simnet.host import Host
from repro.simnet.kernel import Event, Interrupt, Process
from repro.simnet.primitives import Channel
from repro.simnet.socket import Connection, ConnectionReset, ListenSocket, SocketError

__all__ = [
    "JobHandle",
    "QSubmit",
    "QCancel",
    "QAccepted",
    "QStarted",
    "QFinished",
    "QServer",
    "QClient",
    "DEFAULT_QSERVER_PORT",
]

DEFAULT_QSERVER_PORT = 7200

#: Wire size of Q-system control messages (sans file bundles).
_CTRL_BYTES = 128


@dataclass(frozen=True, slots=True)
class QSubmit:
    spec: JobSpec
    files: dict[str, bytes] = field(default_factory=dict)
    #: Processes this sub-job should use on the target resource.
    nprocs: int = 1
    #: Optional causal trace context (wire form).
    tctx: Optional[str] = None


@dataclass(frozen=True, slots=True)
class QCancel:
    """Client → server: abandon the job this connection submitted."""


@dataclass(frozen=True, slots=True)
class QAccepted:
    job_id: int


@dataclass(frozen=True, slots=True)
class QStarted:
    job_id: int


@dataclass(frozen=True, slots=True)
class QFinished:
    job_id: int
    state: JobState
    exit_code: int
    stdout: str
    error: Optional[str]
    out_files: dict[str, bytes] = field(default_factory=dict)


class QServer:
    """The queuing daemon on one computing resource.

    Jobs queue FIFO and run with up to ``slots`` concurrent jobs
    (default: one job at a time — the resource is space-shared at job
    granularity, like the testbed's clusters).
    """

    def __init__(
        self,
        host: Host,
        resource_name: Optional[str] = None,
        port: int = DEFAULT_QSERVER_PORT,
        registry: Optional[ExecutableRegistry] = None,
        slots: int = 1,
        cpus: Optional[int] = None,
        allocator_addr: Optional[tuple[str, int]] = None,
        heartbeat_interval: float = 30.0,
    ) -> None:
        if slots < 1:
            raise RMFError(f"slots must be >= 1, got {slots}")
        self.host = host
        self.sim = host.sim
        self.resource_name = resource_name or host.name
        self.port = port
        self.registry = registry if registry is not None else default_registry()
        self.slots = slots
        #: Processors this resource advertises to the allocator.
        self.cpus = cpus if cpus is not None else host.cores
        self.files = FileStore(host.name)
        self._sock: Optional[ListenSocket] = None
        self._queue: Channel[tuple[JobRecord, QSubmit, Connection]] = Channel(self.sim)
        self.records: dict[int, JobRecord] = {}
        self._running_procs: dict[int, Process] = {}
        self.jobs_run = 0
        self.running_jobs = 0
        self.jobs_cancelled = 0
        #: When set, the server registers itself with the allocator at
        #: startup and heartbeats load reports, enabling dynamic
        #: registration and liveness-based placement.
        self.allocator_addr = allocator_addr
        if heartbeat_interval <= 0:
            raise RMFError("heartbeat_interval must be positive")
        self.heartbeat_interval = heartbeat_interval
        self.heartbeats_sent = 0

    @property
    def running(self) -> bool:
        return self._sock is not None and not self._sock.closed

    def start(self) -> "QServer":
        if self.running:
            raise RMFError(f"Q server on {self.host.name} already running")
        self._sock = self.host.listen(self.port)
        self.sim.process(self._accept_loop(), name=f"qserver-accept@{self.host.name}")
        for i in range(self.slots):
            self.sim.process(self._runner(), name=f"qserver-run{i}@{self.host.name}")
        if self.allocator_addr is not None:
            self.sim.process(
                self._heartbeat_loop(), name=f"qserver-hb@{self.host.name}"
            )
        return self

    def _heartbeat_loop(self) -> Iterator[Event]:
        """Register with the allocator and report load periodically.

        Survives allocator restarts (reconnects); dies with the host
        (its sockets fail), which is exactly how the allocator's
        liveness filter learns a resource is gone.
        """
        from repro.rmf.allocator import LoadReport, RegisterResource

        conn = None
        while self.running:
            try:
                if conn is None or conn.closed:
                    conn = yield from self.host.connect(self.allocator_addr)
                    yield conn.send(
                        RegisterResource(
                            self.resource_name, self.host.name, self.port,
                            self.cpus, self.host.cpu_speed,
                        ),
                        nbytes=_CTRL_BYTES,
                    )
                else:
                    yield conn.send(
                        LoadReport(
                            self.resource_name, self.running_jobs,
                            self.queued_jobs,
                        ),
                        nbytes=_CTRL_BYTES,
                    )
                self.heartbeats_sent += 1
            except SocketError:
                conn = None  # allocator unreachable; retry next tick
            yield self.sim.timeout(self.heartbeat_interval)

    def stop(self) -> None:
        if self._sock is not None:
            self._sock.close()
        self._queue.close()

    @property
    def queued_jobs(self) -> int:
        return len(self._queue)

    # -- intake -------------------------------------------------------------

    def _accept_loop(self) -> Iterator[Event]:
        assert self._sock is not None
        while True:
            try:
                conn = yield self._sock.accept()
            except SocketError:
                return
            self.sim.process(
                self._session(conn), name=f"qserver-session@{self.host.name}"
            )

    def _session(self, conn: Connection) -> Iterator[Event]:
        try:
            msg = yield conn.recv()
        except ConnectionReset:
            return
        submit = msg.payload
        if not isinstance(submit, QSubmit):
            conn.close()
            return
        record = JobRecord(
            job_id=next_job_id(), spec=submit.spec, submitted_at=self.sim.now,
            tctx=_trace.accept(submit.tctx),
        )
        self.records[record.job_id] = record
        if submit.spec.executable not in self.registry:
            record.mark_failed(self.sim.now, f"no such executable: {submit.spec.executable!r}")
            yield conn.send(
                QFinished(record.job_id, record.state, 127, "", record.error),
                nbytes=_CTRL_BYTES,
            )
            conn.close()
            return
        self.files.unbundle(submit.files, tctx=record.tctx)
        yield conn.send(QAccepted(record.job_id), nbytes=_CTRL_BYTES)
        if not self._queue.try_put((record, submit, conn)):
            record.mark_failed(self.sim.now, "queue closed")
            conn.close()
            return
        yield from self._cancel_listener(record, conn)

    def _cancel_listener(self, record: JobRecord, conn: Connection) -> Iterator[Event]:
        """Watch the submission connection for a cancel request."""
        while not record.state.terminal:
            try:
                msg = yield conn.recv()
            except ConnectionReset:
                return
            if isinstance(msg.payload, QCancel):
                yield from self._cancel(record, conn)
                return

    def _cancel(self, record: JobRecord, conn: Connection) -> Iterator[Event]:
        if record.state.terminal:
            return
        self.jobs_cancelled += 1
        if record.state is JobState.PENDING:
            # Still queued: mark it dead; the runner will skip it.
            record.mark_failed(self.sim.now, "cancelled by client")
            yield conn.send(
                QFinished(record.job_id, record.state, record.exit_code or 1,
                          "", record.error),
                nbytes=_CTRL_BYTES,
            )
            conn.close()
            return
        proc = self._running_procs.get(record.job_id)
        if proc is not None:
            # The job process observes an Interrupt; _run_job reports.
            proc.interrupt("cancelled by client")

    # -- execution ---------------------------------------------------------------

    def _runner(self) -> Iterator[Event]:
        while True:
            try:
                record, submit, conn = yield self._queue.get()
            except Exception:
                return  # queue closed: server stopping
            if record.state.terminal:
                continue  # cancelled while queued; reply already sent
            yield from self._run_job(record, submit, conn)

    def _run_job(
        self, record: JobRecord, submit: QSubmit, conn: Connection
    ) -> Iterator[Event]:
        record.mark_active(self.sim.now)
        rec = _obs.RECORDER
        if rec is not None:
            rec.sim_span("rmf.job", "queued", record.submitted_at, self.sim.now,
                         track=f"qserver:{self.resource_name}",
                         job_id=record.job_id,
                         **_trace.span_args(record.tctx))
        self.running_jobs += 1
        yield conn.send(QStarted(record.job_id), nbytes=_CTRL_BYTES)
        ctx = ExecutionContext(
            self.host, record.spec, self.files, record.job_id, submit.nprocs
        )
        fn = self.registry.get(record.spec.executable)
        proc = self.sim.process(fn(ctx), name=f"job{record.job_id}:{record.spec.executable}")
        self._running_procs[record.job_id] = proc
        failed_error: Optional[str] = None
        exit_code = 0
        try:
            rv = yield proc
            exit_code = int(rv) if rv is not None else 0
        except Interrupt as stop:
            failed_error = str(stop.cause or "cancelled")
        except Exception as exc:  # noqa: BLE001 - job crash is data here
            failed_error = f"{type(exc).__name__}: {exc}"
        finally:
            self._running_procs.pop(record.job_id, None)
        self.running_jobs -= 1
        self.jobs_run += 1
        if failed_error is not None:
            record.mark_failed(self.sim.now, failed_error)
        else:
            record.mark_done(self.sim.now, exit_code, ctx.stdout())
        rec = _obs.RECORDER
        if rec is not None:
            rec.sim_span("rmf.job", "run", record.started_at, self.sim.now,
                         track=f"qserver:{self.resource_name}",
                         job_id=record.job_id, state=record.state.value,
                         executable=record.spec.executable,
                         **_trace.span_args(record.tctx))
        out_files: dict[str, bytes] = {}
        for name in record.spec.stage_out:
            if self.files.exists(name):
                out_files[name] = self.files.get(name)
        finished = QFinished(
            record.job_id,
            record.state,
            record.exit_code if record.exit_code is not None else 0,
            record.stdout,
            record.error,
            out_files,
        )
        try:
            yield conn.send(
                finished, nbytes=_CTRL_BYTES + FileStore.bundle_bytes(out_files)
            )
        except ConnectionReset:
            pass  # client went away; record keeps the outcome
        conn.close()


class QClient:
    """The Q client: submits sub-jobs to Q servers and collects results.

    Created by a job manager (outside the firewall); the firewall must
    allow its connections to the allocator and the Q servers — the RMF
    deployment opens those pinholes (see
    :class:`repro.rmf.gatekeeper.RMFSystem`).
    """

    def __init__(self, host: Host, staging: Optional[FileStore] = None) -> None:
        self.host = host
        self.sim = host.sim
        #: Where stage-in files are read from (the GASS cache at the
        #: submitting side); defaults to an empty store.
        self.staging = staging if staging is not None else FileStore(host.name)

    def submit_handle(
        self,
        qserver_addr: "tuple[str, int]",
        spec: JobSpec,
        nprocs: int = 1,
        tctx: "Optional[_trace.TraceContext]" = None,
    ) -> Iterator[Event]:
        """Generator: submit and return a :class:`JobHandle` that can
        be waited on or cancelled."""
        t0 = self.sim.now
        files = self.staging.bundle(spec.stage_in, tctx=tctx)
        conn = yield from self.host.connect(qserver_addr)
        yield conn.send(
            QSubmit(spec, files, nprocs,
                    tctx=tctx.to_wire() if tctx is not None else None),
            nbytes=_CTRL_BYTES + FileStore.bundle_bytes(files),
        )
        if tctx is not None:
            rec = _obs.RECORDER
            if rec is not None:
                # Anchor this hop's span id so the assembled causal
                # tree has a node between the gatekeeper and the Q
                # server (a minted context without a span would leave
                # the child's parent link dangling).
                rec.sim_span("rmf", "qsubmit", t0, self.sim.now,
                             track=f"qclient:{self.host.name}",
                             dest=f"{qserver_addr[0]}:{qserver_addr[1]}",
                             **_trace.span_args(tctx))
        return JobHandle(self, conn, qserver_addr)

    def submit(
        self,
        qserver_addr: "tuple[str, int]",
        spec: JobSpec,
        nprocs: int = 1,
        tctx: "Optional[_trace.TraceContext]" = None,
    ) -> Iterator[Event]:
        """Generator: run one sub-job on one Q server, return
        :class:`JobResult` (step 5–6 of the Fig. 2 flow)."""
        handle = yield from self.submit_handle(qserver_addr, spec, nprocs,
                                              tctx=tctx)
        result = yield from handle.wait()
        return result


class JobHandle:
    """A submitted job: wait for its result, or cancel it."""

    def __init__(self, client: QClient, conn: Connection,
                 qserver_addr: "tuple[str, int]") -> None:
        self._client = client
        self._conn = conn
        self.qserver_addr = qserver_addr
        self.sim = client.sim
        self.job_id: Optional[int] = None
        self._queued_at = self.sim.now
        self._started_at = self.sim.now
        self._result: Optional[JobResult] = None

    @property
    def done(self) -> bool:
        return self._result is not None

    def cancel(self) -> Iterator[Event]:
        """Generator: ask the server to abandon the job.

        Best-effort: a job that finished before the request arrives
        completes normally; otherwise :meth:`wait` returns a FAILED
        result with error ``"cancelled by client"``.
        """
        if self._result is None and not self._conn.closed:
            yield self._conn.send(QCancel(), nbytes=_CTRL_BYTES)

    def wait(self) -> Iterator[Event]:
        """Generator: block until the job finishes; returns
        :class:`JobResult`."""
        if self._result is not None:
            return self._result
        conn = self._conn
        try:
            while True:
                msg = yield conn.recv()
                reply = msg.payload
                if isinstance(reply, QAccepted):
                    self.job_id = reply.job_id
                elif isinstance(reply, QStarted):
                    self._started_at = self.sim.now
                elif isinstance(reply, QFinished):
                    conn.close()
                    for name, content in reply.out_files.items():
                        self._client.staging.put(name, content)
                    self._result = JobResult(
                        job_id=reply.job_id,
                        state=reply.state,
                        exit_code=reply.exit_code,
                        stdout=reply.stdout,
                        error=reply.error,
                        output_files=dict(reply.out_files),
                        resource=self.qserver_addr[0],
                        queued_time=self._started_at - self._queued_at,
                        run_time=self.sim.now - self._started_at,
                    )
                    return self._result
                else:
                    raise RMFError(f"unexpected Q reply: {reply!r}")
        except ConnectionReset:
            raise RMFError(
                f"Q server {self.qserver_addr} dropped the connection "
                f"(job_id={self.job_id})"
            )
