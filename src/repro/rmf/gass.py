"""GASS-style file staging.

"Since the Globus GASS facility uses files for input/output, the Q
system also transfers the files to remote resources" (§2).  We model
that with a per-host :class:`FileStore` and explicit staging: input
files travel with the job submission, output files travel back with
the completion message — both as sized payloads on the simulated wire,
so staging cost is part of job turnaround time just as it was on the
testbed.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.obs import spans as _obs
from repro.obs import trace as _trace
from repro.rmf.jobs import RMFError

__all__ = ["FileStore", "StagingError"]


class StagingError(RMFError):
    """A staged file was missing or collided."""


class FileStore:
    """A host-local file namespace (the GASS cache)."""

    def __init__(self, host_name: str) -> None:
        self.host_name = host_name
        self._files: dict[str, bytes] = {}

    def put(self, name: str, content: "bytes | str") -> None:
        """Store a file (str content is encoded UTF-8)."""
        if not name:
            raise StagingError("file needs a name")
        if isinstance(content, str):
            content = content.encode()
        self._files[name] = bytes(content)

    def get(self, name: str) -> bytes:
        try:
            return self._files[name]
        except KeyError:
            raise StagingError(f"{self.host_name}: no such file {name!r}") from None

    def get_text(self, name: str) -> str:
        return self.get(name).decode()

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def size(self, name: str) -> int:
        return len(self.get(name))

    def names(self) -> list[str]:
        return sorted(self._files)

    # -- staging bundles ------------------------------------------------------

    def bundle(
        self,
        names: Iterable[str],
        tctx: "Optional[_trace.TraceContext]" = None,
    ) -> dict[str, bytes]:
        """Collect files for stage-in; raises if any is missing.

        ``tctx`` attributes the staged bytes to a causal trace in the
        registry (which job's staging paid the transfer).
        """
        files = {name: self.get(name) for name in names}
        self._count_staging("gass.staged_out", files, tctx)
        return files

    def unbundle(
        self,
        files: Mapping[str, bytes],
        tctx: "Optional[_trace.TraceContext]" = None,
    ) -> None:
        """Install a staged-in bundle."""
        for name, content in files.items():
            self.put(name, content)
        self._count_staging("gass.staged_in", files, tctx)

    def _count_staging(
        self,
        name: str,
        files: Mapping[str, bytes],
        tctx: "Optional[_trace.TraceContext]",
    ) -> None:
        # Only when causal tracing is on: the registry snapshot of a
        # tracing-off run must not grow new keys.
        if not _trace.ENABLED or not files:
            return
        rec = _obs.RECORDER
        if rec is not None:
            nbytes = self.bundle_bytes(files)
            rec.count(f"{name}.files", len(files))
            rec.count(f"{name}.bytes", nbytes)
            if tctx is not None:
                rec.count_pair("gass.trace_bytes", tctx.trace_id, nbytes)

    @staticmethod
    def bundle_bytes(files: Mapping[str, bytes]) -> int:
        """Wire size of a staging bundle (content + per-file header)."""
        return sum(len(c) + 64 for c in files.values())

    def __len__(self) -> int:
        return len(self._files)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FileStore {self.host_name}: {len(self._files)} files>"
