"""GASS-style file staging.

"Since the Globus GASS facility uses files for input/output, the Q
system also transfers the files to remote resources" (§2).  We model
that with a per-host :class:`FileStore` and explicit staging: input
files travel with the job submission, output files travel back with
the completion message — both as sized payloads on the simulated wire,
so staging cost is part of job turnaround time just as it was on the
testbed.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.rmf.jobs import RMFError

__all__ = ["FileStore", "StagingError"]


class StagingError(RMFError):
    """A staged file was missing or collided."""


class FileStore:
    """A host-local file namespace (the GASS cache)."""

    def __init__(self, host_name: str) -> None:
        self.host_name = host_name
        self._files: dict[str, bytes] = {}

    def put(self, name: str, content: "bytes | str") -> None:
        """Store a file (str content is encoded UTF-8)."""
        if not name:
            raise StagingError("file needs a name")
        if isinstance(content, str):
            content = content.encode()
        self._files[name] = bytes(content)

    def get(self, name: str) -> bytes:
        try:
            return self._files[name]
        except KeyError:
            raise StagingError(f"{self.host_name}: no such file {name!r}") from None

    def get_text(self, name: str) -> str:
        return self.get(name).decode()

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def size(self, name: str) -> int:
        return len(self.get(name))

    def names(self) -> list[str]:
        return sorted(self._files)

    # -- staging bundles ------------------------------------------------------

    def bundle(self, names: Iterable[str]) -> dict[str, bytes]:
        """Collect files for stage-in; raises if any is missing."""
        return {name: self.get(name) for name in names}

    def unbundle(self, files: Mapping[str, bytes]) -> None:
        """Install a staged-in bundle."""
        for name, content in files.items():
            self.put(name, content)

    @staticmethod
    def bundle_bytes(files: Mapping[str, bytes]) -> int:
        """Wire size of a staging bundle (content + per-file header)."""
        return sum(len(c) + 64 for c in files.values())

    def __len__(self) -> int:
        return len(self._files)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FileStore {self.host_name}: {len(self._files)} files>"
