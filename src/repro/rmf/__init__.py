"""RMF — the Resource Manager beyond the Firewall.

A GRAM-compatible job-management system that lets computing resources
*inside* a firewall serve a metacomputing grid whose entry point (the
gatekeeper) runs *outside* (§2, Fig. 2):

* :class:`~repro.rmf.gatekeeper.Gatekeeper` + job manager — outside;
* :class:`~repro.rmf.allocator.ResourceAllocator` — inside;
* :class:`~repro.rmf.qsystem.QServer` — one per computing resource;
* :class:`~repro.rmf.qsystem.QClient` — created by the job manager,
  bridging the two worlds through two firewall pinholes;
* :mod:`~repro.rmf.gass` — file staging, :mod:`~repro.rmf.rsl` — the
  request language.

Use :class:`~repro.rmf.gatekeeper.RMFSystem` to wire a deployment in
one go.
"""

from repro.rmf.allocator import (
    AllocReply,
    AllocRequest,
    Assignment,
    LoadReport,
    RegisterResource,
    ResourceAllocator,
    ResourceInfo,
)
from repro.rmf.duroc import (
    RendezvousServer,
    SubJob,
    co_allocate,
    make_mpi_executable,
)
from repro.rmf.executables import ExecutableRegistry, ExecutionContext, default_registry
from repro.rmf.gass import FileStore, StagingError
from repro.rmf.gatekeeper import (
    Gatekeeper,
    GramReply,
    GramRequest,
    RMFSystem,
    submit_job,
)
from repro.rmf.jobs import JobRecord, JobResult, JobSpec, JobState, RMFError
from repro.rmf.qsystem import QClient, QServer
from repro.rmf.rsl import RSLError, parse_rsl, unparse_rsl

__all__ = [
    "AllocReply",
    "AllocRequest",
    "Assignment",
    "ExecutableRegistry",
    "ExecutionContext",
    "FileStore",
    "Gatekeeper",
    "GramReply",
    "GramRequest",
    "JobRecord",
    "JobResult",
    "JobSpec",
    "JobState",
    "LoadReport",
    "QClient",
    "QServer",
    "RMFError",
    "RMFSystem",
    "RSLError",
    "RegisterResource",
    "RendezvousServer",
    "SubJob",
    "ResourceAllocator",
    "ResourceInfo",
    "StagingError",
    "co_allocate",
    "default_registry",
    "make_mpi_executable",
    "parse_rsl",
    "submit_job",
    "unparse_rsl",
]
