"""The RMF-type GRAM gatekeeper and job manager (outside the firewall).

Fig. 2's six-step flow:

0. the gatekeeper runs outside the firewall; the allocator runs
   inside; a Q server runs on every computing resource;
1. a job request (RSL + credential subject) is submitted to the
   gatekeeper;
2. the gatekeeper authenticates it against its gridmap and forks a
   *job manager*, which creates a Q client;
3. the Q client asks the resource allocator which resources to use;
4. the allocator answers with assignments;
5. the Q client submits sub-job requests to the chosen Q servers
   (staging input files along, GASS-style);
6. each Q server queues and runs the job processes; results flow back
   through the Q client and gatekeeper to the submitter.

:class:`RMFSystem` wires a whole deployment — daemons plus the two
firewall pinholes RMF needs (§2: "the firewall must be configured to
allow communications between the Q client and the resource allocator,
and the Q client and the Q server").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.rmf.allocator import (
    DEFAULT_ALLOCATOR_PORT,
    AllocReply,
    AllocRequest,
    ResourceAllocator,
)
from repro.rmf.executables import ExecutableRegistry, default_registry
from repro.rmf.gass import FileStore
from repro.rmf.jobs import JobResult, JobSpec, JobState, RMFError
from repro.rmf.qsystem import DEFAULT_QSERVER_PORT, QClient, QServer
from repro.rmf.rsl import parse_rsl
from repro.obs import spans as _obs
from repro.obs import trace as _trace
from repro.simnet.host import Host
from repro.simnet.kernel import AllOf, Event
from repro.simnet.socket import Connection, ConnectionReset, ListenSocket, SocketError

__all__ = [
    "GramRequest",
    "GramReply",
    "Gatekeeper",
    "RMFSystem",
    "DEFAULT_GATEKEEPER_PORT",
    "submit_job",
]

DEFAULT_GATEKEEPER_PORT = 2119
_CTRL_BYTES = 256


@dataclass(frozen=True, slots=True)
class GramRequest:
    """What a submitting client sends: RSL text plus a credential."""

    rsl: str
    subject: str
    #: Optional causal trace context (wire form) minted at submit time.
    tctx: Optional[str] = None


@dataclass(frozen=True, slots=True)
class GramReply:
    ok: bool
    results: tuple[JobResult, ...] = ()
    error: Optional[str] = None

    @property
    def stdout(self) -> str:
        return "".join(r.stdout for r in self.results)

    @property
    def all_succeeded(self) -> bool:
        return self.ok and all(r.ok for r in self.results)


class Gatekeeper:
    """The GRAM entry point for an RMF deployment."""

    def __init__(
        self,
        host: Host,
        allocator_addr: tuple[str, int],
        port: int = DEFAULT_GATEKEEPER_PORT,
        gridmap: Optional[dict[str, str]] = None,
        staging: Optional[FileStore] = None,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.port = port
        self.allocator_addr = allocator_addr
        #: Credential subject → local user.  Empty map = open access
        #: (convenient for tests; real sites always populate it).
        self.gridmap = gridmap
        #: GASS cache on the gatekeeper host; stage-in files are read
        #: from here and stage-out files land here.
        self.staging = staging if staging is not None else FileStore(host.name)
        self._sock: Optional[ListenSocket] = None
        self.requests_handled = 0
        self.auth_failures = 0

    @property
    def addr(self) -> tuple[str, int]:
        return (self.host.name, self.port)

    @property
    def running(self) -> bool:
        return self._sock is not None and not self._sock.closed

    def start(self) -> "Gatekeeper":
        if self.running:
            raise RMFError(f"gatekeeper on {self.host.name} already running")
        self._sock = self.host.listen(self.port)
        self.sim.process(self._accept_loop(), name=f"gatekeeper@{self.host.name}")
        return self

    def stop(self) -> None:
        if self._sock is not None:
            self._sock.close()

    def authenticate(self, subject: str) -> bool:
        if self.gridmap is None:
            return True
        return subject in self.gridmap

    # -- request handling ------------------------------------------------------

    def _accept_loop(self) -> Iterator[Event]:
        assert self._sock is not None
        while True:
            try:
                conn = yield self._sock.accept()
            except SocketError:
                return
            # "The job manager invoked by the gatekeeper" — one forked
            # process per request.
            self.sim.process(
                self._job_manager(conn), name=f"job-manager@{self.host.name}"
            )

    def _job_manager(self, conn: Connection) -> Iterator[Event]:
        try:
            msg = yield conn.recv()
        except ConnectionReset:
            return
        t0 = self.sim.now
        ctx = _trace.accept(getattr(msg.payload, "tctx", None))

        def _span_end(ok: bool) -> None:
            """GRAM span: request received → reply sent (Fig. 2 steps 1-6)."""
            rec = _obs.RECORDER
            if rec is not None:
                rec.sim_span("rmf", "gram_request", t0, self.sim.now,
                             track=f"gatekeeper:{self.host.name}", ok=ok,
                             **_trace.span_args(ctx))

        request = msg.payload
        if not isinstance(request, GramRequest):
            yield conn.send(
                GramReply(ok=False, error="malformed request"), nbytes=_CTRL_BYTES
            )
            conn.close()
            _span_end(False)
            return
        self.requests_handled += 1
        if not self.authenticate(request.subject):
            self.auth_failures += 1
            yield conn.send(
                GramReply(ok=False, error=f"authentication failed for {request.subject!r}"),
                nbytes=_CTRL_BYTES,
            )
            conn.close()
            _span_end(False)
            return
        try:
            spec = parse_rsl(request.rsl)
        except RMFError as exc:
            yield conn.send(GramReply(ok=False, error=str(exc)), nbytes=_CTRL_BYTES)
            conn.close()
            _span_end(False)
            return
        try:
            results = yield from self._run_via_qsystem(spec, tctx=ctx)
        except RMFError as exc:
            yield conn.send(GramReply(ok=False, error=str(exc)), nbytes=_CTRL_BYTES)
            conn.close()
            _span_end(False)
            return
        reply = GramReply(ok=True, results=tuple(results))
        out_bytes = sum(FileStore.bundle_bytes(r.output_files) for r in results)
        yield conn.send(reply, nbytes=_CTRL_BYTES + out_bytes)
        conn.close()
        _span_end(True)

    def _run_via_qsystem(
        self,
        spec: JobSpec,
        tctx: "Optional[_trace.TraceContext]" = None,
    ) -> Iterator[Event]:
        """Steps 3–6: allocator inquiry, sub-job fan-out, collection."""
        qclient = QClient(self.host, staging=self.staging)
        # Step 3–4: ask the allocator.
        t_alloc = self.sim.now
        alloc_conn = yield from self.host.connect(self.allocator_addr)
        yield alloc_conn.send(AllocRequest(spec), nbytes=_CTRL_BYTES)
        try:
            reply_msg = yield alloc_conn.recv()
        except ConnectionReset:
            raise RMFError("allocator dropped the connection")
        alloc_reply: AllocReply = reply_msg.payload
        alloc_conn.close()
        rec = _obs.RECORDER
        if rec is not None:
            rec.sim_span("rmf", "allocate", t_alloc, self.sim.now,
                         track=f"gatekeeper:{self.host.name}",
                         ok=alloc_reply.ok,
                         assignments=len(alloc_reply.assignments),
                         **_trace.span_args(tctx))
        if not alloc_reply.ok:
            raise RMFError(f"allocation failed: {alloc_reply.error}")
        # Step 5: submit sub-jobs concurrently, one per resource.
        t_subs = self.sim.now
        subs = [
            self.sim.process(
                qclient.submit((a.host, a.port), spec, nprocs=a.nprocs,
                               tctx=_trace.child(tctx)),
                name=f"qclient->{a.resource}",
            )
            for a in alloc_reply.assignments
        ]
        gathered = yield AllOf(self.sim, subs)
        rec = _obs.RECORDER
        if rec is not None:
            rec.sim_span("rmf", "subjobs", t_subs, self.sim.now,
                         track=f"gatekeeper:{self.host.name}",
                         count=len(subs), **_trace.span_args(tctx))
        return [gathered[p] for p in subs]


def submit_job(
    client_host: Host,
    gatekeeper_addr: tuple[str, int],
    rsl: str,
    subject: str = "anonymous",
    tctx: "Optional[_trace.TraceContext]" = None,
) -> Iterator[Event]:
    """Generator: submit an RSL request and return the
    :class:`GramReply` (step 1 of the flow, from the user's side).

    An RMF submit is a causal-trace *origin*: when tracing is on and
    no context was handed in, a fresh trace is minted here and rides
    the request through gatekeeper, allocator, Q system and job.
    """
    if tctx is None and _trace.ENABLED:
        tctx = _trace.mint("submit")
    sim = client_host.sim
    t0 = sim.now
    conn = yield from client_host.connect(gatekeeper_addr)
    yield conn.send(
        GramRequest(rsl, subject,
                    tctx=tctx.to_wire() if tctx is not None else None),
        nbytes=_CTRL_BYTES + len(rsl),
    )
    try:
        msg = yield conn.recv()
    except ConnectionReset:
        raise RMFError(f"gatekeeper {gatekeeper_addr} dropped the connection")
    conn.close()
    reply = msg.payload
    if not isinstance(reply, GramReply):
        raise RMFError(f"unexpected gatekeeper reply: {reply!r}")
    if tctx is not None:
        rec = _obs.RECORDER
        if rec is not None:
            rec.sim_span("rmf", "submit", t0, sim.now,
                         track=f"client:{client_host.name}",
                         ok=reply.ok, **_trace.span_args(tctx))
    return reply


class RMFSystem:
    """A fully wired RMF deployment.

    Construct with the gatekeeper host (outside the firewall) and the
    allocator host (inside); add resources with :meth:`add_resource`;
    call :meth:`start`.  Firewall pinholes for the allocator and each
    Q server are opened automatically, pinned to the gatekeeper host —
    the minimal configuration §2 requires.
    """

    def __init__(
        self,
        gatekeeper_host: Host,
        allocator_host: Host,
        registry: Optional[ExecutableRegistry] = None,
        gridmap: Optional[dict[str, str]] = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.allocator = ResourceAllocator(allocator_host)
        self.gatekeeper = Gatekeeper(
            gatekeeper_host, self.allocator.addr, gridmap=gridmap
        )
        self.qservers: list[QServer] = []
        self._open_pinhole(allocator_host, DEFAULT_ALLOCATOR_PORT)

    def _open_pinhole(self, host: Host, port: int) -> None:
        site = host.site
        if site is not None and site.firewall is not None:
            site.firewall.open_inbound_port(
                port,
                src_host=self.gatekeeper.host.name,
                dst_host=host.name,
                comment=f"RMF: gatekeeper -> {host.name}:{port}",
            )

    def add_resource(
        self,
        host: Host,
        name: Optional[str] = None,
        cpus: Optional[int] = None,
        slots: int = 1,
    ) -> QServer:
        qs = QServer(
            host,
            resource_name=name,
            registry=self.registry,
            slots=slots,
            cpus=cpus,
        )
        self.qservers.append(qs)
        self.allocator.add_resource(
            qs.resource_name, host.name, qs.port, qs.cpus, host.cpu_speed
        )
        self._open_pinhole(host, qs.port)
        return qs

    def start(self) -> "RMFSystem":
        self.allocator.start()
        self.gatekeeper.start()
        for qs in self.qservers:
            qs.start()
        return self

    def stop(self) -> None:
        self.gatekeeper.stop()
        self.allocator.stop()
        for qs in self.qservers:
            qs.stop()

    def submit(self, client_host: Host, rsl: str, subject: str = "anonymous"):
        """Generator: submit through the gatekeeper (convenience)."""
        return submit_job(client_host, self.gatekeeper.addr, rsl, subject)
