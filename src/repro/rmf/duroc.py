"""DUROC-style co-allocation: multi-site MPI jobs via multiple GRAMs.

The paper's wide-area runs were started the Globus way: ``globusrun``
hands a multi-request to DUROC, which submits one GRAM sub-job per
site and synchronizes their startup with a barrier; MPICH-G then
exchanges endpoint addresses so ranks can talk.  This module
implements that path on top of RMF:

* :class:`RendezvousServer` — the startup barrier + address exchange:
  every rank of a co-allocated job registers its (index, endpoint
  address); once all are present, each registrant receives the full
  table.
* :func:`make_mpi_executable` — wraps a per-rank generator
  ``main(comm, *args)`` as an RMF executable: each sub-job builds its
  ranks' Nexus endpoints on the resource host, rendezvouses, and runs
  ``main`` with a fully wired :class:`~repro.mpi.communicator.Communicator`.
* :func:`co_allocate` — the ``globusrun`` moment: submit sub-jobs to
  several gatekeepers concurrently and gather their results.

The net effect, demonstrated in ``tests/rmf/test_duroc.py``: a single
client call starts an MPI world spanning resources behind different
gatekeepers — with the firewalled ranks publishing their endpoints
through the Nexus Proxy, exactly like the paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from repro.mpi.communicator import Communicator
from repro.nexus.context import NexusContext
from repro.rmf.executables import ExecutionContext
from repro.rmf.gatekeeper import GramReply, submit_job
from repro.rmf.jobs import RMFError
from repro.simnet.host import Host
from repro.simnet.kernel import AllOf, Event
from repro.simnet.primitives import Channel
from repro.simnet.socket import (
    Address,
    Connection,
    ConnectionReset,
    ListenSocket,
    SocketError,
)

__all__ = [
    "RendezvousServer",
    "DEFAULT_RENDEZVOUS_PORT",
    "SubJob",
    "co_allocate",
    "make_mpi_executable",
]

DEFAULT_RENDEZVOUS_PORT = 2112
_CTRL_BYTES = 96


@dataclass(frozen=True, slots=True)
class _Register:
    job_label: str
    rank: int
    world_size: int
    endpoint: Address


@dataclass(frozen=True, slots=True)
class _Table:
    ok: bool
    addrs: tuple[Address, ...] = ()
    error: Optional[str] = None


class _Barrier:
    """Collects one job's registrations until the world is complete."""

    def __init__(self, sim, world_size: int) -> None:
        self.world_size = world_size
        self.addrs: dict[int, Address] = {}
        self.waiters: list[tuple[int, Connection]] = []
        self.sim = sim


class RendezvousServer:
    """The co-allocation barrier + bootstrap address exchange."""

    def __init__(self, host: Host, port: int = DEFAULT_RENDEZVOUS_PORT) -> None:
        self.host = host
        self.sim = host.sim
        self.port = port
        self._sock: Optional[ListenSocket] = None
        self._barriers: dict[str, _Barrier] = {}
        self.jobs_completed = 0

    @property
    def addr(self) -> tuple[str, int]:
        return (self.host.name, self.port)

    @property
    def running(self) -> bool:
        return self._sock is not None and not self._sock.closed

    def start(self) -> "RendezvousServer":
        if self.running:
            raise RMFError(f"rendezvous on {self.host.name} already running")
        self._sock = self.host.listen(self.port)
        self.sim.process(self._accept_loop(), name=f"duroc@{self.host.name}")
        return self

    def stop(self) -> None:
        if self._sock is not None:
            self._sock.close()

    def _accept_loop(self) -> Iterator[Event]:
        assert self._sock is not None
        while True:
            try:
                conn = yield self._sock.accept()
            except SocketError:
                return
            self.sim.process(self._session(conn), name="duroc-session")

    def _session(self, conn: Connection) -> Iterator[Event]:
        try:
            msg = yield conn.recv()
        except ConnectionReset:
            return
        req = msg.payload
        if not isinstance(req, _Register):
            yield conn.send(_Table(ok=False, error="bad request"), nbytes=_CTRL_BYTES)
            conn.close()
            return
        barrier = self._barriers.get(req.job_label)
        if barrier is None:
            barrier = _Barrier(self.sim, req.world_size)
            self._barriers[req.job_label] = barrier
        if barrier.world_size != req.world_size:
            yield conn.send(
                _Table(ok=False, error=(
                    f"world-size mismatch for {req.job_label!r}: "
                    f"{barrier.world_size} vs {req.world_size}")),
                nbytes=_CTRL_BYTES,
            )
            conn.close()
            return
        if req.rank in barrier.addrs:
            yield conn.send(
                _Table(ok=False, error=f"duplicate rank {req.rank}"),
                nbytes=_CTRL_BYTES,
            )
            conn.close()
            return
        barrier.addrs[req.rank] = req.endpoint
        barrier.waiters.append((req.rank, conn))
        if len(barrier.addrs) < barrier.world_size:
            return  # the connection stays open; the table comes later
        # Barrier complete: release everyone with the ordered table.
        table = _Table(
            ok=True,
            addrs=tuple(barrier.addrs[r] for r in range(barrier.world_size)),
        )
        nbytes = _CTRL_BYTES + 32 * barrier.world_size
        for _, waiter_conn in barrier.waiters:
            yield waiter_conn.send(table, nbytes=nbytes)
            waiter_conn.close()
        del self._barriers[req.job_label]
        self.jobs_completed += 1


def _rendezvous(
    host: Host,
    server_addr: tuple[str, int],
    job_label: str,
    rank: int,
    world_size: int,
    endpoint_addr: Address,
) -> Iterator[Event]:
    """Generator: register and block until the world table arrives."""
    conn = yield from host.connect(server_addr)
    yield conn.send(
        _Register(job_label, rank, world_size, endpoint_addr), nbytes=_CTRL_BYTES
    )
    try:
        msg = yield conn.recv()
    except ConnectionReset:
        raise RMFError(f"rendezvous {server_addr} dropped rank {rank}")
    table: _Table = msg.payload
    conn.close()
    if not table.ok:
        raise RMFError(f"rendezvous failed: {table.error}")
    return list(table.addrs)


def make_mpi_executable(
    rank_main: Callable[..., Iterator[Event]],
    rendezvous_addr: tuple[str, int],
    *args: Any,
    context_factory: Optional[Callable[[Host], NexusContext]] = None,
) -> Callable[[ExecutionContext], Iterator[Event]]:
    """Build an RMF executable that joins a co-allocated MPI world.

    RSL arguments: ``(arguments=<job_label> <world_size> <base_rank>)``
    — the sub-job contributes ranks ``base_rank .. base_rank+nprocs-1``.
    The executable's stdout records each rank's return value.

    ``context_factory(host)`` builds each rank's
    :class:`~repro.nexus.context.NexusContext`; supply one that wires
    the site's Nexus Proxy addresses for ranks on firewalled
    resources (the testbed's ``NEXUS_PROXY_*`` environment), otherwise
    plain direct contexts are used.
    """

    def mpi_executable(ctx: ExecutionContext) -> Iterator[Event]:
        if len(ctx.args) < 3:
            raise RMFError(
                "mpi executable needs arguments: job_label world_size base_rank"
            )
        job_label = ctx.args[0]
        world_size = int(ctx.args[1])
        base_rank = int(ctx.args[2])
        nlocal = max(1, ctx.nprocs)

        def one_rank(rank: int) -> Iterator[Event]:
            if context_factory is not None:
                nexus = context_factory(ctx.host)
            else:
                nexus = NexusContext(ctx.host)
            endpoint = yield from nexus.create_endpoint(
                f"duroc:{job_label}:{rank}"
            )
            addrs = yield from _rendezvous(
                ctx.host, rendezvous_addr, job_label, rank, world_size,
                endpoint.addr,
            )
            comm = Communicator(rank, nexus, endpoint, addrs)
            result = yield from rank_main(comm, *args)
            comm.finalize()
            return (rank, result)

        procs = [
            ctx.sim.process(one_rank(base_rank + i), name=f"{job_label}[{base_rank + i}]")
            for i in range(nlocal)
        ]
        gathered = yield AllOf(ctx.sim, procs)
        for p in procs:
            rank, result = gathered[p]
            ctx.write(f"rank {rank}: {result}\n")

    return mpi_executable


@dataclass(frozen=True, slots=True)
class SubJob:
    """One GRAM request of a co-allocated multi-request."""

    gatekeeper_addr: tuple[str, int]
    rsl: str


def co_allocate(
    client_host: Host,
    subjobs: "list[SubJob]",
    subject: str = "anonymous",
) -> Iterator[Event]:
    """Generator: submit every sub-job concurrently (the ``globusrun``
    multi-request) and return their :class:`GramReply` list in order."""
    if not subjobs:
        raise RMFError("co_allocate needs at least one sub-job")
    sim = client_host.sim
    procs = [
        sim.process(
            submit_job(client_host, sj.gatekeeper_addr, sj.rsl, subject),
            name=f"duroc-subjob[{i}]",
        )
        for i, sj in enumerate(subjobs)
    ]
    gathered = yield AllOf(sim, procs)
    replies: list[GramReply] = [gathered[p] for p in procs]
    return replies
