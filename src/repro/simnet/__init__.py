"""Discrete-event wide-area network simulator.

The substrate everything else runs on: a deterministic generator-based
DES kernel (:mod:`~repro.simnet.kernel`), synchronization primitives,
latency+bandwidth links, firewalled sites, and a TCP-like socket layer
(connect/bind/listen/accept/send/recv) with message pipelining.

Quick taste::

    from repro.simnet import Network, Firewall

    net = Network()
    lab = net.add_site("lab", firewall=Firewall.typical())
    inside = net.add_host("inside", site=lab)
    outside = net.add_host("outside")
    net.link(inside, outside, latency=2e-3, bandwidth=180e3)

    def server():
        lsock = inside.listen(5000)
        conn = yield lsock.accept()
        msg = yield conn.recv()
        yield conn.send(b"pong", nbytes=msg.nbytes)

    def client():
        conn = yield from outside.connect(("inside", 5000))  # blocked!
        ...

    net.sim.process(server())
    net.sim.process(client())
    net.sim.run()
"""

from repro.simnet.firewall import Action, Direction, Firewall, FirewallBlocked, Rule
from repro.simnet.host import Host
from repro.simnet.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimError,
    Simulator,
    Timeout,
)
from repro.simnet.link import DuplexLink, Link
from repro.simnet.primitives import Channel, ChannelClosed, Gate, Resource
from repro.simnet.socket import (
    Address,
    Connection,
    ConnectionRefused,
    ConnectionReset,
    ConnectTimeout,
    ListenSocket,
    Message,
    NetConfig,
    SocketError,
    wire_size,
)
from repro.simnet.topology import Network, Site
from repro.simnet.trace import TraceRecord, Tracer

__all__ = [
    "Action",
    "Address",
    "AllOf",
    "AnyOf",
    "Channel",
    "ChannelClosed",
    "Connection",
    "ConnectionRefused",
    "ConnectionReset",
    "ConnectTimeout",
    "Direction",
    "DuplexLink",
    "Event",
    "Firewall",
    "FirewallBlocked",
    "Gate",
    "Host",
    "Interrupt",
    "Link",
    "ListenSocket",
    "Message",
    "NetConfig",
    "Network",
    "Process",
    "Resource",
    "Rule",
    "SimError",
    "Simulator",
    "Site",
    "SocketError",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "wire_size",
]
