"""Discrete-event simulation kernel.

A small, strict, generator-based DES in the SimPy tradition.  Simulated
activities are Python generators that ``yield`` :class:`Event` objects;
the :class:`Simulator` advances a virtual clock and resumes each process
when the event it waits on fires.

Design rules (they matter for everything layered on top):

* **Determinism.**  Events scheduled for the same instant fire in
  scheduling order (a monotone tie-breaker is part of the heap key), so
  a given program produces one and only one trace.
* **Strict failure.**  An exception escaping a process fails the
  process event.  If *nothing* is waiting on a failed event when it is
  processed, the exception propagates out of :meth:`Simulator.run` —
  silent death of a simulated daemon would otherwise turn into a hang.
* **No global state.**  All state hangs off the :class:`Simulator`
  instance; independent simulations never interact.

Fast path
---------

Every experiment in this repo funnels through this loop (a Table 4 run
processes hundreds of thousands of events), so the hot path is tuned
while keeping the three rules above bit-identical:

* **Single-waiter slot.**  The dominant case — exactly one process
  waiting on an event — stores the callback in ``_cb1`` instead of
  allocating a one-element list per event.  The public
  :attr:`Event.callbacks` list materializes lazily on first access, so
  external code that appends to / removes from / ``is None``-tests the
  list keeps working unchanged.  Dispatch order is FIFO either way.
* **Timeout free-list.**  Processed :class:`Timeout` objects that
  nothing else references (checked with ``sys.getrefcount`` — a
  caller that kept the timeout keeps its object) are recycled by
  :meth:`Simulator.timeout` instead of re-allocated.
* **Inlined drain loop.**  :meth:`Simulator.run` with no deadline and
  no stop event runs a tight loop with the heap, pool and dispatch
  locals cached instead of calling :meth:`step` per event.

``Simulator(mode="seed")`` (or ``REPRO_SIM_KERNEL=seed``) disables the
free-list and the callback slot — every registration allocates the
list, like the original kernel — so the determinism suite can compare
traces between the seed slow path and the fast path.
"""

from __future__ import annotations

import heapq
import os
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimError",
    "AnyOf",
    "AllOf",
    "ProcGen",
]

#: Type of generator a :class:`Process` runs.
ProcGen = Generator["Event", Any, Any]

_PENDING = object()

#: Recycled Timeouts kept per simulator (bounds worst-case retention).
_MAX_POOL = 1024


class SimError(RuntimeError):
    """Misuse of the simulation kernel (not a simulated failure)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` carries whatever the interrupter passed; the interrupted
    process may catch it and continue.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is
    called and *processed* once the simulator has run its callbacks.
    Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "_cb1", "_cbs", "_processed", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Single-waiter slot; promoted to ``_cbs`` on a second waiter.
        self._cb1: Optional[Callable[["Event"], None]] = None
        self._cbs: Optional[list[Callable[["Event"], None]]] = None
        self._processed = False
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def callbacks(self) -> Optional[list[Callable[["Event"], None]]]:
        """Callbacks run when the event is processed; ``None`` after.

        Accessing this materializes the callback list (moving a
        slot-stored single waiter into it), so mutate freely.
        """
        if self._processed:
            return None
        cbs = self._cbs
        if cbs is None:
            cb1 = self._cb1
            cbs = [] if cb1 is None else [cb1]
            self._cb1 = None
            self._cbs = cbs
        return cbs

    def _add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Internal fast registration (semantics of ``callbacks.append``)."""
        if self.sim._fast:
            if self._cbs is not None:
                self._cbs.append(cb)
            elif self._cb1 is None:
                self._cb1 = cb
            else:
                self._cbs = [self._cb1, cb]
                self._cb1 = None
        else:
            cbs = self.callbacks
            assert cbs is not None
            cbs.append(cb)

    def _discard_callback(self, cb: Callable[["Event"], None]) -> None:
        """Internal removal (no-op when absent or already processed)."""
        if self._cb1 is cb:
            self._cb1 = None
            return
        cbs = self._cbs
        if cbs is not None:
            try:
                cbs.remove(cb)
            except ValueError:  # pragma: no cover - defensive
                pass

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        """True iff the event succeeded.  Only valid once triggered."""
        if self._value is _PENDING:
            raise SimError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._value is _PENDING:
            raise SimError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value``."""
        if self._value is not _PENDING:
            raise SimError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._post(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exc, BaseException):
            raise SimError(f"fail() needs an exception, got {exc!r}")
        if self._value is not _PENDING:
            raise SimError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._post(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so run() won't re-raise it."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "pending"
            if not self.triggered
            else ("ok" if self._ok else f"failed({self._value!r})")
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimError(f"negative timeout: {delay!r}")
        self.sim = sim
        self._cb1 = None
        self._cbs = None
        self._processed = False
        self._defused = False
        self._ok = True
        self._value = value
        heapq.heappush(sim._heap, (sim.now + delay, sim._eid, self))
        sim._eid += 1


class _Initialize(Event):
    """Internal: kicks a freshly created process at the current time."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self._ok = True
        self._value = None
        self._add_callback(process._resume_fn)
        sim._post(self)


class Process(Event):
    """A running activity; also an event that fires when it finishes.

    The success value is the generator's ``return`` value; a process
    that raises fails with that exception.
    """

    __slots__ = ("_gen", "_send", "_throw", "_resume_fn", "_target", "name")

    def __init__(self, sim: "Simulator", gen: ProcGen, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise SimError(f"process body must be a generator, got {gen!r}")
        super().__init__(sim)
        self._gen = gen
        self._send = gen.send
        self._throw = gen.throw
        #: One bound method reused for every wait: registration and
        #: removal (interrupt) then work by identity, and each yield
        #: skips a bound-method allocation.
        self._resume_fn = self._resume
        self._target: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op; a process may not
        interrupt itself (that is a plain ``raise``).
        """
        if self.triggered:
            return
        if self.sim._active is self:
            raise SimError("a process cannot interrupt itself")
        kick = Event(self.sim)
        kick._ok = False
        kick._value = Interrupt(cause)
        kick._defused = True
        kick._add_callback(self._resume_interrupt)
        self.sim._post(kick)

    def _resume_interrupt(self, event: Event) -> None:
        if self.triggered:
            return  # finished in the meantime; interrupt evaporates
        target = self._target
        if target is not None and not target._processed:
            target._discard_callback(self._resume_fn)
        self._target = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        sim = self.sim
        fast = sim._fast
        self._target = None
        sim._active = self
        send = self._send
        throw = self._throw
        resume = self._resume_fn
        while True:
            try:
                if event._ok:
                    next_ev = send(event._value)
                else:
                    event._defused = True
                    next_ev = throw(event._value)
            except StopIteration as stop:
                sim._active = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                sim._active = None
                self.fail(exc)
                return
            if not isinstance(next_ev, Event):
                sim._active = None
                self.fail(
                    SimError(
                        f"process {self.name!r} yielded {next_ev!r}, "
                        "which is not an Event"
                    )
                )
                return
            if next_ev.sim is not sim:
                sim._active = None
                self.fail(SimError("yielded an event from a different simulator"))
                return
            if not next_ev._processed:
                # Pending or triggered-but-unprocessed: wait for it.
                if fast:
                    if next_ev._cbs is not None:
                        next_ev._cbs.append(resume)
                    elif next_ev._cb1 is None:
                        next_ev._cb1 = resume
                    else:
                        next_ev._cbs = [next_ev._cb1, resume]
                        next_ev._cb1 = None
                else:
                    next_ev._add_callback(resume)
                self._target = next_ev
                sim._active = None
                return
            # Already processed: resume synchronously with its outcome.
            event = next_ev

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'done' if self.triggered else 'alive'}>"


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("_events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._done = 0
        if any(ev.sim is not sim for ev in self._events):
            raise SimError("condition mixes events from different simulators")
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev._processed:
                self._check(ev)
                if self.triggered:
                    break
            else:
                ev._add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._satisfied():
            self.succeed(self._results())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _results(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self._events if ev.triggered and ev._ok}


class AnyOf(_Condition):
    """Fires when the first of ``events`` fires (fails if that one failed)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done >= 1


class AllOf(_Condition):
    """Fires when all of ``events`` have fired successfully."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done >= len(self._events)


class Simulator:
    """The event loop: a clock plus a time-ordered heap of events.

    ``mode`` selects the implementation path: ``"fast"`` (default)
    enables the Timeout free-list and the single-waiter callback slot;
    ``"seed"`` reproduces the original kernel's allocation behaviour.
    Both produce bit-identical traces (guarded by the trace-hash test
    in ``tests/simnet/test_kernel_fastpath.py``).  The default can be
    overridden with ``REPRO_SIM_KERNEL=seed|fast``.
    """

    def __init__(self, mode: Optional[str] = None) -> None:
        if mode is None:
            mode = os.environ.get("REPRO_SIM_KERNEL", "fast")
        if mode not in ("fast", "seed"):
            raise SimError(f"unknown kernel mode {mode!r} (want 'fast' or 'seed')")
        self.mode = mode
        self._fast = mode == "fast"
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._eid = 0
        self._active: Optional[Process] = None
        self._pool: list[Timeout] = []
        #: Optional per-event hook ``hook(time, event)`` called as each
        #: event is processed (before its callbacks run).  Used by the
        #: determinism suite to hash traces; ``None`` costs one branch.
        self.on_event: Optional[Callable[[float, Event], None]] = None

    # -- scheduling ----------------------------------------------------

    def _post(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self.now + delay, self._eid, event))
        self._eid += 1

    # -- factory helpers ----------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        pool = self._pool
        if pool:
            if delay < 0:
                raise SimError(f"negative timeout: {delay!r}")
            ev = pool.pop()
            ev._processed = False
            ev._defused = False
            ev._value = value
            heapq.heappush(self._heap, (self.now + delay, self._eid, ev))
            self._eid += 1
            return ev
        return Timeout(self, delay, value)

    def process(self, gen: ProcGen, name: str = "") -> Process:
        """Start ``gen`` as a process immediately (at the current time)."""
        return Process(self, gen, name)

    def every(
        self, interval: float, fn: Callable[[float], Any], name: str = "periodic"
    ) -> Process:
        """Call ``fn(now)`` every ``interval`` simulated seconds.

        The canonical sim-clock sampling hook: samplers (fleet
        heartbeats, the time-series sampler) attach through this so
        their wakeups are ordinary heap events — the perturbation is
        identical under every kernel mode, which is what keeps
        sim-domain series byte-stable.  The process never ends on its
        own; its pending timeout simply stays on the heap when a
        ``run(until=...)`` driver stops.
        """
        if interval <= 0:
            raise SimError(f"every() needs a positive interval, got {interval!r}")

        def loop() -> ProcGen:
            while True:
                yield self.timeout(interval)
                fn(self.now)

        return self.process(loop(), name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution ------------------------------------------------------

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimError("step() on an empty event queue")
        t, _, ev = heapq.heappop(self._heap)
        if t < self.now:  # pragma: no cover - heap invariant
            raise SimError("time went backwards")
        self.now = t
        if self.on_event is not None:
            self.on_event(t, ev)
        ev._processed = True
        cb = ev._cb1
        if cb is not None:
            ev._cb1 = None
            cb(ev)
        else:
            cbs = ev._cbs
            if cbs is not None:
                ev._cbs = None
                for cb in cbs:
                    cb(ev)
        if not ev._ok and not ev._defused:
            raise ev._value
        if (
            self._fast
            and ev.__class__ is Timeout
            and len(self._pool) < _MAX_POOL
            and getrefcount(ev) == 2
        ):
            self._pool.append(ev)

    def run(
        self, until: "float | Event | None" = None
    ) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain), a time (run to that instant),
        or an :class:`Event` (run until it triggers; its value is
        returned, and if it failed the exception is raised).
        """
        stop_event: Optional[Event] = None
        deadline: Optional[float] = None
        stopped = False
        if isinstance(until, Event):
            stop_event = until
            if stop_event._processed:
                stopped = True
            else:
                def _stop(_: Event) -> None:
                    nonlocal stopped
                    stopped = True

                stop_event._add_callback(_stop)
                stop_event._defused = True
        elif until is not None:
            deadline = float(until)
            if deadline < self.now:
                raise SimError(f"until={deadline} is in the past (now={self.now})")

        heap = self._heap
        pool = self._pool
        heappop = heapq.heappop
        pooling = self._fast
        if stop_event is None and deadline is None:
            # Drain loop: the hot path for whole-job runs.
            while heap:
                t, _, ev = heappop(heap)
                self.now = t
                if self.on_event is not None:
                    self.on_event(t, ev)
                ev._processed = True
                cb = ev._cb1
                if cb is not None:
                    ev._cb1 = None
                    cb(ev)
                else:
                    cbs = ev._cbs
                    if cbs is not None:
                        ev._cbs = None
                        for cb in cbs:
                            cb(ev)
                if not ev._ok and not ev._defused:
                    raise ev._value
                if pooling and ev.__class__ is Timeout and len(pool) < _MAX_POOL \
                        and getrefcount(ev) == 2:
                    pool.append(ev)
            return None

        while heap and not stopped:
            if deadline is not None and heap[0][0] > deadline:
                break
            t, _, ev = heappop(heap)
            self.now = t
            if self.on_event is not None:
                self.on_event(t, ev)
            ev._processed = True
            cb = ev._cb1
            if cb is not None:
                ev._cb1 = None
                cb(ev)
            else:
                cbs = ev._cbs
                if cbs is not None:
                    ev._cbs = None
                    for cb in cbs:
                        cb(ev)
            if not ev._ok and not ev._defused:
                raise ev._value
            if pooling and ev.__class__ is Timeout and len(pool) < _MAX_POOL \
                    and getrefcount(ev) == 2:
                pool.append(ev)

        if deadline is not None:
            self.now = max(self.now, deadline)
        if stop_event is not None:
            if not stopped:
                raise SimError(
                    "run(until=event): queue drained but event never fired "
                    "(deadlock in the simulated program?)"
                )
            if not stop_event.ok:
                raise stop_event._value
            return stop_event._value
        return None

    # -- introspection ---------------------------------------------------

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active

    @property
    def events_scheduled(self) -> int:
        """Total events posted to the heap so far (the events/sec
        numerator in ``BENCH_sim.json``)."""
        return self._eid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now:.6f} queued={len(self._heap)}>"
