"""Network links: latency + bandwidth pipes with store-and-forward.

A :class:`Link` is *unidirectional*: serialization occupies the link's
transmitter (a FIFO :class:`~repro.simnet.primitives.Resource`) for
``nbytes / bandwidth`` seconds, after which the frame propagates for
``latency`` seconds without occupying the transmitter.  That separation
is what lets back-to-back segments pipeline: the second segment starts
serializing while the first is still in flight — exactly the behaviour
that makes the Nexus Proxy overhead "negligible for large messages"
(paper §4.2) once per-chunk costs are amortized.

:class:`DuplexLink` bundles the two directions of a full-duplex cable
(100Base-T, the 1.5 Mbps IMNet) so each direction contends only with
itself.
"""

from __future__ import annotations

from typing import Iterator

from repro.simnet.kernel import Event, SimError, Simulator
from repro.simnet.primitives import Resource

__all__ = ["Link", "DuplexLink"]


class Link:
    """One direction of a point-to-point link."""

    def __init__(
        self,
        sim: Simulator,
        latency: float,
        bandwidth: float,
        name: str = "",
    ) -> None:
        if latency < 0:
            raise SimError(f"negative latency: {latency}")
        if bandwidth <= 0:
            raise SimError(f"bandwidth must be positive: {bandwidth}")
        self.sim = sim
        #: One-way propagation delay in seconds.
        self.latency = latency
        #: Serialization rate in bytes/second.
        self.bandwidth = bandwidth
        self.name = name
        self._tx = Resource(sim, capacity=1)
        #: Total bytes ever serialized onto this link (for utilization).
        self.bytes_sent = 0
        #: Total frames transmitted.
        self.frames_sent = 0
        #: Accumulated busy time of the transmitter.
        self.busy_time = 0.0

    def serialization_time(self, nbytes: int) -> float:
        return nbytes / self.bandwidth

    def transmit(self, nbytes: int) -> Iterator[Event]:
        """Generator: carry ``nbytes`` across the link.

        Yields from a process context.  Returns (to the caller's
        ``yield from``) once the frame has fully *arrived* at the far
        end, i.e. after queueing + serialization + propagation.
        """
        if nbytes < 0:
            raise SimError(f"negative frame size: {nbytes}")
        yield self._tx.request()
        try:
            tx_time = self.serialization_time(nbytes)
            yield self.sim.timeout(tx_time)
            self.bytes_sent += nbytes
            self.frames_sent += 1
            self.busy_time += tx_time
        finally:
            self._tx.release()
        if self.latency > 0:
            yield self.sim.timeout(self.latency)

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the transmitter was busy."""
        if self.sim.now <= 0:
            return 0.0
        return self.busy_time / self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Link {self.name or hex(id(self))} "
            f"lat={self.latency * 1e3:.3f}ms bw={self.bandwidth / 1e6:.2f}MB/s>"
        )


class DuplexLink:
    """A full-duplex cable between two attachment points.

    ``forward`` carries traffic A→B, ``reverse`` B→A; they share the
    nominal latency/bandwidth figures but have independent
    transmitters.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: float,
        bandwidth: float,
        name: str = "",
    ) -> None:
        self.name = name
        self.forward = Link(sim, latency, bandwidth, name=f"{name}:fwd")
        self.reverse = Link(sim, latency, bandwidth, name=f"{name}:rev")

    @property
    def latency(self) -> float:
        return self.forward.latency

    @property
    def bandwidth(self) -> float:
        return self.forward.bandwidth

    def direction(self, a_to_b: bool) -> Link:
        return self.forward if a_to_b else self.reverse

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DuplexLink {self.name} {self.forward!r}>"
