"""Simulated hosts: named machines with CPUs and a port namespace.

A :class:`Host` is where processes "run".  Its two performance-relevant
attributes are ``cpu_speed`` (a dimensionless factor relative to the
calibration machine — the paper's RWCP-Sun, on which the sequential
knapsack baseline ran) and ``cores`` (how many simultaneous
compute-bound processes it sustains; COMPaS nodes are quad Pentium Pro
SMPs, ETL-O2K is a 16-CPU Origin 2000).

Hosts expose the user-facing socket API (:meth:`listen`,
:meth:`connect`) and the CPU cost model (:meth:`compute`,
:meth:`execute`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.simnet.kernel import Event, SimError, Simulator
from repro.simnet.primitives import Resource
from repro.simnet.socket import (
    Address,
    Connection,
    ListenSocket,
    SocketError,
    open_connection,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.topology import Network, Site

__all__ = ["Host"]

#: First port handed out by the ephemeral allocator (IANA convention).
EPHEMERAL_BASE = 49152
#: Highest usable port number.
PORT_MAX = 65535


class Host:
    """A machine attached to a :class:`~repro.simnet.topology.Network`."""

    def __init__(
        self,
        network: "Network",
        name: str,
        site: Optional["Site"] = None,
        cpu_speed: float = 1.0,
        cores: int = 1,
    ) -> None:
        if cpu_speed <= 0:
            raise SimError(f"cpu_speed must be positive, got {cpu_speed}")
        if cores <= 0:
            raise SimError(f"cores must be positive, got {cores}")
        self.network = network
        self.sim: Simulator = network.sim
        self.name = name
        self.site = site
        #: Relative CPU speed (1.0 == the calibration machine).
        self.cpu_speed = cpu_speed
        self.cores = cores
        #: Shared-CPU resource for workloads that contend for cores.
        self.cpu = Resource(self.sim, capacity=cores)
        self._ports: dict[int, ListenSocket] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        #: Open connections with an endpoint on this host (for crash
        #: teardown and utilization reporting).
        self.connections: list[Connection] = []
        #: Whether the machine is down (see :meth:`crash`).
        self.crashed = False
        #: Accumulated busy time of core-occupying work (execute()).
        self.cpu_busy_time = 0.0

    # -- identity --------------------------------------------------------

    @property
    def site_name(self) -> Optional[str]:
        return self.site.name if self.site is not None else None

    # -- sockets -----------------------------------------------------------

    def listen(self, port: Optional[int] = None, backlog: int = 128) -> ListenSocket:
        """Bind and listen; ``port=None`` picks an ephemeral port.

        This is the plain `bind()`/`listen()` — note that *reachability*
        of the port from outside the firewall is a separate question,
        which is the paper's whole point.
        """
        if port is None:
            port = self._ephemeral_port()
        elif port in self._ports and not self._ports[port].closed:
            raise SocketError(f"{self.name}: port {port} already bound")
        elif not (1 <= port <= PORT_MAX):
            raise SocketError(f"invalid port {port}")
        sock = ListenSocket(self, port, backlog=backlog)
        self._ports[port] = sock
        return sock

    def connect(
        self,
        addr: "Address | tuple[str, int]",
        timeout: Optional[float] = None,
    ) -> Iterator[Event]:
        """Generator: ``conn = yield from host.connect(addr)``."""
        if isinstance(addr, tuple):
            addr = Address(*addr)
        return (yield from open_connection(self.network, self, addr, timeout))

    def _ephemeral_port(self) -> int:
        while self._next_ephemeral in self._ports:
            self._next_ephemeral += 1
        if self._next_ephemeral > PORT_MAX:
            raise SocketError(f"{self.name}: ephemeral ports exhausted")
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def _unbind(self, port: int, sock: ListenSocket) -> None:
        if self._ports.get(port) is sock:
            del self._ports[port]

    def is_listening(self, port: int) -> bool:
        sock = self._ports.get(port)
        return sock is not None and not sock.closed

    # -- CPU model ---------------------------------------------------------

    def compute(self, cost: float) -> Event:
        """Event firing after ``cost`` seconds of *reference-machine*
        work on a dedicated core (scaled by this host's speed)."""
        if cost < 0:
            raise SimError(f"negative compute cost: {cost}")
        return self.sim.timeout(cost / self.cpu_speed)

    def execute(self, cost: float) -> Iterator[Event]:
        """Generator: like :meth:`compute` but contending for a core."""
        yield self.cpu.request()
        try:
            duration = cost / self.cpu_speed
            yield self.sim.timeout(duration)
            self.cpu_busy_time += duration
        finally:
            self.cpu.release()

    def cpu_utilization(self) -> float:
        """Fraction of elapsed time × cores spent in :meth:`execute`."""
        if self.sim.now <= 0:
            return 0.0
        return self.cpu_busy_time / (self.sim.now * self.cores)

    # -- failure injection ----------------------------------------------------

    def crash(self) -> None:
        """The machine dies: every listener and connection is torn
        down; incoming SYNs vanish until :meth:`recover` (and new
        daemons) bring the host back.

        Processes "running on" the host are not magically stopped (the
        simulator has no process-host binding); daemons observe the
        crash through their sockets failing, exactly like a remote
        peer would.
        """
        if self.crashed:
            return
        self.crashed = True
        for sock in list(self._ports.values()):
            sock.close()
        for conn in self.connections:
            if not conn.closed:
                conn.closed = True
                conn._rx.close()
                peer = conn.peer
                # The peer learns after a propagation delay (its next
                # probe elicits a RST); in-flight data is lost.
                if peer is not None and not peer.closed:
                    self.sim.process(
                        self._reset_peer(peer), name=f"rst<-{self.name}"
                    )
        self.connections.clear()

    def _reset_peer(self, peer: "Connection") -> Iterator[Event]:
        delay = sum(l.latency for l in peer.tx_path) or 1e-6
        yield self.sim.timeout(delay)
        if not peer.closed:
            peer.closed = True
            peer._rx.close()

    def recover(self) -> None:
        """Power back on (with empty port and connection tables)."""
        self.crashed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        site = f" site={self.site_name}" if self.site is not None else ""
        return f"<Host {self.name}{site} speed={self.cpu_speed} cores={self.cores}>"
