"""Network topology: sites, hosts, links, routing, firewall placement.

A :class:`Network` owns the simulator, a set of :class:`Site`\\ s (each
optionally behind a :class:`~repro.simnet.firewall.Firewall`), hosts,
and the link graph.  Routing is static shortest-path by latency
(computed with :mod:`networkx`, cached per endpoint pair) — adequate
for the paper's hub-and-spoke topology (site LANs hanging off a WAN).

Firewall semantics: filtering happens where a connection crosses a
site boundary.  A connection from host *A* (site S\\ :sub:`A`) to *B*
(site S\\ :sub:`B`, port *p*) consults

1. S\\ :sub:`A`'s firewall with direction OUTBOUND, then
2. S\\ :sub:`B`'s firewall with direction INBOUND,

skipping either check when the corresponding site has no firewall or
both hosts share a site.  This matches the paper's model, where the
firewall is the site's gateway machine.
"""

from __future__ import annotations

from typing import Iterable, Optional

import networkx as nx

from repro.simnet.firewall import Direction, Firewall
from repro.simnet.host import Host
from repro.simnet.kernel import SimError, Simulator
from repro.simnet.link import DuplexLink, Link
from repro.simnet.socket import NetConfig
from repro.simnet.trace import Tracer

__all__ = ["Site", "Network"]


class Site:
    """An administrative domain: a named set of hosts, maybe firewalled."""

    def __init__(self, name: str, firewall: Optional[Firewall] = None) -> None:
        self.name = name
        self.firewall = firewall
        if firewall is not None and not firewall.name:
            firewall.name = f"fw:{name}"
        self.hosts: list[Host] = []

    @property
    def host_names(self) -> list[str]:
        return [h.name for h in self.hosts]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fw = "firewalled" if self.firewall is not None else "open"
        return f"<Site {self.name} ({fw}, {len(self.hosts)} hosts)>"


class Network:
    """The world: simulator + sites + hosts + links + routes."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        config: Optional[NetConfig] = None,
    ) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.config = config if config is not None else NetConfig()
        self.config.validate()
        self.tracer = Tracer()
        self.sites: dict[str, Site] = {}
        self.hosts: dict[str, Host] = {}
        self._graph = nx.Graph()
        self._route_cache: dict[tuple[str, str], list[Link]] = {}

    # -- construction -----------------------------------------------------

    def add_site(self, name: str, firewall: Optional[Firewall] = None) -> Site:
        if name in self.sites:
            raise SimError(f"duplicate site {name!r}")
        site = Site(name, firewall)
        self.sites[name] = site
        return site

    def add_host(
        self,
        name: str,
        site: "Site | str | None" = None,
        cpu_speed: float = 1.0,
        cores: int = 1,
    ) -> Host:
        if name in self.hosts:
            raise SimError(f"duplicate host {name!r}")
        if isinstance(site, str):
            site = self.sites[site]
        host = Host(self, name, site=site, cpu_speed=cpu_speed, cores=cores)
        self.hosts[name] = host
        if site is not None:
            site.hosts.append(host)
        self._graph.add_node(name)
        self._route_cache.clear()
        return host

    def add_router(self, name: str, site: "Site | str | None" = None) -> Host:
        """A forwarding-only node (switch, gateway, the Internet cloud)."""
        return self.add_host(name, site=site, cpu_speed=1.0, cores=1)

    def link(
        self,
        a: "Host | str",
        b: "Host | str",
        latency: float,
        bandwidth: float,
        name: str = "",
    ) -> DuplexLink:
        """Attach a full-duplex link between two nodes."""
        a_name = a if isinstance(a, str) else a.name
        b_name = b if isinstance(b, str) else b.name
        for n in (a_name, b_name):
            if n not in self.hosts:
                raise SimError(f"unknown host {n!r}")
        if a_name == b_name:
            raise SimError("cannot link a host to itself")
        if self._graph.has_edge(a_name, b_name):
            raise SimError(f"duplicate link {a_name} -- {b_name}")
        duplex = DuplexLink(
            self.sim, latency, bandwidth, name=name or f"{a_name}--{b_name}"
        )
        self._graph.add_edge(a_name, b_name, link=duplex, a=a_name, weight=latency)
        self._route_cache.clear()
        return duplex

    # -- routing ------------------------------------------------------------

    def path_links(self, src: Host, dst: Host) -> list[Link]:
        """Oriented unidirectional links along the src→dst route.

        Empty list for loopback (src is dst).  Raises
        :class:`SimError` when no route exists.
        """
        if src.name == dst.name:
            return []
        key = (src.name, dst.name)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        try:
            nodes = nx.shortest_path(self._graph, src.name, dst.name, weight="weight")
        except nx.NetworkXNoPath:
            raise SimError(f"no route from {src.name} to {dst.name}") from None
        links: list[Link] = []
        for u, v in zip(nodes, nodes[1:]):
            edge = self._graph[u][v]
            duplex: DuplexLink = edge["link"]
            links.append(duplex.direction(a_to_b=(edge["a"] == u)))
        self._route_cache[key] = links
        return links

    def rtt_between(self, src: Host, dst: Host) -> float:
        """Round-trip propagation time between two hosts."""
        path = self.path_links(src, dst)
        one_way = sum(l.latency for l in path) if path else self.config.local_latency
        return 2 * one_way

    def hop_count(self, src: Host, dst: Host) -> int:
        return len(self.path_links(src, dst))

    # -- firewalling ----------------------------------------------------------

    def filter_connection(self, src: Host, dst: Host, dst_port: int) -> Optional[Firewall]:
        """Return the firewall that blocks this connection, or ``None``.

        Applied at connect time (SYN filtering), the granularity real
        deny-based packet filters act at for TCP.
        """
        src_site, dst_site = src.site, dst.site
        if src_site is dst_site:
            return None
        if src_site is not None and src_site.firewall is not None:
            if not src_site.firewall.permits(
                Direction.OUTBOUND, src.name, dst.name, dst_port
            ):
                return src_site.firewall
        if dst_site is not None and dst_site.firewall is not None:
            if not dst_site.firewall.permits(
                Direction.INBOUND, src.name, dst.name, dst_port
            ):
                return dst_site.firewall
        return None

    def can_connect(self, src: "Host | str", dst: "Host | str", dst_port: int) -> bool:
        """Static reachability question, without simulating a connect."""
        if isinstance(src, str):
            src = self.hosts[src]
        if isinstance(dst, str):
            dst = self.hosts[dst]
        return self.filter_connection(src, dst, dst_port) is None

    # -- conveniences -----------------------------------------------------------

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise SimError(f"unknown host {name!r}") from None

    def hosts_in_site(self, site: "Site | str") -> list[Host]:
        if isinstance(site, str):
            site = self.sites[site]
        return list(site.hosts)

    def links(self) -> Iterable[DuplexLink]:
        for _, _, data in self._graph.edges(data=True):
            yield data["link"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Network hosts={len(self.hosts)} sites={len(self.sites)} "
            f"links={self._graph.number_of_edges()} t={self.sim.now:.6f}>"
        )
