"""Firewall model: per-site connection filtering.

The paper (§1) assumes the configuration it calls "most typical":

* **deny-based** for *incoming* packets — everything inbound is denied
  unless a rule opens it, and
* **allow-based** for *outgoing* packets — everything outbound passes
  unless a rule closes it.

:func:`Firewall.typical` builds exactly that.  Rules are first-match-
wins over (direction, source host/site, destination port range), which
is enough to express every configuration the paper discusses:

* opening the single *nxport* from the outer server to the inner
  server (§3: "only the communication port from the outer server to
  the inner server must be opened in advance");
* the Globus 1.1 workaround of opening a whole ``TCP_MIN_PORT`` –
  ``TCP_MAX_PORT`` range (§1), reproduced by
  :meth:`Firewall.open_port_range`;
* temporarily disabling filtering for the "direct" baseline
  measurements (§4.2 footnote), via :meth:`Firewall.allow_everything`.

A deny-based firewall *drops* offending SYNs rather than rejecting
them, so a blocked connect manifests as a timeout; the simulated socket
layer honours that (see :mod:`repro.simnet.socket`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["Action", "Direction", "Rule", "Firewall", "FirewallBlocked"]


class Action(enum.Enum):
    ALLOW = "allow"
    DENY = "deny"


class Direction(enum.Enum):
    INBOUND = "inbound"
    OUTBOUND = "outbound"


class FirewallBlocked(ConnectionError):
    """A connection attempt was filtered by a firewall.

    Raised immediately by firewalls configured to *reject*; for the
    (default, realistic) *drop* behaviour the socket layer raises this
    only after the connect timeout expires.
    """

    def __init__(self, message: str, silent_drop: bool = True) -> None:
        super().__init__(message)
        self.silent_drop = silent_drop


@dataclass(frozen=True, slots=True)
class Rule:
    """One filter rule; ``None`` fields are wildcards."""

    direction: Direction
    action: Action
    port_min: Optional[int] = None
    port_max: Optional[int] = None
    src_host: Optional[str] = None
    dst_host: Optional[str] = None
    comment: str = ""

    def matches(
        self, direction: Direction, src_host: str, dst_host: str, dst_port: int
    ) -> bool:
        if direction is not self.direction:
            return False
        if self.port_min is not None and dst_port < self.port_min:
            return False
        if self.port_max is not None and dst_port > self.port_max:
            return False
        if self.src_host is not None and src_host != self.src_host:
            return False
        if self.dst_host is not None and dst_host != self.dst_host:
            return False
        return True


class Firewall:
    """First-match-wins rule table with per-direction defaults."""

    def __init__(
        self,
        inbound_default: Action = Action.DENY,
        outbound_default: Action = Action.ALLOW,
        name: str = "",
        reject: bool = False,
    ) -> None:
        self.name = name
        self.inbound_default = inbound_default
        self.outbound_default = outbound_default
        #: If True, blocked connects fail fast (TCP RST style) instead
        #: of being dropped silently.  Real deny-based firewalls drop.
        self.reject = reject
        self.rules: list[Rule] = []
        #: Count of filtered (denied) connection attempts, per direction.
        self.denied: dict[Direction, int] = {
            Direction.INBOUND: 0,
            Direction.OUTBOUND: 0,
        }

    # -- construction helpers ------------------------------------------

    @classmethod
    def typical(cls, name: str = "", reject: bool = False) -> "Firewall":
        """The paper's assumed configuration: deny-in, allow-out."""
        return cls(Action.DENY, Action.ALLOW, name=name, reject=reject)

    @classmethod
    def open_everything(cls, name: str = "") -> "Firewall":
        """A firewall that filters nothing (sites without one)."""
        return cls(Action.ALLOW, Action.ALLOW, name=name)

    def allow_everything(self) -> None:
        """Temporarily disable filtering (the §4.2 direct baselines)."""
        self.inbound_default = Action.ALLOW
        self.outbound_default = Action.ALLOW

    def restore_typical(self) -> None:
        self.inbound_default = Action.DENY
        self.outbound_default = Action.ALLOW

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def open_inbound_port(
        self,
        port: int,
        src_host: Optional[str] = None,
        dst_host: Optional[str] = None,
        comment: str = "",
    ) -> None:
        """Open a single inbound port, optionally pinned to one peer.

        This is how the *nxport* is opened: pinned to the outer server
        as source and the inner server as destination, the narrowest
        hole the mechanism needs.
        """
        self.add_rule(
            Rule(
                Direction.INBOUND,
                Action.ALLOW,
                port_min=port,
                port_max=port,
                src_host=src_host,
                dst_host=dst_host,
                comment=comment,
            )
        )

    def open_port_range(self, port_min: int, port_max: int, comment: str = "") -> None:
        """Open an inbound port range (the Globus 1.1 TCP_MIN/MAX_PORT
        workaround the paper argues against)."""
        if port_min > port_max:
            raise ValueError(f"empty port range {port_min}..{port_max}")
        self.add_rule(
            Rule(
                Direction.INBOUND,
                Action.ALLOW,
                port_min=port_min,
                port_max=port_max,
                comment=comment,
            )
        )

    def close_outbound_port(self, port: int, comment: str = "") -> None:
        self.add_rule(
            Rule(
                Direction.OUTBOUND,
                Action.DENY,
                port_min=port,
                port_max=port,
                comment=comment,
            )
        )

    # -- evaluation -------------------------------------------------------

    def evaluate(
        self, direction: Direction, src_host: str, dst_host: str, dst_port: int
    ) -> Action:
        """First matching rule wins; otherwise the direction default."""
        for rule in self.rules:
            if rule.matches(direction, src_host, dst_host, dst_port):
                return rule.action
        return (
            self.inbound_default
            if direction is Direction.INBOUND
            else self.outbound_default
        )

    def permits(
        self, direction: Direction, src_host: str, dst_host: str, dst_port: int
    ) -> bool:
        action = self.evaluate(direction, src_host, dst_host, dst_port)
        if action is Action.DENY:
            self.denied[direction] += 1
            return False
        return True

    def open_inbound_ports(self) -> list[tuple[int, int]]:
        """The inbound holes currently configured — the paper's security
        argument is about keeping this list minimal."""
        spans: list[tuple[int, int]] = []
        for rule in self.rules:
            if rule.direction is Direction.INBOUND and rule.action is Action.ALLOW:
                lo = rule.port_min if rule.port_min is not None else 1
                hi = rule.port_max if rule.port_max is not None else 65535
                spans.append((lo, hi))
        if self.inbound_default is Action.ALLOW:
            spans.append((1, 65535))
        return spans

    def exposure(self) -> int:
        """Number of distinct inbound ports reachable from outside.

        The quantitative handle for the paper's security claim: the
        Nexus Proxy needs exposure 1 (the nxport); the Globus 1.1
        port-range workaround needs one port per concurrent endpoint.
        """
        open_ports: set[int] = set()
        for lo, hi in self.open_inbound_ports():
            open_ports.update(range(lo, hi + 1))
        return len(open_ports)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Firewall {self.name!r} in={self.inbound_default.value} "
            f"out={self.outbound_default.value} rules={len(self.rules)}>"
        )
