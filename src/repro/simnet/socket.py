"""Simulated TCP-style sockets: connect / bind / listen / accept / send / recv.

The transport model is deliberately *application-level*: links are
parameterized by their measured effective bandwidth (what a Nexus-era
TCP actually delivered, e.g. ~6.3 MB/s on 100Base-T), and a message is
carved into MSS-sized segments that pipeline hop-by-hop through the
route.  Endpoint CPU costs (per message and per segment, scaled by the
host's relative CPU speed) are the calibration knobs that make the
simulated Table 2 come out with the paper's shape.

Connection semantics mirror BSD sockets closely enough for the Nexus
Proxy to be implemented on top *unchanged in structure* from the real
asyncio implementation in :mod:`repro.core.aio`:

* ``listen`` binds a port on a host; ``accept`` blocks for a peer.
* ``connect`` performs an SYN/ACK round trip, is refused when nothing
  listens, and — crucially — is **silently dropped** when a deny-based
  firewall filters it, surfacing only as a timeout
  (:class:`~repro.simnet.firewall.FirewallBlocked` with
  ``silent_drop=True``).  That asymmetry (refused vs. dropped) is the
  user-visible difference the paper's mechanism exists to remove.
* ``send`` is message-oriented (Nexus messages, not a byte stream) but
  sized in bytes; ``recv`` yields whole messages in order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.obs import trace as _trace
from repro.simnet.firewall import Direction, FirewallBlocked
from repro.simnet.kernel import AnyOf, Event, Process, SimError, Simulator
from repro.simnet.link import Link
from repro.simnet.primitives import Channel, ChannelClosed, Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.host import Host
    from repro.simnet.topology import Network

__all__ = [
    "Address",
    "NetConfig",
    "SocketError",
    "ConnectionRefused",
    "ConnectionReset",
    "ConnectTimeout",
    "Message",
    "Connection",
    "ListenSocket",
    "open_connection",
    "wire_size",
]


@dataclass(frozen=True, slots=True)
class Address:
    """A (host, port) endpoint name."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


class SocketError(OSError):
    """Base class for simulated socket failures."""


class ConnectionRefused(SocketError):
    """Active RST: nothing listening at the destination."""


class ConnectionReset(SocketError):
    """The peer closed while an operation was pending."""


class ConnectTimeout(SocketError):
    """connect() gave up waiting (e.g. SYN silently dropped)."""


@dataclass
class NetConfig:
    """Transport tuning knobs, shared by a whole :class:`Network`.

    Defaults are the values calibrated against Table 2 (see
    ``repro.bench.calibrate``); time units are seconds.
    """

    #: Maximum segment size: relay chunks and pipelining granularity.
    mss: int = 4096
    #: How long connect() waits before declaring a silent drop.
    connect_timeout: float = 30.0
    #: Handshake CPU cost at each endpoint (added to the RTT).
    connect_overhead: float = 50e-6
    #: Sender CPU per message (buffer setup, header build).
    send_overhead: float = 100e-6
    #: Sender CPU per segment (syscall + copy), scaled by CPU speed.
    per_segment_cpu: float = 25e-6
    #: Receiver CPU per message (dispatch to the waiting thread).
    recv_overhead: float = 100e-6
    #: Segments in flight per connection direction (window).
    window_segments: int = 64
    #: One-way latency for host-local (loopback) connections.
    local_latency: float = 15e-6
    #: Wire size assumed for payloads with no natural length.
    default_msg_bytes: int = 64

    def validate(self) -> None:
        if self.mss <= 0:
            raise SimError("mss must be positive")
        if self.window_segments <= 0:
            raise SimError("window must be positive")
        for name in (
            "connect_timeout",
            "connect_overhead",
            "send_overhead",
            "per_segment_cpu",
            "recv_overhead",
            "local_latency",
        ):
            if getattr(self, name) < 0:
                raise SimError(f"{name} must be non-negative")


def wire_size(payload: Any, default: int = 64) -> int:
    """Bytes a payload occupies on the simulated wire.

    Bytes-like and sized payloads use their length; anything else falls
    back to ``default``.  Protocol layers that know better pass an
    explicit ``nbytes`` to :meth:`Connection.send`.
    """
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return max(1, len(payload))
    try:
        return max(1, len(payload))  # type: ignore[arg-type]
    except TypeError:
        return default


@dataclass(frozen=True, slots=True)
class Message:
    """One delivered application message."""

    payload: Any
    nbytes: int
    msgid: int
    sent_at: float
    delivered_at: float
    #: Optional causal trace context (wire form), sniffed from tagged
    #: payloads; ``None`` whenever causal tracing is off.
    tctx: Optional[str] = None

    @property
    def transit_time(self) -> float:
        return self.delivered_at - self.sent_at


_msgid_counter = itertools.count(1)


class Connection:
    """One end of an established simulated TCP connection."""

    def __init__(
        self,
        network: "Network",
        local: "Host",
        remote: "Host",
        local_addr: Address,
        remote_addr: Address,
        tx_path: list[Link],
    ) -> None:
        self.network = network
        self.sim: Simulator = network.sim
        self.local = local
        self.remote = remote
        self.local_addr = local_addr
        self.remote_addr = remote_addr
        #: Oriented links this end transmits over (may be empty: loopback).
        self.tx_path = tx_path
        self.peer: Optional["Connection"] = None
        self._rx: Channel[Message] = Channel(self.sim)
        self._send_lock = Resource(self.sim, capacity=1)
        self._window = Resource(self.sim, capacity=network.config.window_segments)
        self._reassembly: dict[int, int] = {}
        self.closed = False
        #: Counters for the harness.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0

    # -- sending -----------------------------------------------------------

    def send(self, payload: Any, nbytes: Optional[int] = None) -> Process:
        """Transmit one message; the returned process event fires when
        the sender-side work (CPU + hand-off to the first link) is done.

        ``nbytes`` is the simulated wire size; when omitted it is
        inferred via :func:`wire_size`.
        """
        if self.closed:
            raise ConnectionReset(f"send on closed connection to {self.remote_addr}")
        if nbytes is None:
            nbytes = wire_size(payload, self.network.config.default_msg_bytes)
        if nbytes <= 0:
            raise SocketError(f"message size must be positive, got {nbytes}")
        return self.sim.process(
            self._send_proc(payload, nbytes), name=f"send->{self.remote_addr}"
        )

    def _send_proc(self, payload: Any, nbytes: int) -> Iterator[Event]:
        cfg = self.network.config
        sim = self.sim
        msgid = next(_msgid_counter)
        sent_at = sim.now
        tctx = None
        if _trace.ENABLED:
            tctx = getattr(payload, "tctx", None)
        nsegs = max(1, -(-nbytes // cfg.mss))
        # Serialize sender-side work between back-to-back sends.
        yield self._send_lock.request()
        try:
            oh = cfg.send_overhead / self.local.cpu_speed
            if oh > 0:
                yield sim.timeout(oh)
            seg_cpu = cfg.per_segment_cpu / self.local.cpu_speed
            remaining = nbytes
            for index in range(nsegs):
                seg_bytes = min(cfg.mss, remaining)
                remaining -= seg_bytes
                # Per-segment CPU is paid inline so it overlaps the
                # previous segment's time on the wire (copy/syscall
                # pipelining); it only shows up end-to-end for small
                # messages, which is what Table 2 exhibits.
                if seg_cpu > 0:
                    yield sim.timeout(seg_cpu)
                yield self._window.request()
                last = index == nsegs - 1
                sim.process(
                    self._segment_walk(
                        msgid, nsegs, seg_bytes, payload if last else None,
                        nbytes, sent_at, tctx,
                    ),
                    name=f"seg:{msgid}:{index}",
                )
        finally:
            self._send_lock.release()
        self.bytes_sent += nbytes
        self.messages_sent += 1

    def _segment_walk(
        self,
        msgid: int,
        nsegs: int,
        seg_bytes: int,
        payload: Any,
        total_bytes: int,
        sent_at: float,
        tctx: Optional[str] = None,
    ) -> Iterator[Event]:
        sim = self.sim
        cfg = self.network.config
        try:
            if self.tx_path:
                for link in self.tx_path:
                    yield from link.transmit(seg_bytes)
            else:
                yield sim.timeout(cfg.local_latency)
        finally:
            self._window.release()
        peer = self.peer
        if peer is None or peer.closed:
            return  # receiver went away; bytes fall on the floor
        outstanding = peer._reassembly.get(msgid, nsegs) - 1
        if outstanding > 0:
            peer._reassembly[msgid] = outstanding
            return
        peer._reassembly.pop(msgid, None)
        # Last segment of the message: pay receiver dispatch cost.
        rcpu = cfg.recv_overhead / peer.local.cpu_speed
        if rcpu > 0:
            yield sim.timeout(rcpu)
        msg = Message(
            payload=payload,
            nbytes=total_bytes,
            msgid=msgid,
            sent_at=sent_at,
            delivered_at=sim.now,
            tctx=tctx,
        )
        peer.bytes_received += total_bytes
        peer.messages_received += 1
        if not peer._rx.try_put(msg):
            return  # closed in the recv-CPU window
        tracer = self.network.tracer
        if tracer.is_enabled("msg.deliver"):
            tracer.emit(
                sim.now,
                "msg.deliver",
                src=str(self.local_addr),
                dst=str(self.remote_addr),
                nbytes=total_bytes,
                transit=sim.now - sent_at,
            )

    # -- receiving --------------------------------------------------------

    def recv(self, timeout: Optional[float] = None) -> Event:
        """Event firing with the next :class:`Message`.

        With ``timeout`` the event fails with :class:`ConnectTimeout`
        if nothing arrives in time.  A closed/reset connection fails
        the event with :class:`ConnectionReset`.
        """
        get = self._rx.get()
        if timeout is None:
            return self._wrap_recv(get)
        return self._wrap_recv_timeout(get, timeout)

    def _wrap_recv(self, get: Event) -> Event:
        out = Event(self.sim)

        def on_done(ev: Event) -> None:
            if out.triggered:
                return
            if ev.ok:
                out.succeed(ev.value)
            else:
                ev.defuse()
                out.fail(ConnectionReset(f"connection to {self.remote_addr} closed"))

        if get.callbacks is None:
            on_done(get)
        else:
            get.callbacks.append(on_done)
        return out

    def _wrap_recv_timeout(self, get: Event, timeout: float) -> Event:
        out = Event(self.sim)
        timer = self.sim.timeout(timeout)

        def on_get(ev: Event) -> None:
            if out.triggered:
                # Timed out already: hand the message back so the next
                # recv sees it (no silent loss on a lost race).
                if ev.ok:
                    self._rx.requeue_front(ev.value)
                else:
                    ev.defuse()
                return
            if ev.ok:
                out.succeed(ev.value)
            else:
                ev.defuse()
                out.fail(ConnectionReset(f"connection to {self.remote_addr} closed"))

        def on_timer(_: Event) -> None:
            if out.triggered:
                return
            out.fail(ConnectTimeout(f"recv timed out after {timeout}s"))

        get.callbacks.append(on_get)
        assert timer.callbacks is not None
        timer.callbacks.append(on_timer)
        return out

    def try_recv(self) -> Optional[Message]:
        """Non-blocking receive."""
        ok, msg = self._rx.try_get()
        return msg if ok else None

    @property
    def rx_pending(self) -> int:
        return len(self._rx)

    # -- teardown -----------------------------------------------------------

    def close(self) -> None:
        """Close this end; a FIN travels the path *behind* queued data.

        Data from sends that were yielded (awaited) before the close is
        delivered before the peer observes the reset — the FIN is an
        ordinary frame subject to the same link FIFO ordering.
        """
        if self.closed:
            return
        self.closed = True
        self._rx.close()
        peer = self.peer
        if peer is None or peer.closed:
            return
        sim = self.sim
        cfg = self.network.config

        def _fin() -> Iterator[Event]:
            if self.tx_path:
                for link in self.tx_path:
                    yield from link.transmit(1)
            else:
                yield sim.timeout(cfg.local_latency)
            # FIN processing costs the same receiver dispatch as data,
            # keeping it strictly behind the last delivered message.
            rcpu = cfg.recv_overhead / peer.local.cpu_speed
            if rcpu > 0:
                yield sim.timeout(rcpu)
            if not peer.closed:
                # Full close, not a half-close: once the FIN arrives the
                # peer's sends fail too (so daemons notice dead peers).
                peer.closed = True
                peer._rx.close()

        sim.process(_fin(), name=f"fin->{self.remote_addr}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<Connection {self.local_addr} -> {self.remote_addr} {state}>"


class ListenSocket:
    """A bound, listening port on a host."""

    def __init__(self, host: "Host", port: int, backlog: int = 128) -> None:
        self.host = host
        self.port = port
        self.sim = host.sim
        self._backlog: Channel[Connection] = Channel(self.sim, capacity=backlog)
        self.closed = False

    @property
    def addr(self) -> Address:
        return Address(self.host.name, self.port)

    def accept(self, timeout: Optional[float] = None) -> Event:
        """Event firing with the next established :class:`Connection`."""
        if self.closed:
            ev = Event(self.sim)
            ev.fail(SocketError(f"accept on closed listener {self.addr}"))
            return ev
        get = self._backlog.get()
        if timeout is None:
            out = Event(self.sim)

            def on_done(ev: Event) -> None:
                if ev.ok:
                    out.succeed(ev.value)
                else:
                    ev.defuse()
                    out.fail(SocketError(f"listener {self.addr} closed"))

            if get.callbacks is None:
                on_done(get)
            else:
                get.callbacks.append(on_done)
            return out
        out = Event(self.sim)
        timer = self.sim.timeout(timeout)

        def on_get(ev: Event) -> None:
            if out.triggered:
                if ev.ok:
                    # Timed out: put the pending connection back.
                    self._backlog.requeue_front(ev.value)
                else:
                    ev.defuse()
                return
            if ev.ok:
                out.succeed(ev.value)
            else:
                ev.defuse()
                out.fail(SocketError(f"listener {self.addr} closed"))

        def on_timer(_: Event) -> None:
            if not out.triggered:
                out.fail(ConnectTimeout(f"accept timed out after {timeout}s"))

        get.callbacks.append(on_get)
        assert timer.callbacks is not None
        timer.callbacks.append(on_timer)
        return out

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._backlog.close()
        self.host._unbind(self.port, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ListenSocket {self.addr} {'closed' if self.closed else 'open'}>"


def open_connection(
    network: "Network",
    src: "Host",
    dst_addr: Address,
    timeout: Optional[float] = None,
) -> Iterator[Event]:
    """Generator implementing the client side of ``connect``.

    Use as ``conn = yield from host.connect(addr)``.

    The sequence models a real three-way handshake over the routed
    path, with the firewall consulted where the SYN crosses each site
    boundary.  A deny-based firewall *drops*: the caller burns the full
    connect timeout before seeing :class:`FirewallBlocked`.
    """
    sim = network.sim
    cfg = network.config
    tracer = network.tracer
    if timeout is None:
        timeout = cfg.connect_timeout

    dst = network.hosts.get(dst_addr.host)
    if dst is None:
        raise SocketError(f"no such host: {dst_addr.host!r}")

    verdict = network.filter_connection(src, dst, dst_addr.port)
    if verdict is not None:
        # Filtered. Reject-mode firewalls answer immediately (one RTT);
        # drop-mode firewalls say nothing and we time out.
        if tracer.is_enabled("connect.blocked"):
            tracer.emit(
                sim.now,
                "connect.blocked",
                src=src.name,
                dst=str(dst_addr),
                firewall=verdict.name,
                silent=not verdict.reject,
            )
        if verdict.reject:
            yield sim.timeout(network.rtt_between(src, dst))
            raise FirewallBlocked(
                f"{src.name} -> {dst_addr}: rejected by firewall {verdict.name!r}",
                silent_drop=False,
            )
        yield sim.timeout(timeout)
        raise FirewallBlocked(
            f"{src.name} -> {dst_addr}: SYN dropped by firewall "
            f"{verdict.name!r} (timed out after {timeout}s)",
            silent_drop=True,
        )

    path = network.path_links(src, dst)
    one_way = sum(l.latency for l in path) if path else cfg.local_latency
    # SYN travels to the destination...
    yield sim.timeout(one_way)
    if dst.crashed:
        # A dead host answers nothing: burn the rest of the timeout.
        yield sim.timeout(max(0.0, timeout - one_way))
        raise ConnectTimeout(
            f"{dst_addr}: host is down (connect timed out after {timeout}s)"
        )
    listener = dst._ports.get(dst_addr.port)
    if listener is None or listener.closed:
        # RST comes back.
        yield sim.timeout(one_way)
        raise ConnectionRefused(f"{dst_addr}: connection refused")
    # SYN/ACK returns; handshake CPU at both ends.
    yield sim.timeout(one_way + 2 * cfg.connect_overhead)

    local_port = src._ephemeral_port()
    client = Connection(
        network,
        local=src,
        remote=dst,
        local_addr=Address(src.name, local_port),
        remote_addr=dst_addr,
        tx_path=path,
    )
    server = Connection(
        network,
        local=dst,
        remote=src,
        local_addr=dst_addr,
        remote_addr=Address(src.name, local_port),
        tx_path=network.path_links(dst, src),
    )
    client.peer = server
    server.peer = client
    for endpoint_host, conn in ((src, client), (dst, server)):
        endpoint_host.connections.append(conn)
        if len(endpoint_host.connections) > 256:
            # Amortized pruning keeps long simulations bounded.
            endpoint_host.connections = [
                c for c in endpoint_host.connections if not c.closed
            ]
    if not listener._backlog.try_put(server):
        client.closed = True
        server.closed = True
        raise ConnectionRefused(f"{dst_addr}: backlog full")
    if tracer.is_enabled("connect"):
        tracer.emit(
            sim.now, "connect", src=str(client.local_addr), dst=str(dst_addr)
        )
    return client
