"""Event tracing for simulated runs.

A :class:`Tracer` collects ``(time, category, fields)`` records.  It is
disabled by default; experiments that need packet- or connection-level
detail (e.g. the relay ablations) enable the categories they care
about.  Keeping this in one place means benchmarks never reach into
simulator internals to observe behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    category: str
    fields: dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer:
    """Category-filtered trace sink.

    ``enable("connect", "deliver")`` turns on those categories;
    ``enable_all()`` records everything.  ``emit`` is a no-op for
    disabled categories, so tracing costs nothing when off.
    """

    def __init__(self) -> None:
        self._enabled: set[str] = set()
        self._all = False
        self.records: list[TraceRecord] = []

    def enable(self, *categories: str) -> None:
        self._enabled.update(categories)

    def enable_all(self) -> None:
        self._all = True

    def disable(self, *categories: str) -> None:
        for c in categories:
            self._enabled.discard(c)

    def is_enabled(self, category: str) -> bool:
        return self._all or category in self._enabled

    def emit(self, time: float, category: str, **fields: Any) -> None:
        if self._all or category in self._enabled:
            self.records.append(TraceRecord(time, category, fields))

    def of(self, category: str) -> Iterator[TraceRecord]:
        """Iterate records of one category, in time order."""
        return (r for r in self.records if r.category == category)

    def count(self, category: str) -> int:
        return sum(1 for _ in self.of(category))

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)
