"""Event tracing for simulated runs.

A :class:`Tracer` collects ``(time, category, fields)`` records.  It is
disabled by default; experiments that need packet- or connection-level
detail (e.g. the relay ablations) enable the categories they care
about.  Keeping this in one place means benchmarks never reach into
simulator internals to observe behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    category: str
    fields: dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer:
    """Category-filtered trace sink.

    ``enable("connect", "deliver")`` turns on those categories;
    ``enable_all()`` records everything.  ``emit`` is a no-op for
    disabled categories, so tracing costs nothing when off.

    Queries (:meth:`of` / :meth:`count`) run off a per-category index,
    so the repeated per-category lookups in the relay ablations cost
    O(matches), not O(all records).  ``records`` stays the public
    chronological list; code that appends to it directly is still
    supported — the index detects the drift and rebuilds.
    """

    def __init__(self) -> None:
        self._enabled: set[str] = set()
        self._all = False
        self.records: list[TraceRecord] = []
        self._by_cat: dict[str, list[TraceRecord]] = {}
        self._indexed = 0  # records covered by the index

    def _index(self) -> "dict[str, list[TraceRecord]]":
        if self._indexed != len(self.records):
            # Someone touched .records directly; rebuild from scratch.
            self._by_cat = {}
            for r in self.records:
                self._by_cat.setdefault(r.category, []).append(r)
            self._indexed = len(self.records)
        return self._by_cat

    def enable(self, *categories: str) -> None:
        self._enabled.update(categories)

    def enable_all(self) -> None:
        self._all = True

    def disable(self, *categories: str) -> None:
        for c in categories:
            self._enabled.discard(c)

    def is_enabled(self, category: str) -> bool:
        return self._all or category in self._enabled

    def emit(self, time: float, category: str, **fields: Any) -> None:
        if self._all or category in self._enabled:
            record = TraceRecord(time, category, fields)
            if self._indexed == len(self.records):
                self._by_cat.setdefault(category, []).append(record)
                self._indexed += 1
            self.records.append(record)

    def of(self, category: str) -> Iterator[TraceRecord]:
        """Iterate records of one category, in time order."""
        return iter(self._index().get(category, ()))

    def count(self, category: str) -> int:
        return len(self._index().get(category, ()))

    def to_obs(self, recorder: Any, track: str = "simnet") -> int:
        """Bridge every record into the new event model as sim-domain
        instants on ``recorder`` (an
        :class:`repro.obs.spans.ObsRecorder`); returns how many."""
        for r in self.records:
            recorder.sim_instant(r.category, r.category, r.time, track,
                                 **r.fields)
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()
        self._by_cat.clear()
        self._indexed = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)
