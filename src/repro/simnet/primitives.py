"""Synchronization primitives built on the DES kernel.

These are the concurrency vocabulary of every simulated subsystem:

* :class:`Channel` — an ordered message queue with blocking ``get`` and
  (optionally capacity-bounded) ``put``; the backbone of simulated
  sockets and job queues.
* :class:`Resource` — a FIFO counting resource; models link
  serialization and CPU cores.
* :class:`Gate` — a level-triggered condition ("open"/"closed") that
  any number of processes can wait on.

All operations return :class:`~repro.simnet.kernel.Event` objects to be
yielded from process generators, mirroring the kernel's style.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generic, Optional, TypeVar

from repro.simnet.kernel import Event, SimError, Simulator

__all__ = ["Channel", "ChannelClosed", "Resource", "Gate"]

T = TypeVar("T")


class ChannelClosed(Exception):
    """Raised from a pending/future ``get`` when the channel is closed."""


class Channel(Generic[T]):
    """FIFO message queue between simulated processes.

    ``capacity=None`` means unbounded (puts never block); otherwise a
    ``put`` blocks while the queue holds ``capacity`` items.  ``close``
    fails all pending getters and makes future gets fail; items already
    queued are still delivered before the closure is observed
    (TCP-like: queued data survives a FIN).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise SimError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, T]] = deque()
        self._closed = False

    # -- state ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._items)

    def peek(self) -> T:
        """Look at the next item without removing it."""
        if not self._items:
            raise SimError("peek at empty channel")
        return self._items[0]

    # -- operations ---------------------------------------------------------

    def put(self, item: T) -> Event:
        """Enqueue ``item``; the returned event fires once it is accepted."""
        ev = Event(self.sim)
        if self._closed:
            ev.fail(ChannelClosed("put on closed channel"))
            return ev
        if self._getters:
            # Direct hand-off to the longest-waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: T) -> bool:
        """Non-blocking put; returns False when full or closed."""
        if self._closed:
            return False
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def get(self) -> Event:
        """Dequeue; the returned event fires with the item."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
            self._refill()
        elif self._closed:
            ev.fail(ChannelClosed("get on closed channel"))
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Optional[T]]:
        """Non-blocking get; ``(False, None)`` when empty."""
        if self._items:
            item = self._items.popleft()
            self._refill()
            return True, item
        return False, None

    def requeue_front(self, item: T) -> None:
        """Push ``item`` back at the *front* of the queue.

        Used by timed receives that lost the race: the message they
        consumed from the queue is put back so the next reader sees it
        in order.  If a getter is already waiting it gets the item
        immediately.
        """
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.appendleft(item)

    def _refill(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            pev, item = self._putters.popleft()
            self._items.append(item)
            pev.succeed()

    def close(self) -> None:
        """Close the channel; idempotent."""
        if self._closed:
            return
        self._closed = True
        while self._getters:
            self._getters.popleft().fail(ChannelClosed("channel closed"))
        while self._putters:
            pev, _ = self._putters.popleft()
            pev.fail(ChannelClosed("channel closed"))


class Resource:
    """FIFO counting resource (semaphore with fair queuing).

    ``request()`` returns an event that fires when a slot is granted;
    the holder must call ``release()`` exactly once per grant.  FIFO
    granting is load-bearing: it keeps link transmissions in order.
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimError("release without a matching request")
        if self._waiters:
            # Hand the slot straight to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def use(self, duration: float):
        """Generator helper: hold one slot for ``duration`` seconds."""
        yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class Gate:
    """A reusable open/closed condition.

    ``wait()`` returns an event that fires as soon as the gate is (or
    becomes) open.  Used for flow-control pause/resume in the relay.
    """

    def __init__(self, sim: Simulator, open: bool = True) -> None:
        self.sim = sim
        self._open = open
        self._waiters: list[Event] = []

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self) -> None:
        self._open = True
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed()

    def close(self) -> None:
        self._open = False

    def wait(self) -> Event:
        ev = Event(self.sim)
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev
