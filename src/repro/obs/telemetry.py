"""Live telemetry plane: Prometheus-style text exposition over HTTP.

The relay daemons accumulate everything interesting in a
:class:`~repro.obs.metrics.MetricsRegistry` (their stats objects are
registered as collectors); this module puts that registry on the wire
while the daemon runs, instead of only at exit:

* :func:`render_prometheus` — flatten one registry snapshot into the
  Prometheus text exposition format (v0.0.4), entirely from the
  snapshot's plain-data shapes: ints become counters, floats gauges,
  str→int dicts labelled counter families, and ``{"<=N": n}`` dicts
  cumulative ``_bucket{le=...}`` series.
* :class:`TelemetryServer` — a dependency-free asyncio HTTP listener
  serving ``GET /metrics`` (text exposition) and ``GET /metrics.json``
  (the raw snapshot, which ``repro-obs tail`` streams).

The server reads the registry only inside the event loop the daemon
already runs on, so no locking is needed and scrapes can never tear a
snapshot.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Any, Callable, Optional

__all__ = [
    "TELEMETRY_FORMAT_TAG",
    "TELEMETRY_SCHEMA_VERSION",
    "render_prometheus",
    "TelemetryServer",
]

#: Stamped into the ``format`` key of every ``/metrics.json`` body.
TELEMETRY_FORMAT_TAG = "repro-obs-telemetry-v1"

#: Payload shape version.  v2 added ``schema_version`` itself plus the
#: emit-time ``git_sha``/``dirty`` provenance pair, so artifacts
#: assembled from a mixed-version fleet are detectable (the aggregator
#: compares these across workers).
TELEMETRY_SCHEMA_VERSION = 2


def _sanitize(name: str) -> str:
    """Prometheus metric names: ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out or "_"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _is_hist_dict(value: "dict[str, Any]") -> bool:
    return bool(value) and all(
        isinstance(k, str) and k.startswith("<=") for k in value
    )


def _render_one(name: str, value: Any, lines: "list[str]") -> None:
    if isinstance(value, bool):
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {int(value)}")
    elif isinstance(value, int):
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {value}")
    elif isinstance(value, float):
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {value}")
    elif isinstance(value, dict):
        if _is_hist_dict(value):
            # Log2-bucketed histogram → cumulative le-labelled buckets.
            lines.append(f"# TYPE {name} histogram")
            bounds: list[tuple[int, int]] = []
            for k, v in value.items():
                try:
                    bounds.append((int(k[2:]), int(v)))
                except (ValueError, TypeError):
                    continue
            bounds.sort()
            cum = 0
            for upper, count in bounds:
                cum += count
                lines.append(f'{name}_bucket{{le="{upper}"}} {cum}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {cum}')
            lines.append(f"{name}_count {cum}")
        elif value and all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in value.values()
        ):
            # Keyed counter family → one labelled series.
            lines.append(f"# TYPE {name} counter")
            for k in sorted(value):
                lines.append(f'{name}{{key="{_escape_label(str(k))}"}} {value[k]}')
        else:
            # Nested collector snapshot: recurse with a joined name.
            for k in sorted(value):
                _render_one(f"{name}_{_sanitize(str(k))}", value[k], lines)
    # Strings and other leaves have no numeric exposition.


def render_prometheus(
    snapshot: "dict[str, Any]", prefix: str = "repro"
) -> str:
    """Flatten a registry snapshot into Prometheus text exposition."""
    lines: list[str] = []
    for key in sorted(snapshot):
        _render_one(f"{prefix}_{_sanitize(str(key))}", snapshot[key], lines)
    return "\n".join(lines) + "\n"


class TelemetryServer:
    """Minimal asyncio HTTP/1.0 endpoint over a live registry.

    ``snapshot_fn`` is called per scrape (on the daemon's own event
    loop) and must return the registry snapshot dict.  ``extra`` is
    merged into the ``/metrics.json`` body — daemons put their identity
    (role, bound ports) there so ``repro-obs tail`` output is
    self-describing.  ``extra_fn``, if given, is called per scrape and
    its dict merged likewise (live payload extensions: the time-series
    document, aggregator health).  ``routes`` maps extra GET paths to
    zero-arg callables returning ``(content_type, body)`` — the SLO
    engine mounts ``/alerts`` this way.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], "dict[str, Any]"],
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "repro",
        extra: "Optional[dict[str, Any]]" = None,
        extra_fn: "Optional[Callable[[], dict[str, Any]]]" = None,
        routes: "Optional[dict[str, Callable[[], tuple[str, str]]]]" = None,
    ) -> None:
        self.snapshot_fn = snapshot_fn
        self.host = host
        self.port = port
        self.prefix = prefix
        self.extra = dict(extra) if extra else {}
        self.extra_fn = extra_fn
        self.routes = dict(routes) if routes else {}
        self.scrapes = 0
        self._git_sha: Optional[str] = None
        self._git_dirty: Optional[bool] = None
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def bound_port(self) -> int:
        if self._server is None:
            raise RuntimeError("telemetry server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "TelemetryServer":
        # Resolve provenance once at bind time (it forks git): the
        # serving process can't change revision underneath itself, and
        # scrapes must never block on a subprocess.
        from repro.bench.results import git_dirty, git_revision

        self._git_sha = git_revision()
        self._git_dirty = git_dirty()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self.bound_port
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = request.decode("latin-1").split()
            # Drain headers; HTTP/1.0 semantics, one request per connection.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            if len(parts) < 2 or parts[0] != "GET":
                await self._respond(writer, 405, "text/plain",
                                    "only GET is supported\n")
                return
            path = parts[1].split("?", 1)[0]
            self.scrapes += 1
            # Mounted routes win over the builtins, so an aggregator
            # can replace /metrics with a per-worker-labelled renderer.
            if path in self.routes:
                ctype, body = self.routes[path]()
                await self._respond(writer, 200, ctype, body)
            elif path == "/metrics":
                body = render_prometheus(self.snapshot_fn(), self.prefix)
                await self._respond(
                    writer, 200, "text/plain; version=0.0.4", body
                )
            elif path == "/metrics.json":
                payload: dict[str, Any] = {
                    "format": TELEMETRY_FORMAT_TAG,
                    "schema_version": TELEMETRY_SCHEMA_VERSION,
                    "git_sha": self._git_sha,
                    "dirty": self._git_dirty,
                    "scrapes": self.scrapes,
                    "registry": self.snapshot_fn(),
                }
                payload.update(self.extra)
                if self.extra_fn is not None:
                    payload.update(self.extra_fn())
                await self._respond(
                    writer, 200, "application/json",
                    json.dumps(payload, sort_keys=True) + "\n",
                )
            else:
                await self._respond(writer, 404, "text/plain",
                                    "try /metrics or /metrics.json\n")
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, ctype: str, body: str
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}.get(
            status, "Error"
        )
        data = body.encode()
        head = (
            f"HTTP/1.0 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()
