"""Cross-process causal trace contexts.

A :class:`TraceContext` names one node of a causal tree that can span
N processes: the simulated driver, the asyncio relay daemons, and any
subprocess in between.  It is minted at an *origin* (a knapsack driver
operation, an RMF ``submit``, an ``NXProxyConnect``), carried in-band
as an optional field on existing wire messages (JSON control lines,
NXMUX/1 OPEN payloads, MPI envelopes, simnet messages), and stamped
into span ``args`` wherever the hop is recorded — which is what lets
``repro-obs assemble`` stitch per-process Chrome traces into one tree
with flow events connecting the hops.

Determinism contract
--------------------

Causal tracing has its own switch (:func:`enable`/:func:`disable`),
separate from the span recorder, and is **off by default**.  When off,
:func:`mint` returns ``None`` and :func:`span_args` returns ``{}``, so
instrumented code emits byte-identical spans to a build that has never
heard of trace contexts — extending PR 3's byte-stability guarantee.
When on, ids come from plain per-process counters (no randomness, no
wall clock), prefixed with a per-process *site* label so ids minted by
different processes never collide: a rerun of the same program mints
the same ids in the same order.

The sim plane (one thread, interleaved generator processes) must
thread contexts *explicitly* through message fields — an ambient
variable would leak between simulated ranks.  The asyncio plane is
task-per-connection, where ambient context is safe; :func:`current`
/ :func:`set_current` wrap a :mod:`contextvars` variable for it.
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass
from typing import Any, Optional

__all__ = [
    "TraceContext",
    "ENABLED",
    "enable",
    "disable",
    "site",
    "mint",
    "child",
    "accept",
    "span_args",
    "wire_args",
    "current",
    "set_current",
]


@dataclass(frozen=True, slots=True)
class TraceContext:
    """One node of a causal tree.

    ``trace_id`` names the tree (shared by every hop of one logical
    operation); ``span_id`` names this hop; ``parent_id`` is the hop
    that caused it (``None`` at the origin).  ``flags`` is reserved
    for sampling decisions (bit 0 = sampled).
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    flags: int = 1

    def to_wire(self) -> str:
        """Compact wire form: ``trace_id/span_id/flags``."""
        return f"{self.trace_id}/{self.span_id}/{self.flags:x}"

    @staticmethod
    def from_wire(wire: Any) -> "Optional[TraceContext]":
        """Parse a wire form; tolerant — anything malformed is ``None``
        (an untagged seed peer must never crash a tagging one)."""
        if not isinstance(wire, str):
            return None
        parts = wire.split("/")
        if len(parts) != 3 or not parts[0] or not parts[1]:
            return None
        try:
            flags = int(parts[2], 16)
        except ValueError:
            return None
        return TraceContext(parts[0], parts[1], None, flags)


#: Whether causal tracing is on for this process.  Off by default:
#: the byte-stability tests compare traces recorded with this off.
ENABLED = False

_SITE = ""
_trace_seq = 0
_span_seq = 0

#: Ambient context for the asyncio plane (task-scoped; never used by
#: the sim plane, which threads contexts through message fields).
_CURRENT: "contextvars.ContextVar[Optional[TraceContext]]" = contextvars.ContextVar(
    "repro_obs_trace_current", default=None
)


def enable(site_label: str = "") -> None:
    """Turn causal tracing on; ``site_label`` prefixes every id this
    process mints (daemons pass ``--trace-site outer`` etc.) so ids
    from different processes never collide in an assembled trace."""
    global ENABLED, _SITE, _trace_seq, _span_seq
    ENABLED = True
    _SITE = site_label
    _trace_seq = 0
    _span_seq = 0
    _CURRENT.set(None)


def disable() -> None:
    global ENABLED, _SITE, _trace_seq, _span_seq
    ENABLED = False
    _SITE = ""
    _trace_seq = 0
    _span_seq = 0
    _CURRENT.set(None)


def site() -> str:
    return _SITE


def _next_span_id() -> str:
    global _span_seq
    _span_seq += 1
    return f"{_SITE}s{_span_seq:x}"


def mint(origin: str = "op") -> Optional[TraceContext]:
    """New root context, or ``None`` when tracing is off.  ``origin``
    becomes part of the trace id, so assembled traces read
    ``submit-1``, ``connect-3`` instead of opaque hashes."""
    global _trace_seq
    if not ENABLED:
        return None
    _trace_seq += 1
    return TraceContext(f"{_SITE}{origin}-{_trace_seq}", _next_span_id())


def child(ctx: Optional[TraceContext]) -> Optional[TraceContext]:
    """A context for work caused by ``ctx`` (same trace, fresh span,
    parented to ``ctx``'s span).  ``None`` propagates."""
    if ctx is None:
        return None
    return TraceContext(ctx.trace_id, _next_span_id(), ctx.span_id, ctx.flags)


def accept(wire: Any) -> Optional[TraceContext]:
    """Adopt a context received off the wire: parse it and allocate
    this process's own span id under it.  Returns ``None`` for
    missing/malformed input (untagged seed peer).  Works even when
    local tracing is off — a tag on the wire means the *origin* opted
    in, and honouring it is what makes the tree complete."""
    parent = TraceContext.from_wire(wire)
    if parent is None:
        return None
    return TraceContext(parent.trace_id, _next_span_id(), parent.span_id,
                        parent.flags)


def span_args(ctx: Optional[TraceContext]) -> "dict[str, Any]":
    """Span ``args`` entries identifying ``ctx``, or ``{}`` for
    ``None`` — the shape every instrumentation point splices in, so a
    disabled run's spans carry exactly the args they did before causal
    tracing existed."""
    if ctx is None:
        return {}
    out: dict[str, Any] = {"trace": ctx.trace_id, "span": ctx.span_id}
    if ctx.parent_id is not None:
        out["parent"] = ctx.parent_id
    return out


def wire_args(wire: Any) -> "dict[str, Any]":
    """Span ``args`` naming the trace a wire-form context belongs to
    (``parent`` = the sender's span) without allocating a span id of
    its own — for repeated events *about* a tagged stream, like
    window stalls.  ``{}`` for missing/malformed input."""
    ctx = TraceContext.from_wire(wire)
    if ctx is None:
        return {}
    return {"trace": ctx.trace_id, "parent": ctx.span_id}


def current() -> Optional[TraceContext]:
    """Ambient context for the asyncio plane (``None`` elsewhere)."""
    return _CURRENT.get()


def set_current(ctx: Optional[TraceContext]) -> None:
    _CURRENT.set(ctx)
