"""Rendering for ``repro-obs top`` — a live fleet dashboard.

Everything here is a pure function from plain data (the aggregated
endpoint's ``/metrics.json`` payload and ``/alerts`` document) to a
text frame, so the dashboard is testable without sockets and the CLI
loop in :mod:`repro.obs.cli` stays a thin fetch-render-sleep shell.

Output discipline: plain ASCII, no cursor addressing, no colors —
``--once`` frames must survive pipes, CI logs, and diffing.  The live
loop clears the screen between frames only when stdout is a TTY.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

__all__ = ["render", "sparkline", "fmt_bytes", "fmt_rate"]

#: Ascending intensity ramp for sparklines (ASCII-only on purpose).
_RAMP = " .:-=+*#%@"


def fmt_bytes(n: "Optional[float]") -> str:
    if n is None:
        return "-"
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} TB"


def fmt_rate(n: "Optional[float]") -> str:
    return "-" if n is None else f"{fmt_bytes(n)}/s"


def sparkline(values: "Iterable[float]", width: int = 40) -> str:
    """An ASCII sparkline of ``values``, newest right, scaled to the
    series max (empty series renders as spaces)."""
    vals = [max(0.0, float(v)) for v in values][-width:]
    if not vals:
        return " " * width
    top = max(vals)
    if top <= 0:
        return ("." * len(vals)).rjust(width)
    chars = []
    for v in vals:
        idx = int(v / top * (len(_RAMP) - 1) + 0.5)
        chars.append(_RAMP[idx])
    return "".join(chars).rjust(width)


def _worker_rows(payload: "dict[str, Any]") -> "list[dict[str, Any]]":
    agg = payload.get("aggregate", {})
    fleet_workers = agg.get("fleet", {}).get("workers", {})
    agg_workers = agg.get("workers", {})
    rollup_scalars = payload.get("rollup", {}).get("scalars", {})
    rows = []
    for wid in sorted(set(fleet_workers) | set(agg_workers)):
        fw = fleet_workers.get(wid, {})
        aw = agg_workers.get(wid, {})
        rate_entry = rollup_scalars.get(
            f"workers.{wid}.relay.bytes_relayed", {}
        )
        rows.append({
            "id": wid,
            "state": fw.get("state", "?"),
            "chains": fw.get("active_chains"),
            "bytes": fw.get("bytes_relayed"),
            "rate": rate_entry.get("rate", fw.get("byte_rate")),
            "heartbeats": fw.get("heartbeats"),
            "stale": bool(aw.get("stale")) or not aw.get("scraped", True),
            "age_s": aw.get("age_s"),
        })
    return rows


def _alerts_lines(alerts: "Optional[dict[str, Any]]") -> "list[str]":
    if not alerts:
        return ["alerts: (no SLO engine attached)"]
    rules = alerts.get("rules", [])
    active = alerts.get("active", {})
    lines = [
        f"alerts: {len(rules)} rules, {len(active)} firing "
        f"({alerts.get('evaluations', 0)} evaluations)"
    ]
    for rule in rules:
        state = rule.get("state", "?")
        marker = "!!" if state == "firing" else ("~ " if state == "pending" else "ok")
        value = rule.get("value")
        shown = "-" if value is None else f"{value:g}"
        lines.append(
            f"  [{marker}] {rule.get('name', '?'):<28} "
            f"state={state:<8} value={shown}"
        )
    history = alerts.get("history", [])
    resolved = [a for a in history if a.get("state") == "resolved"]
    for a in resolved[-3:]:
        dur = a.get("duration_s")
        dur_s = "-" if dur is None else f"{dur:.2f}s"
        flag = " BREACHED" if a.get("breached") else ""
        lines.append(
            f"  resolved {a.get('rule', '?')} after {dur_s}{flag}"
        )
    return lines


def render(
    payload: "dict[str, Any]",
    alerts: "Optional[dict[str, Any]]" = None,
    rate_history: "Optional[list[float]]" = None,
    width: int = 78,
) -> str:
    """One dashboard frame from the aggregated payload.

    ``rate_history`` is the caller's own record of recent aggregate
    byte rates (the endpoint serves aggregates, not raw series over
    the wire) — when present it becomes the throughput sparkline.
    """
    agg = payload.get("aggregate", {})
    fleet = agg.get("fleet", {})
    derived = agg.get("derived", {})
    rollup = payload.get("rollup", {})
    lines: list[str] = []

    up = derived.get("workers_up", 0)
    stale = derived.get("workers_stale", 0)
    admin = "ok" if agg.get("admin_ok") else "DOWN"
    lines.append(
        f"repro fleet top  mode={fleet.get('mode', '?')} "
        f"workers={up + stale} up={up} stale={stale} "
        f"admin={admin} rounds={agg.get('rounds', 0)}"
    )
    if derived.get("mixed_versions"):
        lines.append("  WARNING: workers report mixed git revisions")

    total_rate = (
        rollup.get("scalars", {})
        .get("derived.bytes_relayed_total", {})
        .get("rate")
    )
    lines.append(
        f"total: {fmt_bytes(derived.get('bytes_relayed_total'))} relayed, "
        f"{derived.get('active_chains_total', 0)} active chains, "
        f"placed={fleet.get('placed_chains', 0)} "
        f"pending_drains={int(fleet.get('drains_started', 0)) - int(fleet.get('drains_completed', 0))}"
    )
    if rate_history:
        lines.append(
            f"rate:  [{sparkline(rate_history, width=40)}] {fmt_rate(total_rate)}"
        )
    else:
        lines.append(f"rate:  {fmt_rate(total_rate)}")
    lines.append("")

    rows = _worker_rows(payload)
    if rows:
        lines.append(
            f"{'WORKER':<8} {'STATE':<8} {'CHAINS':>6} {'BYTES':>10} "
            f"{'RATE':>12} {'HB':>4}  FRESH"
        )
        for r in rows:
            fresh = "stale" if r["stale"] else (
                "-" if r["age_s"] is None else f"{r['age_s']:.1f}s ago"
            )
            chains = "-" if r["chains"] is None else str(r["chains"])
            hb = "-" if r["heartbeats"] is None else str(r["heartbeats"])
            lines.append(
                f"{r['id']:<8} {r['state']:<8} {chains:>6} "
                f"{fmt_bytes(r['bytes']):>10} {fmt_rate(r['rate']):>12} "
                f"{hb:>4}  {fresh}"
            )
    else:
        lines.append("(no workers discovered yet)")
    lines.append("")
    lines.extend(_alerts_lines(alerts))
    return "\n".join(line[: max(width, 40)] for line in lines) + "\n"
