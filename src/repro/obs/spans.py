"""Span-based tracing with two clock domains.

The instrumentation substrate behind every layer of the system:

* **sim domain** — timestamps are *simulated* seconds read off a DES
  kernel clock.  Spans and instants recorded here are a pure function
  of the simulated program, so a sim-domain trace is byte-stable
  across kernel implementations (``REPRO_SIM_KERNEL=seed|fast``) and
  across host machines — the property the determinism suite hashes.
* **wall domain** — timestamps are host seconds from a monotonic
  clock, relative to recorder creation.  The asyncio relay daemons
  (one real process, real sockets) record here.

Both domains share one event model (:class:`SpanEvent`) and one export
path (:mod:`repro.obs.export`: JSON summary + Chrome ``trace_event``
JSON loadable in Perfetto / ``chrome://tracing``).

Zero cost when disabled
-----------------------

Instrumented code guards every emission with the module-global
:data:`RECORDER`::

    rec = spans.RECORDER
    if rec is not None:
        rec.sim_instant("steal", "serve", sim.now, ...)

so a disabled run pays one attribute load and one ``is None`` branch
per *instrumentation point* (which sit at communication boundaries,
never inside the kernel or branch hot loops).  The overhead test in
``tests/obs/test_clock_domains.py`` holds this under 3% on a Table 4
row.  :class:`NullRecorder` takes the enabled branch but records
nothing — it exists to measure exactly that guard + dispatch cost.

Byte-stability rule for instrumenters: only record sim-domain events
at points where the seed and fast engines are lockstep-equivalent
(communication boundaries, job state transitions, chain lifecycle) —
never per-branch-batch inside a fused compute region.
"""

from __future__ import annotations

import contextlib
import time
from typing import Any, Iterator, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SpanEvent",
    "ObsRecorder",
    "NullRecorder",
    "RECORDER",
    "install",
    "uninstall",
    "recorder",
    "observe",
    "SIM",
    "WALL",
]

#: Clock-domain labels.
SIM = "sim"
WALL = "wall"

#: Chrome trace_event phase codes used by the event model.
PH_SPAN = "X"
PH_INSTANT = "i"
PH_COUNTER = "C"


class SpanEvent:
    """One recorded occurrence: a complete span, an instant, or a
    counter sample.  ``ts``/``dur`` are seconds in the event's clock
    domain; ``track`` names the logical timeline (rank, host, daemon)
    the event belongs to."""

    __slots__ = ("domain", "ph", "cat", "name", "ts", "dur", "track", "args")

    def __init__(
        self,
        domain: str,
        ph: str,
        cat: str,
        name: str,
        ts: float,
        dur: float,
        track: str,
        args: "Optional[dict[str, Any]]",
    ) -> None:
        self.domain = domain
        self.ph = ph
        self.cat = cat
        self.name = name
        self.ts = ts
        self.dur = dur
        self.track = track
        self.args = args

    def to_dict(self) -> "dict[str, Any]":
        out: dict[str, Any] = {
            "domain": self.domain,
            "ph": self.ph,
            "cat": self.cat,
            "name": self.name,
            "ts": self.ts,
            "track": self.track,
        }
        if self.ph == PH_SPAN:
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SpanEvent {self.domain}/{self.ph} {self.cat}:{self.name} "
            f"ts={self.ts:.6f} dur={self.dur:.6f} track={self.track!r}>"
        )


class ObsRecorder:
    """Collects :class:`SpanEvent` records and owns the run's
    :class:`~repro.obs.metrics.MetricsRegistry`.

    ``kernel_sample_interval`` is the simulated-seconds period of the
    kernel-throughput sampler (:meth:`start_kernel_sampler`); the
    sampler is a simulated process, so enabling it perturbs the event
    *heap* identically under every kernel implementation and leaves
    simulated results unchanged.
    """

    def __init__(
        self,
        wall_clock=None,
        kernel_sample_interval: float = 0.5,
    ) -> None:
        self.events: list[SpanEvent] = []
        self.registry = MetricsRegistry()
        self.kernel_sample_interval = kernel_sample_interval
        self._wall_clock = wall_clock if wall_clock is not None else time.perf_counter
        self._wall0 = self._wall_clock()
        self._sampled_sims: list[Any] = []

    # -- sim domain -------------------------------------------------------

    def sim_span(
        self,
        cat: str,
        name: str,
        t0: float,
        t1: float,
        track: str = "sim",
        **args: Any,
    ) -> None:
        self.events.append(
            SpanEvent(SIM, PH_SPAN, cat, name, t0, t1 - t0, track, args or None)
        )

    def sim_instant(
        self, cat: str, name: str, t: float, track: str = "sim", **args: Any
    ) -> None:
        self.events.append(
            SpanEvent(SIM, PH_INSTANT, cat, name, t, 0.0, track, args or None)
        )

    def sim_counter(
        self,
        cat: str,
        name: str,
        t: float,
        values: "dict[str, float]",
        track: str = "sim",
    ) -> None:
        self.events.append(
            SpanEvent(SIM, PH_COUNTER, cat, name, t, 0.0, track, dict(values))
        )

    # -- wall domain ------------------------------------------------------

    def wall_ts(self) -> float:
        """Seconds since recorder creation on the monotonic clock."""
        return self._wall_clock() - self._wall0

    def wall_span_end(
        self, cat: str, name: str, t0: float, track: str = "wall", **args: Any
    ) -> None:
        """Close a wall span opened at ``t0 = rec.wall_ts()``."""
        t1 = self.wall_ts()
        self.events.append(
            SpanEvent(WALL, PH_SPAN, cat, name, t0, t1 - t0, track, args or None)
        )

    @contextlib.contextmanager
    def wall_span(self, cat: str, name: str, track: str = "wall", **args: Any):
        t0 = self.wall_ts()
        try:
            yield
        finally:
            self.wall_span_end(cat, name, t0, track, **args)

    def wall_instant(
        self, cat: str, name: str, track: str = "wall", **args: Any
    ) -> None:
        self.events.append(
            SpanEvent(WALL, PH_INSTANT, cat, name, self.wall_ts(), 0.0, track,
                      args or None)
        )

    def wall_counter(
        self, cat: str, name: str, values: "dict[str, float]", track: str = "wall"
    ) -> None:
        self.events.append(
            SpanEvent(WALL, PH_COUNTER, cat, name, self.wall_ts(), 0.0, track,
                      dict(values))
        )

    # -- registry shorthands ---------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.registry.counter(name).inc(n)

    def count_pair(self, name: str, key: str, n: int = 1) -> None:
        self.registry.counter2d(name, key).inc(n)

    def adopt(self, prefix: str, stats: Any) -> None:
        """Register an existing stats object (anything with a
        ``snapshot()``) as a registry collector under ``prefix``."""
        self.registry.register_collector(prefix, stats.snapshot)

    # -- kernel throughput ------------------------------------------------

    def start_kernel_sampler(self, sim: Any, track: str = "kernel") -> None:
        """Sample ``sim.events_scheduled`` every
        ``kernel_sample_interval`` simulated seconds as counter events
        (the events/sec timeline in the exported trace).

        The sampler is an ordinary simulated process: it never ends on
        its own, which is fine for ``run(until=...)`` drivers; its
        pending timeout simply stays on the heap when the driver stops.
        """
        interval = self.kernel_sample_interval
        if interval <= 0:
            return
        if any(s is sim for s in self._sampled_sims):
            return  # already sampling this kernel
        self._sampled_sims.append(sim)
        base = sim.events_scheduled
        t_base = sim.now

        def sampler() -> Iterator[Any]:
            while True:
                yield sim.timeout(interval)
                events = sim.events_scheduled - base
                elapsed = sim.now - t_base
                self.sim_counter(
                    "kernel", "events_scheduled", sim.now,
                    {"events": events,
                     "events_per_sim_s": events / elapsed if elapsed > 0 else 0},
                    track=track,
                )

        sim.process(sampler(), name="obs-kernel-sampler")

    def __len__(self) -> int:
        return len(self.events)


class NullRecorder(ObsRecorder):
    """A recorder whose every emission is a no-op.

    Install it to pay the guard + dispatch cost at every
    instrumentation point without retaining anything — the measurement
    arm of the overhead test.
    """

    def _drop(self, *a: Any, **k: Any) -> None:
        return None

    sim_span = _drop
    sim_instant = _drop
    sim_counter = _drop
    wall_span_end = _drop
    wall_instant = _drop
    wall_counter = _drop
    count = _drop
    count_pair = _drop
    adopt = _drop
    start_kernel_sampler = _drop

    @contextlib.contextmanager
    def wall_span(self, cat: str, name: str, track: str = "wall", **args: Any):
        yield


#: The installed recorder, or ``None`` (tracing disabled — the
#: default).  Hot code reads this exactly once per instrumentation
#: point.
RECORDER: Optional[ObsRecorder] = None


def install(rec: Optional[ObsRecorder] = None) -> ObsRecorder:
    """Install (and return) the active recorder."""
    global RECORDER
    if rec is None:
        rec = ObsRecorder()
    RECORDER = rec
    return rec


def uninstall() -> Optional[ObsRecorder]:
    """Disable tracing; returns the recorder that was active."""
    global RECORDER
    rec, RECORDER = RECORDER, None
    return rec


def recorder() -> Optional[ObsRecorder]:
    return RECORDER


@contextlib.contextmanager
def observe(rec: Optional[ObsRecorder] = None):
    """``with observe() as rec: ...`` — scoped install/uninstall."""
    rec = install(rec)
    try:
        yield rec
    finally:
        if RECORDER is rec:
            uninstall()
