"""Cross-worker telemetry aggregation for the relay fleet.

PR 7 left the fleet with N isolated per-worker telemetry endpoints:
each worker answers for itself, nobody answers for the fleet.
:class:`FleetAggregator` closes that gap on the ``repro-fleet serve``
process:

1. **Discover** — ``GET /fleet`` on the admin port returns the fleet
   snapshot plus per-worker wiring (pid, control port, telemetry
   port).  Discovery is re-done every poll, so workers that die,
   drain, or join are picked up without restarting the aggregator.
2. **Scrape** — every worker's ``/metrics.json`` is polled
   concurrently.  A worker that fails a scrape (dying mid-drain,
   restarting) is marked **stale** — its last-good payload is kept and
   its age reported — rather than failing the whole fleet view; a
   worker with no telemetry port is listed as unscraped.
3. **Merge + re-export** — the merged view is served on one aggregated
   endpoint (a :class:`~repro.obs.telemetry.TelemetryServer` whose
   ``/metrics`` is replaced by :func:`render_fleet_prometheus`, which
   preserves per-worker identity as a ``worker="w0"`` label instead of
   flattening it into metric names) and sampled into a
   :class:`~repro.obs.timeseries.TimeSeriesSampler`, giving the SLO
   engine windowed rates/percentiles over fleet-wide series.

Mixed-version fleets are detectable: each worker payload carries its
emit-time ``git_sha`` (telemetry schema v2) and the merged view sets
``mixed_versions`` when workers disagree.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Any, Callable, Dict, Optional

from repro.obs.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    TelemetryServer,
    _sanitize,
    render_prometheus,
)
from repro.obs.timeseries import TimeSeriesSampler, flatten_numeric

__all__ = [
    "AGGREGATE_FORMAT_TAG",
    "http_get",
    "http_get_json",
    "render_fleet_prometheus",
    "FleetAggregator",
]

#: Stamped into the aggregated ``/metrics.json`` body.
AGGREGATE_FORMAT_TAG = "repro-obs-fleet-aggregate-v1"


async def http_get(
    host: str, port: int, path: str, timeout: float = 5.0
) -> bytes:
    """Minimal HTTP/1.0 GET returning the response body.

    The stdlib ``urllib`` blocks the event loop; the aggregator polls
    from inside the fleetctl loop, so scrapes must be native-async.
    Raises :class:`ConnectionError` on any failure (refused, timeout,
    non-200) so callers have one exception to map to "stale".
    """
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except (OSError, asyncio.TimeoutError) as exc:
        raise ConnectionError(f"{host}:{port}: connect failed ({exc})")
    try:
        writer.write(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    except (OSError, asyncio.TimeoutError) as exc:
        raise ConnectionError(f"{host}:{port}{path}: read failed ({exc})")
    finally:
        with contextlib.suppress(Exception):
            writer.close()
    head, sep, body = raw.partition(b"\r\n\r\n")
    if not sep:
        raise ConnectionError(f"{host}:{port}{path}: truncated response")
    status_line = head.split(b"\r\n", 1)[0].split()
    if len(status_line) < 2 or status_line[1] != b"200":
        raise ConnectionError(
            f"{host}:{port}{path}: HTTP {status_line[1:2] or b'?'}"
        )
    return body


async def http_get_json(
    host: str, port: int, path: str, timeout: float = 5.0
) -> "dict[str, Any]":
    body = await http_get(host, port, path, timeout)
    try:
        obj = json.loads(body)
    except ValueError as exc:
        raise ConnectionError(f"{host}:{port}{path}: bad JSON ({exc})")
    if not isinstance(obj, dict):
        raise ConnectionError(f"{host}:{port}{path}: expected JSON object")
    return obj


def render_fleet_prometheus(
    view: "dict[str, Any]", prefix: str = "repro"
) -> str:
    """Prometheus text for a merged fleet view, worker identity as a
    label.

    Per-worker registries become ``<prefix>_worker_<metric>{worker=...}``
    families (histograms keep their cumulative ``le`` buckets, with the
    worker label on every bucket line); liveness is
    ``<prefix>_worker_up`` (0 for stale/unscraped workers).  The
    fleet-level snapshot and derived totals render through the plain
    single-process renderer under ``<prefix>_fleet``.
    """
    # family name -> (type, [sample lines]) so every family's samples
    # stay contiguous, as the exposition format requires.
    families: "dict[str, tuple[str, list[str]]]" = {}

    def add(name: str, ftype: str, line: str) -> None:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = (ftype, [])
        entry[1].append(line)

    workers = view.get("workers", {})
    up_name = f"{prefix}_worker_up"
    for wid in sorted(workers):
        w = workers[wid]
        up = 0 if (w.get("stale") or not w.get("scraped")) else 1
        add(up_name, "gauge", f'{up_name}{{worker="{wid}"}} {up}')
        scalars, hists = flatten_numeric(w.get("registry", {}))
        for key in sorted(scalars):
            value = scalars[key]
            name = f"{prefix}_worker_{_sanitize(key.replace('.', '_'))}"
            ftype = "gauge" if isinstance(value, float) else "counter"
            add(name, ftype, f'{name}{{worker="{wid}"}} {value}')
        for key in sorted(hists):
            name = f"{prefix}_worker_{_sanitize(key.replace('.', '_'))}"
            bounds: list[tuple[int, int]] = []
            for k, v in hists[key].items():
                try:
                    bounds.append((int(k[2:]), int(v)))
                except (ValueError, TypeError):
                    continue
            bounds.sort()
            cum = 0
            for upper, count in bounds:
                cum += count
                add(
                    name, "histogram",
                    f'{name}_bucket{{worker="{wid}",le="{upper}"}} {cum}',
                )
            add(
                name, "histogram",
                f'{name}_bucket{{worker="{wid}",le="+Inf"}} {cum}',
            )
            add(name, "histogram", f'{name}_count{{worker="{wid}"}} {cum}')

    lines: list[str] = []
    for name in sorted(families):
        ftype, samples = families[name]
        lines.append(f"# TYPE {name} {ftype}")
        lines.extend(samples)
    out = "\n".join(lines) + "\n" if lines else ""

    fleet_level: dict[str, Any] = {}
    if isinstance(view.get("fleet"), dict):
        fleet_level.update(view["fleet"])
    if isinstance(view.get("derived"), dict):
        fleet_level["derived"] = view["derived"]
    if fleet_level:
        out += render_prometheus(fleet_level, prefix=f"{prefix}_fleet")
    return out


class FleetAggregator:
    """Poll a fleet's admin port + worker telemetry into one view.

    ``admin_host``/``admin_port`` point at the ``repro-fleet serve``
    admin listener (usually the aggregator's own process, but a remote
    fleet works identically).  :meth:`refresh` performs one
    discover-and-scrape round; :meth:`start` runs it on an interval and
    samples the merged numeric view into :attr:`sampler` for windowed
    rollups.
    """

    def __init__(
        self,
        admin_host: str,
        admin_port: int,
        interval_s: float = 0.5,
        scrape_timeout_s: float = 3.0,
        capacity: int = 240,
        on_refresh: "Optional[Callable[[dict, float], None]]" = None,
    ) -> None:
        self.admin_host = admin_host
        self.admin_port = admin_port
        self.interval_s = interval_s
        self.scrape_timeout_s = scrape_timeout_s
        #: Called after every round with ``(view, now)`` — the SLO
        #: engine clocks its evaluations off this.
        self.on_refresh = on_refresh
        #: wid -> scrape record (last payload kept across failures).
        self.workers: "dict[str, dict[str, Any]]" = {}
        self.fleet: "dict[str, Any]" = {}
        self.admin_ok = False
        self.rounds = 0
        self.scrape_failures = 0
        self._clock = 0.0
        self.sampler = TimeSeriesSampler(
            self.numeric_view,
            interval_s=interval_s,
            capacity=capacity,
            domain="wall",
        )
        self._task: "Optional[asyncio.Task]" = None

    # -- one round --------------------------------------------------------

    async def refresh(self, now: "Optional[float]" = None) -> "dict[str, Any]":
        """One discover + scrape round; returns the merged view.

        Never raises: an unreachable admin port flips ``admin_ok`` and
        keeps the previous wiring; a failed worker scrape marks that
        worker stale.  ``now`` is the caller's clock (defaults to the
        loop's)."""
        if now is None:
            now = asyncio.get_running_loop().time()
        self._clock = now
        self.rounds += 1
        wiring: "dict[str, Any]" = {}
        try:
            admin = await http_get_json(
                self.admin_host, self.admin_port, "/fleet",
                self.scrape_timeout_s,
            )
            self.admin_ok = bool(admin.get("ok"))
            if isinstance(admin.get("fleet"), dict):
                self.fleet = admin["fleet"]
            if isinstance(admin.get("wiring"), dict):
                wiring = admin["wiring"]
        except ConnectionError:
            self.admin_ok = False
            wiring = {
                wid: {"telemetry_port": w.get("telemetry_port")}
                for wid, w in self.workers.items()
            }

        async def scrape(wid: str, tport: "Optional[int]") -> None:
            rec = self.workers.setdefault(
                wid,
                {
                    "registry": {}, "scraped": False, "stale": False,
                    "last_ok_t": None, "failures": 0,
                    "git_sha": None, "dirty": None, "schema_version": None,
                },
            )
            rec["telemetry_port"] = tport
            if not tport:
                rec["stale"] = bool(rec["scraped"])
                return
            try:
                payload = await http_get_json(
                    self.admin_host, int(tport), "/metrics.json",
                    self.scrape_timeout_s,
                )
            except ConnectionError:
                self.scrape_failures += 1
                rec["failures"] += 1
                rec["stale"] = True
                return
            rec["scraped"] = True
            rec["stale"] = False
            rec["last_ok_t"] = now
            rec["registry"] = payload.get("registry", {})
            rec["git_sha"] = payload.get("git_sha")
            rec["dirty"] = payload.get("dirty")
            rec["schema_version"] = payload.get("schema_version")

        # Forget workers the admin no longer reports as wired at all
        # (fully gone, not merely down: their series would never
        # recover), then scrape the wired set concurrently.
        if self.admin_ok:
            for wid in list(self.workers):
                if wid not in wiring:
                    del self.workers[wid]
        await asyncio.gather(
            *(
                scrape(wid, (wiring[wid] or {}).get("telemetry_port"))
                for wid in sorted(wiring)
            )
        )
        self.sampler.sample(now)
        view = self.view()
        if self.on_refresh is not None:
            self.on_refresh(view, now)
        return view

    # -- merged views -----------------------------------------------------

    def _derived(self) -> "dict[str, Any]":
        """Fleet-wide totals the SLO rules reference by dotted path."""
        total_bytes = 0
        total_chains = 0
        up = 0
        stale = 0
        shas = set()
        for w in self.workers.values():
            if w.get("stale") or not w.get("scraped"):
                stale += 1
            else:
                up += 1
            shas.add(w.get("git_sha"))
            reg = w.get("registry", {})
            relay = reg.get("relay", reg)
            if isinstance(relay, dict):
                total_bytes += int(relay.get("bytes_relayed", 0) or 0)
                total_chains += int(relay.get("active_chains", 0) or 0)
        return {
            "bytes_relayed_total": total_bytes,
            "active_chains_total": total_chains,
            "workers_up": up,
            "workers_stale": stale,
            "mixed_versions": len({s for s in shas if s is not None}) > 1,
        }

    def view(self) -> "dict[str, Any]":
        """The full merged fleet view (plain data, JSON-safe)."""
        derived = self._derived()
        workers: "dict[str, Any]" = {}
        for wid in sorted(self.workers):
            w = self.workers[wid]
            age = (
                None if w.get("last_ok_t") is None
                else round(self._clock - w["last_ok_t"], 6)
            )
            workers[wid] = dict(w, age_s=age)
        return {
            "format": AGGREGATE_FORMAT_TAG,
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "admin_ok": self.admin_ok,
            "rounds": self.rounds,
            "scrape_failures": self.scrape_failures,
            "fleet": self.fleet,
            "workers": workers,
            "derived": derived,
        }

    def numeric_view(self) -> "dict[str, Any]":
        """The slice of the view the time-series sampler records: the
        fleet snapshot, derived totals, and per-worker registries."""
        return {
            "fleet": self.fleet,
            "derived": self._derived(),
            "workers": {
                wid: w.get("registry", {})
                for wid, w in self.workers.items()
            },
        }

    # -- serving ----------------------------------------------------------

    def start(self) -> "asyncio.Task":
        """Run refresh rounds on ``interval_s`` until :meth:`stop`."""

        async def run() -> None:
            while True:
                await self.refresh()
                await asyncio.sleep(self.interval_s)

        self._task = asyncio.get_running_loop().create_task(run())
        return self._task

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    def make_endpoint(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        extra_routes: "Optional[dict[str, Callable[[], tuple[str, str]]]]" = None,
        window_s: "Optional[float]" = None,
    ) -> TelemetryServer:
        """The aggregated endpoint: ``/metrics`` renders the merged
        fleet view with per-worker labels, ``/metrics.json`` carries
        the view + windowed rollup, and ``extra_routes`` (e.g. the SLO
        engine's ``/alerts``) mount alongside."""
        routes: "dict[str, Callable[[], tuple[str, str]]]" = {
            "/metrics": lambda: (
                "text/plain; version=0.0.4",
                render_fleet_prometheus(self.view()),
            ),
        }
        if extra_routes:
            routes.update(extra_routes)
        return TelemetryServer(
            self.numeric_view,
            host=host,
            port=port,
            extra_fn=lambda: {
                "aggregate": self.view(),
                "rollup": self.sampler.rollup(window_s),
            },
            routes=routes,
        )
