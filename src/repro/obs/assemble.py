"""Stitch per-process Chrome traces into one causal trace.

A traced run produces one ``*.trace.json`` per process (the simulated
driver plus each relay daemon).  Each file is internally consistent but
knows nothing of the others — what connects them is the trace-context
args (``trace``/``span``/``parent``) that
:mod:`repro.obs.trace` stamped onto the spans at every hop.

:func:`assemble` merges N such files into a single Chrome trace:

* Every input file becomes its own block of Chrome *processes* (pids
  are remapped to ``file_index * PID_STRIDE + original``), so Perfetto
  shows one track group per process per clock domain and the
  unsynchronised wall clocks never overlay.
* Every ``parent`` arg whose span id was recorded by *any* event in
  *any* file becomes a flow-event pair — ``ph:"s"`` at the parent's
  event, ``ph:"f"`` (``bp:"e"``) at the child's — which Perfetto draws
  as arrows between processes: the causal chain of one relayed
  connection or one RMF job, hop by hop.

The output carries the standard :data:`~repro.obs.export.CHROME_FORMAT_TAG`
(flow phases are part of the schema), plus an ``otherData.assembled``
section with per-trace-id hop counts and the number of unresolved
parent links, so tests and humans can check the tree actually closed.
"""

from __future__ import annotations

from typing import Any

from repro.obs.export import CHROME_FORMAT_TAG

__all__ = ["PID_STRIDE", "assemble"]

#: Pid-remap stride per input file; original pids are 1 (sim) and
#: 2 (wall), so a stride of 10 keeps every remapped pid unique and
#: human-decodable (file 2's wall clock = pid 22).
PID_STRIDE = 10

#: Category given to synthesized flow events.
FLOW_CAT = "traceflow"


def assemble(
    traces: "list[tuple[str, dict[str, Any]]]",
) -> "dict[str, Any]":
    """Merge ``(label, chrome_trace_obj)`` pairs into one Chrome trace
    with flow events linking causally-related spans across files."""
    events_out: list[dict[str, Any]] = []
    #: span id → (pid, tid, ts) of the event that *owns* it (args.span).
    anchors: dict[str, tuple[int, int, float]] = {}
    tagged: list[dict[str, Any]] = []
    labels: list[str] = []

    for index, (label, obj) in enumerate(traces):
        labels.append(label)
        base = (index + 1) * PID_STRIDE
        for ev in obj.get("traceEvents", []):
            if not isinstance(ev, dict):
                continue
            ev = dict(ev)
            pid = ev.get("pid")
            ev["pid"] = base + pid if isinstance(pid, int) else base
            if ev.get("ph") == "M":
                if ev.get("name") == "process_name":
                    args = dict(ev.get("args", {}))
                    args["name"] = f"{label}: {args.get('name', '')}"
                    ev["args"] = args
                events_out.append(ev)
                continue
            events_out.append(ev)
            args = ev.get("args")
            if not isinstance(args, dict) or "trace" not in args:
                continue
            span = args.get("span")
            if isinstance(span, str) and span not in anchors:
                anchors[span] = (
                    ev["pid"], ev.get("tid", 0), ev.get("ts", 0.0)
                )
            tagged.append(ev)

    # Second pass: one flow arrow per resolvable parent link.
    flow_id = 0
    unresolved = 0
    hops: dict[str, int] = {}
    for ev in tagged:
        args = ev["args"]
        trace_id = args["trace"]
        if isinstance(trace_id, str):
            hops[trace_id] = hops.get(trace_id, 0) + 1
        parent = args.get("parent")
        if not isinstance(parent, str):
            continue
        anchor = anchors.get(parent)
        if anchor is None:
            unresolved += 1
            continue
        flow_id += 1
        ppid, ptid, pts = anchor
        name = trace_id if isinstance(trace_id, str) else "trace"
        events_out.append({
            "ph": "s", "id": flow_id, "pid": ppid, "tid": ptid,
            "ts": pts, "cat": FLOW_CAT, "name": name,
        })
        events_out.append({
            "ph": "f", "bp": "e", "id": flow_id, "pid": ev["pid"],
            "tid": ev.get("tid", 0), "ts": ev.get("ts", 0.0),
            "cat": FLOW_CAT, "name": name,
        })

    registries = {
        label: obj.get("otherData", {}).get("registry", {})
        for label, obj in traces
        if isinstance(obj.get("otherData"), dict)
    }
    return {
        "traceEvents": events_out,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": CHROME_FORMAT_TAG,
            "registry": {},
            "registries": registries,
            "assembled": {
                "files": labels,
                "flows": flow_id,
                "unresolved_parents": unresolved,
                "traces": dict(sorted(hops.items())),
            },
        },
    }
