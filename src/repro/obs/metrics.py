"""Metrics primitives: counters, gauges, log-bucketed histograms, and
the registry that collects them.

One :class:`MetricsRegistry` is the single aggregation point for a run:
native metrics (created through :meth:`MetricsRegistry.counter` /
:meth:`gauge` / :meth:`histogram`) and *collectors* — existing stats
objects (``RelayStats``, ``AioRelayStats``, ``RankStats``, ...) that
keep their plain-attribute hot paths and contribute a ``snapshot()``
dict when the registry is read.  The collector pattern is what lets the
five pre-existing stats classes ride the registry without slowing a
single hot path: registration costs one dict entry, reading costs one
call at snapshot time, and the increment sites stay native ints.

:class:`LogHistogram` is the former ``repro.core.aio.relay.Histogram``,
promoted here so the sim and live relay planes (and any future
subsystem) share one histogram implementation and one snapshot schema.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (phase wall time, queue depth, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class LogHistogram:
    """Fixed-bucket power-of-two histogram: no per-record allocation,
    one ``bit_length`` and one list increment per sample."""

    __slots__ = ("counts",)

    #: Bucket ``i`` counts samples with ``2**(i-1) < value <= 2**i - 1``
    #: by bit length; the last bucket absorbs everything larger.
    NBUCKETS = 32

    def __init__(self) -> None:
        self.counts = [0] * self.NBUCKETS

    def record(self, value: int) -> None:
        idx = value.bit_length() if value > 0 else 0
        if idx >= self.NBUCKETS:
            idx = self.NBUCKETS - 1
        self.counts[idx] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram's buckets into this one."""
        for i, count in enumerate(other.counts):
            self.counts[i] += count

    def to_dict(self) -> "dict[str, int]":
        """Sparse ``{"<=upper_bound": count}`` mapping of non-empty
        buckets (the stable snapshot schema)."""
        out = {}
        for i, count in enumerate(self.counts):
            if count:
                out[f"<={(1 << i) - 1}"] = count
        return out

    snapshot = to_dict


class MetricsRegistry:
    """The aggregation point: named metrics plus external collectors.

    Metric names are dotted paths (``mpi.bytes_sent``); a 2-D family
    like per-rank-pair traffic uses :meth:`counter2d`, which interns
    ``(name, key)`` counters on first touch so the hot path is a dict
    hit.  :meth:`snapshot` returns one plain-data dict — native metrics
    under their names, each collector's ``snapshot()`` under its
    prefix — with deterministically sorted keys, so two identical runs
    serialize identically.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._pairs: Dict[tuple[str, str], Counter] = {}
        self._collectors: Dict[str, Callable[[], Any]] = {}

    # -- native metrics ---------------------------------------------------

    def _named(self, name: str, factory) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory(name)
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._named(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._named(name, Gauge)

    def histogram(self, name: str) -> LogHistogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = LogHistogram()
        elif not isinstance(metric, LogHistogram):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter2d(self, name: str, key: str) -> Counter:
        """A keyed counter family (e.g. ``mpi.bytes`` keyed ``"0->1"``)."""
        pair = (name, key)
        counter = self._pairs.get(pair)
        if counter is None:
            counter = self._pairs[pair] = Counter(f"{name}[{key}]")
        return counter

    # -- collectors -------------------------------------------------------

    def register_collector(self, prefix: str, snapshot_fn: Callable[[], Any]) -> None:
        """Attach an external stats object: ``snapshot_fn()`` is called
        at read time and its result lands under ``prefix``."""
        self._collectors[prefix] = snapshot_fn

    def unregister_collector(self, prefix: str) -> None:
        self._collectors.pop(prefix, None)

    # -- merging ----------------------------------------------------------

    @staticmethod
    def _is_hist_dict(value: "dict[str, Any]") -> bool:
        return bool(value) and all(
            isinstance(k, str) and k.startswith("<=") for k in value
        )

    def absorb(self, snapshot: "dict[str, Any]", prefix: str = "") -> None:
        """Deep-merge a plain ``snapshot()`` dict into this registry's
        native metrics — the parent-side half of cross-process metric
        collection (``fan_out(..., profile=True)`` workers ship their
        registry snapshots home through the executor).

        Merge rules, keyed by the snapshot leaf shape: ints add into
        counters, floats add into gauges, ``{"<=N": count}`` dicts merge
        into histograms, flat str→int dicts add into ``counter2d``
        families, and any other nested dict recurses with a dotted
        prefix (so a collector's snapshot lands as native metrics under
        its prefix — collectors themselves cannot cross processes).
        """
        for key in sorted(snapshot):
            value = snapshot[key]
            name = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, bool):
                continue
            if isinstance(value, int):
                self.counter(name).inc(value)
            elif isinstance(value, float):
                self.gauge(name).add(value)
            elif isinstance(value, dict):
                if self._is_hist_dict(value):
                    hist = self.histogram(name)
                    for bound, count in value.items():
                        try:
                            upper = int(bound[2:])
                            n = int(count)
                        except (ValueError, TypeError):
                            continue
                        idx = min(upper.bit_length(), LogHistogram.NBUCKETS - 1)
                        hist.counts[idx] += n
                elif value and all(
                    isinstance(v, int) and not isinstance(v, bool)
                    for v in value.values()
                ):
                    for k, v in value.items():
                        self.counter2d(name, str(k)).inc(v)
                else:
                    self.absorb(value, prefix=name)
            # Strings and other leaf types carry no mergeable quantity.

    # -- reading ----------------------------------------------------------

    def snapshot(self) -> "dict[str, Any]":
        """One plain-data view of everything, sorted for determinism."""
        out: dict[str, Any] = {}
        for name in sorted(self._metrics):
            out[name] = self._metrics[name].snapshot()
        families: dict[str, dict[str, int]] = {}
        for (name, key), counter in self._pairs.items():
            families.setdefault(name, {})[key] = counter.value
        for name in sorted(families):
            out[name] = dict(sorted(families[name].items()))
        for prefix in sorted(self._collectors):
            out[prefix] = self._collectors[prefix]()
        return out

    def __len__(self) -> int:
        return len(self._metrics) + len(self._pairs) + len(self._collectors)
