"""Declarative SLOs over fleet time-series, with alert events.

The aggregator (:mod:`repro.obs.aggregate`) gives the fleet windowed
history; this module makes "healthy" a checkable statement about that
history instead of an operator's eyeball:

* :func:`load_slo_spec` — rules from a JSON (always) or YAML (when
  PyYAML is importable — CI images don't carry it, so YAML is a
  convenience, never a requirement) spec file.
* Two rule kinds:

  - ``threshold`` — "``stat`` of ``metric`` over ``window_s`` must be
    ``op`` ``bound``" (op is the *requirement*: ``>=`` is a floor,
    ``<=`` a ceiling), with an optional ``for_s`` hold-down so a single
    bad sample doesn't page.  ``metric`` may contain ``*`` wildcards
    (fnmatch against the rollup's dotted keys) — a ceiling takes the
    worst (max) match, a floor the worst (min) — which is how one rule
    covers ``workers.*.relay.chain_setup_us_hist`` for every worker.
    Stats: ``last``/``min``/``max``/``delta``/``rate`` for scalars,
    ``count``/``p50``/``p95``/``p99`` for histograms.
  - ``recovery`` — "pending work bounded in time": fires while
    ``start_metric``'s last value exceeds ``done_metric``'s, resolves
    when they equalize, and is flagged ``breached`` if the episode
    outlived ``bound_s``.  The drain-recovery SLO is this rule over
    ``fleet.drains_started``/``fleet.drains_completed``.

* :class:`SLOEngine` — evaluates the rules against a sampler's rollup,
  tracking ok → pending → firing per rule and emitting
  fired/resolved :class:`AlertEvent` records.  Every transition is
  recorded on the installed :class:`~repro.obs.spans.ObsRecorder`
  (category ``slo``): an instant at fire, a wall span covering the
  whole episode at resolve — tagged with the active
  :class:`~repro.obs.trace.TraceContext` (a fresh root when none is
  ambient), so alerts land in assembled causal traces next to the
  drains that caused them.
"""

from __future__ import annotations

import fnmatch
import json
from typing import Any, Callable, Dict, List, Optional

from repro.obs import spans as _spans
from repro.obs import trace as _trace

__all__ = [
    "SLO_FORMAT_TAG",
    "SLOSpecError",
    "Rule",
    "AlertEvent",
    "load_slo_spec",
    "parse_slo_spec",
    "default_slo_rules",
    "SLOEngine",
]

#: Stamped into the ``/alerts`` body and alert artifacts.
SLO_FORMAT_TAG = "repro-obs-slo-v1"

_SCALAR_STATS = ("last", "min", "max", "delta", "rate")
_HIST_STATS = ("count", "p50", "p95", "p99")
_OPS: "dict[str, Callable[[float, float], bool]]" = {
    ">=": lambda v, b: v >= b,
    "<=": lambda v, b: v <= b,
    ">": lambda v, b: v > b,
    "<": lambda v, b: v < b,
}


class SLOSpecError(ValueError):
    """A spec file that cannot be parsed into rules."""


class Rule:
    """One validated SLO rule (see the module docstring for kinds)."""

    def __init__(self, spec: "dict[str, Any]") -> None:
        if not isinstance(spec, dict):
            raise SLOSpecError(f"rule must be an object, got {type(spec).__name__}")
        self.name = spec.get("name")
        if not isinstance(self.name, str) or not self.name:
            raise SLOSpecError(f"rule needs a non-empty 'name': {spec!r}")
        self.kind = spec.get("kind", "threshold")
        if self.kind == "threshold":
            self.metric = spec.get("metric")
            if not isinstance(self.metric, str) or not self.metric:
                raise SLOSpecError(f"{self.name}: threshold needs 'metric'")
            self.stat = spec.get("stat", "last")
            if self.stat not in _SCALAR_STATS + _HIST_STATS:
                raise SLOSpecError(
                    f"{self.name}: unknown stat {self.stat!r} "
                    f"(one of {_SCALAR_STATS + _HIST_STATS})"
                )
            self.op = spec.get("op")
            if self.op not in _OPS:
                raise SLOSpecError(
                    f"{self.name}: op must be one of {sorted(_OPS)}, "
                    f"got {self.op!r}"
                )
            try:
                self.bound = float(spec["bound"])
            except (KeyError, TypeError, ValueError):
                raise SLOSpecError(f"{self.name}: threshold needs numeric 'bound'")
            self.window_s = float(spec.get("window_s", 10.0))
            self.for_s = float(spec.get("for_s", 0.0))
        elif self.kind == "recovery":
            self.start_metric = spec.get("start_metric")
            self.done_metric = spec.get("done_metric")
            if not self.start_metric or not self.done_metric:
                raise SLOSpecError(
                    f"{self.name}: recovery needs 'start_metric' and 'done_metric'"
                )
            try:
                self.bound_s = float(spec["bound_s"])
            except (KeyError, TypeError, ValueError):
                raise SLOSpecError(f"{self.name}: recovery needs numeric 'bound_s'")
            self.window_s = float(spec.get("window_s", 10.0))
        else:
            raise SLOSpecError(
                f"{self.name}: unknown kind {self.kind!r} "
                "(one of ['threshold', 'recovery'])"
            )

    def describe(self) -> "dict[str, Any]":
        if self.kind == "threshold":
            return {
                "name": self.name, "kind": self.kind, "metric": self.metric,
                "stat": self.stat, "op": self.op, "bound": self.bound,
                "window_s": self.window_s, "for_s": self.for_s,
            }
        return {
            "name": self.name, "kind": self.kind,
            "start_metric": self.start_metric, "done_metric": self.done_metric,
            "bound_s": self.bound_s,
        }


def parse_slo_spec(doc: Any) -> "list[Rule]":
    """Rules from an already-parsed spec document (``{"slos": [...]}``
    or a bare rule list)."""
    if isinstance(doc, dict):
        doc = doc.get("slos")
    if not isinstance(doc, list) or not doc:
        raise SLOSpecError(
            "spec must be a non-empty rule list (or {'slos': [...]})"
        )
    return [Rule(item) for item in doc]


def load_slo_spec(path: str) -> "list[Rule]":
    """Rules from a spec file: JSON everywhere, YAML when PyYAML is
    installed (the CI toolchain doesn't ship it)."""
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise SLOSpecError(f"{path}: cannot read ({exc.strerror or exc})")
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml
        except ImportError:
            raise SLOSpecError(
                f"{path}: YAML spec but PyYAML is not installed — "
                "re-express the spec as JSON (always supported)"
            )
        try:
            doc = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise SLOSpecError(f"{path}: bad YAML ({exc})")
    else:
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise SLOSpecError(f"{path}: bad JSON ({exc})")
    try:
        return parse_slo_spec(doc)
    except SLOSpecError as exc:
        raise SLOSpecError(f"{path}: {exc}")


def default_slo_rules() -> "list[Rule]":
    """The built-in fleet SLOs (used when ``--slo`` is not given):
    aggregate throughput floor, per-worker p99 chain-open ceiling,
    drain-recovery bound, and a mux window-stall budget.  Bounds are
    deliberately loose — they're health tripwires, not perf targets."""
    mb = 1024 * 1024
    return parse_slo_spec([
        {
            "name": "fleet-throughput-floor",
            "kind": "threshold",
            "metric": "derived.bytes_relayed_total",
            "stat": "rate",
            "op": ">=",
            "bound": 0.25 * mb,
            "window_s": 5.0,
            "for_s": 1.0,
        },
        {
            "name": "chain-open-p99",
            "kind": "threshold",
            "metric": "workers.*.relay.chain_setup_us_hist",
            "stat": "p99",
            "op": "<=",
            "bound": 2**20,  # ~1 s in µs, at log2-bucket resolution
            "window_s": 10.0,
        },
        {
            "name": "drain-recovery",
            "kind": "recovery",
            "start_metric": "fleet.drains_started",
            "done_metric": "fleet.drains_completed",
            "bound_s": 5.0,
        },
        {
            "name": "mux-window-stall-budget",
            "kind": "threshold",
            "metric": "workers.*.relay.mux_window_stalls",
            "stat": "delta",
            "op": "<=",
            "bound": 10000,
            "window_s": 10.0,
        },
    ])


class AlertEvent:
    """One fired→resolved episode (or a still-firing alert)."""

    def __init__(self, rule: Rule, fired_t: float, value: Any) -> None:
        self.rule = rule
        self.state = "firing"
        self.fired_t = fired_t
        self.resolved_t: "Optional[float]" = None
        self.value = value
        self.breached = False
        self.trace_id: "Optional[str]" = None
        self.span_id: "Optional[str]" = None

    @property
    def duration_s(self) -> "Optional[float]":
        if self.resolved_t is None:
            return None
        return self.resolved_t - self.fired_t

    def to_dict(self) -> "dict[str, Any]":
        return {
            "rule": self.rule.name,
            "kind": self.rule.kind,
            "state": self.state,
            "fired_t": self.fired_t,
            "resolved_t": self.resolved_t,
            "duration_s": self.duration_s,
            "value": self.value,
            "breached": self.breached,
            "trace": self.trace_id,
            "span": self.span_id,
        }


def _stat_value(
    rollup: "dict[str, Any]", metric: str, stat: str
) -> "Optional[float]":
    table = rollup.get("hists" if stat in _HIST_STATS else "scalars", {})
    entry = table.get(metric)
    if entry is None:
        return None
    return entry.get(stat)


def _matching_values(
    rollup: "dict[str, Any]", pattern: str, stat: str
) -> "list[float]":
    if "*" not in pattern and "?" not in pattern:
        v = _stat_value(rollup, pattern, stat)
        return [] if v is None else [v]
    table = rollup.get("hists" if stat in _HIST_STATS else "scalars", {})
    out = []
    for key in sorted(table):
        if fnmatch.fnmatchcase(key, pattern):
            v = _stat_value(rollup, key, stat)
            if v is not None:
                out.append(v)
    return out


class SLOEngine:
    """Evaluate rules against a sampler's rollups; emit alert events.

    State per rule: **ok** (requirement holds) → **pending** (breach
    observed, ``for_s`` hold-down not yet satisfied) → **firing**
    (alert active) → ok again on resolve.  The engine is clocked by
    whoever calls :meth:`evaluate` — the aggregator's poll loop, a
    bench driver, the ``repro-obs alerts`` command — and is
    clock-domain-agnostic: pass the timestamps of the sampler you
    evaluate against.
    """

    def __init__(self, rules: "Optional[list[Rule]]" = None) -> None:
        self.rules = list(rules) if rules is not None else default_slo_rules()
        #: rule name -> state string ("ok" | "pending" | "firing").
        self.states: "dict[str, str]" = {r.name: "ok" for r in self.rules}
        self._pending_since: "dict[str, float]" = {}
        self.active: "dict[str, AlertEvent]" = {}
        self.history: "list[AlertEvent]" = []
        self.evaluations = 0
        self._last_values: "dict[str, Any]" = {}

    # -- recording --------------------------------------------------------

    def _ctx(self, rule: Rule) -> "Optional[_trace.TraceContext]":
        ambient = _trace.current()
        if ambient is not None:
            return _trace.child(ambient)
        return _trace.mint(f"slo-{rule.name}")

    def _record_fire(self, alert: AlertEvent) -> None:
        ctx = self._ctx(alert.rule)
        if ctx is not None:
            alert.trace_id = ctx.trace_id
            alert.span_id = ctx.span_id
        rec = _spans.RECORDER
        if rec is not None:
            rec.wall_instant(
                "slo", f"fired:{alert.rule.name}", track="slo",
                value=alert.value, **_trace.span_args(ctx),
            )
            alert._wall_t0 = rec.wall_ts()

    def _record_resolve(self, alert: AlertEvent) -> None:
        rec = _spans.RECORDER
        t0 = getattr(alert, "_wall_t0", None)
        if rec is not None and t0 is not None:
            args: "dict[str, Any]" = {
                "duration_s": alert.duration_s,
                "breached": alert.breached,
            }
            if alert.trace_id is not None:
                args["trace"] = alert.trace_id
                args["span"] = alert.span_id
            rec.wall_span_end(
                "slo", f"alert:{alert.rule.name}", t0, track="slo", **args
            )

    def _fire(self, rule: Rule, t: float, value: Any) -> AlertEvent:
        alert = AlertEvent(rule, t, value)
        self.states[rule.name] = "firing"
        self.active[rule.name] = alert
        self.history.append(alert)
        self._record_fire(alert)
        return alert

    def _resolve(self, rule: Rule, t: float) -> "Optional[AlertEvent]":
        alert = self.active.pop(rule.name, None)
        self.states[rule.name] = "ok"
        self._pending_since.pop(rule.name, None)
        if alert is None:
            return None
        alert.state = "resolved"
        alert.resolved_t = t
        if rule.kind == "recovery" and alert.duration_s is not None:
            alert.breached = alert.duration_s > rule.bound_s
        self._record_resolve(alert)
        return alert

    # -- evaluation -------------------------------------------------------

    def evaluate(
        self, rollup: "dict[str, Any]", t: float
    ) -> "list[AlertEvent]":
        """One evaluation pass; returns alerts that *transitioned*
        (fired or resolved) this pass.  ``rollup`` is a
        :meth:`~repro.obs.timeseries.TimeSeriesSampler.rollup` dict —
        callers pick the window by what they pass (every rule sees the
        same rollup; use :meth:`evaluate_sampler` for per-rule
        windows)."""
        self.evaluations += 1
        transitions: "list[AlertEvent]" = []
        for rule in self.rules:
            if rule.kind == "threshold":
                transitions.extend(self._eval_threshold(rule, rollup, t))
            else:
                transitions.extend(self._eval_recovery(rule, rollup, t))
        return transitions

    def evaluate_sampler(self, sampler: Any, t: float) -> "list[AlertEvent]":
        """Evaluate against a sampler, each rule over its own
        ``window_s`` (rollups cached per distinct window)."""
        self.evaluations += 1
        rollups: "dict[float, dict[str, Any]]" = {}

        def rollup_for(window_s: float) -> "dict[str, Any]":
            if window_s not in rollups:
                rollups[window_s] = sampler.rollup(window_s)
            return rollups[window_s]

        transitions: "list[AlertEvent]" = []
        for rule in self.rules:
            rollup = rollup_for(rule.window_s)
            if rule.kind == "threshold":
                transitions.extend(self._eval_threshold(rule, rollup, t))
            else:
                transitions.extend(self._eval_recovery(rule, rollup, t))
        return transitions

    def _eval_threshold(
        self, rule: Rule, rollup: "dict[str, Any]", t: float
    ) -> "list[AlertEvent]":
        values = _matching_values(rollup, rule.metric, rule.stat)
        if not values:
            # No data is not a breach: a fleet with no samples yet (or
            # a wildcard matching nothing) stays quiet rather than
            # flapping at startup.
            self._last_values[rule.name] = None
            return []
        # The worst matching series decides: for a floor (>=, >) the
        # minimum, for a ceiling (<=, <) the maximum.
        value = min(values) if rule.op in (">=", ">") else max(values)
        self._last_values[rule.name] = value
        ok = _OPS[rule.op](value, rule.bound)
        state = self.states[rule.name]
        out: "list[AlertEvent]" = []
        if ok:
            if state == "firing":
                out.append(self._resolve(rule, t))
            else:
                self.states[rule.name] = "ok"
                self._pending_since.pop(rule.name, None)
        else:
            if state == "firing":
                self.active[rule.name].value = value
            else:
                since = self._pending_since.setdefault(rule.name, t)
                if t - since >= rule.for_s:
                    out.append(self._fire(rule, t, value))
                else:
                    self.states[rule.name] = "pending"
        return [a for a in out if a is not None]

    def _eval_recovery(
        self, rule: Rule, rollup: "dict[str, Any]", t: float
    ) -> "list[AlertEvent]":
        start = _stat_value(rollup, rule.start_metric, "last")
        done = _stat_value(rollup, rule.done_metric, "last")
        if start is None or done is None:
            return []
        pending = start - done
        self._last_values[rule.name] = pending
        state = self.states[rule.name]
        out: "list[AlertEvent]" = []
        if pending > 0:
            if state != "firing":
                out.append(self._fire(rule, t, pending))
            else:
                alert = self.active[rule.name]
                alert.value = pending
                if t - alert.fired_t > rule.bound_s:
                    alert.breached = True
        elif state == "firing":
            out.append(self._resolve(rule, t))
        return [a for a in out if a is not None]

    # -- exposition -------------------------------------------------------

    def status(self) -> "dict[str, Any]":
        """The ``/alerts`` document: rule table + active + history."""
        return {
            "format": SLO_FORMAT_TAG,
            "evaluations": self.evaluations,
            "rules": [
                dict(
                    r.describe(),
                    state=self.states[r.name],
                    value=self._last_values.get(r.name),
                )
                for r in self.rules
            ],
            "active": {k: a.to_dict() for k, a in sorted(self.active.items())},
            "history": [a.to_dict() for a in self.history],
        }

    def alerts_route(self) -> "tuple[str, str]":
        """A :class:`~repro.obs.telemetry.TelemetryServer` route
        callable serving the status document."""
        return (
            "application/json",
            json.dumps(self.status(), sort_keys=True) + "\n",
        )
