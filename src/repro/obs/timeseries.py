"""Fixed-interval time-series history over a metrics snapshot.

The telemetry endpoints (PR 4) and the fleet snapshot (PR 7) are
*point-in-time* scrapes: they say what the counters are now, not how
they moved.  This module turns any snapshot callable (a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, a
:meth:`~repro.core.aio.fleet.FleetManager.snapshot`, an aggregator's
merged view) into bounded history plus windowed rollups:

* :class:`TimeSeriesSampler` — a ring buffer of flattened samples
  taken every ``interval_s``.  Scalars (ints/floats/bools) and
  log-histogram dicts (``{"<=N": count}``) are kept separately so the
  rollup can compute counter *rates/deltas* and window *percentiles*
  (p50/p95/p99 from bucket-count deltas) without re-walking nested
  snapshots.
* Two clock domains, mirroring :mod:`repro.obs.spans`: the asyncio
  daemons drive the sampler with :meth:`start_wall` (an asyncio task
  on ``loop.time``); the simulation plane attaches it to the DES
  kernel with :meth:`attach_sim` (``sim.every`` — the sampler's
  wakeups are ordinary heap events, so the perturbation is identical
  under ``REPRO_SIM_KERNEL=seed|fast`` and the exported series is
  **byte-stable** across kernel modes, the property
  ``tests/obs/test_timeseries.py`` hashes).
* :meth:`TimeSeriesSampler.export` — a deterministic plain-JSON
  document (schema-versioned, sorted keys through
  :func:`repro.obs.export.dumps`) that telemetry endpoints embed and
  benchmarks write as the time-series artifact.

Capacity is fixed (default 240 samples ≈ 4 minutes at 1 Hz): the ring
evicts the oldest sample and counts the eviction, so a long-lived
daemon's memory is bounded and "how much history did I lose" is
observable rather than silent.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "TIMESERIES_SCHEMA_VERSION",
    "TIMESERIES_FORMAT_TAG",
    "flatten_numeric",
    "hist_total",
    "hist_delta",
    "hist_quantile",
    "TimeSeriesSampler",
]

#: Bumped whenever the exported sample/rollup shape changes; consumers
#: (aggregator, ``repro-obs top``) check it before trusting a payload.
TIMESERIES_SCHEMA_VERSION = 1

#: Stamped into every :meth:`TimeSeriesSampler.export` document.
TIMESERIES_FORMAT_TAG = "repro-obs-timeseries-v1"

#: The percentiles every histogram rollup reports.
_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def _is_hist_dict(value: "dict[str, Any]") -> bool:
    return bool(value) and all(
        isinstance(k, str) and k.startswith("<=") for k in value
    )


def flatten_numeric(
    snapshot: "dict[str, Any]", prefix: str = ""
) -> "tuple[dict[str, float], dict[str, dict[str, int]]]":
    """Flatten one snapshot into ``(scalars, hists)``.

    Scalar leaves (ints, floats, bools-as-ints) land under their dotted
    path; ``{"<=N": count}`` dicts land in ``hists`` untouched; strings
    and other leaves are dropped (they carry no series).
    """
    scalars: dict[str, float] = {}
    hists: dict[str, dict[str, int]] = {}
    for key in sorted(snapshot):
        value = snapshot[key]
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            scalars[name] = int(value)
        elif isinstance(value, (int, float)):
            scalars[name] = value
        elif isinstance(value, dict):
            if _is_hist_dict(value):
                hists[name] = {
                    k: int(v) for k, v in value.items()
                    if isinstance(v, (int, float))
                }
            else:
                sub_scalars, sub_hists = flatten_numeric(value, name)
                scalars.update(sub_scalars)
                hists.update(sub_hists)
    return scalars, hists


def hist_total(hist: "dict[str, int]") -> int:
    return sum(int(v) for v in hist.values())


def hist_delta(
    newer: "dict[str, int]", older: "Optional[dict[str, int]]"
) -> "dict[str, int]":
    """Per-bucket ``newer - older`` (sparse; negative deltas clamp to
    zero — a histogram reset reads as a fresh window, not corruption)."""
    if not older:
        return dict(newer)
    out: dict[str, int] = {}
    for bound, count in newer.items():
        d = int(count) - int(older.get(bound, 0))
        if d > 0:
            out[bound] = d
    return out


def _hist_bounds(hist: "dict[str, int]") -> "list[tuple[int, int]]":
    bounds: list[tuple[int, int]] = []
    for key, count in hist.items():
        try:
            bounds.append((int(key[2:]), int(count)))
        except (ValueError, TypeError):
            continue
    bounds.sort()
    return bounds


def hist_quantile(hist: "dict[str, int]", q: float) -> int:
    """The upper bound of the log bucket containing quantile ``q``.

    Log-bucketed histograms can only answer to bucket resolution; the
    conservative (upper-bound) answer is the one an SLO ceiling wants.
    Returns 0 for an empty histogram.
    """
    bounds = _hist_bounds(hist)
    total = sum(count for _b, count in bounds)
    if total <= 0:
        return 0
    want = q * total
    cum = 0
    for upper, count in bounds:
        cum += count
        if cum >= want:
            return upper
    return bounds[-1][0]


class TimeSeriesSampler:
    """Ring-buffered sampling of a snapshot callable.

    ``snapshot_fn`` is read once per :meth:`sample`; each sample is
    stored flattened as ``(t, scalars, hists)``.  ``domain`` labels the
    clock the timestamps come from (``"wall"`` or ``"sim"``, same
    labels as :mod:`repro.obs.spans`) so mixed-domain series are never
    silently compared.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], "dict[str, Any]"],
        interval_s: float = 1.0,
        capacity: int = 240,
        domain: str = "wall",
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.snapshot_fn = snapshot_fn
        self.interval_s = interval_s
        self.capacity = capacity
        self.domain = domain
        self.samples: "deque[tuple[float, dict[str, float], dict[str, dict[str, int]]]]" = deque(
            maxlen=capacity
        )
        #: Samples evicted by the ring (lost history is observable).
        self.evicted = 0
        self._task: Any = None

    def __len__(self) -> int:
        return len(self.samples)

    # -- sampling ---------------------------------------------------------

    def sample(self, t: float) -> None:
        """Take one sample at time ``t`` (the caller's clock)."""
        scalars, hists = flatten_numeric(self.snapshot_fn())
        if len(self.samples) == self.capacity:
            self.evicted += 1
        self.samples.append((t, scalars, hists))

    def attach_sim(self, sim: Any, name: str = "obs-series-sampler") -> Any:
        """Sample on the DES clock every ``interval_s`` simulated
        seconds (see :meth:`repro.simnet.kernel.Simulator.every`)."""
        if self.domain != "sim":
            raise ValueError(
                f"attach_sim on a {self.domain!r}-domain sampler; "
                "construct with domain='sim'"
            )
        return sim.every(self.interval_s, self.sample, name=name)

    def start_wall(self) -> Any:
        """Sample every ``interval_s`` wall seconds on the running
        asyncio loop; returns the task (cancel it, or :meth:`stop`)."""
        import asyncio

        if self.domain != "wall":
            raise ValueError(
                f"start_wall on a {self.domain!r}-domain sampler; "
                "construct with domain='wall'"
            )

        async def run() -> None:
            loop = asyncio.get_running_loop()
            while True:
                self.sample(loop.time())
                await asyncio.sleep(self.interval_s)

        self._task = asyncio.get_running_loop().create_task(run())
        return self._task

    async def stop(self) -> None:
        import asyncio
        import contextlib

        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    # -- reading ----------------------------------------------------------

    def window(
        self, window_s: Optional[float] = None
    ) -> "list[tuple[float, dict[str, float], dict[str, dict[str, int]]]]":
        """Samples no older than ``window_s`` before the newest sample
        (everything retained when ``None``)."""
        if not self.samples:
            return []
        if window_s is None:
            return list(self.samples)
        horizon = self.samples[-1][0] - window_s
        return [s for s in self.samples if s[0] >= horizon]

    def series(
        self, key: str, window_s: Optional[float] = None
    ) -> "list[tuple[float, float]]":
        """The ``(t, value)`` points of one scalar key in the window."""
        return [
            (t, scalars[key])
            for t, scalars, _hists in self.window(window_s)
            if key in scalars
        ]

    def rollup(self, window_s: Optional[float] = None) -> "dict[str, Any]":
        """Windowed aggregates over the buffered history.

        Scalars get ``last``/``min``/``max``/``delta``/``rate`` (delta
        and rate are newest-minus-oldest over the window span — the
        counter-as-rate reading); histograms get the window's sample
        ``count`` plus bucket-resolution ``p50``/``p95``/``p99`` from
        the bucket-count delta between the window's edges.
        """
        window = self.window(window_s)
        out: dict[str, Any] = {
            "schema_version": TIMESERIES_SCHEMA_VERSION,
            "domain": self.domain,
            "samples": len(window),
            "span_s": 0.0,
            "scalars": {},
            "hists": {},
        }
        if not window:
            return out
        t0, first_scalars, first_hists = window[0]
        t1, last_scalars, last_hists = window[-1]
        span = t1 - t0
        out["span_s"] = span
        for key in sorted(last_scalars):
            values = [
                scalars[key] for _t, scalars, _h in window if key in scalars
            ]
            last = last_scalars[key]
            entry: dict[str, Any] = {
                "last": last,
                "min": min(values),
                "max": max(values),
            }
            if key in first_scalars and span > 0:
                delta = last - first_scalars[key]
                entry["delta"] = delta
                entry["rate"] = delta / span
            out["scalars"][key] = entry
        for key in sorted(last_hists):
            delta = hist_delta(last_hists[key], first_hists.get(key))
            window_hist = delta if hist_total(delta) > 0 else last_hists[key]
            entry = {
                "count": hist_total(window_hist),
                "window_is_delta": hist_total(delta) > 0,
            }
            for label, q in _QUANTILES:
                entry[label] = hist_quantile(window_hist, q)
            out["hists"][key] = entry
        return out

    # -- export -----------------------------------------------------------

    def export(
        self,
        window_s: Optional[float] = None,
        extra_meta: "Optional[dict[str, Any]]" = None,
    ) -> "dict[str, Any]":
        """The full plain-JSON time-series document: raw samples in the
        window plus the rollup.  Serialize with
        :func:`repro.obs.export.dumps` for the byte-stability
        guarantee (sim-domain documents are identical across kernel
        modes)."""
        window = self.window(window_s)
        doc: dict[str, Any] = {
            "format": TIMESERIES_FORMAT_TAG,
            "schema_version": TIMESERIES_SCHEMA_VERSION,
            "domain": self.domain,
            "interval_s": self.interval_s,
            "capacity": self.capacity,
            "evicted": self.evicted,
            "samples": [
                {"t": t, "scalars": scalars, "hists": hists}
                for t, scalars, hists in window
            ],
            "rollup": self.rollup(window_s),
        }
        if extra_meta:
            doc["meta"] = dict(extra_meta)
        return doc
