"""Unified observability: metrics registry, two-clock-domain spans,
and Chrome-trace/JSON export.  See DESIGN.md §6.3."""

from repro.obs.metrics import Counter, Gauge, LogHistogram, MetricsRegistry
from repro.obs.spans import (
    NullRecorder,
    ObsRecorder,
    SpanEvent,
    install,
    observe,
    recorder,
    uninstall,
)
from repro.obs.export import (
    diff_summaries,
    summary,
    to_chrome,
    validate_chrome_trace,
    write_artifacts,
)
from repro.obs.trace import TraceContext, span_args
from repro.obs.timeseries import TimeSeriesSampler, hist_quantile
from repro.obs.aggregate import FleetAggregator
from repro.obs.slo import SLOEngine, load_slo_spec

__all__ = [
    "TimeSeriesSampler",
    "hist_quantile",
    "FleetAggregator",
    "SLOEngine",
    "load_slo_spec",
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "SpanEvent",
    "ObsRecorder",
    "NullRecorder",
    "install",
    "uninstall",
    "recorder",
    "observe",
    "to_chrome",
    "summary",
    "diff_summaries",
    "validate_chrome_trace",
    "write_artifacts",
    "TraceContext",
    "span_args",
]
