"""``repro-obs`` — summarize, diff, and validate run artifacts.

Works over the files `repro-bench --trace` (and
:func:`repro.obs.export.write_artifacts`) produce::

    repro-obs summarize BENCH_table4.trace.json
    repro-obs diff run_a.summary.json run_b.summary.json
    repro-obs validate BENCH_table4.trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.obs.export import (
    CHROME_FORMAT_TAG,
    diff_summaries,
    validate_chrome_trace,
)

__all__ = ["main"]


def _load(path: str) -> Any:
    with open(path) as fh:
        return json.load(fh)


def _summarize_trace(obj: "dict[str, Any]") -> "dict[str, Any]":
    """Aggregate a Chrome trace file back into summary-shaped data
    (so `summarize` works on either artifact)."""
    cats: dict[str, dict[str, Any]] = {}
    pid_domain = {1: "sim", 2: "wall"}
    total = 0
    for ev in obj.get("traceEvents", []):
        ph = ev.get("ph")
        if ph == "M":
            continue
        total += 1
        domain = pid_domain.get(ev.get("pid"), "?")
        key = f"{domain}:{ev.get('cat', '?')}"
        agg = cats.setdefault(
            key,
            {"events": 0, "spans": 0, "instants": 0, "counters": 0,
             "span_total_s": 0.0, "span_max_s": 0.0},
        )
        agg["events"] += 1
        if ph == "X":
            agg["spans"] += 1
            dur_s = ev.get("dur", 0) / 1e6
            agg["span_total_s"] += dur_s
            if dur_s > agg["span_max_s"]:
                agg["span_max_s"] = dur_s
        elif ph == "i":
            agg["instants"] += 1
        elif ph == "C":
            agg["counters"] += 1
    return {
        "format": "repro-obs-summary-v1",
        "total_events": total,
        "categories": dict(sorted(cats.items())),
        "registry": obj.get("otherData", {}).get("registry", {}),
    }


def _as_summary(obj: Any, path: str) -> "dict[str, Any]":
    if isinstance(obj, dict) and "traceEvents" in obj:
        return _summarize_trace(obj)
    if isinstance(obj, dict) and obj.get("format", "").startswith("repro-obs-summary"):
        return obj
    raise SystemExit(f"{path}: not a repro-obs trace or summary file")


def _cmd_summarize(args: argparse.Namespace) -> int:
    summ = _as_summary(_load(args.path), args.path)
    print(f"{args.path}: {summ['total_events']} events")
    cats = summ.get("categories", {})
    if cats:
        width = max(len(k) for k in cats)
        print(f"  {'category'.ljust(width)}  events  spans  span_total_s")
        for key, agg in cats.items():
            print(
                f"  {key.ljust(width)}  {agg['events']:6d}  {agg['spans']:5d}"
                f"  {agg['span_total_s']:.6f}"
            )
    reg = summ.get("registry", {})
    if reg:
        print(f"  registry: {len(reg)} entries")
        if args.verbose:
            print(json.dumps(reg, indent=2, sort_keys=True))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    a = _as_summary(_load(args.a), args.a)
    b = _as_summary(_load(args.b), args.b)
    diff = diff_summaries(a, b)
    changed = diff["changed"]
    if not changed:
        print("identical")
        return 0
    for key, change in changed.items():
        if "delta" in change:
            print(f"{key}: {change['a']} -> {change['b']} ({change['delta']:+g})")
        else:
            print(f"{key}: {change['a']!r} -> {change['b']!r}")
    return 1


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        obj = _load(args.path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{args.path}: INVALID ({exc})")
        return 1
    errors = validate_chrome_trace(obj)
    if errors:
        print(f"{args.path}: INVALID")
        for err in errors:
            print(f"  {err}")
        return 1
    n = sum(1 for ev in obj["traceEvents"] if ev.get("ph") != "M")
    print(f"{args.path}: OK ({CHROME_FORMAT_TAG}, {n} events)")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs", description="Inspect repro observability artifacts."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="print per-category aggregates")
    p.add_argument("path")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also dump the registry snapshot")
    p.set_defaults(func=_cmd_summarize)

    p = sub.add_parser("diff", help="compare two runs (exit 1 if they differ)")
    p.add_argument("a")
    p.add_argument("b")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("validate", help="schema-check a Chrome trace file")
    p.add_argument("path")
    p.set_defaults(func=_cmd_validate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
