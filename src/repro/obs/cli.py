"""``repro-obs`` — summarize, diff, validate, assemble, and tail.

Works over the files `repro-bench --trace` (and
:func:`repro.obs.export.write_artifacts`) produce, and over live
daemons exposing the telemetry endpoint::

    repro-obs summarize BENCH_table4.trace.json
    repro-obs diff run_a.summary.json run_b.summary.json
    repro-obs validate BENCH_table4.trace.json
    repro-obs assemble driver.trace.json outer.trace.json inner.trace.json \\
        -o run.trace.json
    repro-obs tail 127.0.0.1:9464 --count 10
    repro-obs top 127.0.0.1:9490 --once
    repro-obs alerts 127.0.0.1:9490 --once

Exit codes are uniform across subcommands so scripts and CI can branch
on them: **0** success (or ``diff`` found no differences), **1** a
semantic failure (summaries differ, trace fails the schema check, an
SLO alert is firing), **2** an input that could not be read at all
(missing file, empty file, truncated/corrupt JSON, wrong format) —
always with a one-line diagnostic naming the file and the reason —
and **3** a live endpoint that stayed unreachable through the whole
retry budget (the live subcommands reconnect with capped backoff when
an endpoint restarts, e.g. a drained fleet worker).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time
import urllib.request
from typing import Any

from repro.obs.assemble import assemble
from repro.obs.export import (
    CHROME_FORMAT_TAG,
    diff_summaries,
    dumps,
    validate_chrome_trace,
)

__all__ = ["main", "EXIT_OK", "EXIT_DIFFERS", "EXIT_UNREADABLE",
           "EXIT_RETRIES"]

#: ``diff`` clean / everything fine.
EXIT_OK = 0
#: Semantic failure: summaries differ, schema check failed, an SLO
#: alert is firing.
EXIT_DIFFERS = 1
#: Input unusable: missing, empty, truncated, or not an obs artifact.
EXIT_UNREADABLE = 2
#: A live endpoint stayed unreachable through the full retry budget
#: (distinct from :data:`EXIT_UNREADABLE` so scripts can tell "the
#: daemon went away and never came back" from "bad input").
EXIT_RETRIES = 3


class Unreadable(Exception):
    """An input file that cannot be used at all (exit code 2)."""


def _load(path: str) -> Any:
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise Unreadable(f"{path}: cannot read ({exc.strerror or exc})")
    if not text.strip():
        raise Unreadable(f"{path}: empty file (truncated write or wrong path?)")
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise Unreadable(
            f"{path}: corrupt or truncated JSON "
            f"(line {exc.lineno} col {exc.colno}: {exc.msg})"
        )


def _summarize_trace(obj: "dict[str, Any]") -> "dict[str, Any]":
    """Aggregate a Chrome trace file back into summary-shaped data
    (so `summarize` works on either artifact)."""
    cats: dict[str, dict[str, Any]] = {}
    pid_domain = {1: "sim", 2: "wall"}
    total = 0
    for ev in obj.get("traceEvents", []):
        ph = ev.get("ph")
        if ph == "M":
            continue
        total += 1
        # Assembled traces remap pids to stride*file + original; the
        # low digit still encodes the clock domain.
        pid = ev.get("pid")
        domain = pid_domain.get(pid if pid in pid_domain else (pid or 0) % 10, "?")
        key = f"{domain}:{ev.get('cat', '?')}"
        agg = cats.setdefault(
            key,
            {"events": 0, "spans": 0, "instants": 0, "counters": 0,
             "span_total_s": 0.0, "span_max_s": 0.0},
        )
        agg["events"] += 1
        if ph == "X":
            agg["spans"] += 1
            dur_s = ev.get("dur", 0) / 1e6
            agg["span_total_s"] += dur_s
            if dur_s > agg["span_max_s"]:
                agg["span_max_s"] = dur_s
        elif ph == "i":
            agg["instants"] += 1
        elif ph == "C":
            agg["counters"] += 1
    return {
        "format": "repro-obs-summary-v1",
        "total_events": total,
        "categories": dict(sorted(cats.items())),
        "registry": obj.get("otherData", {}).get("registry", {}),
    }


def _as_summary(obj: Any, path: str) -> "dict[str, Any]":
    if isinstance(obj, dict) and "traceEvents" in obj:
        return _summarize_trace(obj)
    if isinstance(obj, dict) and str(obj.get("format", "")).startswith(
        "repro-obs-summary"
    ):
        return obj
    raise Unreadable(
        f"{path}: not a repro-obs trace or summary file "
        "(no traceEvents array, no repro-obs-summary format tag)"
    )


def _cmd_summarize(args: argparse.Namespace) -> int:
    summ = _as_summary(_load(args.path), args.path)
    print(f"{args.path}: {summ['total_events']} events")
    cats = summ.get("categories", {})
    if cats:
        width = max(len(k) for k in cats)
        print(f"  {'category'.ljust(width)}  events  spans  span_total_s")
        for key, agg in cats.items():
            print(
                f"  {key.ljust(width)}  {agg['events']:6d}  {agg['spans']:5d}"
                f"  {agg['span_total_s']:.6f}"
            )
    reg = summ.get("registry", {})
    if reg:
        print(f"  registry: {len(reg)} entries")
        if args.verbose:
            print(json.dumps(reg, indent=2, sort_keys=True))
    return EXIT_OK


def _cmd_diff(args: argparse.Namespace) -> int:
    a = _as_summary(_load(args.a), args.a)
    b = _as_summary(_load(args.b), args.b)
    diff = diff_summaries(a, b)
    changed = diff["changed"]
    if not changed:
        print("identical")
        return EXIT_OK
    for key, change in changed.items():
        if "delta" in change:
            print(f"{key}: {change['a']} -> {change['b']} ({change['delta']:+g})")
        else:
            print(f"{key}: {change['a']!r} -> {change['b']!r}")
    return EXIT_DIFFERS


def _cmd_validate(args: argparse.Namespace) -> int:
    obj = _load(args.path)
    errors = validate_chrome_trace(obj)
    if errors:
        print(f"{args.path}: INVALID")
        for err in errors:
            print(f"  {err}")
        return EXIT_DIFFERS
    n = sum(1 for ev in obj["traceEvents"] if ev.get("ph") != "M")
    print(f"{args.path}: OK ({CHROME_FORMAT_TAG}, {n} events)")
    return EXIT_OK


def _cmd_assemble(args: argparse.Namespace) -> int:
    inputs: list[tuple[str, dict[str, Any]]] = []
    for path in args.paths:
        obj = _load(path)
        if not isinstance(obj, dict) or "traceEvents" not in obj:
            raise Unreadable(f"{path}: not a Chrome trace file")
        errors = validate_chrome_trace(obj)
        if errors:
            print(f"{path}: INVALID", file=sys.stderr)
            for err in errors:
                print(f"  {err}", file=sys.stderr)
            return EXIT_DIFFERS
        label = args.labels[len(inputs)] if args.labels else path
        inputs.append((label, obj))
    merged = assemble(inputs)
    text = dumps(merged) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text)
    info = merged["otherData"]["assembled"]
    print(
        f"assembled {len(inputs)} files: {info['flows']} causal links, "
        f"{len(info['traces'])} traces, "
        f"{info['unresolved_parents']} unresolved parents",
        file=sys.stderr,
    )
    return EXIT_OK


def _fetch_snapshot(url: str, timeout: float) -> "dict[str, Any]":
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return json.loads(resp.read().decode())
    except (OSError, ValueError) as exc:
        raise Unreadable(f"{url}: {exc}")


def _flatten(prefix: str, value: Any, out: "dict[str, Any]") -> None:
    if isinstance(value, dict):
        for k in sorted(value):
            _flatten(f"{prefix}.{k}" if prefix else str(k), value[k], out)
    else:
        out[prefix] = value


def _endpoint_url(endpoint: str, path: str = "/metrics.json") -> str:
    target = endpoint
    if "://" not in target:
        target = f"http://{target}"
    return target.rstrip("/") + path


def _fetch_with_retry(
    url: str, timeout: float, retries: int, max_backoff_s: float = 8.0
) -> "dict[str, Any]":
    """Fetch a live endpoint, retrying with capped exponential backoff.

    A telemetry endpoint restarting (a fleet worker drained and
    replaced, a daemon bounced) looks like a connection refusal for a
    moment — the tail should ride through it, not die on the first
    error.  Raises :class:`Unreadable` only after ``retries``
    consecutive failures.
    """
    attempt = 0
    while True:
        try:
            return _fetch_snapshot(url, timeout)
        except Unreadable as exc:
            attempt += 1
            if attempt > retries:
                raise
            backoff = min(max_backoff_s, 0.25 * (2 ** (attempt - 1)))
            stamp = time.strftime("%H:%M:%S")
            print(
                f"[{stamp}] {exc} — retry {attempt}/{retries} "
                f"in {backoff:.2g}s",
                file=sys.stderr,
            )
            time.sleep(backoff)


def _cmd_tail(args: argparse.Namespace) -> int:
    url = _endpoint_url(args.endpoint)
    prev: dict[str, Any] = {}
    polls = 0
    while True:
        try:
            snap = _fetch_with_retry(url, args.timeout, args.retries)
        except Unreadable as exc:
            print(f"repro-obs: {exc} (retries exhausted)", file=sys.stderr)
            return EXIT_RETRIES
        flat: dict[str, Any] = {}
        _flatten("", snap.get("registry", {}), flat)
        polls += 1
        changed = {
            k: v for k, v in flat.items()
            if isinstance(v, (int, float)) and prev.get(k) != v
        }
        stamp = time.strftime("%H:%M:%S")
        if polls == 1:
            print(f"[{stamp}] {url}: {len(flat)} series")
        for key in sorted(changed):
            old = prev.get(key)
            if isinstance(old, (int, float)):
                print(f"[{stamp}] {key} {old} -> {changed[key]}")
            else:
                print(f"[{stamp}] {key} = {changed[key]}")
        if not changed and polls > 1:
            print(f"[{stamp}] (no change)")
        prev = flat
        if args.count is not None and polls >= args.count:
            return EXIT_OK
        time.sleep(args.interval)


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import render

    metrics_url = _endpoint_url(args.endpoint)
    alerts_url = _endpoint_url(args.endpoint, "/alerts")
    rate_history: list[float] = []
    frames = 0
    while True:
        try:
            payload = _fetch_with_retry(metrics_url, args.timeout, args.retries)
        except Unreadable as exc:
            print(f"repro-obs: {exc} (retries exhausted)", file=sys.stderr)
            return EXIT_RETRIES
        try:
            alerts = _fetch_snapshot(alerts_url, args.timeout)
        except Unreadable:
            alerts = None  # endpoint without an SLO engine mounted
        rate = (
            payload.get("rollup", {})
            .get("scalars", {})
            .get("derived.bytes_relayed_total", {})
            .get("rate")
        )
        if isinstance(rate, (int, float)):
            rate_history.append(float(rate))
            del rate_history[:-120]
        frame = render(payload, alerts, rate_history or None)
        if args.once:
            sys.stdout.write(frame)
            return EXIT_OK
        if sys.stdout.isatty():
            # Clear + home; the only escape codes the dashboard emits,
            # and only when a human terminal is attached.
            sys.stdout.write("\x1b[2J\x1b[H")
        sys.stdout.write(frame)
        sys.stdout.flush()
        frames += 1
        if args.count is not None and frames >= args.count:
            return EXIT_OK
        time.sleep(args.interval)


def _cmd_alerts(args: argparse.Namespace) -> int:
    url = _endpoint_url(args.endpoint, "/alerts")
    polls = 0
    while True:
        try:
            status = _fetch_with_retry(url, args.timeout, args.retries)
        except Unreadable as exc:
            print(f"repro-obs: {exc} (retries exhausted)", file=sys.stderr)
            return EXIT_RETRIES
        polls += 1
        if args.json:
            print(dumps(status))
        else:
            stamp = time.strftime("%H:%M:%S")
            active = status.get("active", {})
            print(
                f"[{stamp}] {len(status.get('rules', []))} rules, "
                f"{len(active)} firing, "
                f"{status.get('evaluations', 0)} evaluations"
            )
            for rule in status.get("rules", []):
                value = rule.get("value")
                shown = "-" if value is None else f"{value:g}"
                print(
                    f"  {rule.get('state', '?'):<8} {rule.get('name', '?'):<28}"
                    f" value={shown}"
                )
            for a in status.get("history", []):
                if a.get("state") == "resolved":
                    dur = a.get("duration_s")
                    dur_s = "-" if dur is None else f"{dur:.2f}s"
                    flag = " BREACHED" if a.get("breached") else ""
                    print(f"  episode  {a.get('rule', '?')} dur={dur_s}{flag}")
        if args.once or (args.count is not None and polls >= args.count):
            # Firing alerts are a semantic failure for scripts/CI.
            return EXIT_DIFFERS if status.get("active") else EXIT_OK
        time.sleep(args.interval)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs", description="Inspect repro observability artifacts."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="print per-category aggregates")
    p.add_argument("path")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also dump the registry snapshot")
    p.set_defaults(func=_cmd_summarize)

    p = sub.add_parser("diff", help="compare two runs (exit 1 if they differ)")
    p.add_argument("a")
    p.add_argument("b")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("validate", help="schema-check a Chrome trace file")
    p.add_argument("path")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser(
        "assemble",
        help="stitch per-process traces into one causally-linked trace",
    )
    p.add_argument("paths", nargs="+", metavar="TRACE")
    p.add_argument("-o", "--out", default="-",
                   help="output path (default: stdout)")
    p.add_argument("--labels", nargs="*", default=None,
                   help="display label per input (default: the file path)")
    p.set_defaults(func=_cmd_assemble)

    def live_flags(p: argparse.ArgumentParser, interval: float) -> None:
        p.add_argument("--interval", type=float, default=interval,
                       help=f"seconds between polls (default {interval:g})")
        p.add_argument("--count", type=int, default=None,
                       help="stop after N polls (default: run until "
                       "interrupted)")
        p.add_argument("--timeout", type=float, default=5.0,
                       help="per-request timeout in seconds")
        p.add_argument("--retries", type=int, default=5,
                       help="consecutive fetch failures to ride through "
                       "with capped backoff before giving up "
                       f"(exit {EXIT_RETRIES}; default 5)")

    p = sub.add_parser(
        "tail", help="stream registry changes from a live telemetry endpoint"
    )
    p.add_argument("endpoint", help="host:port or URL of a daemon's "
                   "--telemetry-port listener")
    live_flags(p, 2.0)
    p.set_defaults(func=_cmd_tail)

    p = sub.add_parser(
        "top", help="live fleet dashboard over an aggregated endpoint"
    )
    p.add_argument("endpoint", help="host:port or URL of the fleet's "
                   "aggregated telemetry endpoint (repro-fleet --agg-port)")
    p.add_argument("--once", action="store_true",
                   help="render one frame, no escape codes, and exit "
                   "(pipe/CI safe)")
    live_flags(p, 1.0)
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "alerts", help="show SLO rule states and alert episodes"
    )
    p.add_argument("endpoint", help="host:port or URL of the aggregated "
                   "endpoint (serves /alerts)")
    p.add_argument("--once", action="store_true",
                   help="one evaluation snapshot; exit 1 if anything is "
                   "firing")
    p.add_argument("--json", action="store_true",
                   help="emit the raw status document")
    live_flags(p, 2.0)
    p.set_defaults(func=_cmd_alerts)

    args = parser.parse_args(argv)
    if args.command == "assemble" and args.labels and \
            len(args.labels) != len(args.paths):
        parser.error("--labels must match the number of TRACE inputs")
    try:
        return args.func(args)
    except Unreadable as exc:
        print(f"repro-obs: {exc}", file=sys.stderr)
        return EXIT_UNREADABLE
    except KeyboardInterrupt:
        return EXIT_OK
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-stream: the Unix
        # convention is a quiet exit, not a traceback.
        import os

        with contextlib.suppress(OSError):
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
