"""Export paths for recorded observability data.

Two artifacts per run, both plain JSON:

* ``<base>.trace.json`` — Chrome ``trace_event`` JSON Object Format.
  Load it in Perfetto (https://ui.perfetto.dev, *Open trace file*) or
  ``chrome://tracing``.  The two clock domains become two "processes":
  pid 1 = sim time, pid 2 = wall clock, so Perfetto renders them as
  separate track groups and never mixes the time bases.  Tracks
  (ranks, daemons, hosts) become threads, interned in first-appearance
  order so the tid assignment is deterministic.
* ``<base>.summary.json`` — the registry snapshot plus per-category
  event/span aggregates; the unit `repro-obs summarize`/`diff` works
  over.

All serialization goes through :func:`dumps` (sorted keys, compact
separators) so byte-identical recordings produce byte-identical files —
the property the clock-domain determinism test asserts.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.obs.spans import (
    PH_COUNTER,
    PH_INSTANT,
    PH_SPAN,
    SIM,
    WALL,
    ObsRecorder,
    SpanEvent,
)

__all__ = [
    "CHROME_FORMAT_TAG",
    "to_chrome",
    "summary",
    "diff_summaries",
    "validate_chrome_trace",
    "dumps",
    "write_artifacts",
]

#: Stamped into ``otherData.format`` of every exported trace; the
#: schema check keys off it.
CHROME_FORMAT_TAG = "repro-obs-chrome-trace-v1"

#: Clock domain → Chrome pid.  Separate pids keep Perfetto from
#: overlaying sim microseconds on wall microseconds.
_DOMAIN_PID = {SIM: 1, WALL: 2}
_DOMAIN_LABEL = {SIM: "sim time", WALL: "wall clock"}


def dumps(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no incidental whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _usec(seconds: float) -> float:
    # Chrome traces are microsecond-denominated.  Round to a tenth of
    # a microsecond so float noise from the µs conversion can't leak
    # into the byte-stability guarantee.
    return round(seconds * 1e6, 1)


def to_chrome(rec: ObsRecorder, extra_meta: "Optional[dict[str, Any]]" = None) -> "dict[str, Any]":
    """Render a recorder as a Chrome ``trace_event`` JSON object."""
    tids: dict[tuple[int, str], int] = {}
    events: list[dict[str, Any]] = []
    meta: list[dict[str, Any]] = []

    for pid in sorted(_DOMAIN_PID.values()):
        label = _DOMAIN_LABEL[SIM if pid == _DOMAIN_PID[SIM] else WALL]
        meta.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"repro ({label})"},
            }
        )

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len([k for k in tids if k[0] == pid]) + 1
            meta.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        return tid

    for ev in rec.events:
        pid = _DOMAIN_PID[ev.domain]
        out: dict[str, Any] = {
            "ph": ev.ph,
            "pid": pid,
            "tid": tid_for(pid, ev.track),
            "cat": ev.cat,
            "name": ev.name,
            "ts": _usec(ev.ts),
        }
        if ev.ph == PH_SPAN:
            out["dur"] = _usec(ev.dur)
        elif ev.ph == PH_INSTANT:
            out["s"] = "t"  # thread-scoped instant
        if ev.args:
            out["args"] = ev.args
        events.append(out)

    other: dict[str, Any] = {
        "format": CHROME_FORMAT_TAG,
        "registry": rec.registry.snapshot(),
    }
    if extra_meta:
        other.update(extra_meta)
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def summary(rec: ObsRecorder, extra_meta: "Optional[dict[str, Any]]" = None) -> "dict[str, Any]":
    """Aggregate view: per-(domain, category) event counts and span
    duration totals, plus the full registry snapshot."""
    cats: dict[str, dict[str, Any]] = {}
    for ev in rec.events:
        key = f"{ev.domain}:{ev.cat}"
        agg = cats.get(key)
        if agg is None:
            agg = cats[key] = {
                "events": 0,
                "spans": 0,
                "instants": 0,
                "counters": 0,
                "span_total_s": 0.0,
                "span_max_s": 0.0,
            }
        agg["events"] += 1
        if ev.ph == PH_SPAN:
            agg["spans"] += 1
            agg["span_total_s"] += ev.dur
            if ev.dur > agg["span_max_s"]:
                agg["span_max_s"] = ev.dur
        elif ev.ph == PH_INSTANT:
            agg["instants"] += 1
        elif ev.ph == PH_COUNTER:
            agg["counters"] += 1
    for agg in cats.values():
        agg["span_total_s"] = round(agg["span_total_s"], 9)
        agg["span_max_s"] = round(agg["span_max_s"], 9)
    out: dict[str, Any] = {
        "format": "repro-obs-summary-v1",
        "total_events": len(rec.events),
        "categories": dict(sorted(cats.items())),
        "registry": rec.registry.snapshot(),
    }
    if extra_meta:
        out["meta"] = extra_meta
    return out


def _flatten(prefix: str, value: Any, out: "dict[str, Any]") -> None:
    if isinstance(value, dict):
        for k in sorted(value):
            _flatten(f"{prefix}.{k}" if prefix else str(k), value[k], out)
    else:
        out[prefix] = value


def diff_summaries(a: "dict[str, Any]", b: "dict[str, Any]") -> "dict[str, Any]":
    """Structural diff of two summary dicts; numeric leaves get a
    delta, everything else an old/new pair.  Identical leaves are
    omitted."""
    fa: dict[str, Any] = {}
    fb: dict[str, Any] = {}
    _flatten("", a, fa)
    _flatten("", b, fb)
    changed: dict[str, Any] = {}
    for key in sorted(set(fa) | set(fb)):
        va, vb = fa.get(key), fb.get(key)
        if va == vb:
            continue
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            changed[key] = {"a": va, "b": vb, "delta": vb - va}
        else:
            changed[key] = {"a": va, "b": vb}
    return {"format": "repro-obs-diff-v1", "changed": changed}


def validate_chrome_trace(obj: Any) -> "list[str]":
    """Schema check for exported traces (hand-rolled — the toolchain
    has no jsonschema).  Returns a list of problems; empty means valid."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return ["top level: expected object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        errors.append("traceEvents: expected array")
        events = []
    other = obj.get("otherData")
    if not isinstance(other, dict):
        errors.append("otherData: expected object")
    elif other.get("format") != CHROME_FORMAT_TAG:
        errors.append(f"otherData.format: expected {CHROME_FORMAT_TAG!r}")
    elif not isinstance(other.get("registry"), dict):
        errors.append("otherData.registry: expected object")
    valid_ph = {"X", "i", "C", "M", "s", "f"}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: expected object")
            continue
        ph = ev.get("ph")
        if ph not in valid_ph:
            errors.append(f"{where}.ph: {ph!r} not one of {sorted(valid_ph)}")
            continue
        for field, types in (("name", str), ("pid", int), ("tid", int)):
            if not isinstance(ev.get(field), types):
                errors.append(f"{where}.{field}: expected {types.__name__}")
        if ph == "M":
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"{where}.ts: expected number")
        if not isinstance(ev.get("cat"), str):
            errors.append(f"{where}.cat: expected string")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            errors.append(f"{where}.dur: expected number")
        if ph in ("s", "f"):
            # Flow events (assembled causal links) must carry an id to
            # pair the start with its binding end.
            if not isinstance(ev.get("id"), (int, str)):
                errors.append(f"{where}.id: flow event needs an id")
            if ph == "f" and ev.get("bp") != "e":
                errors.append(f"{where}.bp: flow end must bind enclosing ('e')")
        if len(errors) > 20:
            errors.append("... (truncated)")
            break
    return errors


def write_artifacts(
    rec: ObsRecorder,
    base: str,
    extra_meta: "Optional[dict[str, Any]]" = None,
) -> "tuple[str, str]":
    """Write ``<base>.trace.json`` + ``<base>.summary.json``; returns
    the two paths."""
    trace_path = f"{base}.trace.json"
    summary_path = f"{base}.summary.json"
    with open(trace_path, "w") as fh:
        fh.write(dumps(to_chrome(rec, extra_meta)))
        fh.write("\n")
    with open(summary_path, "w") as fh:
        fh.write(dumps(summary(rec, extra_meta)))
        fh.write("\n")
    return trace_path, summary_path
