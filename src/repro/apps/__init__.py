"""Benchmark applications built on the library's public API."""
