"""Analytic properties of knapsack search trees (vectorized DP).

Two closed-form quantities let the test suite verify the search code
without trusting it:

* :func:`tree_size` — exact node count of the *unpruned* search tree
  (what Table 6 counts), by dynamic programming over (depth, capacity):

  .. math::  T_i(c) = 1 + T_{i+1}(c) + [w_i \\le c]\\,T_{i+1}(c - w_i),
             \\qquad T_n(c) = 1

* :func:`optimal_value` — the optimum by the classic DP over
  capacities, independent of any branch-and-bound.

Both are NumPy-vectorized over the capacity axis (one array op per
item instead of a Python loop over capacities), which keeps even the
50-item, multi-billion-node paper instance analysable in milliseconds.
"""

from __future__ import annotations

import numpy as np

from repro.apps.knapsack.instance import KnapsackInstance

__all__ = ["tree_size", "optimal_value", "optimal_selection", "depth_profile"]


def tree_size(instance: KnapsackInstance) -> int:
    """Exact number of nodes in the unpruned search tree."""
    cap = instance.capacity
    # T[c] = subtree size at the current depth for remaining capacity c.
    t_next = np.ones(cap + 1, dtype=np.int64)
    for w in reversed(instance.weights):
        t = 1 + t_next.copy()
        if w <= cap:
            t[w:] += t_next[: cap + 1 - w]
        t_next = t
    return int(t_next[cap])


def optimal_value(instance: KnapsackInstance) -> int:
    """The optimal objective value (capacity-indexed DP)."""
    cap = instance.capacity
    best = np.zeros(cap + 1, dtype=np.int64)
    for p, w in zip(instance.profits, instance.weights):
        if w <= cap:
            take = best[: cap + 1 - w] + p
            np.maximum(best[w:], take, out=best[w:])
    return int(best[cap])


def optimal_selection(instance: KnapsackInstance) -> tuple[int, list[int]]:
    """Optimum value plus one optimal item index set (for validation)."""
    cap, n = instance.capacity, instance.n
    table = np.zeros((n + 1, cap + 1), dtype=np.int64)
    for i in range(1, n + 1):
        p, w = instance.profits[i - 1], instance.weights[i - 1]
        table[i] = table[i - 1]
        if w <= cap:
            cand = table[i - 1, : cap + 1 - w] + p
            np.maximum(table[i, w:], cand, out=table[i, w:])
    chosen: list[int] = []
    c = cap
    for i in range(n, 0, -1):
        if table[i, c] != table[i - 1, c]:
            chosen.append(i - 1)
            c -= instance.weights[i - 1]
    chosen.reverse()
    return int(table[n, cap]), chosen


def depth_profile(instance: KnapsackInstance) -> np.ndarray:
    """Node count per tree depth (length n+1); sums to tree_size.

    Used to sanity-check load-balance intuition: the unpruned tree is
    widest in the middle depths, which is why stolen top-of-stack
    nodes carry large subtrees early in the run.
    """
    cap = instance.capacity
    # counts[c] = number of nodes at the current depth with residual
    # capacity c; start with the root.
    counts = np.zeros(cap + 1, dtype=np.int64)
    counts[cap] = 1
    profile = [1]
    for w in instance.weights:
        nxt = counts.copy()  # exclude children keep their capacity
        if w <= cap:
            nxt[: cap + 1 - w] += counts[w:]  # include children shift down
        counts = nxt
        profile.append(int(counts.sum()))
    out = np.array(profile, dtype=np.int64)
    assert int(out.sum()) == tree_size(instance)
    return out
