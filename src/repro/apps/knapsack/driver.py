"""Experiment driver: run the knapsack benchmark on Table 3 systems.

Produces exactly the quantities the paper's evaluation reports:

* execution time and speedup vs. the sequential RWCP-Sun baseline
  (Table 4), including the proxy / no-proxy pair for the wide-area
  cluster;
* steal counts — master total, per-site max/min/average (Table 5);
* traversed-node counts per site (Table 6).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.obs import spans as _obs

from repro.apps.knapsack.instance import KnapsackInstance
from repro.apps.knapsack.master_slave import (
    MASTER_RANK,
    RankStats,
    SchedulingParams,
    knapsack_rank_main,
)
from repro.apps.knapsack.sequential import run_sequential_sim
from repro.cluster.systems import system as table3_system
from repro.cluster.systems import build_world
from repro.cluster.testbed import Testbed
from repro.rmf.executables import ExecutableRegistry, ExecutionContext
from repro.simnet.kernel import Event
from repro.util.stats import Summary, summarize

__all__ = [
    "RunResult",
    "GroupStats",
    "rank_groups",
    "run_system",
    "run_sequential_baseline",
    "register_knapsack_executable",
]

#: Table 5/6 column groups, in paper order.
GROUP_ORDER = ("RWCP-Sun", "COMPaS", "ETL-O2K")


def rank_groups(system_name: str) -> list[str]:
    """Site/machine label of every rank, in rank order."""
    labels: list[str] = []
    for placement in table3_system(system_name).placements:
        if placement.host == "rwcp-sun":
            label = "RWCP-Sun"
        elif placement.host.startswith("compas"):
            label = "COMPaS"
        elif placement.host == "etl-o2k":
            label = "ETL-O2K"
        else:  # pragma: no cover - future systems
            label = placement.host
        labels.extend([label] * placement.nprocs)
    return labels


@dataclass(frozen=True, slots=True)
class GroupStats:
    """One site column of Tables 5/6 (slave ranks only)."""

    group: str
    steals: Summary
    nodes: Summary

    def snapshot(self) -> "dict[str, object]":
        """Plain-data view for the metrics registry."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class RunResult:
    """Everything one parallel run yields."""

    system: str
    use_proxy: bool
    nprocs: int
    #: Simulated wall-clock of the whole job (startup + search + wrap-up).
    execution_time: float
    #: Search phase only (root push to termination broadcast done).
    rank_stats: tuple[RankStats, ...]
    best_value: int
    #: Kernel events scheduled while this run drove the simulator
    #: (BENCH_sim.json's events/sec denominator).
    events: int = 0
    #: Host-process seconds spent driving the run (not simulated time).
    wall_time: float = 0.0

    @property
    def total_nodes(self) -> int:
        return sum(s.nodes_traversed for s in self.rank_stats)

    @property
    def master_stats(self) -> RankStats:
        return self.rank_stats[MASTER_RANK]

    @property
    def total_steals(self) -> int:
        """Steal requests served by the master (Table 5 'Master')."""
        return self.master_stats.steal_requests

    def groups(self) -> list[GroupStats]:
        """Per-site slave summaries, Tables 5/6 style.

        The master rank is excluded from its group (it has its own
        column in the paper's tables).
        """
        labels = rank_groups(self.system)
        out: list[GroupStats] = []
        for group in GROUP_ORDER:
            ranks = [
                s
                for s, label in zip(self.rank_stats, labels)
                if label == group and not s.is_master
            ]
            if not ranks:
                continue
            out.append(
                GroupStats(
                    group=group,
                    steals=summarize([s.steal_requests for s in ranks]),
                    nodes=summarize([s.nodes_traversed for s in ranks]),
                )
            )
        return out

    def speedup(self, sequential_time: float) -> float:
        if self.execution_time <= 0:
            raise ValueError("run has no duration")
        return sequential_time / self.execution_time


def run_system(
    testbed: Testbed,
    system_name: str,
    instance: KnapsackInstance,
    params: Optional[SchedulingParams] = None,
    use_proxy: Optional[bool] = None,
) -> RunResult:
    """Run the knapsack job on one Table 3 system (blocking; drives the
    testbed's simulator until the job completes)."""
    if params is None:
        params = SchedulingParams()
    world = build_world(testbed, system_name, use_proxy=use_proxy)
    sim = testbed.sim
    t0 = sim.now
    events0 = sim.events_scheduled
    wall0 = time.perf_counter()
    rec = _obs.RECORDER
    if rec is not None:
        rec.start_kernel_sampler(sim)

    def driver() -> Iterator[Event]:
        return (yield from world.launch(knapsack_rank_main, instance, params))

    proc = sim.process(driver(), name=f"knapsack:{system_name}")
    results: list[RankStats] = sim.run(until=proc)
    spec = table3_system(system_name)
    resolved_proxy = spec.globus_device if use_proxy is None else use_proxy
    if rec is not None:
        rec.sim_span("run", system_name, t0, sim.now, track="driver",
                     nprocs=world.size, use_proxy=resolved_proxy,
                     events=sim.events_scheduled - events0)
        for s in results:
            rec.adopt(f"knapsack.{system_name}.rank{s.rank}", s)
    return RunResult(
        system=system_name,
        use_proxy=resolved_proxy,
        nprocs=world.size,
        execution_time=sim.now - t0,
        rank_stats=tuple(results),
        best_value=results[MASTER_RANK].global_best,
        events=sim.events_scheduled - events0,
        wall_time=time.perf_counter() - wall0,
    )


def run_sequential_baseline(
    testbed: Testbed,
    instance: KnapsackInstance,
    params: Optional[SchedulingParams] = None,
) -> float:
    """Sequential run on RWCP-Sun; returns its simulated time
    (the denominator-defining baseline of Table 4)."""
    if params is None:
        params = SchedulingParams()
    sim = testbed.sim
    t0 = sim.now
    proc = sim.process(
        run_sequential_sim(
            testbed.rwcp_sun, instance,
            node_cost=params.node_cost, prune=params.prune,
            engine=params.engine,
        ),
        name="knapsack:sequential",
    )
    sim.run(until=proc)
    return sim.now - t0


def register_knapsack_executable(
    registry: ExecutableRegistry, name: str = "knapsack"
) -> None:
    """Expose the parallel solver as an RMF executable.

    RSL usage::

        &(executable=knapsack)(count=8)(arguments=data.txt)
         (stage_in=data.txt)(stage_out=result.txt)

    The staged-in file is a serialized instance
    (:meth:`KnapsackInstance.serialize`); the job runs ``count`` ranks
    on the resource host and stages the result back out.
    """

    def knapsack_exe(ctx: ExecutionContext) -> Iterator[Event]:
        from repro.mpi.world import MPIWorld

        if not ctx.args:
            raise ValueError("knapsack needs the instance filename argument")
        instance = KnapsackInstance.parse(ctx.files.get_text(ctx.args[0]))
        params = SchedulingParams()
        world = MPIWorld(ctx.host.network)
        for _ in range(max(1, ctx.nprocs)):
            world.add_rank(ctx.host)
        results: list[RankStats] = yield from world.launch(
            knapsack_rank_main, instance, params
        )
        best = results[MASTER_RANK].global_best
        total = sum(s.nodes_traversed for s in results)
        ctx.write(f"best={best} nodes={total} procs={len(results)}\n")
        for out in ctx.spec.stage_out:
            ctx.files.put(out, f"{best} {total}\n")

    registry.register(name, knapsack_exe)
