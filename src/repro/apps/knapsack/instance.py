"""0-1 knapsack problem instances.

The paper's workload (§4.4): "In order to evaluate the performance
characteristics of the cluster system clear and normalize the problem,
we used such data as no branches were pruned, meaning entire search
space is traced by processes.  The number of items was 50."

"No branches pruned" disables *bound-based* pruning; the search tree is
still limited by capacity feasibility (an include-child exists only
when the item fits), which is what keeps a 50-item run at billions —
not 2^51 — of nodes (Table 6).  We reproduce that regime exactly:

* :func:`paper_instance` — 50 items, capacity chosen (analytically,
  via :func:`repro.apps.knapsack.analysis.tree_size`) so the full tree
  is in the paper's "billions of nodes" range;
* :func:`scaled_instance` — same statistical family, capacity bisected
  to a requested tree size, so CI-speed runs exercise the identical
  code path (the scaling substitution recorded in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.util.rng import make_rng

__all__ = ["KnapsackInstance", "random_instance", "scaled_instance", "paper_instance"]

#: Paper's item count.
PAPER_N_ITEMS = 50


@dataclass(frozen=True)
class KnapsackInstance:
    """An immutable 0-1 knapsack problem.

    Items are sorted by profit/weight ratio (descending) at
    construction — the canonical order for branch-and-bound, and what
    makes the greedy fractional bound valid.
    """

    profits: tuple[int, ...]
    weights: tuple[int, ...]
    capacity: int
    name: str = "knapsack"

    def __post_init__(self) -> None:
        if len(self.profits) != len(self.weights):
            raise ValueError("profits and weights must have equal length")
        if not self.profits:
            raise ValueError("instance needs at least one item")
        if self.capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {self.capacity}")
        if any(w <= 0 for w in self.weights):
            raise ValueError("weights must be positive")
        if any(p < 0 for p in self.profits):
            raise ValueError("profits must be non-negative")
        ratios = [p / w for p, w in zip(self.profits, self.weights)]
        if any(ratios[i] < ratios[i + 1] - 1e-12 for i in range(len(ratios) - 1)):
            raise ValueError("items must be sorted by profit/weight ratio (desc)")

    @property
    def n(self) -> int:
        return len(self.profits)

    @property
    def total_weight(self) -> int:
        return sum(self.weights)

    @staticmethod
    def from_items(
        profits, weights, capacity: int, name: str = "knapsack"
    ) -> "KnapsackInstance":
        """Build an instance, sorting items by ratio."""
        pairs = sorted(
            zip(profits, weights), key=lambda pw: pw[0] / pw[1], reverse=True
        )
        return KnapsackInstance(
            profits=tuple(int(p) for p, _ in pairs),
            weights=tuple(int(w) for _, w in pairs),
            capacity=int(capacity),
            name=name,
        )

    def serialize(self) -> str:
        """Text form (the master 'reads a data file', §4.3)."""
        lines = [f"{self.n} {self.capacity}"]
        lines += [f"{p} {w}" for p, w in zip(self.profits, self.weights)]
        return "\n".join(lines) + "\n"

    @staticmethod
    def parse(text: str, name: str = "knapsack") -> "KnapsackInstance":
        rows = [line.split() for line in text.strip().splitlines() if line.strip()]
        if not rows or len(rows[0]) != 2:
            raise ValueError("bad instance header (want 'n capacity')")
        n, capacity = int(rows[0][0]), int(rows[0][1])
        if len(rows) - 1 != n:
            raise ValueError(f"expected {n} item rows, got {len(rows) - 1}")
        profits = [int(r[0]) for r in rows[1:]]
        weights = [int(r[1]) for r in rows[1:]]
        return KnapsackInstance.from_items(profits, weights, capacity, name=name)


def random_instance(
    n: int,
    capacity: Optional[int] = None,
    max_weight: int = 50,
    seed=None,
    name: Optional[str] = None,
) -> KnapsackInstance:
    """Uncorrelated random instance (weights/profits ~ U[1, max])."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = make_rng(seed)
    weights = rng.integers(1, max_weight + 1, size=n)
    profits = rng.integers(1, max_weight + 1, size=n)
    if capacity is None:
        capacity = int(weights.sum()) // 2
    return KnapsackInstance.from_items(
        profits.tolist(), weights.tolist(), capacity,
        name=name or f"random-{n}",
    )


def scaled_instance(
    n: int = 32,
    target_nodes: int = 200_000,
    seed=None,
    tolerance: float = 0.5,
) -> KnapsackInstance:
    """An instance whose *full* (unpruned) tree has ≈ ``target_nodes``.

    Bisects on capacity using the analytic tree-size DP, so the
    returned instance is guaranteed (not hoped) to be in range:
    within ``(1 ± tolerance) * target_nodes``.
    """
    from repro.apps.knapsack.analysis import tree_size

    if target_nodes < n + 1:
        raise ValueError(f"target_nodes must be at least n+1 = {n + 1}")
    rng = make_rng(seed)
    weights = rng.integers(1, 51, size=n).tolist()
    profits = rng.integers(1, 51, size=n).tolist()
    lo, hi = 0, int(sum(weights))
    # Tree size grows monotonically with capacity: bisect.
    best_cap, best_err = 0, float("inf")
    while lo <= hi:
        mid = (lo + hi) // 2
        size = tree_size(
            KnapsackInstance.from_items(profits, weights, mid)
        )
        err = abs(size - target_nodes)
        if err < best_err:
            best_cap, best_err = mid, err
        if size < target_nodes:
            lo = mid + 1
        elif size > target_nodes:
            hi = mid - 1
        else:
            break
    inst = KnapsackInstance.from_items(
        profits, weights, best_cap, name=f"scaled-{n}-{target_nodes}"
    )
    achieved = tree_size(inst)
    if not (1 - tolerance) * target_nodes <= achieved <= (1 + tolerance) * target_nodes:
        raise ValueError(
            f"could not hit target tree size {target_nodes} "
            f"(best: {achieved} at capacity {best_cap}); try another seed"
        )
    return inst


def paper_instance(seed=None) -> KnapsackInstance:
    """The §4.4 workload: 50 items, full tree in the billions of nodes.

    Too large to *execute* in Python, but cheap to construct and
    analyse — Table 6's totals are checked against its analytic tree
    size.  ``tree_size(paper_instance())`` is a few billion, matching
    the paper's "number of nodes ... shown in billions".
    """
    return scaled_instance(
        n=PAPER_N_ITEMS, target_nodes=4_000_000_000, seed=seed, tolerance=0.9
    )
