"""The parallel 0-1 knapsack: master/slave self-scheduling (§4.3).

The paper's algorithm, verbatim in structure:

* A master reads the data file and pushes the root node onto its
  stack.  It repeats the branch operation ``interval`` times, then
  serves pending steal requests, sending ``stealunit`` nodes from the
  *top* of its stack to each requesting slave.  If a slave has sent
  back nodes, the master receives them and pushes them onto the stack.
* A slave repeats the branch operation until its stack is empty, then
  sends a steal request to the master.  A slave sends back
  ``backunit`` nodes when it has too many nodes on its stack.

"interval is the frequency of the master's check of a slave's steal
requests, and stealunit is the amount of nodes to steal."

Two aspects the paper leaves implicit are made explicit (and
ablatable) here:

* **Serve reserve.**  The master never hands out its entire stack: it
  keeps ``keep_on_serve`` nodes so it retains work (and with it the
  big shallow subtrees) to keep feeding later requesters.  Requesters
  it cannot serve are parked and served as soon as work exists again.
* **Circulation.**  Send-back is what keeps the system balanced: a
  slave holding a large subtree returns its *shallowest* pending
  nodes (the biggest chunks) once its stack exceeds
  ``back_threshold``, and the master redistributes them.  Without it,
  whichever slave receives the root region would finish the tree
  alone — the starvation mode our ablation bench demonstrates.

Termination: a slave that requests work while no work exists is
parked; when the master's stack is empty, no nodes are in flight, and
every slave is parked, the master broadcasts termination.  A parked
slave's stack is empty by construction, so this is sound.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, Literal, Optional

from repro.obs import spans as _obs

from repro.apps.knapsack.instance import KnapsackInstance
from repro.apps.knapsack.search import Node, SearchState
from repro.apps.knapsack.sequential import DEFAULT_NODE_COST
from repro.mpi.collectives import bcast, reduce
from repro.mpi.communicator import Communicator
from repro.simnet.kernel import Event

__all__ = ["SchedulingParams", "RankStats", "knapsack_rank_main", "MASTER_RANK"]

MASTER_RANK = 0

#: Message tags.
TAG_STEAL_REQ = 1
TAG_WORK = 2
TAG_BACK = 3

#: Wire size of one search node (three integers + slack).
NODE_BYTES = 16
#: Wire size of control-only messages.
CTRL_BYTES = 32


@dataclass(frozen=True, slots=True)
class SchedulingParams:
    """The knobs of §4.3/§4.4 ("We varied a stealunit, interval, and
    backunit and took the best combination")."""

    #: Branch operations between the master's steal-request checks.
    interval: int = 25
    #: Nodes sent per steal.
    stealunit: int = 8
    #: Nodes a slave sends back per send-back event.
    backunit: int = 4
    #: Stack depth that counts as "too many nodes on the stack".
    #: ``None`` = auto (see :meth:`resolve_back_threshold`).  Note that
    #: for capacity-limited instances the DFS stack holds one pending
    #: sibling per *two-child* branching, so depths stay near
    #: ``log2(subtree)`` — the threshold must sit well below the item
    #: count or send-back never fires and the endgame serializes on
    #: whichever slave holds the last big subtree (the tuning sweep in
    #: ``benchmarks/bench_tuning.py`` shows the cliff).
    back_threshold: Optional[int] = None
    #: Batches between a slave's send-back checks.  Send-back is
    #: *periodic*: every ``back_every`` batches a slave with more than
    #: ``back_threshold`` stacked nodes returns its surplus bottom
    #: (largest) nodes.  A purely depth-triggered rule is fragile for
    #: this tree family — DFS stacks hover near 8 regardless of how
    #: much work remains, so a slave holding a multi-million-node
    #: subtree can starve everyone else through the whole endgame.
    back_every: int = 64
    #: Nodes the master retains when serving a steal.
    keep_on_serve: int = 2
    #: Which end of the master's stack steals come from.  "top" is the
    #: paper's wording (deep nodes, fine grain); "bottom" is classic
    #: steal-the-oldest (coarse grain) — compared in the ablation.
    steal_from: Literal["top", "bottom"] = "top"
    #: Reference-CPU seconds per branch operation.
    node_cost: float = DEFAULT_NODE_COST
    #: Enable bound pruning (the paper's runs use False).
    prune: bool = False
    #: With pruning: piggyback the best-known value on steal traffic
    #: so every process prunes against the *global* incumbent, not
    #: just its own.  An extension beyond the paper (its runs pruned
    #: nothing); ablated in ``tests/knapsack/test_shared_bounds.py``.
    share_bounds: bool = False
    #: Search-engine implementation: ``"fast"`` (vc-encoded chunked
    #: kernel + fused slave batches), ``"seed"`` (the original
    #: tuple-stack loop with one simulator yield per batch), or
    #: ``"auto"`` (defer to ``REPRO_SEARCH_ENGINE``, default fast).
    #: Purely an implementation knob: simulated results are identical
    #: (the determinism suite compares them); only host-CPU time
    #: differs.
    engine: Literal["auto", "fast", "seed"] = "auto"

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("interval must be >= 1")
        if self.stealunit < 1:
            raise ValueError("stealunit must be >= 1")
        if self.backunit < 1:
            raise ValueError("backunit must be >= 1")
        if self.keep_on_serve < 0:
            raise ValueError("keep_on_serve must be >= 0")
        if self.node_cost < 0:
            raise ValueError("node_cost must be >= 0")
        if self.steal_from not in ("top", "bottom"):
            raise ValueError(f"steal_from must be 'top' or 'bottom'")
        if self.back_every < 1:
            raise ValueError("back_every must be >= 1")
        if self.back_threshold is not None:
            if self.back_threshold != 0 and self.back_threshold <= self.backunit:
                raise ValueError("back_threshold must exceed backunit (or be 0)")
        if self.share_bounds and not self.prune:
            raise ValueError("share_bounds requires prune=True")
        if self.engine not in ("auto", "fast", "seed"):
            raise ValueError(f"engine must be 'auto', 'fast' or 'seed'")

    def resolve_back_threshold(self, n_items: int) -> int:
        """The effective "too many" depth (0 disables send-back).

        The auto value is tuned for the paper's capacity-limited
        instance family, where working stack depths sit around
        ``log2(subtree size)`` rather than near ``n_items``.
        """
        if self.back_threshold is not None:
            return self.back_threshold
        return max(self.backunit + 2, 6)


@dataclass
class RankStats:
    """Per-process accounting behind Tables 4, 5 and 6."""

    rank: int
    host: str
    is_master: bool
    nodes_traversed: int = 0
    #: Slaves: steal requests sent.  Master: steal requests served
    #: with work (the Table 5 "Master" column).
    steal_requests: int = 0
    #: Nodes shipped away (master→slave work, slave→master backs).
    nodes_sent: int = 0
    #: Nodes received (stolen or sent back).
    nodes_received: int = 0
    #: Send-back events (slave→master).
    back_transfers: int = 0
    best_value: int = 0
    #: Global optimum as agreed by the final reduction.
    global_best: int = 0
    finished_at: float = 0.0
    #: Simulated seconds this rank spent waiting for work (a slave's
    #: steal-request → work-arrival gaps summed; 0 for the master).
    idle_time: float = 0.0

    def snapshot(self) -> "dict[str, object]":
        """Plain-data view for the metrics registry."""
        return dataclasses.asdict(self)


def _work_bytes(nodes: "list[Node]") -> int:
    return CTRL_BYTES + NODE_BYTES * len(nodes)


def knapsack_rank_main(
    comm: Communicator,
    instance: KnapsackInstance,
    params: Optional[SchedulingParams] = None,
) -> Iterator[Event]:
    """Per-rank program; run it with
    :meth:`repro.mpi.world.MPIWorld.launch`.  Returns its
    :class:`RankStats`."""
    if params is None:
        params = SchedulingParams()
    if comm.rank == MASTER_RANK:
        stats = yield from _master(comm, instance, params)
    else:
        stats = yield from _slave(comm, instance, params)
    # Agree on the answer (and implicitly barrier before teardown).
    best = yield from reduce(comm, stats.best_value, max, root=MASTER_RANK)
    stats.global_best = (yield from bcast(comm, best, root=MASTER_RANK))
    stats.finished_at = comm.wtime()
    return stats


# -- master ---------------------------------------------------------------


def _master(
    comm: Communicator, instance: KnapsackInstance, p: SchedulingParams
) -> Iterator[Event]:
    host = comm.host
    state = SearchState(instance, prune=p.prune, engine=p.engine)
    state.push_root()
    stats = RankStats(comm.rank, host.name, is_master=True)
    nslaves = comm.size - 1
    idle: list[int] = []
    #: Nodes handed to slaves and not yet known-consumed.  Used only
    #: for the termination argument's bookkeeping assertions.
    take = (
        state.take_from_top if p.steal_from == "top" else state.take_from_bottom
    )

    def servable() -> int:
        return max(0, state.depth - p.keep_on_serve)

    def serve(slave: int) -> Iterator[Event]:
        count = min(p.stealunit, max(1, servable()))
        nodes = take(count)
        stats.steal_requests += 1
        stats.nodes_sent += len(nodes)
        rec = _obs.RECORDER
        if rec is not None:
            rec.sim_instant("steal", "serve", comm.sim.now,
                            track=f"rank:{comm.rank}",
                            slave=slave, nodes=len(nodes))
        work = (nodes, state.best_value) if p.share_bounds else nodes
        yield from comm.send(work, dest=slave, tag=TAG_WORK,
                             nbytes=_work_bytes(nodes))

    def absorb_bound(value) -> None:
        if value is not None and value > state.best_value:
            state.best_value = value

    def handle(payload, status) -> Iterator[Event]:
        if status.tag == TAG_STEAL_REQ:
            if p.share_bounds:
                absorb_bound(payload)
            if servable() > 0:
                yield from serve(status.source)
            else:
                idle.append(status.source)
        elif status.tag == TAG_BACK:
            if p.share_bounds:
                nodes, bound = payload
                absorb_bound(bound)
            else:
                nodes = payload
            stats.nodes_received += len(nodes)
            state.push_nodes(nodes)
        else:  # pragma: no cover - protocol violation
            raise RuntimeError(f"master got unexpected tag {status.tag}")

    while True:
        if not state.exhausted:
            ops = state.branch(p.interval)
            if p.node_cost:
                yield host.compute(ops * p.node_cost)
            # Drain whatever arrived during the batch.
            while comm.iprobe() is not None:
                payload, status = yield from comm.recv()
                yield from handle(payload, status)
            # Work may now exist for parked slaves.
            while idle and servable() > 0:
                yield from serve(idle.pop())
            continue
        # Master's stack is empty.
        if nslaves == 0 or len(idle) == nslaves:
            break
        # Block for the next event; work may come back via TAG_BACK.
        payload, status = yield from comm.recv()
        yield from handle(payload, status)
        while idle and servable() > 0:
            yield from serve(idle.pop())

    for slave in range(1, comm.size):
        yield from comm.send(None, dest=slave, tag=TAG_WORK, nbytes=CTRL_BYTES)
    stats.nodes_traversed = state.nodes_traversed
    stats.best_value = state.best_value
    return stats


# -- slave ----------------------------------------------------------------


def _slave(
    comm: Communicator, instance: KnapsackInstance, p: SchedulingParams
) -> Iterator[Event]:
    host = comm.host
    state = SearchState(instance, prune=p.prune, engine=p.engine)
    stats = RankStats(comm.rank, host.name, is_master=False)
    back_threshold = p.resolve_back_threshold(instance.n)
    batches_since_back = 0
    # A slave's only observable interactions between communication
    # points are its compute charges, so with the fast engine its
    # batches are *fused*: branch_fused runs whole batches in one
    # Python frame until exhaustion or a due send-back, and the
    # accumulated cost is charged in a single compute yield.  The
    # master cannot be fused the same way — its per-batch iprobe drain
    # is what bounds steal-request latency.
    fused = state.engine == "fast"

    while True:
        if state.exhausted:
            # "If the stack is empty, the slave sends a steal request."
            t_idle = comm.sim.now
            req = state.best_value if p.share_bounds else None
            yield from comm.send(req, dest=MASTER_RANK, tag=TAG_STEAL_REQ,
                                 nbytes=CTRL_BYTES)
            stats.steal_requests += 1
            payload, _ = yield from comm.recv(source=MASTER_RANK, tag=TAG_WORK)
            stats.idle_time += comm.sim.now - t_idle
            rec = _obs.RECORDER
            if rec is not None:
                rec.sim_span("steal", "idle_wait", t_idle, comm.sim.now,
                             track=f"rank:{comm.rank}",
                             terminated=payload is None)
            if payload is None:
                break  # terminated
            if p.share_bounds:
                nodes, bound = payload
                if bound > state.best_value:
                    state.best_value = bound
            else:
                nodes = payload
            stats.nodes_received += len(nodes)
            state.push_nodes(nodes)
            batches_since_back = 0
            continue
        if fused:
            cost, batches_since_back = state.branch_fused(
                p.interval, p.node_cost, batches_since_back,
                p.back_every, back_threshold,
            )
            if p.node_cost:
                yield host.compute(cost)
        else:
            ops = state.branch(p.interval)
            if p.node_cost:
                yield host.compute(ops * p.node_cost)
            batches_since_back += 1
        if (
            back_threshold
            and batches_since_back >= p.back_every
            and state.depth > back_threshold
        ):
            # "A slave sends back backunit nodes when the slave has too
            # many nodes on the stack."  The shallowest pending nodes
            # go back — the large subtrees this slave won't reach soon.
            batches_since_back = 0
            nodes = state.take_from_bottom(
                min(p.backunit, state.depth - back_threshold)
            )
            stats.back_transfers += 1
            stats.nodes_sent += len(nodes)
            rec = _obs.RECORDER
            if rec is not None:
                rec.sim_instant("steal", "back_transfer", comm.sim.now,
                                track=f"rank:{comm.rank}", nodes=len(nodes))
            back = (nodes, state.best_value) if p.share_bounds else nodes
            yield from comm.send(back, dest=MASTER_RANK, tag=TAG_BACK,
                                 nbytes=_work_bytes(nodes))
    stats.nodes_traversed = state.nodes_traversed
    stats.best_value = state.best_value
    return stats
