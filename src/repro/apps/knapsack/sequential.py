"""Sequential 0-1 knapsack branch-and-bound.

The Table 4 baseline: "we ran the sequential version of the 0-1
knapsack problem on RWCP-Sun, and its execution time was used to
calculate the speedup."

Two entry points:

* :func:`solve` — plain Python, for host-process use (tests, tuning);
* :func:`run_sequential_sim` — the same search inside the simulator,
  charging ``node_cost`` reference-CPU seconds per branch operation on
  a given host, producing the simulated baseline time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.apps.knapsack.instance import KnapsackInstance
from repro.apps.knapsack.search import SearchState
from repro.simnet.host import Host
from repro.simnet.kernel import Event

__all__ = ["SequentialResult", "solve", "run_sequential_sim"]

#: Reference-CPU seconds per branch operation.  Calibration constant:
#: the paper's absolute per-node cost and tree size are both unknown
#: (Table 4's cells are illegible in the surviving text), but their
#: *product* relative to the proxy's ≈25 ms message latency is pinned
#: by the measured ≈3.5 % proxy overhead on the wide-area cluster.
#: 100 µs/node against our 20M-node instances reproduces that ratio
#: (see EXPERIMENTS.md, Table 4).
DEFAULT_NODE_COST = 100e-6


@dataclass(frozen=True, slots=True)
class SequentialResult:
    best_value: int
    nodes_traversed: int
    #: Simulated seconds (0 for host-process solves).
    sim_time: float = 0.0


def solve(
    instance: KnapsackInstance, prune: bool = False, engine: "str | None" = None
) -> SequentialResult:
    """Solve in the host process (real CPU, zero simulated time)."""
    state = SearchState(instance, prune=prune, engine=engine)
    state.push_root()
    state.run_to_exhaustion()
    return SequentialResult(state.best_value, state.nodes_traversed)


def run_sequential_sim(
    host: Host,
    instance: KnapsackInstance,
    node_cost: float = DEFAULT_NODE_COST,
    prune: bool = False,
    batch: int = 4096,
    engine: "str | None" = None,
) -> Iterator[Event]:
    """Generator: the sequential solver as a simulated process.

    Branch operations run for real (the tree is actually traversed) in
    ``batch``-sized chunks, each charged to the host's clock — so the
    simulated duration is ``nodes * node_cost / cpu_speed``, the
    Table 4 baseline definition.
    """
    state = SearchState(instance, prune=prune, engine=engine)
    state.push_root()
    start = host.sim.now
    while not state.exhausted:
        ops = state.branch(batch)
        yield host.compute(ops * node_cost)
    return SequentialResult(
        state.best_value, state.nodes_traversed, host.sim.now - start
    )
