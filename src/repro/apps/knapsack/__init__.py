"""The paper's benchmark: parallel 0-1 knapsack branch-and-bound.

"We used a tree search problem as a benchmark ... Since a parallel
tree search problem has a coarse grained and asynchronous parallelism,
it is considered suitable for metacomputing environments." (§5)

* :mod:`~repro.apps.knapsack.instance` — problem instances, including
  the paper's no-pruning 50-item family;
* :mod:`~repro.apps.knapsack.search` — the branch operation and stack;
* :mod:`~repro.apps.knapsack.analysis` — analytic tree size / optimum
  (vectorized DP) for verification;
* :mod:`~repro.apps.knapsack.sequential` — the Table 4 baseline;
* :mod:`~repro.apps.knapsack.master_slave` — the self-scheduling
  work-stealing algorithm;
* :mod:`~repro.apps.knapsack.driver` — runs on Table 3 systems and
  aggregates Tables 4/5/6.
"""

from repro.apps.knapsack.analysis import (
    depth_profile,
    optimal_selection,
    optimal_value,
    tree_size,
)
from repro.apps.knapsack.driver import (
    GroupStats,
    RunResult,
    rank_groups,
    register_knapsack_executable,
    run_sequential_baseline,
    run_system,
)
from repro.apps.knapsack.instance import (
    KnapsackInstance,
    paper_instance,
    random_instance,
    scaled_instance,
)
from repro.apps.knapsack.master_slave import (
    MASTER_RANK,
    RankStats,
    SchedulingParams,
    knapsack_rank_main,
)
from repro.apps.knapsack.search import Node, SearchState, root_node
from repro.apps.knapsack.sequential import (
    DEFAULT_NODE_COST,
    SequentialResult,
    run_sequential_sim,
    solve,
)

__all__ = [
    "DEFAULT_NODE_COST",
    "GroupStats",
    "KnapsackInstance",
    "MASTER_RANK",
    "Node",
    "RankStats",
    "RunResult",
    "SchedulingParams",
    "SearchState",
    "SequentialResult",
    "depth_profile",
    "knapsack_rank_main",
    "optimal_selection",
    "optimal_value",
    "paper_instance",
    "random_instance",
    "rank_groups",
    "register_knapsack_executable",
    "root_node",
    "run_sequential_baseline",
    "run_sequential_sim",
    "run_system",
    "scaled_instance",
    "solve",
    "tree_size",
]
