"""The branch operation and the search stack (§4.3).

"Each node of a search tree is represented by a set of (index, value,
capacity). ... The search tree is represented by a stack onto which
nodes are pushed in a search procedure."

Externally a node is a plain tuple ``(index, value, capacity)`` — that
is what work-stealing ships between ranks and what the tests assert
on.  Internally :class:`SearchState` has two engines:

* ``engine="seed"`` — the original tuple-stack loop, kept verbatim as
  the reference implementation and the baseline for ``BENCH_sim.json``;
* ``engine="fast"`` (default) — the chunked kernel.  Nodes live on the
  stack as single packed ints, ``node = (value << shift | capacity)
  << ibits | index``, so no tuples are built or torn apart at all: the
  exclude-child is literally ``node + 1`` and the include-child is one
  add of the precomputed per-item delta ``((profit << shift) - weight)
  << ibits) + 1``.  A *dead-chain skip* consumes
  subtrees in which no remaining item fits — provably a single-child
  chain of ``n - index + 1`` nodes with constant value and no net
  stack effect — in O(1) instead of one loop iteration per node (on
  the Table 4 instance family that is ~60 % of all branch operations).
  The skip is exact: node counts, stack contents at every batch
  boundary, and the best value observable at any batch boundary are
  identical to the seed engine (guarded by
  ``tests/knapsack/test_engine_equivalence.py``).

The engine default can be forced globally with
``REPRO_SEARCH_ENGINE=seed|fast``; per-run selection goes through
:attr:`~repro.apps.knapsack.master_slave.SchedulingParams.engine`.

The branch operation (verbatim from the paper):

1. pop a node from a stack
2. check the node
3. if the node has sub nodes, push them (one or two sub nodes) onto
   the stack
"""

from __future__ import annotations

import os
from typing import Optional

from repro.apps.knapsack.instance import KnapsackInstance

__all__ = ["SearchState", "Node", "root_node", "resolve_engine"]

#: A search-tree node: (index, value, capacity).
Node = tuple[int, int, int]


def root_node(instance: KnapsackInstance) -> Node:
    """index=0 (no item fixed), value=0, full capacity."""
    return (0, 0, instance.capacity)


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an engine request to ``"fast"`` or ``"seed"``.

    ``None``/``"auto"`` defer to ``REPRO_SEARCH_ENGINE`` (default
    ``"fast"``).
    """
    if engine in (None, "auto"):
        engine = os.environ.get("REPRO_SEARCH_ENGINE", "fast")
    if engine not in ("fast", "seed"):
        raise ValueError(f"unknown search engine {engine!r} (want 'fast' or 'seed')")
    return engine


class SearchState:
    """One process's stack plus its traversal counters.

    ``prune=True`` adds the greedy fractional upper bound
    (Martello–Toth U1 on ratio-sorted items); the paper's runs use
    ``prune=False`` ("no branches were pruned").
    """

    __slots__ = (
        "instance",
        "stack",
        "best_value",
        "nodes_traversed",
        "prune",
        "engine",
        "_profits",
        "_weights",
        "_n",
        "_wprefix",
        "_pprefix",
        "_shift",
        "_mask",
        "_ibits",
        "_imask",
        "_d2",
        "_wmin",
    )

    def __init__(
        self,
        instance: KnapsackInstance,
        prune: bool = False,
        engine: Optional[str] = None,
    ) -> None:
        self.instance = instance
        self.stack: list = []
        self.best_value = 0
        self.nodes_traversed = 0
        self.prune = prune
        self.engine = resolve_engine(engine)
        self._profits = list(instance.profits)
        self._weights = list(instance.weights)
        self._n = instance.n
        if prune:
            # Prefix sums for the fractional bound.
            wp = [0]
            pp = [0]
            for w, p in zip(self._weights, self._profits):
                wp.append(wp[-1] + w)
                pp.append(pp[-1] + p)
            self._wprefix = wp
            self._pprefix = pp
        else:
            self._wprefix = self._pprefix = None  # type: ignore[assignment]
        if self.engine == "fast":
            # Packed encoding: index in the low ``ibits`` bits, capacity
            # in the next ``shift`` bits (one bit of headroom so carries
            # from the value field never reach it), value above.  The
            # exclude-child of a node is then ``node + 1`` (index += 1,
            # value/capacity untouched) and the include-child is
            # ``node + _d2[item]``; feasibility is
            # ``_weights[item] <= (node >> ibits) & _mask``.
            shift = max(1, instance.capacity.bit_length() + 1)
            ibits = (self._n + 1).bit_length()
            self._shift = shift
            self._mask = (1 << shift) - 1
            self._ibits = ibits
            self._imask = (1 << ibits) - 1
            self._d2 = [
                (((p << shift) - w) << ibits) + 1
                for p, w in zip(self._profits, self._weights)
            ]
            # _wmin[i] = min weight among items i..n-1 (sentinel past the
            # end): wmin[i] > capacity  <=>  the subtree is a dead chain.
            wmin = [1 << (shift + 1)] * (self._n + 1)
            for i in range(self._n - 1, -1, -1):
                w = self._weights[i]
                wmin[i] = w if w < wmin[i + 1] else wmin[i + 1]
            self._wmin = wmin
        else:
            self._shift = self._mask = self._ibits = self._imask = 0
            self._d2 = self._wmin = None  # type: ignore[assignment]

    # -- stack management (work stealing operates here) ------------------

    def push_root(self) -> None:
        if self.engine == "fast":
            self.stack.append(self.instance.capacity << self._ibits)
        else:
            self.stack.append(root_node(self.instance))

    def push_nodes(self, nodes: "list[Node]") -> None:
        if self.engine == "fast":
            shift = self._shift
            ibits = self._ibits
            self.stack.extend(
                (((v << shift) | c) << ibits) | i for i, v, c in nodes
            )
        else:
            self.stack.extend(nodes)

    def _decode(self, packed: "list[int]") -> "list[Node]":
        shift = self._shift
        mask = self._mask
        ibits = self._ibits
        imask = self._imask
        return [
            (node & imask, node >> (ibits + shift), (node >> ibits) & mask)
            for node in packed
        ]

    def take_from_top(self, count: int) -> "list[Node]":
        """Remove up to ``count`` nodes from the *top* of the stack.

        "The master sends stealunit nodes on top of its stack."  In a
        DFS stack the top holds the most recently pushed (deepest)
        nodes — small subtrees, so stealing is fine-grained: many
        steal messages, good balance (the Table 5/6 trade-off).
        """
        if count <= 0:
            return []
        taken = self.stack[-count:]
        del self.stack[-count:]
        return self._decode(taken) if self.engine == "fast" else taken

    def take_from_bottom(self, count: int) -> "list[Node]":
        """Remove up to ``count`` nodes from the *bottom* of the stack.

        Bottom nodes are the shallowest pending siblings — the largest
        subtrees the owner won't reach for a long time.  Used for
        send-back (returning big work to the master for
        redistribution) and available as an alternative steal end for
        the grain ablation.
        """
        if count <= 0:
            return []
        taken = self.stack[:count]
        del self.stack[:count]
        return self._decode(taken) if self.engine == "fast" else taken

    @property
    def depth(self) -> int:
        return len(self.stack)

    @property
    def exhausted(self) -> bool:
        return not self.stack

    # -- the branch operation -----------------------------------------------

    def upper_bound(self, index: int, value: int, capacity: int) -> float:
        """Greedy fractional bound for the subtree at this node."""
        wp, pp = self._wprefix, self._pprefix
        assert wp is not None and pp is not None
        base_w = wp[index]
        limit = base_w + capacity
        # Largest j >= index with prefix weight <= limit: linear scan is
        # fine (items are few); bisect would also work.
        j = index
        n = self._n
        while j < n and wp[j + 1] <= limit:
            j += 1
        bound = value + (pp[j] - pp[index])
        if j < n:
            residual = limit - wp[j]
            bound += self._profits[j] * residual / self._weights[j]
        return bound

    def branch(self, max_ops: int) -> int:
        """Run up to ``max_ops`` branch operations ("the master repeats
        the branch operation *interval* times"); returns ops done.

        Stops early when the stack empties.
        """
        if self.engine == "fast":
            if self.prune:
                return self._branch_fast_pruned(max_ops)
            return self._branch_fast(max_ops)
        return self._branch_seed(max_ops)

    def _branch_seed(self, max_ops: int) -> int:
        """The original tuple-stack loop (reference implementation)."""
        stack = self.stack
        profits = self._profits
        weights = self._weights
        n = self._n
        best = self.best_value
        prune = self.prune
        ops = 0
        while stack and ops < max_ops:
            index, value, capacity = stack.pop()
            ops += 1
            if value > best:
                best = value
            if index == n:
                continue
            if prune and self.upper_bound(index, value, capacity) <= best:
                continue
            stack.append((index + 1, value, capacity))
            w = weights[index]
            if w <= capacity:
                stack.append((index + 1, value + profits[index], capacity - w))
        self.best_value = best
        self.nodes_traversed += ops
        return ops

    def _branch_fast(self, max_ops: int) -> int:
        """Chunked unpruned loop on the packed-int stack.

        The dead-chain skip: once ``min(weights[index:]) > capacity``
        nothing further fits, so every node down to the leaf has
        exactly one (exclude) child with the same value and capacity —
        ``n - index + 1`` branch operations that only decrement the
        budget.  A batch boundary falling inside the chain pushes the
        exact resume node (``node + budget`` advances only the index
        field), so batch-boundary state matches the seed loop node for
        node.

        ``best`` is tracked as the max *packed* node: packing is
        monotonic in value (the top field), so it decodes to exactly
        the seed loop's best value at every batch boundary.
        """
        stack = self.stack
        weights = self._weights
        d2 = self._d2
        wmin = self._wmin
        mask = self._mask
        ibits = self._ibits
        imask = self._imask
        np1 = self._n + 1
        best = self.best_value << (self._shift + ibits)
        pop = stack.pop
        append = stack.append
        budget = max_ops
        while budget and stack:
            node = pop()
            i = node & imask
            c = (node >> ibits) & mask
            if wmin[i] > c:
                if node > best:
                    best = node
                length = np1 - i
                if length <= budget:
                    budget -= length
                else:
                    append(node + budget)
                    budget = 0
                continue
            budget -= 1
            if node > best:
                best = node
            append(node + 1)
            if weights[i] <= c:
                append(node + d2[i])
        ops = max_ops - budget
        self.best_value = best >> (self._shift + ibits)
        self.nodes_traversed += ops
        return ops

    def _branch_fast_pruned(self, max_ops: int) -> int:
        """Pruned loop on the packed-int stack, fractional bound inlined.

        Mirrors the seed loop operation for operation (same bound
        floats, same prune decisions, same traversal) — the chain skip
        does not apply because the bound may cut a chain short.
        """
        stack = self.stack
        profits = self._profits
        weights = self._weights
        wp = self._wprefix
        pp = self._pprefix
        n = self._n
        shift = self._shift
        mask = self._mask
        ibits = self._ibits
        imask = self._imask
        d2 = self._d2
        best = self.best_value
        pop = stack.pop
        append = stack.append
        ops = 0
        while stack and ops < max_ops:
            node = pop()
            ops += 1
            i = node & imask
            vc = node >> ibits
            v = vc >> shift
            if v > best:
                best = v
            if i == n:
                continue
            c = vc & mask
            limit = wp[i] + c
            j = i
            while j < n and wp[j + 1] <= limit:
                j += 1
            bound = v + (pp[j] - pp[i])
            if j < n:
                residual = limit - wp[j]
                bound += profits[j] * residual / weights[j]
            if bound <= best:
                continue
            append(node + 1)
            if weights[i] <= c:
                append(node + d2[i])
        self.best_value = best
        self.nodes_traversed += ops
        return ops

    def branch_fused(
        self,
        interval: int,
        node_cost: float,
        batches_since_back: int,
        back_every: int,
        back_threshold: int,
    ) -> "tuple[float, int]":
        """Run consecutive ``interval``-op batches in one Python frame.

        Equivalent to ``branch(interval)`` in a loop with the slave's
        send-back check between batches, accumulating each batch's
        ``ops * node_cost`` — but without re-entering the simulator per
        batch.  Stops when the stack empties or a send-back is due
        (``batches_since_back >= back_every`` and depth above
        ``back_threshold``, checked at every batch boundary exactly as
        the per-batch slave loop does).  Returns ``(accumulated_cost,
        batches_since_back)``.
        """
        if self.engine == "fast" and not self.prune:
            return self._branch_fused_fast(
                interval, node_cost, batches_since_back, back_every, back_threshold
            )
        cost = 0.0
        while True:
            ops = self.branch(interval)
            cost += ops * node_cost
            batches_since_back += 1
            if not self.stack:
                break
            if (
                back_threshold
                and batches_since_back >= back_every
                and len(self.stack) > back_threshold
            ):
                break
        return cost, batches_since_back

    def _branch_fused_fast(
        self,
        interval: int,
        node_cost: float,
        batches_since_back: int,
        back_every: int,
        back_threshold: int,
    ) -> "tuple[float, int]":
        stack = self.stack
        weights = self._weights
        d2 = self._d2
        wmin = self._wmin
        mask = self._mask
        ibits = self._ibits
        imask = self._imask
        np1 = self._n + 1
        best = self.best_value << (self._shift + ibits)
        pop = stack.pop
        append = stack.append
        cost = 0.0
        total_ops = 0
        while True:
            budget = interval
            while budget and stack:
                node = pop()
                i = node & imask
                c = (node >> ibits) & mask
                if wmin[i] > c:
                    if node > best:
                        best = node
                    length = np1 - i
                    if length <= budget:
                        budget -= length
                    else:
                        append(node + budget)
                        budget = 0
                    continue
                budget -= 1
                if node > best:
                    best = node
                append(node + 1)
                if weights[i] <= c:
                    append(node + d2[i])
            ops = interval - budget
            total_ops += ops
            cost += ops * node_cost
            batches_since_back += 1
            if not stack:
                break
            if (
                back_threshold
                and batches_since_back >= back_every
                and len(stack) > back_threshold
            ):
                break
        self.best_value = best >> (self._shift + ibits)
        self.nodes_traversed += total_ops
        return cost, batches_since_back

    def run_to_exhaustion(self) -> None:
        """Branch until the stack empties (the sequential solver core)."""
        while self.stack:
            self.branch(1 << 30)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SearchState depth={self.depth} traversed={self.nodes_traversed} "
            f"best={self.best_value}>"
        )
