"""The branch operation and the search stack (§4.3).

"Each node of a search tree is represented by a set of (index, value,
capacity). ... The search tree is represented by a stack onto which
nodes are pushed in a search procedure."

Nodes are plain tuples ``(index, value, capacity)`` — this is the
innermost loop of every experiment, so it is written for CPython speed
(local-variable caching, no attribute lookups, no allocation beyond
the stack itself), per the profiling-first guidance this repo follows.

The branch operation (verbatim from the paper):

1. pop a node from a stack
2. check the node
3. if the node has sub nodes, push them (one or two sub nodes) onto
   the stack
"""

from __future__ import annotations

from typing import Optional

from repro.apps.knapsack.instance import KnapsackInstance

__all__ = ["SearchState", "Node", "root_node"]

#: A search-tree node: (index, value, capacity).
Node = tuple[int, int, int]


def root_node(instance: KnapsackInstance) -> Node:
    """index=0 (no item fixed), value=0, full capacity."""
    return (0, 0, instance.capacity)


class SearchState:
    """One process's stack plus its traversal counters.

    ``prune=True`` adds the greedy fractional upper bound
    (Martello–Toth U1 on ratio-sorted items); the paper's runs use
    ``prune=False`` ("no branches were pruned").
    """

    __slots__ = (
        "instance",
        "stack",
        "best_value",
        "nodes_traversed",
        "prune",
        "_profits",
        "_weights",
        "_n",
        "_wprefix",
        "_pprefix",
    )

    def __init__(self, instance: KnapsackInstance, prune: bool = False) -> None:
        self.instance = instance
        self.stack: list[Node] = []
        self.best_value = 0
        self.nodes_traversed = 0
        self.prune = prune
        self._profits = list(instance.profits)
        self._weights = list(instance.weights)
        self._n = instance.n
        if prune:
            # Prefix sums for the fractional bound.
            wp = [0]
            pp = [0]
            for w, p in zip(self._weights, self._profits):
                wp.append(wp[-1] + w)
                pp.append(pp[-1] + p)
            self._wprefix = wp
            self._pprefix = pp
        else:
            self._wprefix = self._pprefix = None  # type: ignore[assignment]

    # -- stack management (work stealing operates here) ------------------

    def push_root(self) -> None:
        self.stack.append(root_node(self.instance))

    def push_nodes(self, nodes: "list[Node]") -> None:
        self.stack.extend(nodes)

    def take_from_top(self, count: int) -> "list[Node]":
        """Remove up to ``count`` nodes from the *top* of the stack.

        "The master sends stealunit nodes on top of its stack."  In a
        DFS stack the top holds the most recently pushed (deepest)
        nodes — small subtrees, so stealing is fine-grained: many
        steal messages, good balance (the Table 5/6 trade-off).
        """
        if count <= 0:
            return []
        taken = self.stack[-count:]
        del self.stack[-count:]
        return taken

    def take_from_bottom(self, count: int) -> "list[Node]":
        """Remove up to ``count`` nodes from the *bottom* of the stack.

        Bottom nodes are the shallowest pending siblings — the largest
        subtrees the owner won't reach for a long time.  Used for
        send-back (returning big work to the master for
        redistribution) and available as an alternative steal end for
        the grain ablation.
        """
        if count <= 0:
            return []
        taken = self.stack[:count]
        del self.stack[:count]
        return taken

    @property
    def depth(self) -> int:
        return len(self.stack)

    @property
    def exhausted(self) -> bool:
        return not self.stack

    # -- the branch operation -----------------------------------------------

    def upper_bound(self, index: int, value: int, capacity: int) -> float:
        """Greedy fractional bound for the subtree at this node."""
        wp, pp = self._wprefix, self._pprefix
        assert wp is not None and pp is not None
        base_w = wp[index]
        limit = base_w + capacity
        # Largest j >= index with prefix weight <= limit: linear scan is
        # fine (items are few); bisect would also work.
        j = index
        n = self._n
        while j < n and wp[j + 1] <= limit:
            j += 1
        bound = value + (pp[j] - pp[index])
        if j < n:
            residual = limit - wp[j]
            bound += self._profits[j] * residual / self._weights[j]
        return bound

    def branch(self, max_ops: int) -> int:
        """Run up to ``max_ops`` branch operations ("the master repeats
        the branch operation *interval* times"); returns ops done.

        Stops early when the stack empties.
        """
        stack = self.stack
        profits = self._profits
        weights = self._weights
        n = self._n
        best = self.best_value
        prune = self.prune
        ops = 0
        while stack and ops < max_ops:
            index, value, capacity = stack.pop()
            ops += 1
            if value > best:
                best = value
            if index == n:
                continue
            if prune and self.upper_bound(index, value, capacity) <= best:
                continue
            stack.append((index + 1, value, capacity))
            w = weights[index]
            if w <= capacity:
                stack.append((index + 1, value + profits[index], capacity - w))
        self.best_value = best
        self.nodes_traversed += ops
        return ops

    def run_to_exhaustion(self) -> None:
        """Branch until the stack empties (the sequential solver core)."""
        while self.stack:
            self.branch(1 << 30)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SearchState depth={self.depth} traversed={self.nodes_traversed} "
            f"best={self.best_value}>"
        )
