"""Unit constants and formatting for sizes, rates and times.

The paper reports bandwidth in KB/sec and MB/sec (decimal, as was the
convention in the HPDC-era literature) and link speeds in Mbps.  We keep
the same convention: ``KB``/``MB`` are powers of ten, matching how
"1 MB message" and "6.32 MB/sec" are used in Table 2.  The single
exception is the *message size* "1MB" in Table 2, which in the original
mpptest-style harness is 2**20 bytes; that constant is exposed as
``MIB_MESSAGE`` so benchmarks can use the byte count the authors used
while still reporting rates in decimal units.
"""

from __future__ import annotations

#: One kilobyte (decimal), as used for reported bandwidths.
KB: int = 1_000
#: One megabyte (decimal).
MB: int = 1_000_000
#: One gigabyte (decimal).
GB: int = 1_000_000_000

#: The "1MB" message of Table 2 — a binary megabyte, the message size
#: used by Nexus-era ping-pong benchmarks.
MIB_MESSAGE: int = 1 << 20
#: The "4096byte" message of Table 2.
SMALL_MESSAGE: int = 4096


def kbps(x: float) -> float:
    """Convert kilobits/sec to bytes/sec."""
    return x * 1_000 / 8


def mbps(x: float) -> float:
    """Convert megabits/sec to bytes/sec (e.g. the 1.5 Mbps IMNet)."""
    return x * 1_000_000 / 8


def gbps(x: float) -> float:
    """Convert gigabits/sec to bytes/sec."""
    return x * 1_000_000_000 / 8


def bytes_per_sec(nbytes: float, seconds: float) -> float:
    """Average transfer rate; raises if ``seconds`` is not positive."""
    if seconds <= 0:
        raise ValueError(f"non-positive duration: {seconds!r}")
    return nbytes / seconds


def fmt_bytes(n: float) -> str:
    """Human-readable byte count: ``fmt_bytes(4096) == '4.1 KB'``."""
    n = float(n)
    for unit, div in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= div:
            return f"{n / div:.1f} {unit}"
    return f"{n:.0f} B"


def fmt_rate(bps: float) -> str:
    """Format a bytes/sec rate the way the paper's Table 2 does.

    Rates at or above 1 MB/sec print as ``X.XX MB/sec``; below that as
    ``X.X KB/sec`` (the paper mixes both in one table).
    """
    if bps >= MB:
        return f"{bps / MB:.2f} MB/sec"
    return f"{bps / KB:.1f} KB/sec"


def fmt_time(seconds: float) -> str:
    """Format a duration the way Table 2 does: msec for latencies
    (``0.41 msec``), seconds above 1 s, usec only below 0.1 ms."""
    if seconds < 1e-4:
        return f"{seconds * 1e6:.1f} usec"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} msec"
    return f"{seconds:.2f} sec"
