"""Summary statistics used throughout the evaluation harness.

Tables 5 and 6 of the paper report, per cluster site, the *maximum*,
*minimum* and *average* of a per-process quantity (steal requests,
traversed nodes).  :class:`Summary` captures exactly that shape;
:class:`RunningStats` is a Welford accumulator for streaming use inside
the simulator (per-event costs, queue lengths) where storing every
sample would be wasteful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, slots=True)
class Summary:
    """Max / min / average / count of a sample, Table 5/6 style."""

    maximum: float
    minimum: float
    average: float
    count: int
    total: float

    def as_row(self, scale: float = 1.0, fmt: str = "{:.2f}") -> list[str]:
        """Render ``[max, min, avg]`` strings, each divided by ``scale``.

        Table 6 reports node counts "in billions"; pass ``scale=1e9``.
        """
        return [
            fmt.format(self.maximum / scale),
            fmt.format(self.minimum / scale),
            fmt.format(self.average / scale),
        ]


def summarize(samples: Iterable[float]) -> Summary:
    """Collapse ``samples`` into a :class:`Summary`.

    Raises :class:`ValueError` on an empty sample, because an empty
    max/min is a harness bug, not a measurement.
    """
    xs = list(samples)
    if not xs:
        raise ValueError("cannot summarize an empty sample")
    total = math.fsum(xs)
    return Summary(
        maximum=max(xs),
        minimum=min(xs),
        average=total / len(xs),
        count=len(xs),
        total=total,
    )


class RunningStats:
    """Streaming mean/variance/extrema (Welford's algorithm).

    Numerically stable for long simulations; ``merge`` combines two
    accumulators (used when per-worker stats are folded into a site
    summary).
    """

    __slots__ = ("n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample in."""
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to seeing both streams."""
        out = RunningStats()
        if self.n == 0:
            out.n, out._mean, out._m2 = other.n, other._mean, other._m2
            out._min, out._max = other._min, other._max
            return out
        if other.n == 0:
            out.n, out._mean, out._m2 = self.n, self._mean, self._m2
            out._min, out._max = self._min, self._max
            return out
        n = self.n + other.n
        delta = other._mean - self._mean
        out.n = n
        out._mean = self._mean + delta * other.n / n
        out._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / n
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        return out

    @property
    def mean(self) -> float:
        if self.n == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Population variance of the samples seen so far."""
        if self.n == 0:
            raise ValueError("no samples")
        return self._m2 / self.n

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self.n == 0:
            raise ValueError("no samples")
        return self._min

    @property
    def maximum(self) -> float:
        if self.n == 0:
            raise ValueError("no samples")
        return self._max

    def summary(self) -> Summary:
        """Snapshot as a :class:`Summary` (total reconstructed from mean)."""
        if self.n == 0:
            raise ValueError("no samples")
        return Summary(
            maximum=self._max,
            minimum=self._min,
            average=self._mean,
            count=self.n,
            total=self._mean * self.n,
        )

    def snapshot(self) -> "dict[str, float]":
        """Plain-data view for the metrics registry (empty accumulators
        snapshot as zeros rather than raising)."""
        if self.n == 0:
            return {"count": 0, "mean": 0.0, "stdev": 0.0,
                    "minimum": 0.0, "maximum": 0.0}
        return {
            "count": self.n,
            "mean": self._mean,
            "stdev": self.stdev,
            "minimum": self._min,
            "maximum": self._max,
        }


def median(xs: Sequence[float]) -> float:
    """Median of a non-empty sequence (used by benchmark repetitions)."""
    if not xs:
        raise ValueError("median of empty sequence")
    s = sorted(xs)
    n = len(s)
    mid = n // 2
    if n % 2:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])
