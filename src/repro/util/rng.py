"""Deterministic random-number plumbing.

Every stochastic component in the library (instance generators, jittered
link delays, allocator tie-breaking) takes an explicit seed or
``numpy.random.Generator``.  Nothing reads global random state: two runs
with the same seeds produce bit-identical event traces, which is what
makes the simulated experiments reproducible.
"""

from __future__ import annotations

import numpy as np

#: Default seed used by examples and benchmarks when none is given.
DEFAULT_SEED: int = 20000801  # HPDC 2000 ;-)


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` maps to :data:`DEFAULT_SEED` (not to OS entropy) so that
    "I forgot to pass a seed" still yields reproducible runs; callers
    that genuinely want fresh entropy must ask for it explicitly.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used to hand each simulated worker its own stream so that adding a
    worker does not perturb the draws of the others.
    """
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
