"""Plain-text table rendering for the benchmark harness.

Every bench target prints its result in the same row/column layout as
the corresponding table in the paper so that paper-vs-measured
comparison is a visual diff.  No third-party pretty-printer is used —
the output must be stable across environments because EXPERIMENTS.md
embeds it verbatim.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class Table:
    """A minimal left-padded text table.

    >>> t = Table(["system", "time (sec)", "speedup"])
    >>> t.add_row(["COMPaS", "12.3", "6.1"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        row = ["" if c is None else str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def add_separator(self) -> None:
        """Insert a horizontal rule between row groups."""
        self.rows.append(["---"] * len(self.headers))

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                if cell != "---":
                    widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        rule = "  ".join("-" * w for w in widths)
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(fmt_row(self.headers))
        lines.append(rule)
        for row in self.rows:
            lines.append(rule if row[0] == "---" else fmt_row(row))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
