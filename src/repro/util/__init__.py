"""Shared utilities: unit conversions, summary statistics, table rendering.

These helpers are deliberately dependency-light; every other subpackage
may import :mod:`repro.util` but :mod:`repro.util` imports nothing from
the rest of the library.
"""

from repro.util.units import (
    KB,
    MB,
    GB,
    kbps,
    mbps,
    gbps,
    bytes_per_sec,
    fmt_bytes,
    fmt_rate,
    fmt_time,
)
from repro.util.stats import Summary, RunningStats, summarize
from repro.util.tables import Table
from repro.util.rng import make_rng

__all__ = [
    "KB",
    "MB",
    "GB",
    "kbps",
    "mbps",
    "gbps",
    "bytes_per_sec",
    "fmt_bytes",
    "fmt_rate",
    "fmt_time",
    "Summary",
    "RunningStats",
    "summarize",
    "Table",
    "make_rng",
]
