"""The TCP protocol module, including the Globus 1.1 port-range knob.

§1 of the paper: Globus 1.0's Nexus allocated listening ports
dynamically with no way to pin them, so deny-based firewalls broke it
outright; Globus 1.1 added ``TCP_MIN_PORT``/``TCP_MAX_PORT`` so sites
could open a fixed range — "basically the same as the allow based
firewall", the security regression the Nexus Proxy exists to avoid.

:class:`TcpProtocolModule` reproduces both behaviours: with no range it
binds ephemeral ports (unreachable through a deny-based firewall); with
a range it binds inside it and can pre-open the matching firewall hole
(:meth:`open_firewall_range`), so experiments can compare the proxy
against the port-range workaround like-for-like.
"""

from __future__ import annotations

from typing import Optional

from repro.nexus.errors import PortRangeExhausted
from repro.simnet.host import Host
from repro.simnet.socket import ListenSocket, SocketError

__all__ = ["TcpProtocolModule"]


class TcpProtocolModule:
    """Listening-socket factory with optional port-range confinement."""

    def __init__(
        self,
        host: Host,
        port_min: Optional[int] = None,
        port_max: Optional[int] = None,
    ) -> None:
        if (port_min is None) != (port_max is None):
            raise ValueError("set both TCP_MIN_PORT and TCP_MAX_PORT or neither")
        if port_min is not None and port_min > port_max:  # type: ignore[operator]
            raise ValueError(f"empty port range {port_min}..{port_max}")
        self.host = host
        self.port_min = port_min
        self.port_max = port_max

    @property
    def confined(self) -> bool:
        return self.port_min is not None

    @property
    def range_width(self) -> int:
        """How many concurrent endpoints the range can sustain."""
        if not self.confined:
            return 0
        assert self.port_min is not None and self.port_max is not None
        return self.port_max - self.port_min + 1

    def listen(self, backlog: int = 128) -> ListenSocket:
        """Bind a listening socket (inside the range when confined)."""
        if not self.confined:
            return self.host.listen(backlog=backlog)
        assert self.port_min is not None and self.port_max is not None
        for port in range(self.port_min, self.port_max + 1):
            if not self.host.is_listening(port):
                try:
                    return self.host.listen(port, backlog=backlog)
                except SocketError:  # pragma: no cover - racing binds
                    continue
        raise PortRangeExhausted(
            f"{self.host.name}: all {self.range_width} ports in "
            f"{self.port_min}..{self.port_max} are bound"
        )

    def open_firewall_range(self) -> None:
        """Open the inbound range on this host's site firewall — the
        Globus 1.1 deployment step (and its security cost: the range is
        open to *any* source)."""
        if not self.confined:
            raise ValueError("no port range configured")
        site = self.host.site
        if site is None or site.firewall is None:
            return
        assert self.port_min is not None and self.port_max is not None
        site.firewall.open_port_range(
            self.port_min, self.port_max,
            comment=f"TCP_MIN_PORT..TCP_MAX_PORT for {self.host.name}",
        )
