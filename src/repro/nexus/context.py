"""Nexus contexts: per-process communication state.

A :class:`NexusContext` bundles everything one simulated process needs
to communicate: its host, its proxy configuration (the environment
variables of §3), an optional Globus 1.1 port range, and caches of
startpoints.  The three deployment modes of the paper map to three
constructor shapes:

* **proxy mode** (the paper's contribution): pass ``outer_addr`` and
  ``inner_addr``; endpoints are published on the outer server and all
  connects relay through it.
* **port-range mode** (the Globus 1.1 workaround): pass ``port_min`` /
  ``port_max``; endpoints bind inside the range, connects are direct.
* **open mode** (no firewall): pass nothing.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.api import DirectListener, NexusProxyClient
from repro.core.config import DEFAULT_RELAY_CONFIG, RelayConfig
from repro.nexus.endpoint import Endpoint
from repro.nexus.errors import NexusError
from repro.nexus.startpoint import Startpoint
from repro.nexus.tcpproto import TcpProtocolModule
from repro.simnet.host import Host
from repro.simnet.kernel import Event
from repro.simnet.socket import Address

__all__ = ["NexusContext"]


class NexusContext:
    """Communication context of one process on ``host``."""

    def __init__(
        self,
        host: Host,
        outer_addr: "Address | tuple[str, int] | None" = None,
        inner_addr: "Address | tuple[str, int] | None" = None,
        port_min: Optional[int] = None,
        port_max: Optional[int] = None,
        relay_config: RelayConfig = DEFAULT_RELAY_CONFIG,
    ) -> None:
        if outer_addr is not None and port_min is not None:
            raise NexusError(
                "proxy mode and port-range mode are mutually exclusive"
            )
        self.host = host
        self.sim = host.sim
        self.relay_config = relay_config
        self.proxy = NexusProxyClient(
            host, outer_addr=outer_addr, inner_addr=inner_addr, config=relay_config
        )
        self.tcp = TcpProtocolModule(host, port_min, port_max)
        self.endpoints: dict[str, Endpoint] = {}
        self._startpoints: dict[Address, Startpoint] = {}
        self.closed = False

    @property
    def proxied(self) -> bool:
        """Whether this context relays through the Nexus Proxy."""
        return self.proxy.enabled

    # -- endpoints ---------------------------------------------------------

    def create_endpoint(self, name: str) -> Iterator[Event]:
        """Generator: bind and start an :class:`Endpoint`.

        Proxy mode publishes it on the outer server; otherwise it binds
        locally (inside the port range when one is configured).
        """
        if name in self.endpoints:
            raise NexusError(f"duplicate endpoint name {name!r} on {self.host.name}")
        if self.proxied:
            listener = yield from self.proxy.bind()
        else:
            sock = self.tcp.listen()
            listener = DirectListener(sock, self.relay_config.chunk_bytes)
        ep = Endpoint(self, name, listener)
        ep._start()
        self.endpoints[name] = ep
        return ep

    # -- startpoints ----------------------------------------------------------

    def startpoint(self, target: "Address | tuple[str, int]") -> Startpoint:
        """The cached sender handle for a remote endpoint address."""
        if not isinstance(target, Address):
            target = Address(*target)
        sp = self._startpoints.get(target)
        if sp is None:
            sp = Startpoint(self, target)
            self._startpoints[target] = sp
        return sp

    # -- teardown ----------------------------------------------------------------

    def shutdown(self) -> None:
        """Close every endpoint and startpoint owned by this context."""
        if self.closed:
            return
        self.closed = True
        for ep in self.endpoints.values():
            ep.close()
        for sp in self._startpoints.values():
            sp.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = (
            "proxy"
            if self.proxied
            else ("port-range" if self.tcp.confined else "open")
        )
        return f"<NexusContext {self.host.name} mode={mode}>"
