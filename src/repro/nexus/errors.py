"""Nexus layer exceptions."""

from __future__ import annotations

from repro.simnet.socket import SocketError

__all__ = ["NexusError", "PortRangeExhausted"]


class NexusError(SocketError):
    """Failure inside the Nexus communication layer."""


class PortRangeExhausted(NexusError):
    """No free port left in the configured TCP_MIN_PORT..TCP_MAX_PORT
    range — the failure mode that caps concurrency under the Globus 1.1
    workaround (each endpoint consumes one opened port)."""
