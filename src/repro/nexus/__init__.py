"""A Nexus-like communication library.

The layer the Globus toolkit's communication rode on: contexts own
endpoints (receivers, bound directly or published through the Nexus
Proxy) and startpoints (lazily-connected cached senders).  The MPI
layer (:mod:`repro.mpi`) is built entirely on this module.
"""

from repro.nexus.context import NexusContext
from repro.nexus.endpoint import Delivery, Endpoint
from repro.nexus.errors import NexusError, PortRangeExhausted
from repro.nexus.rsr import RSREnvelope
from repro.nexus.startpoint import Startpoint
from repro.nexus.tcpproto import TcpProtocolModule

__all__ = [
    "Delivery",
    "Endpoint",
    "NexusContext",
    "NexusError",
    "PortRangeExhausted",
    "RSREnvelope",
    "Startpoint",
    "TcpProtocolModule",
]
