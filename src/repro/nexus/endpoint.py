"""Nexus endpoints: the receiving side of communication links.

An :class:`Endpoint` owns a listening socket (plain, port-range
confined, or published through the Nexus Proxy) and a message queue.
Remote :class:`~repro.nexus.startpoint.Startpoint`\\ s connect to its
*announced address* — which, when the proxy is in play, is a public
port on the outer server rather than anything on the endpoint's host.
A reader process per accepted connection pumps framed messages into
the queue; ``receive`` takes them out in arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.core.api import ProxiedListener
from repro.core.frames import FramedConnection
from repro.nexus.errors import NexusError
from repro.simnet.kernel import Event, Process
from repro.simnet.primitives import Channel, ChannelClosed
from repro.simnet.socket import Address, ConnectionReset, SocketError

__all__ = ["Delivery", "Endpoint"]


@dataclass(frozen=True, slots=True)
class Delivery:
    """One message taken out of an endpoint queue."""

    payload: Any
    nbytes: int
    delivered_at: float


class Endpoint:
    """A bound, accepting communication endpoint.

    Built by :meth:`repro.nexus.context.NexusContext.create_endpoint`;
    not instantiated directly.
    """

    def __init__(self, context, name: str, listener: ProxiedListener) -> None:
        self.context = context
        self.sim = context.sim
        self.name = name
        self._listener = listener
        self._queue: Channel[Delivery] = Channel(self.sim)
        self._accept_proc: Optional[Process] = None
        self._readers: list[Process] = []
        self.closed = False
        #: Connections accepted so far.
        self.connections_accepted = 0
        self.messages_received = 0
        self.bytes_received = 0
        #: Registered RSR handlers: id -> generator function.
        self._handlers: dict[int, object] = {}
        self.rsrs_dispatched = 0
        self.rsrs_unhandled = 0

    @property
    def addr(self) -> Address:
        """The announced (startpoint-visible) address."""
        return self._listener.proxy_addr

    @property
    def is_proxied(self) -> bool:
        return self._listener.proxy_addr.host != self.context.host.name

    def _start(self) -> None:
        self._accept_proc = self.sim.process(
            self._accept_loop(), name=f"endpoint-accept:{self.name}"
        )

    def _accept_loop(self) -> Iterator[Event]:
        while True:
            try:
                framed = yield from self._listener.accept()
            except SocketError:
                return  # endpoint closed
            self.connections_accepted += 1
            self._readers.append(
                self.sim.process(
                    self._reader(framed), name=f"endpoint-reader:{self.name}"
                )
            )

    def _reader(self, framed: FramedConnection) -> Iterator[Event]:
        from repro.nexus.rsr import RSREnvelope

        while True:
            try:
                payload, nbytes = yield from framed.recv()
            except (ConnectionReset, ChannelClosed):
                return
            self.messages_received += 1
            self.bytes_received += nbytes
            if isinstance(payload, RSREnvelope):
                handler = self._handlers.get(payload.handler_id)
                if handler is not None:
                    self.rsrs_dispatched += 1
                    self.sim.process(
                        handler(self, payload.payload, nbytes),
                        name=f"rsr:{self.name}:{payload.handler_id}",
                    )
                    continue
                self.rsrs_unhandled += 1
                # Unknown handler: fall through to the queue so the
                # application can observe (and debug) the stray.
            self._queue.try_put(Delivery(payload, nbytes, self.sim.now))

    def register_handler(self, handler_id: int, fn) -> None:
        """Bind ``fn(endpoint, payload, nbytes)`` — a generator run as
        a fresh simulated process — to arrivals addressed to
        ``handler_id`` (see :mod:`repro.nexus.rsr`)."""
        if handler_id in self._handlers:
            raise NexusError(
                f"handler {handler_id} already registered on {self.name!r}"
            )
        self._handlers[handler_id] = fn

    def unregister_handler(self, handler_id: int) -> None:
        self._handlers.pop(handler_id, None)

    def receive(self, timeout: Optional[float] = None) -> Event:
        """Event firing with the next :class:`Delivery`."""
        if self.closed:
            ev = Event(self.sim)
            ev.fail(NexusError(f"endpoint {self.name!r} closed"))
            return ev
        if timeout is None:
            return self._queue.get()
        # Compose queue-get with a timer, losing nothing on timeout.
        out = Event(self.sim)
        get = self._queue.get()
        timer = self.sim.timeout(timeout)

        def on_get(ev: Event) -> None:
            if out.triggered:
                if ev.ok:
                    self._queue.requeue_front(ev.value)
                else:
                    ev.defuse()
                return
            if ev.ok:
                out.succeed(ev.value)
            else:
                ev.defuse()
                out.fail(NexusError(f"endpoint {self.name!r} closed"))

        def on_timer(_: Event) -> None:
            if not out.triggered:
                out.fail(TimeoutError(f"receive on {self.name!r} timed out"))

        get.callbacks.append(on_get)
        assert timer.callbacks is not None
        timer.callbacks.append(on_timer)
        return out

    def try_receive(self) -> Optional[Delivery]:
        ok, item = self._queue.try_get()
        return item if ok else None

    @property
    def pending(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._listener.close()
        self._queue.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Endpoint {self.name!r} at {self.addr} "
            f"{'proxied' if self.is_proxied else 'direct'}>"
        )
