"""Remote Service Requests — Nexus's defining primitive.

In Nexus, communication is not send/recv but *remote service requests*:
a startpoint names a handler at the remote endpoint, and arrival of the
message **invokes** that handler with the buffer.  This module adds
that dispatch layer on top of the endpoint/startpoint machinery:

* :meth:`~repro.nexus.endpoint.Endpoint.register_handler` binds a
  handler id to a generator function ``fn(endpoint, payload, nbytes)``
  run as its own simulated process per arrival;
* :meth:`~repro.nexus.startpoint.Startpoint.send_rsr` ships a payload
  addressed to a handler id.

Messages with no (or unknown) handler id fall back to the endpoint's
ordinary delivery queue, so RSR traffic and queue traffic coexist on
one endpoint — which is how the MPI layer (queue-style) and control
services (handler-style) share the Nexus substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["RSREnvelope", "RSR_HEADER_BYTES"]

#: Wire overhead of the handler-id header.
RSR_HEADER_BYTES = 8


@dataclass(frozen=True, slots=True)
class RSREnvelope:
    """A payload addressed to a remote handler."""

    handler_id: int
    payload: Any
