"""Nexus startpoints: the sending side of communication links.

A :class:`Startpoint` is a handle on a remote endpoint's announced
address.  The underlying (possibly proxied) connection is opened
*lazily* on the first send and cached — Nexus semantics, and the reason
connection-establishment cost shows up once per pair of communicating
processes rather than per message.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.core.frames import FramedConnection
from repro.nexus.errors import NexusError
from repro.simnet.kernel import Event
from repro.simnet.socket import Address, SocketError

__all__ = ["Startpoint"]


class Startpoint:
    """A cached, lazily-connected sender to one remote endpoint."""

    def __init__(self, context, target: Address) -> None:
        self.context = context
        self.sim = context.sim
        self.target = target
        self._framed: Optional[FramedConnection] = None
        self._connecting: Optional[Event] = None
        self.messages_sent = 0
        self.bytes_sent = 0

    @property
    def connected(self) -> bool:
        return self._framed is not None and not self._framed.closed

    def _ensure_connected(self) -> Iterator[Event]:
        if self.connected:
            return
        if self._connecting is not None:
            # Another send already dials; piggy-back on it.
            yield self._connecting
            if not self.connected:
                raise NexusError(f"connect to {self.target} failed")
            return
        gate = self.sim.event()
        self._connecting = gate
        try:
            framed = yield from self.context.proxy.connect(self.target)
        except SocketError as exc:
            self._connecting = None
            gate.succeed()  # wake piggy-backers; they re-check state
            raise NexusError(f"connect to {self.target} failed: {exc}") from exc
        self._framed = framed
        self._connecting = None
        gate.succeed()

    def send(self, payload: Any, nbytes: Optional[int] = None) -> Iterator[Event]:
        """Generator: deliver one message to the remote endpoint.

        Returns when the sender-side work completes (Nexus-style
        asynchronous RSR: delivery happens in the background).
        """
        yield from self._ensure_connected()
        assert self._framed is not None
        yield self._framed.send(payload, nbytes=nbytes)
        self.messages_sent += 1
        self.bytes_sent += nbytes if nbytes is not None else 0

    def send_rsr(self, handler_id: int, payload: Any,
                 nbytes: Optional[int] = None) -> Iterator[Event]:
        """Generator: issue a remote service request — the payload is
        delivered to the handler registered under ``handler_id`` at
        the remote endpoint (see :mod:`repro.nexus.rsr`)."""
        from repro.nexus.rsr import RSR_HEADER_BYTES, RSREnvelope

        wire = (nbytes if nbytes is not None else 64) + RSR_HEADER_BYTES
        yield from self.send(RSREnvelope(handler_id, payload), nbytes=wire)

    def close(self) -> None:
        if self._framed is not None:
            self._framed.close()
            self._framed = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "connected" if self.connected else "idle"
        return f"<Startpoint -> {self.target} {state}>"
