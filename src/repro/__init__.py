"""repro — firewall-compliant Globus-based wide-area cluster system.

A full reproduction of Tanaka et al., *"Performance Evaluation of a
Firewall-compliant Globus-based Wide-area Cluster System"* (HPDC 2000):

* :mod:`repro.core` — the **Nexus Proxy**: a TCP relay with an outer
  server outside the firewall and an inner server inside, plus the
  ``NXProxyConnect`` / ``NXProxyBind`` / ``NXProxyAccept`` client
  library (both a simulated and a real asyncio implementation).
* :mod:`repro.rmf` — **RMF**, the Resource Manager beyond the
  Firewall: gatekeeper, job manager, Q system, resource allocator and
  GASS-style file staging.
* :mod:`repro.simnet` — a deterministic discrete-event wide-area
  network simulator (hosts, links, firewalls, TCP-like sockets).
* :mod:`repro.nexus` — a Nexus-like communication library,
  :mod:`repro.mpi` — an MPICH-G-like messaging layer on top of it.
* :mod:`repro.cluster` — the paper's experimental testbed (Fig. 5)
  and cluster systems (Table 3).
* :mod:`repro.apps.knapsack` — the parallel 0-1 knapsack
  branch-and-bound benchmark with self-scheduling work stealing.
* :mod:`repro.bench` — harness regenerating every table and figure.

See README.md for a quickstart and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
