"""Shared result-file plumbing for the live benchmarks.

Every ``benchmarks/bench_*_live.py`` harness stamps its JSON with the
same provenance block (:func:`bench_meta`) and writes it through
:func:`write_results`, so ``BENCH_relay.json`` and ``BENCH_sim.json``
stay comparable across machines and commits: a perf claim without the
interpreter version, platform, core count and git revision attached is
not reproducible evidence.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
from pathlib import Path
from typing import Any, Optional

__all__ = [
    "bench_arg_parser",
    "bench_meta",
    "emit_results",
    "git_dirty",
    "git_revision",
    "refresh_meta",
    "repo_root",
    "write_results",
    "write_trace_artifacts",
]


def repo_root() -> Path:
    """The repository root (parent of ``src/``)."""
    return Path(__file__).resolve().parents[3]


def git_revision() -> Optional[str]:
    """Short commit hash of the working tree, or ``None`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root(),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def git_dirty() -> Optional[bool]:
    """Whether the working tree differs from HEAD (``None`` outside
    git).  A benchmark JSON whose ``dirty`` flag is true was produced
    by code no commit hash identifies."""
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo_root(),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    if out.returncode != 0:
        return None
    return bool(out.stdout.strip())


def bench_meta(**extra: Any) -> dict:
    """The provenance block every benchmark JSON starts with.

    Keyword arguments are appended verbatim (workload sizes, mode
    flags, ...) after the common fields.  ``git_sha``/``dirty`` are
    re-resolved by :func:`emit_results` at write time: a long-lived
    suite may emit on a different commit than it started on, and the
    stale-sha bug put ``ea68c74`` on results produced commits later.
    """
    meta: dict[str, Any] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": git_revision(),
        "dirty": git_dirty(),
    }
    meta.update(extra)
    return meta


def refresh_meta(results: dict) -> dict:
    """Re-resolve the working-tree provenance (``git_sha``, ``dirty``)
    in ``results["meta"]`` — called at emit time so the stamped
    revision is the one the numbers were actually produced under."""
    meta = results.get("meta")
    if isinstance(meta, dict):
        meta["git_sha"] = git_revision()
        meta["dirty"] = git_dirty()
    return results


def write_results(
    results: dict,
    out: Optional[str],
    default_name: str,
) -> Optional[Path]:
    """Write ``results`` as indented JSON.

    ``out`` is the CLI argument: a path, ``None`` (use ``default_name``
    in the repo root), or ``"-"`` (skip writing, return ``None`` — the
    CI smoke mode).
    """
    if out == "-":
        return None
    path = Path(out) if out else repo_root() / default_name
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def bench_arg_parser(
    doc: Optional[str],
    default_name: str,
    quick_help: str = "reduced workload (CI smoke run)",
) -> argparse.ArgumentParser:
    """The argument surface every live harness shares.

    ``--quick`` and ``--out`` behave identically across harnesses
    (``--out`` follows :func:`write_results`'s convention); callers add
    their harness-specific flags on the returned parser.
    """
    parser = argparse.ArgumentParser(
        description=(doc or "").splitlines()[0] if doc else None
    )
    parser.add_argument("--quick", action="store_true", help=quick_help)
    parser.add_argument(
        "--out",
        default=None,
        help="write results JSON here "
        f"(default: {default_name} in the repo root; '-' to skip)",
    )
    return parser


def emit_results(
    results: dict, out: Optional[str], default_name: str
) -> Optional[Path]:
    """:func:`write_results` plus the standard ``wrote <path>`` line.

    Refreshes ``meta.git_sha``/``meta.dirty`` first (see
    :func:`refresh_meta`)."""
    path = write_results(refresh_meta(results), out, default_name)
    if path is not None:
        print(f"wrote {path}")
    return path


def write_trace_artifacts(
    rec: Any,
    base: Optional[str],
    default_name: str,
    **extra_meta: Any,
) -> "tuple[Path, Path]":
    """Write a recorder's trace artifacts next to the BENCH_*.json files.

    ``rec`` is an installed :class:`repro.obs.spans.ObsRecorder`;
    ``base`` follows the same convention as :func:`write_results`'s
    ``out`` (a path stem, or ``None`` for ``default_name`` in the repo
    root).  Both files get the :func:`bench_meta` provenance block, so
    a trace carries the same evidence chain as the numbers it explains.
    Returns ``(chrome_trace_path, summary_path)``.
    """
    from repro.obs.export import write_artifacts

    stem = Path(base) if base else repo_root() / default_name
    trace, summ = write_artifacts(rec, str(stem), extra_meta=bench_meta(**extra_meta))
    return Path(trace), Path(summ)
