"""Analytic calibration: closed-form Table 2 predictions.

Builds :class:`~repro.core.chain.ChainModel`\\ s for the four Table 2
rows from the testbed parameters and relay config.  Used two ways:

* to *choose* the calibration constants (link latencies/bandwidths,
  relay per-chunk CPU and delay) so the simulated Table 2 matches the
  paper's published cells, and
* as an independent cross-check: the simulation must agree with the
  closed form (property-tested), so a calibration bug can't hide in
  simulator details.

Chain structure per row (one-way, the direction measured):

* LAN direct:    sun → lan → compas (2 LAN hops)
* LAN indirect:  sun → lan → gw → **outer** → gw → lan → inner →
                 lan → compas (two relay traversals — both endpoints
                 are behind the firewall, so the link is a passive
                 chain through outer *and* inner)
* WAN direct:    sun → lan → gw → (IMNet) → etl-gw → etl-lan → etl-sun
* WAN indirect:  the same, detouring through both relays on the RWCP
                 side of the IMNet
"""

from __future__ import annotations

from repro.cluster.machine import CATALOGUE
from repro.cluster.testbed import TestbedParams
from repro.core.chain import ChainModel, RelayStage, WireLeg
from repro.core.config import DEFAULT_RELAY_CONFIG, RelayConfig
from repro.core.frames import FRAME_HEADER_BYTES
from repro.simnet.socket import NetConfig

__all__ = ["table2_chain_models", "endpoint_overhead"]


def endpoint_overhead(cfg: NetConfig) -> float:
    """Per-message endpoint CPU on the measured path (send + recv)."""
    return cfg.send_overhead + cfg.per_segment_cpu + cfg.recv_overhead


def _relay(config: RelayConfig, cpu_speed: float) -> RelayStage:
    return RelayStage(
        per_chunk_cpu=config.per_chunk_cpu,
        per_byte_cpu=config.per_byte_cpu,
        cpu_speed=cpu_speed,
        delay=config.per_chunk_delay,
    )


def table2_chain_models(
    params: TestbedParams = TestbedParams(),
    relay: RelayConfig = DEFAULT_RELAY_CONFIG,
    net: NetConfig = NetConfig(),
) -> dict[str, ChainModel]:
    """The four Table 2 rows as analytic chain models."""
    outer_speed = CATALOGUE["Outer-Server"].cpu_speed
    inner_speed = CATALOGUE["Inner-Server"].cpu_speed
    oh = endpoint_overhead(net)
    lan = params.lan_latency
    lbw = params.lan_bandwidth

    rows: dict[str, ChainModel] = {}
    rows["RWCP-Sun <-> COMPaS (direct)"] = ChainModel(
        stages=[WireLeg(latency=2 * lan, bandwidth=lbw, nlinks=2)],
        chunk_bytes=relay.chunk_bytes,
        endpoint_overhead=oh,
        header_bytes=FRAME_HEADER_BYTES,
    )
    rows["RWCP-Sun <-> COMPaS (indirect)"] = ChainModel(
        stages=[
            # sun -> lan -> gw -> outer
            WireLeg(latency=2 * lan + params.dmz_latency, bandwidth=lbw, nlinks=3),
            _relay(relay, outer_speed),
            # outer -> gw -> lan -> inner
            WireLeg(latency=params.dmz_latency + 2 * lan, bandwidth=lbw, nlinks=3),
            _relay(relay, inner_speed),
            # inner -> lan -> compas
            WireLeg(latency=2 * lan, bandwidth=lbw, nlinks=2),
        ],
        chunk_bytes=relay.chunk_bytes,
        endpoint_overhead=oh,
        header_bytes=FRAME_HEADER_BYTES,
    )
    rows["RWCP-Sun <-> ETL-Sun (direct)"] = ChainModel(
        stages=[
            WireLeg(latency=2 * lan + params.dmz_latency, bandwidth=lbw, nlinks=3),
            WireLeg(latency=params.wan_latency, bandwidth=params.wan_bandwidth),
            WireLeg(latency=2 * lan, bandwidth=lbw, nlinks=2),
        ],
        chunk_bytes=relay.chunk_bytes,
        endpoint_overhead=oh,
        header_bytes=FRAME_HEADER_BYTES,
    )
    rows["RWCP-Sun <-> ETL-Sun (indirect)"] = ChainModel(
        stages=[
            WireLeg(latency=2 * lan + params.dmz_latency, bandwidth=lbw, nlinks=3),
            _relay(relay, outer_speed),
            WireLeg(latency=params.dmz_latency + 2 * lan, bandwidth=lbw, nlinks=3),
            _relay(relay, inner_speed),
            # back out through the gateway and across the IMNet
            WireLeg(latency=2 * lan + params.dmz_latency, bandwidth=lbw, nlinks=3),
            WireLeg(latency=params.wan_latency, bandwidth=params.wan_bandwidth),
            WireLeg(latency=2 * lan, bandwidth=lbw, nlinks=2),
        ],
        chunk_bytes=relay.chunk_bytes,
        endpoint_overhead=oh,
        header_bytes=FRAME_HEADER_BYTES,
    )
    return rows
