"""Tables 5 and 6: steal counts and traversed nodes.

Both derive from the same runs as Table 4 (the paper reports them for
the Local-area and Wide-area clusters).  Layout mirrors the paper:

* Table 5 — the master's total handled steals, then per-site
  max/min/average of the slaves' steal requests;
* Table 6 — traversed nodes, master then per-site max/min/average
  (the paper prints these "in billions"; ours are in millions, the
  scale substitution recorded in DESIGN.md, so the unit is printed).
"""

from __future__ import annotations

from repro.apps.knapsack.driver import RunResult
from repro.bench.table4 import Table4Results
from repro.util.tables import Table

__all__ = ["render_table5", "render_table6", "TABLE56_SYSTEMS"]

#: The systems the paper reports in Tables 5/6.
TABLE56_SYSTEMS = [
    ("Local-area Cluster", "Local-area Cluster"),
    ("Wide-area Cluster", "Wide-area Cluster (use Nexus Proxy)"),
]


def _headers(metric: str) -> list[str]:
    cols = ["System", "Master"]
    for site in ("RWCP-Sun", "COMPaS", "ETL-O2K"):
        cols += [f"{site} Max", "Min", "Avg"]
    return cols


def _rows(results: Table4Results, metric: str, scale: float, fmt: str):
    for paper_name, run_label in TABLE56_SYSTEMS:
        run: RunResult = results.runs[run_label]
        master = run.master_stats
        master_value = (
            master.steal_requests if metric == "steals" else master.nodes_traversed
        )
        cells: list[str] = [paper_name, fmt.format(master_value / scale)]
        groups = {g.group: g for g in run.groups()}
        for site in ("RWCP-Sun", "COMPaS", "ETL-O2K"):
            g = groups.get(site)
            if g is None:
                cells += ["-", "-", "-"]
            else:
                summary = g.steals if metric == "steals" else g.nodes
                cells += summary.as_row(scale=scale, fmt=fmt)
        yield cells


def render_table5(results: Table4Results) -> str:
    t = Table(_headers("steals"), title="Table 5. Number of steals")
    for cells in _rows(results, "steals", scale=1.0, fmt="{:.0f}"):
        t.add_row(cells)
    return t.render()


def render_table6(results: Table4Results) -> str:
    t = Table(
        _headers("nodes"),
        title="Table 6. Number of traversed nodes (in millions; "
        "paper: in billions)",
    )
    for cells in _rows(results, "nodes", scale=1e6, fmt="{:.2f}"):
        t.add_row(cells)
    return t.render()
