"""Benchmark regression gate: fresh results vs a committed baseline.

``repro-bench regress FRESH BASELINE`` compares two benchmark JSON
files (the ``BENCH_relay.json`` / ``BENCH_sim.json`` the live harnesses
write) leaf by leaf and renders a machine-readable verdict.

Benchmarks are noisy — a shared CI box easily moves throughput ±10% —
so equality is the wrong test.  Every numeric leaf is classified by its
key into a *direction*:

* **higher-better** (``*_per_s``, ``*mb_per_s``, ``speedup``) regresses
  when ``fresh < baseline * (1 - tolerance)``;
* **lower-better** (``*wall_s``, ``*_us``, ``*sim_time_s``) regresses
  when ``fresh > baseline * (1 + tolerance)``;
* everything else (node counts, connection counts, ...) is checked for
  *exact* equality and reported as ``changed`` — informative, never a
  regression by itself (a changed workload is a schema question, not a
  perf question).

``meta.*`` provenance (git hash, platform, timings of the harness
itself) is skipped entirely.  The verdict JSON
(``repro-bench-regress-v1``) carries every classified leaf, so CI can
archive it and humans can see *which* number moved and by how much.

Exit codes mirror ``repro-obs``: 0 pass, 1 regression found, 2 a file
that could not be read or is not benchmark-shaped.  ``--report-only``
clamps exit 1 back to 0 (the CI default while baselines season) but
still exits 2 on unreadable input — a broken artifact pipeline must
fail loudly even in report mode.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional

__all__ = [
    "REGRESS_FORMAT_TAG",
    "DEFAULT_TOLERANCE",
    "classify_key",
    "compare",
    "main",
]

REGRESS_FORMAT_TAG = "repro-bench-regress-v1"

#: Relative tolerance before a directional move counts as a regression.
DEFAULT_TOLERANCE = 0.25

_HIGHER_BETTER = ("_per_s", "mb_per_s", "speedup", "nodes_per_s")
_LOWER_BETTER = ("wall_s", "_us", "sim_time_s")


def classify_key(key: str) -> Optional[str]:
    """``"higher"``, ``"lower"``, or ``None`` (exact-match leaf).

    The *leaf* name decides: ``rtt_64b.fixed.p95_us`` is lower-better,
    ``table4.seed.nodes`` is exact.
    """
    leaf = key.rsplit(".", 1)[-1]
    for suffix in _HIGHER_BETTER:
        if leaf.endswith(suffix) or leaf == suffix.lstrip("_"):
            return "higher"
    for suffix in _LOWER_BETTER:
        if leaf.endswith(suffix):
            return "lower"
    return None


def _flatten(prefix: str, value: Any, out: "dict[str, Any]") -> None:
    if isinstance(value, dict):
        for k in sorted(value):
            _flatten(f"{prefix}.{k}" if prefix else str(k), value[k], out)
    else:
        out[prefix] = value


def compare(
    fresh: "dict[str, Any]",
    baseline: "dict[str, Any]",
    tolerance: float = DEFAULT_TOLERANCE,
) -> "dict[str, Any]":
    """Build the verdict dict for one fresh/baseline pair."""
    ff: dict[str, Any] = {}
    fb: dict[str, Any] = {}
    _flatten("", fresh, ff)
    _flatten("", baseline, fb)
    regressions: list[dict[str, Any]] = []
    improvements: list[dict[str, Any]] = []
    changed: list[dict[str, Any]] = []
    missing: list[str] = []
    checked = 0
    for key in sorted(fb):
        if key.startswith("meta."):
            continue
        base = fb[key]
        if key not in ff:
            missing.append(key)
            continue
        new = ff[key]
        numeric = (
            isinstance(base, (int, float)) and not isinstance(base, bool)
            and isinstance(new, (int, float)) and not isinstance(new, bool)
        )
        direction = classify_key(key) if numeric else None
        if direction is None:
            if base != new:
                changed.append({"key": key, "baseline": base, "fresh": new})
            continue
        checked += 1
        ratio = (new / base) if base else (1.0 if new == base else float("inf"))
        entry = {
            "key": key,
            "direction": direction,
            "baseline": base,
            "fresh": new,
            "ratio": round(ratio, 4),
        }
        if direction == "higher":
            if new < base * (1.0 - tolerance):
                regressions.append(entry)
            elif new > base * (1.0 + tolerance):
                improvements.append(entry)
        else:
            if new > base * (1.0 + tolerance):
                regressions.append(entry)
            elif new < base * (1.0 - tolerance):
                improvements.append(entry)
    return {
        "format": REGRESS_FORMAT_TAG,
        "tolerance": tolerance,
        "status": "regressed" if regressions else "ok",
        "checked": checked,
        "regressions": regressions,
        "improvements": improvements,
        "changed": changed,
        "missing_keys": missing,
    }


def _load(path: str) -> "dict[str, Any]":
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise SystemExit2(f"{path}: cannot read ({exc.strerror or exc})")
    if not text.strip():
        raise SystemExit2(f"{path}: empty file")
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SystemExit2(
            f"{path}: corrupt or truncated JSON "
            f"(line {exc.lineno} col {exc.colno}: {exc.msg})"
        )
    if not isinstance(obj, dict) or not obj:
        raise SystemExit2(f"{path}: not a benchmark results object")
    return obj


class SystemExit2(Exception):
    """Unreadable/not-benchmark-shaped input → exit code 2."""


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench regress",
        description="Compare fresh benchmark JSON against a baseline.",
    )
    parser.add_argument("fresh", help="freshly produced BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline to compare against")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE, metavar="FRAC",
        help="relative slack before a directional move counts "
        f"(default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the verdict JSON here",
    )
    parser.add_argument(
        "--report-only", action="store_true",
        help="exit 0 even on regressions (still 2 on unreadable input)",
    )
    args = parser.parse_args(argv)
    try:
        verdict = compare(
            _load(args.fresh), _load(args.baseline), tolerance=args.tolerance
        )
    except SystemExit2 as exc:
        print(f"repro-bench regress: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(verdict, fh, indent=2, sort_keys=True)
            fh.write("\n")
    print(
        f"{args.fresh} vs {args.baseline}: {verdict['status']} "
        f"({verdict['checked']} leaves checked, "
        f"tolerance ±{args.tolerance:.0%})"
    )
    for entry in verdict["regressions"]:
        arrow = "↓" if entry["direction"] == "higher" else "↑"
        print(
            f"  REGRESSED {entry['key']}: {entry['baseline']} -> "
            f"{entry['fresh']} ({arrow} x{entry['ratio']})"
        )
    for entry in verdict["improvements"]:
        print(
            f"  improved  {entry['key']}: {entry['baseline']} -> "
            f"{entry['fresh']} (x{entry['ratio']})"
        )
    for entry in verdict["changed"]:
        print(
            f"  changed   {entry['key']}: {entry['baseline']!r} -> "
            f"{entry['fresh']!r}"
        )
    if verdict["missing_keys"]:
        print(f"  missing   {', '.join(verdict['missing_keys'])}")
    if verdict["status"] == "regressed" and not args.report_only:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
