"""Parallel sweep executor: fan independent simulator runs over worker
processes.

Every Table 4/5/6 row, every tuning-sweep grid point and every
ablation configuration is an *independent, deterministic* simulation —
each builds its own :class:`~repro.cluster.testbed.Testbed` and its
own event kernel, and the problem instance is regenerated from its
seed inside the worker.  That makes the fan-out embarrassingly
parallel and, more importantly, *bit-reproducible*: a run's result
depends only on its task description, never on which worker executed
it or in what order tasks finished.

:func:`fan_out` is the primitive: ``jobs <= 1`` runs the tasks inline
in the calling process (the byte-identical serial path — no executor,
no pickling); ``jobs > 1`` uses a :class:`ProcessPoolExecutor` whose
``map`` preserves task order, so the returned list is positionally
identical to the serial one.  CPython's GIL makes thread pools useless
here (the workload is pure Python bytecode), hence processes.

Task types must be module-level and picklable; the runners below cover
the Table 4 rows and the tuning grid.  ``repro-bench --jobs N`` is the
user-facing entry point.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, TypeVar

__all__ = [
    "Table4Task",
    "TuningTask",
    "fan_out",
    "resolve_jobs",
    "run_table4_task",
    "run_tuning_task",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/1 → serial, 0 → all cores."""
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def fan_out(
    fn: Callable[[_T], _R],
    tasks: Sequence[_T],
    jobs: Optional[int] = 1,
) -> list[_R]:
    """Run ``fn`` over ``tasks``; results in task order.

    Serial (``jobs <= 1``) executes inline — that path involves no
    serialization and is the reference the parallel path must match.
    Parallel execution assigns tasks to worker processes; because
    every task is self-contained and deterministic, the two paths
    return identical results (guarded by
    ``tests/bench/test_sweep.py``).
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(t) for t in tasks]
    from repro.obs import spans as _obs

    parent = _obs.RECORDER
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        if parent is None:
            return list(pool.map(fn, tasks))
        # A recorder is installed (--profile / --trace): run each task
        # under a fresh worker-local recorder and ship its registry
        # snapshot home with the result, so worker-side metrics are not
        # lost to the process boundary.  Absorbing in task order keeps
        # the merged registry deterministic.
        pairs = list(pool.map(_run_with_registry, [(fn, t) for t in tasks]))
    results = [result for result, _ in pairs]
    for _, snap in pairs:
        parent.registry.absorb(snap)
    return results


def _run_with_registry(item: "tuple[Callable, object]") -> "tuple[object, dict]":
    """Worker shim: run one task under a fresh recorder, return the
    result plus the registry snapshot it accumulated.

    The fresh recorder matters twice over: a fork-inherited parent
    recorder would double-count the parent's pre-fork metrics, and
    pool workers are reused across tasks, so per-task installation is
    the only way snapshots stay disjoint.
    """
    from repro.obs import spans as _obs

    fn, task = item
    rec = _obs.ObsRecorder()
    prev = _obs.RECORDER
    _obs.RECORDER = rec
    try:
        result = fn(task)
    finally:
        _obs.RECORDER = prev
    return result, rec.registry.snapshot()


# -- picklable task runners ---------------------------------------------------


@dataclass(frozen=True)
class Table4Task:
    """One Table 4 row (or the sequential baseline, ``system_name=None``)."""

    config: "object"  # Table4Config; untyped to avoid an import cycle
    label: str
    system_name: Optional[str]
    use_proxy: Optional[bool]


def run_table4_task(task: Table4Task) -> "tuple[str, object]":
    """Worker: run one Table 4 configuration, return ``(label, result)``.

    The sequential baseline returns its simulated time (a float); the
    parallel rows return a
    :class:`~repro.apps.knapsack.driver.RunResult`.  The instance is
    regenerated from the config's seed inside the worker, so nothing
    but the small task tuple crosses the process boundary.
    """
    from repro.apps.knapsack.driver import run_sequential_baseline, run_system
    from repro.cluster.testbed import Testbed

    config = task.config
    instance = config.instance()
    if task.system_name is None:
        return task.label, run_sequential_baseline(
            Testbed(), instance, config.params
        )
    return task.label, run_system(
        Testbed(),
        task.system_name,
        instance,
        config.params,
        use_proxy=task.use_proxy,
    )


@dataclass(frozen=True)
class TuningTask:
    """One tuning-sweep grid point."""

    instance: "object"  # KnapsackInstance
    system_name: str
    params: "object"  # SchedulingParams


def run_tuning_task(task: TuningTask) -> "object":
    """Worker: evaluate one parameter combination, return a SweepPoint."""
    from repro.apps.knapsack.driver import run_system
    from repro.bench.tuning import SweepPoint
    from repro.cluster.testbed import Testbed

    run = run_system(Testbed(), task.system_name, task.instance, task.params)
    return SweepPoint(
        params=task.params,
        execution_time=run.execution_time,
        total_steals=run.total_steals,
        back_transfers=sum(s.back_transfers for s in run.rank_stats),
    )
