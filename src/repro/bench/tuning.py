"""The §4.4 tuning methodology: "We varied a stealunit, interval, and
backunit and took the best combination."

:func:`run_tuning_sweep` evaluates a grid of
:class:`~repro.apps.knapsack.master_slave.SchedulingParams` on one
system and returns the points sorted by execution time.  Used by the
``bench_tuning`` target (which asserts the knobs actually matter — the
spread between best and worst combination is large) and by
``examples/knapsack_tuning.py``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.apps.knapsack.instance import KnapsackInstance
from repro.apps.knapsack.master_slave import SchedulingParams
from repro.util.tables import Table

__all__ = ["SweepPoint", "run_tuning_sweep", "render_sweep", "default_grid"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated parameter combination."""

    params: SchedulingParams
    execution_time: float
    total_steals: int
    back_transfers: int

    def describe(self) -> str:
        p = self.params
        return (
            f"interval={p.interval} stealunit={p.stealunit} "
            f"backunit={p.backunit} back_every={p.back_every}"
        )


def default_grid(base: SchedulingParams) -> list[SchedulingParams]:
    """The swept combinations (27 points: 3 × 3 × 3)."""
    grid = []
    for interval in (10, 25, 100):
        for stealunit in (2, 8, 32):
            for backunit in (2, 4, 8):
                grid.append(
                    dataclasses.replace(
                        base,
                        interval=interval,
                        stealunit=stealunit,
                        backunit=backunit,
                    )
                )
    return grid


def run_tuning_sweep(
    instance: KnapsackInstance,
    system_name: str = "Wide-area Cluster",
    grid: Optional[Sequence[SchedulingParams]] = None,
    base: Optional[SchedulingParams] = None,
    jobs: Optional[int] = 1,
) -> list[SweepPoint]:
    """Evaluate the grid; returns points sorted best-first.

    ``jobs > 1`` evaluates grid points in worker processes (each point
    is an independent deterministic simulation); the sort is stable
    over the deterministic grid order, so the ranking is identical to
    the serial path.
    """
    if base is None:
        base = SchedulingParams()
    if grid is None:
        grid = default_grid(base)
    from repro.bench.sweep import TuningTask, fan_out, run_tuning_task

    tasks = [TuningTask(instance, system_name, params) for params in grid]
    points = fan_out(run_tuning_task, tasks, jobs)
    points.sort(key=lambda p: p.execution_time)
    return points


def render_sweep(points: Iterable[SweepPoint], limit: int = 10) -> str:
    t = Table(
        ["rank", "interval", "stealunit", "backunit", "time (sec)",
         "steals", "backs"],
        title="Scheduling-parameter sweep (best combinations first)",
    )
    for i, p in enumerate(points):
        if i >= limit:
            break
        t.add_row(
            [
                i + 1,
                p.params.interval,
                p.params.stealunit,
                p.params.backunit,
                f"{p.execution_time:.1f}",
                p.total_steals,
                p.back_transfers,
            ]
        )
    return t.render()
