"""``repro-bench``: regenerate any table or figure from the command line.

::

    repro-bench table2
    repro-bench table4 --target-nodes 2000000   # quicker, noisier
    repro-bench table5 table6
    repro-bench tuning --points 9 --jobs 4      # grid points in parallel
    repro-bench table4 --profile                # cProfile the run
    repro-bench table4 --trace                  # Chrome trace + summary
    repro-bench all --jobs 0                    # all tables, all cores
    repro-bench regress BENCH_sim.json baseline.json   # perf gate
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main"]

TARGETS = ["table2", "table3", "table4", "table5", "table6", "tuning", "all"]


def _print_table3() -> None:
    from repro.cluster.systems import SYSTEMS
    from repro.util.tables import Table

    t = Table(["Nickname", "Description"], title="Table 3. Experimental Testbed")
    for spec in SYSTEMS.values():
        t.add_row([spec.name, spec.description])
    print(t.render())


def main(argv: "list[str] | None" = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "regress":
        # The regression gate has its own argument surface; hand off
        # before the table-target parser rejects it.
        from repro.bench.regress import main as regress_main

        return regress_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables on the simulated testbed",
    )
    parser.add_argument("targets", nargs="+", choices=TARGETS)
    parser.add_argument(
        "--target-nodes", type=int, default=20_000_000,
        help="search-tree size for the knapsack runs (default 20M)",
    )
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument(
        "--points", type=int, default=27,
        help="tuning-sweep grid points to evaluate (max 27)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the table4/5/6 rows and the tuning "
        "grid (0 = all cores; default 1 = serial; results are "
        "identical either way)",
    )
    parser.add_argument(
        "--profile", nargs="?", const="bench_profile.pstats", default=None,
        metavar="PATH",
        help="cProfile the table runs; writes pstats to PATH (default "
        "bench_profile.pstats) and prints the hottest functions. "
        "Profiles the driving process only — combine with the default "
        "--jobs 1 to capture the simulation itself",
    )
    parser.add_argument(
        "--trace", nargs="?", const="", default=None, metavar="BASE",
        help="record an observability trace of the runs; writes "
        "BASE.trace.json (Chrome trace_event JSON, loadable in "
        "Perfetto) and BASE.summary.json (default BENCH_bench.* in the "
        "repo root). Forces --jobs 1: the recorder lives in this "
        "process",
    )
    parser.add_argument(
        "--causal", nargs="?", const="sim", default=None, metavar="SITE",
        help="mint causal trace contexts during the runs (every RMF "
        "submit becomes a traced origin; ids are prefixed SITE, "
        "default 'sim'). Combine with --trace, then stitch with "
        "'repro-obs assemble'",
    )
    args = parser.parse_args(argv)
    targets = set(args.targets)
    if "all" in targets:
        targets = set(TARGETS) - {"all"}

    recorder = None
    if args.trace is not None:
        from repro.obs import spans as obs_spans

        if args.jobs != 1:
            print(
                "[repro-bench] --trace forces --jobs 1 (the recorder "
                "cannot follow worker processes)",
                file=sys.stderr,
            )
            args.jobs = 1
        recorder = obs_spans.install()

    if args.causal is not None:
        from repro.obs import trace as obs_trace

        obs_trace.enable(args.causal)

    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
        if recorder is None:
            # --profile alone still routes through the registry: phase
            # wall times and kernel throughput land in PATH.obs.json.
            from repro.obs import spans as obs_spans

            recorder = obs_spans.install()

    t_start = time.time()
    if "table2" in targets:
        from repro.bench.table2 import render_table2, run_table2

        print(render_table2(run_table2()))
        print()
    if "table3" in targets:
        _print_table3()
        print()

    table4_results = None
    if targets & {"table4", "table5", "table6"}:
        from repro.bench.table4 import Table4Config, render_table4, run_table4

        config = Table4Config(target_nodes=args.target_nodes, seed=args.seed)
        t_phase = time.time()
        t_wall = recorder.wall_ts() if recorder is not None else 0.0
        if profiler is not None:
            profiler.enable()
            try:
                table4_results = run_table4(config, jobs=args.jobs)
            finally:
                profiler.disable()
        else:
            table4_results = run_table4(config, jobs=args.jobs)
        if recorder is not None:
            recorder.wall_span_end("bench", "table456", t_wall, track="bench")
            wall = time.time() - t_phase
            events = sum(r.events for r in table4_results.runs.values())
            reg = recorder.registry
            reg.gauge("profile.table456_wall_s").set(round(wall, 6))
            reg.gauge("profile.table456_kernel_events").set(events)
            reg.gauge("profile.table456_events_per_s").set(
                round(events / wall, 1) if wall > 0 else 0.0
            )
    if "table4" in targets:
        from repro.bench.table4 import render_table4

        print(render_table4(table4_results))
        print()
    if "table5" in targets:
        from repro.bench.table56 import render_table5

        print(render_table5(table4_results))
        print()
    if "table6" in targets:
        from repro.bench.table56 import render_table6

        print(render_table6(table4_results))
        print()
    if "tuning" in targets:
        from repro.apps.knapsack.instance import scaled_instance
        from repro.bench.tuning import default_grid, render_sweep, run_tuning_sweep
        from repro.apps.knapsack.master_slave import SchedulingParams

        instance = scaled_instance(n=40, target_nodes=2_000_000, seed=args.seed)
        grid = default_grid(SchedulingParams())[: args.points]
        t_phase = time.time()
        t_wall = recorder.wall_ts() if recorder is not None else 0.0
        if profiler is not None:
            profiler.enable()
            try:
                points = run_tuning_sweep(instance, grid=grid, jobs=args.jobs)
            finally:
                profiler.disable()
        else:
            points = run_tuning_sweep(instance, grid=grid, jobs=args.jobs)
        if recorder is not None:
            recorder.wall_span_end("bench", "tuning", t_wall, track="bench")
            recorder.registry.gauge("profile.tuning_wall_s").set(
                round(time.time() - t_phase, 6)
            )
        print(render_sweep(points))
        print()

    if profiler is not None:
        import pstats

        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
        print(f"[repro-bench] profile written to {args.profile}", file=sys.stderr)
        if recorder is not None:
            from repro.obs.export import dumps

            obs_path = f"{args.profile}.obs.json"
            with open(obs_path, "w") as fh:
                fh.write(dumps({
                    "format": "repro-obs-registry-v1",
                    "registry": recorder.registry.snapshot(),
                }))
                fh.write("\n")
            print(
                f"[repro-bench] registry snapshot written to {obs_path}",
                file=sys.stderr,
            )

    if args.trace is not None and recorder is not None:
        from repro.bench.results import write_trace_artifacts

        trace_path, summary_path = write_trace_artifacts(
            recorder, args.trace or None, "BENCH_bench",
            targets=sorted(targets), target_nodes=args.target_nodes,
            seed=args.seed,
        )
        print(
            f"[repro-bench] trace written to {trace_path} "
            f"(summary: {summary_path})",
            file=sys.stderr,
        )

    if args.causal is not None:
        from repro.obs import trace as obs_trace

        obs_trace.disable()
    if recorder is not None:
        from repro.obs import spans as obs_spans

        obs_spans.uninstall()

    print(f"[repro-bench] done in {time.time() - t_start:.1f}s wall", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
