"""Table 2: communication latency and bandwidth, direct vs. proxied.

Methodology (matching the Nexus-era harness the paper used):

* **latency** — half the round trip of a small (16-byte) ping-pong on
  an established connection;
* **bandwidth(S)** — ``S / (round trip of an S-byte echo / 2)`` for
  S = 4096 ("4096byte message") and S = 2\\ :sup:`20` ("1MB message").

Each row runs on a fresh :class:`~repro.cluster.testbed.Testbed`.
Direct rows use plain (framed) connections — possible without touching
the firewall because the measuring side dials *outbound*; indirect
rows publish the server end with ``NXProxyBind`` so traffic chains
through the outer and inner relay servers, exactly the Fig. 3/4 paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.cluster.testbed import Testbed
from repro.core.api import NexusProxyClient
from repro.core.frames import FramedConnection
from repro.simnet.kernel import Event
from repro.util.stats import median
from repro.util.tables import Table
from repro.util.units import MIB_MESSAGE, SMALL_MESSAGE, fmt_rate, fmt_time

__all__ = ["Table2Row", "run_table2", "render_table2", "PAPER_TABLE2"]

#: Message size used for the latency measurement.
LATENCY_PROBE_BYTES = 16
#: Ping-pong repetitions per size (the simulation is deterministic,
#: but repetitions separate connection-warm-up from steady state).
REPS = 3


@dataclass(frozen=True, slots=True)
class Table2Row:
    """One measured Table 2 row."""

    label: str
    latency: float
    bandwidth_4k: float
    bandwidth_1mb: float


#: The legible cells of the paper's Table 2 (None = lost to the
#: scanned-PDF transcription).  Used by EXPERIMENTS.md and the bench
#: assertions.
PAPER_TABLE2: dict[str, tuple[Optional[float], Optional[float], Optional[float]]] = {
    "RWCP-Sun <-> COMPaS (direct)": (0.41e-3, 3.29e6, 6.32e6),
    "RWCP-Sun <-> COMPaS (indirect)": (25.0e-3, 70.5e3, None),
    "RWCP-Sun <-> ETL-Sun (direct)": (3.9e-3, None, None),
    "RWCP-Sun <-> ETL-Sun (indirect)": (25.1e-3, None, None),
}


def _echo_server(listener_or_sock, proxied: bool, chunk: int) -> Iterator[Event]:
    """Accept one connection and echo every message back, same size."""
    if proxied:
        framed = yield from listener_or_sock.accept()
    else:
        conn = yield listener_or_sock.accept()
        framed = FramedConnection(conn, chunk)
    try:
        while True:
            payload, nbytes = yield from framed.recv()
            yield framed.send(payload, nbytes=nbytes)
    except Exception:
        return  # peer closed


def _pingpong_client(
    tb: Testbed,
    connect_gen,
    sizes: list[int],
    out: dict[int, float],
) -> Iterator[Event]:
    framed = yield from connect_gen
    # Warm-up exchange: connection establishment and first-message
    # costs must not pollute the steady-state numbers.
    yield framed.send(b"w", nbytes=LATENCY_PROBE_BYTES)
    yield from framed.recv()
    for size in sizes:
        rtts = []
        for _ in range(REPS):
            t0 = tb.sim.now
            yield framed.send(b"p", nbytes=size)
            yield from framed.recv()
            rtts.append(tb.sim.now - t0)
        out[size] = median(rtts) / 2  # one-way time
    framed.close()


def _measure(pair: str, indirect: bool) -> Table2Row:
    tb = Testbed()
    chunk = tb.relay_config.chunk_bytes
    if pair == "wan" and not indirect:
        # "For the experiments, we have temporarily changed the
        # configuration of the firewall to enable direct communication
        # between RWCP-Sun and ETL-Sun." (§4.2 footnote)
        tb.open_firewall_for_direct_runs()
    if pair == "lan":
        client_host, server_host = tb.rwcp_sun, tb.compas[0]
        label = "RWCP-Sun <-> COMPaS"
    else:
        client_host, server_host = tb.etl_sun, tb.rwcp_sun
        label = "RWCP-Sun <-> ETL-Sun"
    label += " (indirect)" if indirect else " (direct)"

    sizes = [LATENCY_PROBE_BYTES, SMALL_MESSAGE, MIB_MESSAGE]
    out: dict[int, float] = {}

    if indirect:
        server_client = NexusProxyClient(server_host, **tb.proxy_addrs)

        def orchestrate() -> Iterator[Event]:
            listener = yield from server_client.bind()
            tb.sim.process(
                _echo_server(listener, proxied=True, chunk=chunk), name="echo"
            )
            peer = NexusProxyClient(client_host, **tb.proxy_addrs)
            yield from _pingpong_client(
                tb, peer.connect(listener.proxy_addr), sizes, out
            )
            listener.close()

        driver = tb.sim.process(orchestrate(), name="table2")
    else:
        lsock = server_host.listen(9900)
        tb.sim.process(_echo_server(lsock, proxied=False, chunk=chunk), name="echo")
        plain = NexusProxyClient(client_host)  # no proxy configured

        def orchestrate() -> Iterator[Event]:
            yield from _pingpong_client(
                tb, plain.connect((server_host.name, 9900)), sizes, out
            )

        driver = tb.sim.process(orchestrate(), name="table2")

    tb.sim.run(until=driver)
    return Table2Row(
        label=label,
        latency=out[LATENCY_PROBE_BYTES],
        bandwidth_4k=SMALL_MESSAGE / out[SMALL_MESSAGE],
        bandwidth_1mb=MIB_MESSAGE / out[MIB_MESSAGE],
    )


def run_table2() -> list[Table2Row]:
    """Measure all four rows (fresh testbed per row)."""
    return [
        _measure("lan", indirect=False),
        _measure("lan", indirect=True),
        _measure("wan", indirect=False),
        _measure("wan", indirect=True),
    ]


def render_table2(rows: list[Table2Row]) -> str:
    """Paper-style rendering with the legible paper cells alongside."""
    t = Table(
        ["", "latency", "bw (4096B)", "bw (1MB)",
         "paper latency", "paper bw 4K", "paper bw 1MB"],
        title="Table 2. Communication latency and bandwidth",
    )
    for row in rows:
        paper = PAPER_TABLE2.get(row.label, (None, None, None))

        def p(v, f):
            return f(v) if v is not None else "(illegible)"

        t.add_row(
            [
                row.label,
                fmt_time(row.latency),
                fmt_rate(row.bandwidth_4k),
                fmt_rate(row.bandwidth_1mb),
                p(paper[0], fmt_time),
                p(paper[1], fmt_rate),
                p(paper[2], fmt_rate),
            ]
        )
    return t.render()
