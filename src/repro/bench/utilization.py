"""Resource-utilization reporting for simulated runs.

Answers the capacity-planning questions the paper's deployment would
have faced: how busy are the relay daemons during a wide-area run, and
how loaded is the IMNet?  Built from the simulator's first-class
counters (link busy time, per-host ``execute`` accounting), so any
experiment can be audited after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.testbed import Testbed
from repro.util.tables import Table

__all__ = ["UtilizationReport", "collect_utilization"]


@dataclass(frozen=True)
class UtilizationReport:
    """Snapshot of a testbed after a run."""

    elapsed: float
    #: host name → fraction of core-time spent in execute().
    host_cpu: dict[str, float]
    #: link name → (utilization, bytes carried) for the busiest
    #: direction of each duplex link.
    links: dict[str, tuple[float, int]]
    outer_frames: int
    inner_frames: int

    def render(self) -> str:
        t = Table(["resource", "utilization", "volume"],
                  title="Utilization report")
        for name, util in sorted(self.host_cpu.items()):
            if util > 0:
                t.add_row([f"cpu:{name}", f"{util * 100:5.1f}%", ""])
        for name, (util, nbytes) in sorted(self.links.items()):
            if nbytes > 0:
                t.add_row([f"link:{name}", f"{util * 100:5.1f}%",
                           f"{nbytes / 1e6:.1f} MB"])
        t.add_row(["relay frames (outer/inner)", "",
                   f"{self.outer_frames} / {self.inner_frames}"])
        return t.render()


def collect_utilization(tb: Testbed) -> UtilizationReport:
    """Read the counters off a testbed after driving its simulator."""
    host_cpu = {
        name: host.cpu_utilization() for name, host in tb.net.hosts.items()
    }
    links: dict[str, tuple[float, int]] = {}
    for duplex in tb.net.links():
        fwd, rev = duplex.forward, duplex.reverse
        busiest = fwd if fwd.busy_time >= rev.busy_time else rev
        links[duplex.name] = (
            busiest.utilization(),
            fwd.bytes_sent + rev.bytes_sent,
        )
    return UtilizationReport(
        elapsed=tb.sim.now,
        host_cpu=host_cpu,
        links=links,
        outer_frames=tb.outer_server.stats.frames_relayed,
        inner_frames=tb.inner_server.stats.frames_relayed,
    )
