"""Table 4: knapsack execution time and speedup on the four systems.

Runs the sequential baseline on RWCP-Sun and then the four Table 3
systems — the wide-area cluster both with and without the Nexus Proxy
(the latter after the paper's temporary firewall change).  All runs
share one problem instance and one tuned parameter set (the §4.4
methodology: parameters were swept and the best combination used; the
sweep lives in :mod:`repro.bench.tuning`).

Because our substrate is a simulator, absolute seconds are calibration
-dependent (see ``DEFAULT_NODE_COST``); the claims checked are the
paper's: speedup ordering, good load balance, and a proxy overhead of
a few percent ("approximately 3.5%", §4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.knapsack.driver import RunResult
from repro.apps.knapsack.instance import KnapsackInstance, scaled_instance
from repro.apps.knapsack.master_slave import SchedulingParams
from repro.util.tables import Table

__all__ = ["Table4Config", "Table4Results", "run_table4", "render_table4"]


@dataclass(frozen=True)
class Table4Config:
    """Workload and scheduling configuration for the Table 4/5/6 runs."""

    #: Items in the instance (the paper used 50; we default to 44 so
    #: the full tree is ~20M nodes — executable in seconds of host
    #: time while preserving the paper's compute/communication ratio).
    n_items: int = 44
    target_nodes: int = 20_000_000
    seed: int = 5
    params: SchedulingParams = field(default_factory=SchedulingParams)

    def instance(self) -> KnapsackInstance:
        return scaled_instance(
            n=self.n_items, target_nodes=self.target_nodes,
            seed=self.seed, tolerance=0.9,
        )


@dataclass(frozen=True)
class Table4Results:
    """Everything Tables 4, 5 and 6 are derived from."""

    config: Table4Config
    sequential_time: float
    runs: dict[str, RunResult]

    @property
    def proxy_overhead(self) -> float:
        """Relative wide-area overhead of using the Nexus Proxy."""
        with_proxy = self.runs["Wide-area Cluster (use Nexus Proxy)"]
        without = self.runs["Wide-area Cluster (Not use Nexus Proxy)"]
        return with_proxy.execution_time / without.execution_time - 1.0

    def speedup(self, label: str) -> float:
        return self.sequential_time / self.runs[label].execution_time


#: Row labels, in the paper's order.
ROW_ORDER = [
    "COMPaS",
    "ETL-O2K",
    "Local-area Cluster",
    "Wide-area Cluster (use Nexus Proxy)",
    "Wide-area Cluster (Not use Nexus Proxy)",
]

_ROW_SPECS: list[tuple[str, str, Optional[bool]]] = [
    ("COMPaS", "COMPaS", None),
    ("ETL-O2K", "ETL-O2K", None),
    ("Local-area Cluster", "Local-area Cluster", None),
    ("Wide-area Cluster (use Nexus Proxy)", "Wide-area Cluster", True),
    ("Wide-area Cluster (Not use Nexus Proxy)", "Wide-area Cluster", False),
]


def run_table4(
    config: Optional[Table4Config] = None, jobs: Optional[int] = 1
) -> Table4Results:
    """Run the baseline plus all five parallel configurations.

    ``jobs > 1`` fans the six independent simulations over worker
    processes (see :mod:`repro.bench.sweep`); every run is
    deterministic and self-contained, so the results — and the
    rendered tables — are identical to the serial path.
    """
    if config is None:
        config = Table4Config()
    from repro.bench.sweep import Table4Task, fan_out, run_table4_task

    tasks = [Table4Task(config, "sequential", None, None)]
    tasks += [
        Table4Task(config, label, system_name, use_proxy)
        for label, system_name, use_proxy in _ROW_SPECS
    ]
    outcomes = dict(fan_out(run_table4_task, tasks, jobs))
    sequential: float = outcomes.pop("sequential")
    runs: dict[str, RunResult] = {label: outcomes[label] for label, _, _ in _ROW_SPECS}
    return Table4Results(config, sequential, runs)


def render_table4(results: Table4Results) -> str:
    t = Table(
        ["System", "Num. of processors", "Execution Time (sec)", "Speedup"],
        title="Table 4. Execution time for the 0-1 knapsack problem",
    )
    t.add_row(["RWCP-Sun (sequential)", 1, f"{results.sequential_time:.1f}", "1.00"])
    for label in ROW_ORDER:
        run = results.runs[label]
        t.add_row(
            [
                label,
                run.nprocs,
                f"{run.execution_time:.1f}",
                f"{results.speedup(label):.2f}",
            ]
        )
    lines = [t.render()]
    lines.append(
        f"\nNexus Proxy overhead on the wide-area cluster: "
        f"{results.proxy_overhead * 100:.1f}%  (paper: approximately 3.5%)"
    )
    return "\n".join(lines)
