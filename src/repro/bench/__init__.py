"""Experiment harness: regenerates every table and figure of the paper.

One module per experiment, each exposing a ``run_*`` function that
returns structured results plus a ``render_*`` function producing the
paper-style text table.  The pytest-benchmark targets in
``benchmarks/`` and the ``repro-bench`` CLI drive these.
"""

from repro.bench.calibrate import table2_chain_models
from repro.bench.results import bench_meta, write_results
from repro.bench.sweep import fan_out, resolve_jobs
from repro.bench.table2 import Table2Row, render_table2, run_table2
from repro.bench.table4 import Table4Config, Table4Results, render_table4, run_table4
from repro.bench.table56 import render_table5, render_table6
from repro.bench.tuning import SweepPoint, render_sweep, run_tuning_sweep

__all__ = [
    "SweepPoint",
    "Table2Row",
    "Table4Config",
    "Table4Results",
    "bench_meta",
    "fan_out",
    "render_sweep",
    "render_table2",
    "render_table4",
    "render_table5",
    "render_table6",
    "resolve_jobs",
    "run_table2",
    "run_table4",
    "run_tuning_sweep",
    "table2_chain_models",
    "write_results",
]
