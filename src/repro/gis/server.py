"""The directory daemon.

Holds records keyed by distinguished name, expires them by TTL, and
answers register/refresh/unregister/query requests over the simulated
network.  Deployed outside the firewall (like the gatekeeper) so that
any grid client can query it; the resources inside publish *outbound*,
which the deny-based firewall permits — the same asymmetry the whole
paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional

from repro.gis.records import Filter, GISError, Record, parse_filter
from repro.simnet.host import Host
from repro.simnet.kernel import Event
from repro.simnet.socket import Connection, ConnectionReset, ListenSocket, SocketError

__all__ = ["GISServer", "DEFAULT_GIS_PORT", "RegisterMsg", "QueryMsg", "GISReply"]

DEFAULT_GIS_PORT = 2135  # the historical MDS port
_CTRL_BYTES = 96


@dataclass(frozen=True)
class RegisterMsg:
    dn: str
    attributes: Mapping[str, Any]
    ttl: float = 300.0


@dataclass(frozen=True)
class UnregisterMsg:
    dn: str


@dataclass(frozen=True)
class QueryMsg:
    filter: str


@dataclass(frozen=True)
class GISReply:
    ok: bool
    records: tuple[Record, ...] = ()
    error: Optional[str] = None


class GISServer:
    """The grid information directory."""

    def __init__(self, host: Host, port: int = DEFAULT_GIS_PORT) -> None:
        self.host = host
        self.sim = host.sim
        self.port = port
        self._records: dict[str, Record] = {}
        self._sock: Optional[ListenSocket] = None
        self.queries_served = 0
        self.registrations = 0

    @property
    def addr(self) -> tuple[str, int]:
        return (self.host.name, self.port)

    @property
    def running(self) -> bool:
        return self._sock is not None and not self._sock.closed

    def start(self) -> "GISServer":
        if self.running:
            raise GISError(f"GIS on {self.host.name} already running")
        self._sock = self.host.listen(self.port)
        self.sim.process(self._accept_loop(), name=f"gis@{self.host.name}")
        return self

    def stop(self) -> None:
        if self._sock is not None:
            self._sock.close()

    # -- direct (in-process) API: usable without the network ------------

    def register(self, dn: str, attributes: Mapping[str, Any], ttl: float = 300.0) -> None:
        self._records[dn] = Record(
            dn=dn, attributes=dict(attributes),
            registered_at=self.sim.now, ttl=ttl,
        )
        self.registrations += 1

    def unregister(self, dn: str) -> bool:
        return self._records.pop(dn, None) is not None

    def query(self, filter_text: str) -> list[Record]:
        """Filtered search over live (non-expired) records."""
        flt: Filter = parse_filter(filter_text)
        self._sweep()
        self.queries_served += 1
        return sorted(
            (r for r in self._records.values() if flt.matches(r)),
            key=lambda r: r.dn,
        )

    def _sweep(self) -> None:
        now = self.sim.now
        dead = [dn for dn, r in self._records.items() if r.expired(now)]
        for dn in dead:
            del self._records[dn]

    def __len__(self) -> int:
        self._sweep()
        return len(self._records)

    # -- wire protocol ----------------------------------------------------

    def _accept_loop(self) -> Iterator[Event]:
        assert self._sock is not None
        while True:
            try:
                conn = yield self._sock.accept()
            except SocketError:
                return
            self.sim.process(self._session(conn), name=f"gis-session@{self.host.name}")

    def _session(self, conn: Connection) -> Iterator[Event]:
        while True:
            try:
                msg = yield conn.recv()
            except ConnectionReset:
                return
            request = msg.payload
            if isinstance(request, RegisterMsg):
                try:
                    self.register(request.dn, request.attributes, request.ttl)
                    reply = GISReply(ok=True)
                except GISError as exc:
                    reply = GISReply(ok=False, error=str(exc))
            elif isinstance(request, UnregisterMsg):
                reply = GISReply(ok=self.unregister(request.dn))
            elif isinstance(request, QueryMsg):
                try:
                    hits = tuple(self.query(request.filter))
                    reply = GISReply(ok=True, records=hits)
                except GISError as exc:
                    reply = GISReply(ok=False, error=str(exc))
            else:
                reply = GISReply(
                    ok=False, error=f"bad request {type(request).__name__}"
                )
            nbytes = _CTRL_BYTES + 128 * len(reply.records)
            yield conn.send(reply, nbytes=nbytes)
