"""Directory records and query filters.

A :class:`Record` is a distinguished name plus a flat attribute map
plus a time-to-live — the MDS object model reduced to what discovery
needs.  Queries are conjunctions of attribute conditions in a small
LDAP-flavoured filter language::

    (&(type=compute)(cpus>=8)(site=rwcp))

Supported operators: ``=`` (string equality, ``*`` matches any value),
``>=``, ``<=``, ``>``, ``<`` (numeric).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = ["GISError", "Record", "Filter", "parse_filter"]


class GISError(RuntimeError):
    """Directory-service failure or malformed query."""


@dataclass(frozen=True)
class Record:
    """One published directory entry."""

    dn: str
    attributes: Mapping[str, Any]
    #: Registration instant (simulated seconds).
    registered_at: float = 0.0
    #: Seconds the record stays valid without a refresh.
    ttl: float = 300.0

    def __post_init__(self) -> None:
        if not self.dn:
            raise GISError("record needs a distinguished name")
        if self.ttl <= 0:
            raise GISError(f"ttl must be positive, got {self.ttl}")

    def expired(self, now: float) -> bool:
        return now > self.registered_at + self.ttl

    def get(self, attr: str, default: Any = None) -> Any:
        return self.attributes.get(attr, default)


_CONDITION = re.compile(
    r"\(\s*([A-Za-z_][\w.-]*)\s*(>=|<=|>|<|=)\s*([^()]*?)\s*\)"
)


@dataclass(frozen=True)
class Filter:
    """A compiled conjunction of attribute conditions."""

    text: str
    conditions: tuple[tuple[str, str, str], ...]

    def matches(self, record: Record) -> bool:
        for attr, op, want in self.conditions:
            have = record.get(attr)
            if have is None:
                return False
            if op == "=":
                if want != "*" and str(have) != want:
                    return False
            else:
                try:
                    have_num = float(have)
                    want_num = float(want)
                except (TypeError, ValueError):
                    return False
                if op == ">=" and not have_num >= want_num:
                    return False
                if op == "<=" and not have_num <= want_num:
                    return False
                if op == ">" and not have_num > want_num:
                    return False
                if op == "<" and not have_num < want_num:
                    return False
        return True


def parse_filter(text: str) -> Filter:
    """Compile a filter string; ``""`` or ``"(*)"`` matches everything."""
    stripped = text.strip()
    if stripped in ("", "(*)", "*"):
        return Filter(text=text, conditions=())
    body = stripped
    if body.startswith("(&") and body.endswith(")"):
        body = body[2:-1]
    conditions = tuple(
        (m.group(1), m.group(2), m.group(3)) for m in _CONDITION.finditer(body)
    )
    if not conditions:
        raise GISError(f"unparsable filter: {text!r}")
    # Guard against silently ignored garbage between conditions.
    leftover = _CONDITION.sub("", body).strip()
    if leftover:
        raise GISError(f"trailing garbage in filter {text!r}: {leftover!r}")
    return Filter(text=text, conditions=conditions)
