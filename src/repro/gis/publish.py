"""Bridging RMF's resource table into the directory.

:func:`publish_rmf_resources` writes one ``type=compute`` record per
RMF resource (plus one for the gatekeeper itself), giving grid clients
the discovery step: *query GIS → find a gatekeeper and its capacity →
submit RSL*.  Attributes follow a flat MDS-like schema:

====================  ==========================================
``type``              ``compute`` | ``gatekeeper``
``site``              administrative domain name
``cpus``              processors the Q server advertises
``cpu_speed``         relative speed (RWCP-Sun = 1.0)
``gatekeeper_host``   where to submit
``gatekeeper_port``   —
``behind_firewall``   "true"/"false" — reachable only through RMF?
====================  ==========================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gis.server import GISServer

if TYPE_CHECKING:  # pragma: no cover
    from repro.rmf.gatekeeper import RMFSystem

__all__ = ["publish_rmf_resources"]


def publish_rmf_resources(
    gis: GISServer, rmf: "RMFSystem", site: str = "", ttl: float = 300.0
) -> list[str]:
    """Register the deployment's gatekeeper and resources; returns the
    distinguished names written (direct/in-process registration — the
    daemons cohabit the service host in a real deployment too)."""
    gk_host, gk_port = rmf.gatekeeper.addr
    dns: list[str] = []

    dn = f"gk={gk_host}:{gk_port}"
    gis.register(
        dn,
        {
            "type": "gatekeeper",
            "site": site,
            "gatekeeper_host": gk_host,
            "gatekeeper_port": gk_port,
            "resources": len(rmf.qservers),
        },
        ttl=ttl,
    )
    dns.append(dn)

    for qs in rmf.qservers:
        host = qs.host
        behind = (
            host.site is not None
            and host.site.firewall is not None
        )
        dn = f"resource={qs.resource_name},gk={gk_host}:{gk_port}"
        gis.register(
            dn,
            {
                "type": "compute",
                "site": host.site_name or "",
                "resource": qs.resource_name,
                "cpus": qs.cpus,
                "cpu_speed": host.cpu_speed,
                "gatekeeper_host": gk_host,
                "gatekeeper_port": gk_port,
                "behind_firewall": "true" if behind else "false",
            },
            ttl=ttl,
        )
        dns.append(dn)
    return dns
