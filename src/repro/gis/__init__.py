"""GIS — a Grid Information Service (Globus MDS-like directory).

The paper's intro lists "network information" among the basic Globus
mechanisms its testbed relied on.  This package provides that
substrate: a directory daemon where resources publish attribute
records with TTLs and clients run filtered queries — the discovery
path a metacomputing scheduler uses before talking to GRAM.

The RMF allocator can publish its resource table here
(:func:`repro.gis.publish.publish_rmf_resources`), closing the loop:
discover via GIS, submit via the gatekeeper, compute behind the
firewall.
"""

from repro.gis.client import GISClient
from repro.gis.records import GISError, Record
from repro.gis.server import DEFAULT_GIS_PORT, GISServer
from repro.gis.publish import publish_rmf_resources

__all__ = [
    "DEFAULT_GIS_PORT",
    "GISClient",
    "GISError",
    "GISServer",
    "Record",
    "publish_rmf_resources",
]
