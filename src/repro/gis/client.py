"""Client-side access to the directory.

One persistent connection per client; operations are generators in the
simulator's style.  Resources inside a firewalled site can publish
because the connection is outbound; anyone can query.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Optional

from repro.gis.records import GISError, Record
from repro.gis.server import GISReply, QueryMsg, RegisterMsg, UnregisterMsg, _CTRL_BYTES
from repro.simnet.host import Host
from repro.simnet.kernel import Event
from repro.simnet.socket import Connection, ConnectionReset, SocketError

__all__ = ["GISClient"]


class GISClient:
    """Handle for one host talking to one GIS server."""

    def __init__(self, host: Host, server_addr: tuple[str, int]) -> None:
        self.host = host
        self.sim = host.sim
        self.server_addr = server_addr
        self._conn: Optional[Connection] = None

    def _ensure_connected(self) -> Iterator[Event]:
        if self._conn is not None and not self._conn.closed:
            return
        self._conn = yield from self.host.connect(self.server_addr)

    def _roundtrip(self, request: Any) -> Iterator[Event]:
        yield from self._ensure_connected()
        assert self._conn is not None
        yield self._conn.send(request, nbytes=_CTRL_BYTES)
        try:
            msg = yield self._conn.recv()
        except ConnectionReset:
            self._conn = None
            raise GISError(f"GIS at {self.server_addr} dropped the connection")
        reply: GISReply = msg.payload
        if not isinstance(reply, GISReply):
            raise GISError(f"unexpected GIS reply: {reply!r}")
        return reply

    # -- operations -----------------------------------------------------

    def register(
        self, dn: str, attributes: Mapping[str, Any], ttl: float = 300.0
    ) -> Iterator[Event]:
        """Generator: publish (or refresh) a record."""
        reply = yield from self._roundtrip(RegisterMsg(dn, dict(attributes), ttl))
        if not reply.ok:
            raise GISError(f"register({dn!r}) failed: {reply.error}")

    def unregister(self, dn: str) -> Iterator[Event]:
        """Generator: remove a record; returns whether it existed."""
        reply = yield from self._roundtrip(UnregisterMsg(dn))
        return reply.ok

    def search(self, filter_text: str) -> Iterator[Event]:
        """Generator: filtered query; returns a list of Records."""
        reply = yield from self._roundtrip(QueryMsg(filter_text))
        if not reply.ok:
            raise GISError(f"search({filter_text!r}) failed: {reply.error}")
        return list(reply.records)

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
