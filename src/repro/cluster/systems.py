"""Table 3: the four cluster systems the knapsack problem ran on.

==================  ==========================================================
Nickname            Description (paper's Table 3)
==================  ==========================================================
COMPaS              8 processors, 1 processor on each node; mpich ch_p4
ETL-O2K             8 processors on ETL-O2K; vendor-provided MPI
Local-area Cluster  RWCP-Sun + COMPaS; 12 processors (4 + 8); MPICH-G
                    with the Nexus Proxy
Wide-area Cluster   RWCP-Sun + COMPaS + ETL-O2K; 20 processors (4 + 8 + 8);
                    MPICH-G with the Nexus Proxy
==================  ==========================================================

:func:`build_world` turns one of these into an initialized-ready
:class:`~repro.mpi.world.MPIWorld` on a :class:`~repro.cluster.testbed.Testbed`.
``use_proxy=False`` reproduces the paper's "Not use Nexus Proxy"
condition by temporarily opening the RWCP firewall (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.testbed import Testbed
from repro.mpi.world import MPIWorld

__all__ = ["Placement", "ClusterSystem", "SYSTEMS", "system", "build_world"]


@dataclass(frozen=True, slots=True)
class Placement:
    """``nprocs`` ranks on the named testbed host."""

    host: str
    nprocs: int
    #: Whether these ranks sit behind the RWCP firewall (and therefore
    #: use the Nexus Proxy when the system communicates across it).
    inside_firewall: bool


@dataclass(frozen=True, slots=True)
class ClusterSystem:
    """One Table 3 row."""

    name: str
    description: str
    placements: tuple[Placement, ...]
    #: Whether this system's MPI device is MPICH-G over the proxy
    #: (False for the single-site systems: ch_p4 / vendor MPI).
    globus_device: bool

    @property
    def nprocs(self) -> int:
        return sum(p.nprocs for p in self.placements)


def _compas_placements(nprocs: int = 8) -> tuple[Placement, ...]:
    # "8 processors, 1 processor on each node."
    return tuple(
        Placement(f"compas-{i}", 1, inside_firewall=True) for i in range(nprocs)
    )


SYSTEMS: dict[str, ClusterSystem] = {
    "COMPaS": ClusterSystem(
        name="COMPaS",
        description="8 processors, 1 processor on each node. "
        "mpich ch_p4 device is used.",
        placements=_compas_placements(),
        globus_device=False,
    ),
    "ETL-O2K": ClusterSystem(
        name="ETL-O2K",
        description="8 processors on ETL-O2K. vendor provided mpi is used.",
        placements=(Placement("etl-o2k", 8, inside_firewall=False),),
        globus_device=False,
    ),
    "Local-area Cluster": ClusterSystem(
        name="Local-area Cluster",
        description="RWCP-Sun + COMPaS. total 12 processors, 4 on RWCP-Sun, "
        "and 8 on COMPaS. mpich Globus device which utilize the "
        "Nexus Proxy is used.",
        placements=(Placement("rwcp-sun", 4, inside_firewall=True),)
        + _compas_placements(),
        globus_device=True,
    ),
    "Wide-area Cluster": ClusterSystem(
        name="Wide-area Cluster",
        description="RWCP-Sun + COMPaS + ETL-O2K. total 20 processors, "
        "4 on RWCP-Sun, 8 on COMPaS, and 8 on ETL-O2K. mpich "
        "Globus device which utilize the Nexus Proxy is used.",
        placements=(Placement("rwcp-sun", 4, inside_firewall=True),)
        + _compas_placements()
        + (Placement("etl-o2k", 8, inside_firewall=False),),
        globus_device=True,
    ),
}


def system(name: str) -> ClusterSystem:
    try:
        return SYSTEMS[name]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; choose from {sorted(SYSTEMS)}"
        ) from None


def build_world(
    testbed: Testbed,
    system_name: str,
    use_proxy: Optional[bool] = None,
) -> MPIWorld:
    """Declare one rank per processor of a Table 3 system.

    ``use_proxy`` defaults to the system's MPI device (Globus-device
    systems use the proxy).  ``use_proxy=False`` on a Globus-device
    system reproduces the "Not use Nexus Proxy" row of Table 4 —
    which only works because the experimenters "modified the
    configuration of the firewall temporarily": this function does the
    same via :meth:`Testbed.open_firewall_for_direct_runs`.
    """
    spec = system(system_name)
    if use_proxy is None:
        use_proxy = spec.globus_device
    if use_proxy and not spec.globus_device:
        raise ValueError(f"{spec.name} does not use the Globus device")
    world = MPIWorld(testbed.net, relay_config=testbed.relay_config)
    needs_cross_site = spec.globus_device
    if needs_cross_site and not use_proxy:
        testbed.open_firewall_for_direct_runs()
    for placement in spec.placements:
        host = testbed.host(placement.host)
        for _ in range(placement.nprocs):
            if use_proxy and placement.inside_firewall:
                world.add_rank(host, **testbed.proxy_addrs)
            else:
                world.add_rank(host)
    return world
