"""The Figure 5 experimental environment, as a simulated network.

Topology::

    rwcp-sun ──┐
    compas-0..7┼── rwcp-lan ── rwcp-gw ── outer-server
    inner-srv ─┘                  │
                                IMNet (1.5 Mbps)
                                  │
    etl-sun ──┬── etl-lan ───── etl-gw
    etl-o2k ──┘

RWCP sits behind a deny-based firewall; "Although ETL also has a
firewall, ETL-Sun and ETL-O2K can be accessed directly from RWCP"
(§4.1) — so the ETL site is modelled open.  The outer server lives at
RWCP but *outside* the firewall (between the gateway and the WAN); the
inner server is an ordinary inside host with the single nxport
pinhole.

Link parameters are the Table 2 calibration (see
``repro.bench.calibrate`` and EXPERIMENTS.md): LAN links carry the
*effective* application-level bandwidth a late-90s TCP achieved on
100Base-T, and the WAN is the literal 1.5 Mbps IMNet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import DEFAULT_RELAY_CONFIG, RelayConfig
from repro.core.inner import InnerServer
from repro.core.outer import OuterServer
from repro.cluster.machine import CATALOGUE, COMPAS_NODES
from repro.simnet.firewall import Firewall
from repro.simnet.host import Host
from repro.simnet.socket import Address, NetConfig
from repro.simnet.topology import Network, Site
from repro.util.units import mbps

__all__ = ["TestbedParams", "Testbed"]


@dataclass(frozen=True)
class TestbedParams:
    """Network calibration constants (Table 2 fit)."""

    __test__ = False  # not a pytest test class despite the name

    #: One-way latency of one LAN hop (switch port to switch port).
    lan_latency: float = 0.05e-3
    #: Effective application bandwidth on 100Base-T.
    lan_bandwidth: float = 6.9e6
    #: One-way latency of the IMNet WAN link.
    wan_latency: float = 3.22e-3
    #: The 1.5 Mbps IMNet.
    wan_bandwidth: float = mbps(1.5)
    #: Link between the RWCP gateway and the outer server.
    dmz_latency: float = 0.05e-3
    dmz_bandwidth: float = 6.9e6


class Testbed:
    """The wired-up Figure 5 environment.

    Construction starts the Nexus Proxy servers and opens the nxport
    pinhole; use :attr:`proxy_addrs` when adding proxied MPI ranks.
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        params: TestbedParams = TestbedParams(),
        net_config: Optional[NetConfig] = None,
        relay_config: RelayConfig = DEFAULT_RELAY_CONFIG,
    ) -> None:
        self.params = params
        self.relay_config = relay_config
        self.net = Network(config=net_config)
        sim = self.net.sim

        # -- sites -------------------------------------------------------
        self.rwcp_firewall = Firewall.typical(name="fw:rwcp", reject=True)
        self.rwcp: Site = self.net.add_site("rwcp", firewall=self.rwcp_firewall)
        self.etl: Site = self.net.add_site("etl")  # reachable from RWCP

        # -- RWCP inside hosts -----------------------------------------------
        sun = CATALOGUE["RWCP-Sun"]
        self.rwcp_sun: Host = self.net.add_host(
            "rwcp-sun", site=self.rwcp, cpu_speed=sun.cpu_speed, cores=sun.cpus
        )
        node = CATALOGUE["COMPaS-node"]
        self.compas: list[Host] = [
            self.net.add_host(
                f"compas-{i}", site=self.rwcp,
                cpu_speed=node.cpu_speed, cores=node.cpus,
            )
            for i in range(COMPAS_NODES)
        ]
        inner = CATALOGUE["Inner-Server"]
        self.inner_host: Host = self.net.add_host(
            "inner-server", site=self.rwcp,
            cpu_speed=inner.cpu_speed, cores=inner.cpus,
        )
        self.rwcp_lan: Host = self.net.add_router("rwcp-lan", site=self.rwcp)
        self.rwcp_gw: Host = self.net.add_router("rwcp-gw", site=self.rwcp)

        # -- the DMZ and the WAN ------------------------------------------------
        outer = CATALOGUE["Outer-Server"]
        self.outer_host: Host = self.net.add_host(
            "outer-server", cpu_speed=outer.cpu_speed, cores=outer.cpus
        )
        self.etl_gw: Host = self.net.add_router("etl-gw", site=self.etl)

        # -- ETL hosts -----------------------------------------------------------
        esun = CATALOGUE["ETL-Sun"]
        self.etl_sun: Host = self.net.add_host(
            "etl-sun", site=self.etl, cpu_speed=esun.cpu_speed, cores=esun.cpus
        )
        o2k = CATALOGUE["ETL-O2K"]
        self.etl_o2k: Host = self.net.add_host(
            "etl-o2k", site=self.etl, cpu_speed=o2k.cpu_speed, cores=o2k.cpus
        )
        self.etl_lan: Host = self.net.add_router("etl-lan", site=self.etl)

        # -- links ------------------------------------------------------------------
        p = params
        for h in (self.rwcp_sun, *self.compas, self.inner_host, self.rwcp_gw):
            self.net.link(h, self.rwcp_lan, p.lan_latency, p.lan_bandwidth)
        self.net.link(self.rwcp_gw, self.outer_host, p.dmz_latency, p.dmz_bandwidth)
        self.net.link(self.outer_host, self.etl_gw, p.wan_latency, p.wan_bandwidth,
                      name="IMNet")
        for h in (self.etl_sun, self.etl_o2k):
            self.net.link(h, self.etl_lan, p.lan_latency, p.lan_bandwidth)
        self.net.link(self.etl_gw, self.etl_lan, p.lan_latency, p.lan_bandwidth)

        # -- the Nexus Proxy deployment ------------------------------------------------
        self.outer_server = OuterServer(self.outer_host, relay_config)
        self.inner_server = InnerServer(self.inner_host, relay_config)
        self.inner_server.open_firewall_pinhole(self.outer_host.name)
        self.outer_server.start()
        self.inner_server.start()

    # -- conveniences ------------------------------------------------------

    @property
    def sim(self):
        return self.net.sim

    @property
    def proxy_addrs(self) -> dict[str, Address]:
        """Keyword arguments for proxied ranks / clients."""
        return {
            "outer_addr": self.outer_server.control_addr,
            "inner_addr": self.inner_server.addr,
        }

    def host(self, name: str) -> Host:
        return self.net.host(name)

    def open_firewall_for_direct_runs(self) -> None:
        """The §4.2/§4.4 footnote: "we have temporarily changed the
        configuration of the firewall to enable direct communication"."""
        self.rwcp_firewall.allow_everything()

    def restore_firewall(self) -> None:
        self.rwcp_firewall.restore_typical()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Testbed rwcp={1 + len(self.compas)} hosts "
            f"etl=2 hosts proxy={self.outer_server.running}>"
        )
