"""The experimental testbed: Figure 5 machines/network and the
Table 3 cluster systems."""

from repro.cluster.machine import CATALOGUE, COMPAS_NODES, MachineSpec
from repro.cluster.systems import (
    SYSTEMS,
    ClusterSystem,
    Placement,
    build_world,
    system,
)
from repro.cluster.testbed import Testbed, TestbedParams

__all__ = [
    "CATALOGUE",
    "COMPAS_NODES",
    "ClusterSystem",
    "MachineSpec",
    "Placement",
    "SYSTEMS",
    "Testbed",
    "TestbedParams",
    "build_world",
    "system",
]
