"""Machine catalogue: the hardware of Figure 5, as simulator parameters.

``cpu_speed`` is relative to RWCP-Sun (the Sun Enterprise 450 the
sequential knapsack baseline ran on, so speedups in Table 4 are
defined against it).  The values are era-plausible single-CPU ratios:

* RWCP-Sun / ETL-Sun / Inner — UltraSPARC-II Enterprise 450s → 1.0;
* COMPaS nodes — 200 MHz Pentium Pro → 0.55 (the paper's Table 4
  shape needs COMPaS processors distinctly slower than the Suns);
* ETL-O2K — 195 MHz R10000 Origin 2000 → 0.90;
* Outer — Sun Ultra 80 (newer, faster clock) → 1.30.

These are *calibration constants*, surfaced here in one place so the
sensitivity ablation (`benchmarks/bench_ablation_speeds.py`) can sweep
them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "CATALOGUE"]


@dataclass(frozen=True, slots=True)
class MachineSpec:
    """One machine model from the Figure 5 table."""

    nickname: str
    description: str
    site: str
    cpus: int
    cpu_speed: float

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise ValueError(f"{self.nickname}: cpus must be >= 1")
        if self.cpu_speed <= 0:
            raise ValueError(f"{self.nickname}: cpu_speed must be positive")


#: The Figure 5 machine table, verbatim structure.
CATALOGUE: dict[str, MachineSpec] = {
    "RWCP-Sun": MachineSpec(
        "RWCP-Sun", "Sun Enterprise 450 (4CPU)", "RWCP", cpus=4, cpu_speed=1.0
    ),
    "COMPaS-node": MachineSpec(
        "COMPaS-node",
        "Pentium Pro SMP cluster node (4CPU x 8nodes, 200MHz)",
        "RWCP",
        cpus=4,
        cpu_speed=0.55,
    ),
    "ETL-Sun": MachineSpec(
        "ETL-Sun", "Sun Enterprise 450 (6CPU)", "ETL", cpus=6, cpu_speed=1.0
    ),
    "ETL-O2K": MachineSpec(
        "ETL-O2K", "SGI Origin 2000 (16CPU)", "ETL", cpus=16, cpu_speed=0.90
    ),
    "Inner-Server": MachineSpec(
        "Inner-Server",
        "Sun Ultra Enterprise 450 (2CPU)",
        "RWCP",
        cpus=2,
        cpu_speed=1.0,
    ),
    "Outer-Server": MachineSpec(
        "Outer-Server", "Sun Ultra 80 (2CPU)", "RWCP (outside firewall)",
        cpus=2, cpu_speed=1.30,
    ),
}

#: COMPaS has eight nodes (the paper uses one processor on each).
COMPAS_NODES = 8
