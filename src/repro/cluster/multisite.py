"""Beyond the paper: every site behind its own deny-based firewall.

The paper's testbed had one firewalled site (RWCP) — ETL's machines
were reachable.  Its closing ambition, "in order to spread the global
computing environment over various sites ... a mechanism to handle a
firewall is needed", implies the general case: *all* sites firewalled,
each running its own Nexus Proxy pair.  This module builds that world
and shows the mechanism composes: a connection between two firewalled
sites chains through the initiator's outer server, then the target
site's public port, then the target's inner server — three relay
traversals, no inbound hole beyond each site's own pinned nxport.

Used by ``tests/integration/test_multisite.py`` and
``examples/two_firewalls.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DEFAULT_RELAY_CONFIG, RelayConfig
from repro.core.inner import InnerServer
from repro.core.outer import OuterServer
from repro.simnet.firewall import Firewall
from repro.simnet.host import Host
from repro.simnet.socket import Address, NetConfig
from repro.simnet.topology import Network, Site
from repro.util.units import mbps

__all__ = ["ProxiedSite", "DualFirewallTestbed"]


@dataclass
class ProxiedSite:
    """One firewalled site with its own relay deployment."""

    site: Site
    firewall: Firewall
    hosts: list[Host]
    gateway: Host
    outer_host: Host
    inner_host: Host
    outer_server: OuterServer
    inner_server: InnerServer

    @property
    def proxy_addrs(self) -> dict[str, Address]:
        return {
            "outer_addr": self.outer_server.control_addr,
            "inner_addr": self.inner_server.addr,
        }


class DualFirewallTestbed:
    """Two sites, two firewalls, two Nexus Proxy deployments, one WAN.

    Topology per site ``X``::

        X-host-0..n-1 ─┐
        X-inner       ─┼─ X-lan ── X-gw ── X-outer ── (WAN)

    Site firewalls are deny-based with a single pinned nxport hole
    each; the outer servers sit outside their site's filter and face
    the WAN.
    """

    __test__ = False

    def __init__(
        self,
        hosts_per_site: int = 2,
        wan_latency: float = 3.22e-3,
        wan_bandwidth: float = mbps(1.5),
        lan_latency: float = 0.05e-3,
        lan_bandwidth: float = 6.9e6,
        relay_config: RelayConfig = DEFAULT_RELAY_CONFIG,
        net_config: "NetConfig | None" = None,
    ) -> None:
        self.relay_config = relay_config
        self.net = Network(config=net_config)
        self.sites: dict[str, ProxiedSite] = {}
        wan = self.net.add_router("wan")
        for name in ("alpha", "beta"):
            ps = self._build_site(
                name, hosts_per_site, lan_latency, lan_bandwidth
            )
            self.net.link(ps.outer_host, wan, wan_latency / 2, wan_bandwidth)
            self.sites[name] = ps

    def _build_site(
        self, name: str, nhosts: int, lan_latency: float, lan_bandwidth: float
    ) -> ProxiedSite:
        fw = Firewall.typical(name=f"fw:{name}", reject=True)
        site = self.net.add_site(name, firewall=fw)
        lan = self.net.add_router(f"{name}-lan", site=site)
        gw = self.net.add_router(f"{name}-gw", site=site)
        hosts = [
            self.net.add_host(f"{name}-host-{i}", site=site, cores=4)
            for i in range(nhosts)
        ]
        inner_host = self.net.add_host(f"{name}-inner", site=site, cores=2)
        outer_host = self.net.add_host(f"{name}-outer", cores=2)
        for h in (*hosts, inner_host, gw):
            self.net.link(h, lan, lan_latency, lan_bandwidth)
        self.net.link(gw, outer_host, lan_latency, lan_bandwidth)

        outer = OuterServer(outer_host, self.relay_config).start()
        inner = InnerServer(inner_host, self.relay_config)
        inner.open_firewall_pinhole(outer_host.name)
        inner.start()
        return ProxiedSite(
            site=site, firewall=fw, hosts=hosts, gateway=gw,
            outer_host=outer_host, inner_host=inner_host,
            outer_server=outer, inner_server=inner,
        )

    @property
    def sim(self):
        return self.net.sim

    def site(self, name: str) -> ProxiedSite:
        return self.sites[name]

    def total_exposure(self) -> int:
        """Inbound ports open across all firewalls (target: 1 per site)."""
        return sum(ps.firewall.exposure() for ps in self.sites.values())
