"""The communicator: rank/size, tagged point-to-point messaging.

API follows mpi4py's lowercase conventions (``comm.send`` /
``comm.recv`` with ``source``/``tag`` keywords, wildcard constants),
adapted to the simulator's generator style: operations are generators
to ``yield from`` inside simulated processes.

One :class:`Communicator` belongs to one rank (one simulated process on
one host).  Under the hood each rank owns a Nexus endpoint; sends go
through cached startpoints, so the first message between two ranks
pays connection setup — through the Nexus Proxy when the destination
rank's endpoint is published there, exactly like MPICH-G over the
patched Globus (§4).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.mpi.errors import MPIError
from repro.obs import spans as _obs
from repro.obs import trace as _trace
from repro.mpi.status import ANY_SOURCE, ANY_TAG, ENVELOPE_BYTES, Envelope, Status
from repro.nexus.context import NexusContext
from repro.nexus.endpoint import Endpoint
from repro.simnet.kernel import Event
from repro.simnet.socket import Address

__all__ = ["Communicator"]


class Communicator:
    """One rank's handle on the (simulated) MPI world."""

    def __init__(
        self,
        rank: int,
        context: NexusContext,
        endpoint: Endpoint,
        rank_addrs: list[Address],
    ) -> None:
        self.rank = rank
        self.context = context
        self.endpoint = endpoint
        self.sim = context.sim
        self.host = context.host
        self._rank_addrs = rank_addrs
        self._pending: list[Envelope] = []
        self._waiters: list[tuple[int, int, Event]] = []
        self._pump_started = False
        #: Counters for the harness (Tables 5/6-style accounting).
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Collective-call sequence number (all ranks call collectives
        #: in the same order, so this tags matching rounds).
        self._coll_seq = 0
        #: Causal trace context stamped onto every outgoing envelope
        #: while set (the sim plane threads contexts explicitly — one
        #: rank, one communicator, so an attribute is race-free here).
        self.trace_ctx: "Optional[_trace.TraceContext]" = None

    # -- identity ----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._rank_addrs)

    def wtime(self) -> float:
        """Wall-clock in simulated seconds (MPI_Wtime)."""
        return self.sim.now

    def _check_rank(self, rank: int, what: str) -> None:
        if not (0 <= rank < self.size):
            raise MPIError(f"{what} rank {rank} out of range [0, {self.size})")

    # -- plumbing -------------------------------------------------------------

    def _start_pump(self) -> None:
        if self._pump_started:
            return
        self._pump_started = True
        self.sim.process(self._pump(), name=f"mpi-pump[{self.rank}]")

    def _pump(self) -> Iterator[Event]:
        while True:
            try:
                delivery = yield self.endpoint.receive()
            except Exception:
                return  # endpoint closed: rank finalized
            env = delivery.payload
            if not isinstance(env, Envelope):
                raise MPIError(f"rank {self.rank}: non-envelope message {env!r}")
            self.messages_received += 1
            self.bytes_received += env.nbytes
            rec = _obs.RECORDER
            if rec is not None:
                rec.count_pair("mpi.messages_recv", f"{env.source}->{self.rank}")
            for i, (source, tag, ev) in enumerate(self._waiters):
                if env.matches(source, tag):
                    del self._waiters[i]
                    ev.succeed(env)
                    break
            else:
                self._pending.append(env)

    # -- point-to-point --------------------------------------------------------

    def send(
        self,
        payload: Any,
        dest: int,
        tag: int = 0,
        nbytes: Optional[int] = None,
    ) -> Iterator[Event]:
        """Generator: send ``payload`` to rank ``dest``.

        ``nbytes`` is the simulated wire size of the payload (64 bytes
        when omitted).  Returns when the sender-side work is done
        (eager/buffered semantics, the MPICH-G behaviour for the small
        messages this workload exchanges).
        """
        self._check_rank(dest, "destination")
        if tag < 0:
            raise MPIError(f"application tags must be >= 0, got {tag}")
        yield from self._send_internal(payload, dest, tag, nbytes)

    def _send_internal(
        self, payload: Any, dest: int, tag: int, nbytes: Optional[int]
    ) -> Iterator[Event]:
        if nbytes is None:
            nbytes = 64
        wire_ctx = None
        if _trace.ENABLED and self.trace_ctx is not None:
            wire_ctx = self.trace_ctx.to_wire()
        if dest == self.rank:
            # Self-send: bypass the network, preserve matching order.
            env = Envelope(self.rank, tag, payload, nbytes, self.sim.now,
                           tctx=wire_ctx)
            yield self.sim.timeout(0)
            self._deliver_local(env)
        else:
            sp = self.context.startpoint(self._rank_addrs[dest])
            env = Envelope(self.rank, tag, payload, nbytes, self.sim.now,
                           tctx=wire_ctx)
            yield from sp.send(env, nbytes=nbytes + ENVELOPE_BYTES)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        rec = _obs.RECORDER
        if rec is not None:
            pair = f"{self.rank}->{dest}"
            rec.count_pair("mpi.messages", pair)
            rec.count_pair("mpi.bytes", pair, nbytes)
            if wire_ctx is not None:
                rec.count_pair(
                    "mpi.trace_bytes", self.trace_ctx.trace_id, nbytes
                )

    def _deliver_local(self, env: Envelope) -> None:
        self.messages_received += 1
        self.bytes_received += env.nbytes
        rec = _obs.RECORDER
        if rec is not None:
            rec.count_pair("mpi.messages_recv", f"{env.source}->{self.rank}")
        for i, (source, tag, ev) in enumerate(self._waiters):
            if env.matches(source, tag):
                del self._waiters[i]
                ev.succeed(env)
                return
        self._pending.append(env)

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Iterator[Event]:
        """Generator: ``payload, status = yield from comm.recv(...)``.

        Matches the oldest pending message from ``source`` with ``tag``
        (wildcards allowed), blocking until one arrives.
        """
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        self._start_pump()
        env = self._match_pending(source, tag)
        if env is None:
            ev = self.sim.event()
            self._waiters.append((source, tag, ev))
            env = yield ev
        status = Status(env.source, env.tag, env.nbytes, self.sim.now,
                        tctx=env.tctx)
        return env.payload, status

    def _match_pending(self, source: int, tag: int) -> Optional[Envelope]:
        for i, env in enumerate(self._pending):
            if env.matches(source, tag):
                del self._pending[i]
                return env
        return None

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Nonblocking receive; returns a
        :class:`~repro.mpi.requests.Request` to ``wait()`` on."""
        from repro.mpi.requests import Request

        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        self._start_pump()
        ev = self.sim.event()
        env = self._match_pending(source, tag)
        if env is not None:
            ev.succeed(env)
        else:
            self._waiters.append((source, tag, ev))
        return Request(self, ev, "recv")

    def isend(
        self,
        payload: Any,
        dest: int,
        tag: int = 0,
        nbytes: Optional[int] = None,
    ):
        """Nonblocking send; the request completes when the sender-side
        work finishes (matching this layer's eager send semantics)."""
        from repro.mpi.requests import Request

        self._check_rank(dest, "destination")
        if tag < 0:
            raise MPIError(f"application tags must be >= 0, got {tag}")
        proc = self.sim.process(
            self._send_internal(payload, dest, tag, nbytes),
            name=f"isend[{self.rank}->{dest}]",
        )
        return Request(self, proc, "send")

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        nbytes: Optional[int] = None,
    ) -> Iterator[Event]:
        """Generator: simultaneous send and receive (deadlock-free for
        exchange patterns like ring shifts)."""
        sreq = self.isend(payload, dest, tag=sendtag, nbytes=nbytes)
        rreq = self.irecv(source=source, tag=recvtag)
        yield from sreq.wait()
        result = yield from rreq.wait()
        return result

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Non-blocking probe: status of the first matching pending
        message, or ``None`` (does not consume it)."""
        self._start_pump()
        rec = _obs.RECORDER
        if rec is not None:
            rec.count_pair("mpi.iprobe_calls", f"rank{self.rank}")
        for env in self._pending:
            if env.matches(source, tag):
                return Status(env.source, env.tag, env.nbytes, self.sim.now)
        return None

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Iterator[Event]:
        """Generator: block until a matching message is pending, then
        return its :class:`Status` without consuming it."""
        self._start_pump()
        while True:
            st = self.iprobe(source, tag)
            if st is not None:
                return st
            # Wait for the next arrival, then re-check.
            ev = self.sim.event()
            self._waiters.append((source, tag, ev))
            env = yield ev
            # Put it back; probe must not consume.
            self._pending.insert(0, env)
            return Status(env.source, env.tag, env.nbytes, self.sim.now)

    # -- teardown --------------------------------------------------------------

    def finalize(self) -> None:
        """Release this rank's communication resources."""
        self.context.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator rank={self.rank}/{self.size} on {self.host.name}>"
