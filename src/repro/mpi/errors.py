"""MPI layer exceptions."""

from __future__ import annotations

__all__ = ["MPIError"]


class MPIError(RuntimeError):
    """Misuse of, or failure inside, the MPI-like layer."""
