"""Receive status and matching wildcards (mpi4py-style constants)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status", "Envelope"]

#: Match any sending rank.
ANY_SOURCE: int = -1
#: Match any tag.
ANY_TAG: int = -1

#: Per-message envelope overhead on the wire (rank, tag, length).
ENVELOPE_BYTES = 32


@dataclass(frozen=True, slots=True)
class Envelope:
    """A message in flight or awaiting a matching receive."""

    source: int
    tag: int
    payload: Any
    nbytes: int
    sent_at: float
    #: Optional causal trace context (wire form) stamped by the sender.
    tctx: Optional[str] = None

    def matches(self, source: int, tag: int) -> bool:
        return (source == ANY_SOURCE or source == self.source) and (
            tag == ANY_TAG or tag == self.tag
        )


@dataclass(frozen=True, slots=True)
class Status:
    """What a completed receive reports."""

    source: int
    tag: int
    nbytes: int
    received_at: float
    #: Sender's causal trace context (wire form), when it sent one.
    tctx: Optional[str] = None
