"""World construction: turning hosts into an MPI job.

:class:`MPIWorld` plays the role of ``mpirun`` + the MPICH-G startup
exchange: you declare where each rank runs (host + firewall-traversal
mode), call :meth:`initialize` to bind every rank's endpoint and share
the address table, then either drive the per-rank
:class:`~repro.mpi.communicator.Communicator`\\ s yourself or use
:meth:`launch` to spawn one simulated process per rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from repro.core.config import DEFAULT_RELAY_CONFIG, RelayConfig
from repro.mpi.communicator import Communicator
from repro.obs import trace as _trace
from repro.mpi.errors import MPIError
from repro.nexus.context import NexusContext
from repro.simnet.host import Host
from repro.simnet.kernel import AllOf, Event, Process
from repro.simnet.socket import Address
from repro.simnet.topology import Network

__all__ = ["RankSpec", "MPIWorld"]

#: Type of a per-rank program: ``fn(comm, *args)`` returning a generator.
RankMain = Callable[..., Iterator[Event]]


@dataclass(frozen=True, slots=True)
class RankSpec:
    """Placement and communication mode of one rank."""

    host: Host
    outer_addr: Optional[Address] = None
    inner_addr: Optional[Address] = None
    port_min: Optional[int] = None
    port_max: Optional[int] = None

    @property
    def proxied(self) -> bool:
        return self.outer_addr is not None


class MPIWorld:
    """Builder for one MPI job on a simulated network."""

    def __init__(
        self, network: Network, relay_config: RelayConfig = DEFAULT_RELAY_CONFIG
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.relay_config = relay_config
        self.specs: list[RankSpec] = []
        self.comms: Optional[list[Communicator]] = None

    # -- construction ------------------------------------------------------

    def add_rank(
        self,
        host: Host,
        outer_addr: "Address | tuple[str, int] | None" = None,
        inner_addr: "Address | tuple[str, int] | None" = None,
        port_min: Optional[int] = None,
        port_max: Optional[int] = None,
    ) -> int:
        """Declare the next rank on ``host``; returns its rank number.

        Pass ``outer_addr``/``inner_addr`` for ranks whose site needs
        the Nexus Proxy (the paper's "use Nexus Proxy" condition);
        leave them unset for direct communication.
        """
        if self.comms is not None:
            raise MPIError("world already initialized")

        def addr(a):
            if a is None or isinstance(a, Address):
                return a
            return Address(*a)

        self.specs.append(
            RankSpec(host, addr(outer_addr), addr(inner_addr), port_min, port_max)
        )
        return len(self.specs) - 1

    def add_ranks(self, hosts: "list[Host]", **kwargs) -> list[int]:
        """Declare one rank per host with shared settings."""
        return [self.add_rank(h, **kwargs) for h in hosts]

    @property
    def size(self) -> int:
        return len(self.specs)

    # -- startup -----------------------------------------------------------------

    def initialize(self) -> Iterator[Event]:
        """Generator: bind all endpoints, exchange addresses, return the
        per-rank communicators (index = rank)."""
        if self.comms is not None:
            raise MPIError("world already initialized")
        if not self.specs:
            raise MPIError("no ranks declared")
        contexts: list[NexusContext] = []
        endpoints = []
        for i, spec in enumerate(self.specs):
            ctx = NexusContext(
                spec.host,
                outer_addr=spec.outer_addr,
                inner_addr=spec.inner_addr,
                port_min=spec.port_min,
                port_max=spec.port_max,
                relay_config=self.relay_config,
            )
            ep = yield from ctx.create_endpoint(f"mpi[{i}]")
            contexts.append(ctx)
            endpoints.append(ep)
        rank_addrs = [ep.addr for ep in endpoints]
        self.comms = [
            Communicator(i, contexts[i], endpoints[i], rank_addrs)
            for i in range(len(self.specs))
        ]
        return self.comms

    def launch(self, main: RankMain, *args: Any) -> Iterator[Event]:
        """Generator: initialize, run ``main(comm, *args)`` on every
        rank concurrently, finalize, and return per-rank results.

        With causal tracing on, the launch is an origin: one trace
        covers the job, and each rank gets a per-rank child context on
        ``comm.trace_ctx`` so every message it sends is attributable.
        """
        comms = yield from self.initialize()
        job_ctx = _trace.mint("mpirun") if _trace.ENABLED else None
        if job_ctx is not None:
            for comm in comms:
                comm.trace_ctx = _trace.child(job_ctx)
        procs: list[Process] = [
            self.sim.process(main(comm, *args), name=f"rank[{comm.rank}]")
            for comm in comms
        ]
        gathered = yield AllOf(self.sim, procs)
        for comm in comms:
            comm.finalize()
        return [gathered[p] for p in procs]

    def finalize(self) -> None:
        if self.comms is not None:
            for comm in self.comms:
                comm.finalize()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "initialized" if self.comms is not None else "building"
        return f"<MPIWorld size={self.size} {state}>"
