"""An MPICH-G-like message-passing layer over the Nexus library.

Provides what the paper's knapsack application needed from MPICH-G:
rank/size, tagged point-to-point ``send``/``recv``/``probe`` with
wildcards, basic collectives, and ``wtime`` — all transparently
crossing firewalls when ranks are configured with the Nexus Proxy.

The API follows mpi4py's lowercase conventions, adapted to generator
style::

    def main(comm):
        if comm.rank == 0:
            yield from comm.send("work", dest=1, tag=5)
        else:
            payload, status = yield from comm.recv(source=0, tag=5)
        yield from barrier(comm)

    world = MPIWorld(net)
    world.add_ranks(hosts)
    results = yield from world.launch(main)
"""

from repro.mpi.collectives import allreduce, barrier, bcast, gather, reduce, scatter
from repro.mpi.communicator import Communicator
from repro.mpi.errors import MPIError
from repro.mpi.requests import Request, waitall
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Envelope, Status
from repro.mpi.world import MPIWorld, RankSpec

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Envelope",
    "MPIError",
    "Request",
    "MPIWorld",
    "RankSpec",
    "Status",
    "allreduce",
    "barrier",
    "bcast",
    "gather",
    "reduce",
    "scatter",
    "waitall",
]
