"""Collective operations over point-to-point messaging.

Flat (root-centred) algorithms — the right model for the paper's era
and scale: MPICH-G's collectives were topology-unaware trees over a
handful of processes, and the knapsack application is master/slave
anyway.  Each collective call consumes one internal tag from a
sequence shared by all ranks (MPI's ordering rule for collectives
makes the sequences agree), so concurrent application traffic with any
user tag can't be confused with collective traffic.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.mpi.communicator import Communicator
from repro.mpi.errors import MPIError
from repro.simnet.kernel import Event

__all__ = ["barrier", "bcast", "gather", "reduce", "allreduce", "scatter"]

#: Tag space reserved for collectives (applications use small tags).
_COLL_TAG_BASE = 1 << 20
#: Wrap the sequence so tags stay bounded.
_COLL_TAG_SPAN = 1 << 16


def _next_tag(comm: Communicator) -> int:
    tag = _COLL_TAG_BASE + (comm._coll_seq % _COLL_TAG_SPAN)
    comm._coll_seq += 1
    return tag


def barrier(comm: Communicator) -> Iterator[Event]:
    """Generator: block until every rank has entered the barrier."""
    tag = _next_tag(comm)
    if comm.rank == 0:
        for _ in range(comm.size - 1):
            yield from comm.recv(tag=tag)
        for dest in range(1, comm.size):
            yield from comm._send_internal(None, dest, tag + 1, 16)
    else:
        yield from comm._send_internal(None, 0, tag, 16)
        yield from comm.recv(source=0, tag=tag + 1)
    # Rank 0 consumed two tags' worth of sequence on everyone.
    comm._coll_seq += 1


def bcast(
    comm: Communicator,
    value: Any = None,
    root: int = 0,
    nbytes: Optional[int] = None,
) -> Iterator[Event]:
    """Generator: root's ``value`` is returned on every rank."""
    comm._check_rank(root, "root")
    tag = _next_tag(comm)
    if comm.rank == root:
        for dest in range(comm.size):
            if dest != root:
                yield from comm._send_internal(value, dest, tag, nbytes)
        return value
    payload, _ = yield from comm.recv(source=root, tag=tag)
    return payload


def gather(
    comm: Communicator,
    value: Any,
    root: int = 0,
    nbytes: Optional[int] = None,
) -> Iterator[Event]:
    """Generator: root returns ``[value_0, ..., value_{size-1}]``;
    other ranks return ``None``."""
    comm._check_rank(root, "root")
    tag = _next_tag(comm)
    if comm.rank == root:
        values: list[Any] = [None] * comm.size
        values[root] = value
        for _ in range(comm.size - 1):
            payload, status = yield from comm.recv(tag=tag)
            values[status.source] = payload
        return values
    yield from comm._send_internal(value, root, tag, nbytes)
    return None


def reduce(
    comm: Communicator,
    value: Any,
    op: Callable[[Any, Any], Any],
    root: int = 0,
    nbytes: Optional[int] = None,
) -> Iterator[Event]:
    """Generator: fold every rank's ``value`` with ``op`` at root.

    ``op`` must be associative and commutative (values are folded in
    rank order for determinism, but the contract is MPI's).
    """
    values = yield from gather(comm, value, root=root, nbytes=nbytes)
    if comm.rank != root:
        return None
    assert values is not None
    acc = values[0]
    for v in values[1:]:
        acc = op(acc, v)
    return acc


def allreduce(
    comm: Communicator,
    value: Any,
    op: Callable[[Any, Any], Any],
    nbytes: Optional[int] = None,
) -> Iterator[Event]:
    """Generator: :func:`reduce` to rank 0, then :func:`bcast`."""
    total = yield from reduce(comm, value, op, root=0, nbytes=nbytes)
    result = yield from bcast(comm, total, root=0, nbytes=nbytes)
    return result


def scatter(
    comm: Communicator,
    values: "Optional[list[Any]]" = None,
    root: int = 0,
    nbytes: Optional[int] = None,
) -> Iterator[Event]:
    """Generator: root hands ``values[i]`` to rank ``i``."""
    comm._check_rank(root, "root")
    if comm.rank == root and (values is None or len(values) != comm.size):
        # Validate before consuming a collective tag, so a failed call
        # leaves the sequence aligned across ranks.
        raise MPIError(
            f"scatter root needs exactly {comm.size} values, "
            f"got {None if values is None else len(values)}"
        )
    tag = _next_tag(comm)
    if comm.rank == root:
        for dest in range(comm.size):
            if dest != root:
                yield from comm._send_internal(values[dest], dest, tag, nbytes)
        return values[root]
    payload, _ = yield from comm.recv(source=root, tag=tag)
    return payload
