"""Nonblocking point-to-point: requests in the MPI_Request mould.

mpi4py-style lowercase nonblocking calls adapted to generator style::

    req = comm.irecv(source=3, tag=7)
    ...  # overlap computation
    payload, status = yield from req.wait()

    sreq = comm.isend(data, dest=3, tag=7, nbytes=100)
    yield from sreq.wait()

A receive request matches eagerly: if a matching message is already
pending it completes immediately; otherwise it takes a place in the
communicator's waiter queue exactly like a blocking receive (ordering
between blocking and nonblocking receives is arrival order of the
calls, the MPI rule).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.mpi.errors import MPIError
from repro.mpi.status import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import Communicator

from repro.simnet.kernel import AllOf, Event

__all__ = ["Request", "waitall"]


class Request:
    """Handle for an in-flight nonblocking operation."""

    def __init__(self, comm: "Communicator", event: Event, kind: str) -> None:
        self.comm = comm
        self._event = event
        #: "send" or "recv".
        self.kind = kind
        self._consumed = False

    @property
    def completed(self) -> bool:
        """Whether the operation has finished (test-only, no wait)."""
        return self._event.triggered

    def test(self) -> "Optional[tuple[Any, Optional[Status]]]":
        """Non-blocking completion check.

        Returns ``None`` while in flight; on completion returns the
        same pair :meth:`wait` would (and marks the request consumed).
        """
        if not self._event.triggered:
            return None
        return self._finish()

    def wait(self) -> Iterator[Event]:
        """Generator: block until completion.

        Receives return ``(payload, Status)``; sends return
        ``(None, None)``.
        """
        if not self._event.triggered:
            yield self._event
        return self._finish()

    def _finish(self) -> "tuple[Any, Optional[Status]]":
        if self._consumed:
            raise MPIError(f"{self.kind} request already waited on")
        self._consumed = True
        if self.kind == "recv":
            env = self._event.value
            return env.payload, Status(
                env.source, env.tag, env.nbytes, self.comm.sim.now
            )
        return None, None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.completed else "pending"
        return f"<Request {self.kind} {state}>"


def waitall(requests: "list[Request]") -> Iterator[Event]:
    """Generator: complete every request; returns their results in
    order (MPI_Waitall)."""
    if not requests:
        return []
    pending = [r._event for r in requests if not r._event.triggered]
    if pending:
        sim = requests[0].comm.sim
        yield AllOf(sim, pending)
    return [r._finish() for r in requests]
