"""The Nexus Proxy — the paper's primary contribution.

A user-level TCP relay that carries Globus/Nexus communication across
deny-based firewalls:

* :class:`~repro.core.outer.OuterServer` runs outside the firewall and
  handles connect/bind requests;
* :class:`~repro.core.inner.InnerServer` runs inside, reachable only
  via the single *nxport* pinhole, and completes passive chains;
* :class:`~repro.core.api.NexusProxyClient` provides the Table 1
  library calls (``NXProxyConnect`` / ``NXProxyBind`` /
  ``NXProxyAccept``).

Two implementations share this package: the simulated one (on
:mod:`repro.simnet`, used by every performance experiment) and the
real asyncio one in :mod:`repro.core.aio` (run it on actual sockets:
``repro-outer-server`` / ``repro-inner-server``).
"""

from repro.core.api import DirectListener, NexusProxyClient, ProxiedListener
from repro.core.chain import ChainModel, RelayStage, WireLeg
from repro.core.config import DEFAULT_RELAY_CONFIG, RelayConfig
from repro.core.fleet import SimFleet
from repro.core.frames import DataFrame, FrameError, FramedConnection, StripeBlock
from repro.core.inner import InnerServer
from repro.core.outer import OuterServer, RelayStats
from repro.core.protocol import (
    BindReply,
    BindRequest,
    ConnectRequest,
    NXProxyError,
    Reply,
    RelayTo,
)

__all__ = [
    "BindReply",
    "BindRequest",
    "ChainModel",
    "ConnectRequest",
    "DEFAULT_RELAY_CONFIG",
    "DataFrame",
    "DirectListener",
    "FrameError",
    "FramedConnection",
    "InnerServer",
    "NXProxyError",
    "NexusProxyClient",
    "OuterServer",
    "ProxiedListener",
    "RelayConfig",
    "RelayStage",
    "RelayStats",
    "Reply",
    "RelayTo",
    "SimFleet",
    "StripeBlock",
    "WireLeg",
]
