"""Firewall emulation for the live loopback demo.

Real kernel packet filters can't be configured from a test suite, so
the live demo enforces the policy at the dialer: every simulated
"host" is a label, and :class:`GuardedDialer` consults the same
:class:`~repro.simnet.firewall.Firewall` rule engine the simulator
uses before allowing :func:`asyncio.open_connection`.  The relay
daemons themselves dial unguarded only where the real deployment would
(the nxport pinhole), so the demo exercises exactly the reachability
matrix of a deny-based site.
"""

from __future__ import annotations

import asyncio
from typing import Mapping, Optional

from repro.core.aio.pump import STREAM_LIMIT, tune_stream
from repro.simnet.firewall import Direction, Firewall, FirewallBlocked

__all__ = ["GuardedDialer"]


class GuardedDialer:
    """A connect() wrapper that enforces per-site firewall policy.

    ``site_of`` maps host labels to site names (absent = the open
    Internet); ``firewalls`` maps site names to rule tables.  The
    semantics match :meth:`repro.simnet.topology.Network.filter_connection`:
    the source site's outbound policy, then the destination site's
    inbound policy.
    """

    def __init__(
        self,
        site_of: Mapping[str, str],
        firewalls: Mapping[str, Firewall],
        resolve: Optional[Mapping[str, tuple[str, int]]] = None,
    ) -> None:
        self.site_of = dict(site_of)
        self.firewalls = dict(firewalls)
        #: Optional label → (real host, real port) mapping so demo code
        #: can dial labels instead of loopback port numbers.
        self.resolve = dict(resolve or {})

    def check(self, src_label: str, dst_label: str, dst_port: int) -> None:
        """Raise :class:`FirewallBlocked` if policy filters the dial."""
        src_site = self.site_of.get(src_label)
        dst_site = self.site_of.get(dst_label)
        if src_site == dst_site:
            return
        if src_site is not None:
            fw = self.firewalls.get(src_site)
            if fw is not None and not fw.permits(
                Direction.OUTBOUND, src_label, dst_label, dst_port
            ):
                raise FirewallBlocked(
                    f"{src_label} -> {dst_label}:{dst_port} blocked outbound "
                    f"by {fw.name!r}",
                    silent_drop=not fw.reject,
                )
        if dst_site is not None:
            fw = self.firewalls.get(dst_site)
            if fw is not None and not fw.permits(
                Direction.INBOUND, src_label, dst_label, dst_port
            ):
                raise FirewallBlocked(
                    f"{src_label} -> {dst_label}:{dst_port} blocked inbound "
                    f"by {fw.name!r}",
                    silent_drop=not fw.reject,
                )

    async def open_connection(
        self,
        src_label: str,
        dst_label: str,
        host: Optional[str] = None,
        port: Optional[int] = None,
        logical_port: Optional[int] = None,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Policy-checked dial.

        ``host``/``port`` are the real endpoint (default: looked up in
        ``resolve`` by ``dst_label``); ``logical_port`` is the port
        number the policy sees (defaults to the real one) — useful when
        loopback uses ephemeral ports but the policy names well-known
        ones.
        """
        if host is None or port is None:
            try:
                host, port = self.resolve[dst_label]
            except KeyError:
                raise FirewallBlocked(f"unknown destination label {dst_label!r}")
        self.check(src_label, dst_label, logical_port if logical_port is not None else port)
        reader, writer = await asyncio.open_connection(host, port, limit=STREAM_LIMIT)
        tune_stream(writer)
        return reader, writer
