"""Frame-multiplexed outer↔inner nxport link.

The paper's firewall argument (§4, Fig. 4) is that the Nexus Proxy
needs exactly **one** inbound pinhole: outer server → inner server on
the nxport.  The seed implementation opened a *fresh* outer→inner TCP
connection per passive chain — functionally fine on loopback, but
unfaithful (a packet filter admitting one long-lived relay connection
is a very different policy from admitting an unbounded connection
rate) and slow (a TCP handshake plus a JSON control round-trip on
every chain).

This module multiplexes all passive chains of one outer↔inner pair
onto a single persistent TCP connection carrying length-prefixed
frames::

    +----------+------+-----------+----------------+
    | chain_id | type |  length   | payload ...    |
    |  u32 BE  |  u8  |  u32 BE   | length bytes   |
    +----------+------+-----------+----------------+

Frame types:

* ``OPEN``  — outer→inner; payload is a JSON ``{"host": H, "port": P}``
  naming the firewalled client's private listener.  The inner server
  dials it and answers ``OPEN_OK`` or ``OPEN_ERR`` (payload: reason).
* ``DATA``  — opaque chain bytes, either direction.
* ``EOF``   — half-close of the sender's direction.
* ``RST``   — hard teardown of one chain (sibling chains unaffected).
* ``WINDOW`` — flow-control credit: payload is a u32 count of bytes
  the receiver has consumed and the sender may now send again.

Each chain direction has a byte window (``DEFAULT_WINDOW``): DATA
consumes credit at the sender, and the receiving side returns credit
only after the bytes have been written toward the destination socket,
so one stalled chain exerts backpressure on *its* sender without
starving siblings or ballooning relay memory.

The outer side (:class:`MuxConnector`) owns the link lifecycle:
connects lazily, re-connects with exponential backoff when the link
drops (in-flight chains die, as their TCP connections would), and
re-establishes new chains over the fresh link.  The inner side is
:func:`serve_mux_session`, entered by the inner server when a nxport
connection opens with :data:`MUX_MAGIC` instead of a JSON control
line.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import struct
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.aio.pump import (
    STREAM_LIMIT,
    AdaptiveChunker,
    SegmentBatcher,
    maybe_drain,
    tune_stream,
)
from repro.obs import spans as _obs
from repro.obs import trace as _trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.aio.relay import AioRelayStats

__all__ = [
    "MUX_MAGIC",
    "DEFAULT_WINDOW",
    "FrameType",
    "ChainReset",
    "MuxError",
    "MuxChain",
    "MuxConnector",
    "serve_mux_session",
]

log = logging.getLogger("repro.nexus_proxy.mux")

#: First line on a nxport connection that selects the mux protocol
#: (legacy per-chain connections send a JSON object instead).
MUX_MAGIC = b"NXMUX/1\n"

#: Per-chain, per-direction flow-control window in bytes.
DEFAULT_WINDOW = 256 * 1024

#: Hard cap on one frame's payload; an OPEN/DATA frame beyond this is
#: a protocol violation (DATA is naturally bounded by the window).
MAX_FRAME_PAYLOAD = 1 << 20

_HEADER = struct.Struct("!IBI")  # chain_id, frame type, payload length
_U32 = struct.Struct("!I")


class FrameType:
    OPEN = 1
    OPEN_OK = 2
    OPEN_ERR = 3
    DATA = 4
    EOF = 5
    RST = 6
    WINDOW = 7

    NAMES = {1: "OPEN", 2: "OPEN_OK", 3: "OPEN_ERR",
             4: "DATA", 5: "EOF", 6: "RST", 7: "WINDOW"}


class MuxError(ConnectionError):
    """Protocol violation or link failure on the mux connection."""


class ChainReset(ConnectionError):
    """One logical chain was torn down (RST or link drop)."""


class MuxChain:
    """One logical byte stream inside a mux session.

    Exposes a real :class:`asyncio.StreamReader` for the inbound
    direction (fed by the session's demux loop) and window-respecting
    ``send_data``/``send_eof`` for the outbound one.
    """

    def __init__(self, session: "_MuxSession", chain_id: int, window: int) -> None:
        self._session = session
        self.chain_id = chain_id
        self.reader = asyncio.StreamReader(limit=2 * window)
        self._send_window = window
        #: Consumed bytes not yet returned as credit; flushed as one
        #: WINDOW frame per threshold crossing instead of one per chunk.
        self._pending_credit = 0
        self._credit_threshold = max(1, window // 4)
        self._window_ok = asyncio.Event()
        self._window_ok.set()
        self._reset: Optional[BaseException] = None
        self._sent_eof = False
        self._recv_eof = False
        #: Set by the opening side while waiting for OPEN_OK/OPEN_ERR.
        self.open_reply: Optional[asyncio.Future] = None
        #: Bytes sent + received over this chain (stats).
        self.bytes_moved = 0
        #: Causal trace context (wire form) this chain belongs to, when
        #: the OPEN carried one; stamps chain-lifecycle spans.
        self.tctx: Optional[str] = None

    # -- outbound -----------------------------------------------------------

    async def send_data(self, data: bytes) -> None:
        """Send one DATA frame train, blocking while the peer's window
        is exhausted."""
        view = memoryview(data)
        while view.nbytes:
            if self._send_window <= 0 and self._reset is None:
                self._session.stats.mux_window_stalls += 1
                rec = _obs.RECORDER
                t0 = rec.wall_ts() if rec is not None else 0.0
                while self._send_window <= 0 and self._reset is None:
                    self._window_ok.clear()
                    await self._window_ok.wait()
                if rec is not None:
                    rec.wall_span_end(
                        "mux", "window_stall", t0,
                        track=f"chain:{self.chain_id}",
                        **_trace.wire_args(self.tctx),
                    )
            if self._reset is not None:
                raise ChainReset(str(self._reset))
            n = min(view.nbytes, self._send_window)
            self._send_window -= n
            # Zero-copy: the frame carries a view of the caller's
            # (immutable) buffer; the session batcher holds it — and
            # thereby the base object — until the coalesced sendmsg.
            self._session.send_frame(self.chain_id, FrameType.DATA, view[:n])
            self.bytes_moved += n
            view = view[n:]
            await maybe_drain(self._session.writer)

    def send_eof(self) -> None:
        if not self._sent_eof and self._reset is None:
            self._sent_eof = True
            with contextlib.suppress(Exception):
                self._session.send_frame(self.chain_id, FrameType.EOF)

    def send_rst(self) -> None:
        with contextlib.suppress(Exception):
            self._session.send_frame(self.chain_id, FrameType.RST)
        self.abort(ChainReset(f"chain {self.chain_id} reset locally"))

    # -- credit & teardown (called by the demux loop) -----------------------

    def consumed(self, nbytes: int) -> None:
        """Return ``nbytes`` of window credit to the peer — call after
        the bytes were written toward their destination.

        Credit is batched: one WINDOW frame per quarter-window of
        consumption instead of one per chunk.  Liveness holds because
        the threshold is below the window — a sender stalled at zero
        window implies a full window of un-credited bytes here, so
        consuming them must cross the threshold.
        """
        self._pending_credit += nbytes
        if self._pending_credit >= self._credit_threshold:
            self.flush_credit()

    def flush_credit(self) -> None:
        """Send any accumulated window credit now (threshold crossing,
        or a pump going idle with credit still pending)."""
        pending, self._pending_credit = self._pending_credit, 0
        if pending and self._reset is None:
            with contextlib.suppress(Exception):
                self._session.send_frame(
                    self.chain_id, FrameType.WINDOW, _U32.pack(pending)
                )

    def add_credit(self, nbytes: int) -> None:
        self._send_window += nbytes
        if self._send_window > 0:
            self._window_ok.set()

    def abort(self, exc: BaseException) -> None:
        """Tear this chain down locally (RST received or link died)."""
        if self._reset is not None:
            return
        self._reset = exc
        self._window_ok.set()  # wake window waiters so they see the reset
        if self.open_reply is not None and not self.open_reply.done():
            self.open_reply.set_exception(ChainReset(str(exc)))
        if self._recv_eof or self.reader.at_eof():
            self._recv_eof = True
            return
        self._recv_eof = True
        self.reader.feed_eof()


class _MuxSession:
    """Shared frame plumbing of one live mux connection (either side).

    The write side is zero-copy: ``send_frame`` hands the packed
    header and the payload *view* to a per-session
    :class:`~repro.core.aio.pump.SegmentBatcher`, so every frame
    queued within one event-loop tick leaves in a single coalesced
    ``sendmsg`` — headers are never concatenated onto payloads and
    payloads are never copied.  The read side parses whole batches of
    frames out of one ``read()`` (``read_frames``) instead of two
    ``readexactly`` awaits per frame.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        stats: "AioRelayStats",
        window: int = DEFAULT_WINDOW,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.stats = stats
        self.window = window
        self.chains: Dict[int, MuxChain] = {}
        self.alive = True
        self.batcher = SegmentBatcher(writer, on_flush=self._on_flush)

    def _on_flush(self, nbytes: int, nsegments: int) -> None:
        self.stats.coalesced_flushes += 1
        self.stats.coalesce_bytes.record(nbytes)

    def send_frame(
        self, chain_id: int, ftype: int, payload: "bytes | memoryview" = b""
    ) -> None:
        if not self.alive:
            raise MuxError("mux link is down")
        nbytes = payload.nbytes if isinstance(payload, memoryview) else len(payload)
        self.batcher.add(_HEADER.pack(chain_id, ftype, nbytes), payload)
        self.stats.mux_frames += 1

    async def drain(self) -> None:
        """Flush the coalescing batcher and wait out backpressure."""
        self.batcher.flush()
        await maybe_drain(self.writer)

    async def read_frames(self):
        """Yield ``(chain_id, ftype, payload_view)`` for every inbound
        frame, reading the link in large batches.

        One ``read()`` typically surfaces many coalesced frames; all
        complete ones are parsed from a single buffer with
        ``unpack_from`` and yielded as ``memoryview`` slices — the only
        copy on the inbound hot path is the consumer's own
        (``feed_data`` into a chain reader).  Each view is released
        when the consumer returns, so consumers must not retain it
        across an ``await``.  Raises :class:`MuxError` when the link
        closes (cleanly or mid-frame).
        """
        buf = bytearray()
        header_size = _HEADER.size
        reader = self.reader
        while True:
            data = await reader.read(STREAM_LIMIT)
            if not data:
                raise MuxError(
                    "mux link closed mid-frame" if buf else "mux link closed by peer"
                )
            buf += data
            off = 0
            blen = len(buf)
            while blen - off >= header_size:
                chain_id, ftype, length = _HEADER.unpack_from(buf, off)
                if ftype not in FrameType.NAMES:
                    raise MuxError(f"unknown frame type {ftype}")
                if length > MAX_FRAME_PAYLOAD:
                    raise MuxError(f"oversized frame ({length} bytes)")
                if blen - off < header_size + length:
                    break
                start = off + header_size
                off = start + length
                if length:
                    view = memoryview(buf)[start:off]
                    try:
                        yield chain_id, ftype, view
                    finally:
                        # The buffer is compacted below; a surviving
                        # export would make ``del`` a BufferError.
                        view.release()
                else:
                    yield chain_id, ftype, b""
            if off:
                del buf[:off]

    def dispatch(
        self, chain_id: int, ftype: int, payload: "bytes | memoryview"
    ) -> bool:
        """Route one non-OPEN frame to its chain.

        Returns False for frames addressed to unknown chains — normal
        after a local RST raced in-flight frames; they are dropped.
        """
        chain = self.chains.get(chain_id)
        if chain is None:
            return False
        if ftype == FrameType.DATA:
            chain.bytes_moved += len(payload)
            if not chain._recv_eof:
                chain.reader.feed_data(payload)
        elif ftype == FrameType.EOF:
            if not chain._recv_eof:
                chain._recv_eof = True
                chain.reader.feed_eof()
        elif ftype == FrameType.WINDOW:
            (credit,) = _U32.unpack(payload)
            chain.add_credit(credit)
        elif ftype == FrameType.RST:
            self.chains.pop(chain_id, None)
            chain.abort(ChainReset(f"chain {chain_id} reset by peer"))
        elif ftype in (FrameType.OPEN_OK, FrameType.OPEN_ERR):
            fut = chain.open_reply
            if fut is not None and not fut.done():
                if ftype == FrameType.OPEN_OK:
                    fut.set_result(None)
                else:
                    fut.set_exception(
                        ChainReset(
                            bytes(payload).decode("utf-8", "replace") or "refused"
                        )
                    )
        return True

    def shutdown(self, exc: BaseException) -> None:
        """Link died: abort every chain (their TCP connections would
        have died with a real single-connection pinhole too)."""
        self.alive = False
        self.batcher.close()
        chains, self.chains = self.chains, {}
        for chain in chains.values():
            chain.abort(exc)
        with contextlib.suppress(Exception):
            self.writer.close()


async def _run_chain_pumps(
    chain: MuxChain,
    sock_reader: asyncio.StreamReader,
    sock_writer: asyncio.StreamWriter,
    stats: "AioRelayStats",
    chunker_min: int,
) -> None:
    """Bridge one established chain to its local TCP socket, both
    directions, then clean up."""

    async def sock_to_chain() -> None:
        chunker = AdaptiveChunker(min_chunk=chunker_min)
        try:
            while True:
                data = await sock_reader.read(chunker.size)
                if not data:
                    break
                stats.on_chunk(len(data))
                await chain.send_data(data)
                chunker.on_read(len(data))
        except (ConnectionError, OSError):
            pass
        finally:
            chain.send_eof()

    async def chain_to_sock() -> None:
        try:
            while True:
                data = await chain.reader.read(STREAM_LIMIT)
                if not data:
                    break
                stats.on_chunk(len(data))
                sock_writer.write(data)
                await maybe_drain(sock_writer)
                chain.consumed(len(data))
        except (ConnectionError, OSError):
            pass
        finally:
            with contextlib.suppress(Exception):
                await sock_writer.drain()
            with contextlib.suppress(Exception):
                sock_writer.write_eof()

    rec = _obs.RECORDER
    t0 = rec.wall_ts() if rec is not None else 0.0
    try:
        await asyncio.gather(sock_to_chain(), chain_to_sock())
    finally:
        stats.chain_bytes.record(chain.bytes_moved)
        # Chain-lifecycle span closed in ``finally`` so an aborted
        # chain (link drop, RST) never leaks an open span.
        if rec is not None:
            rec.wall_span_end(
                "mux", "chain", t0, track=f"chain:{chain.chain_id}",
                bytes=chain.bytes_moved, **_trace.wire_args(chain.tctx),
            )
        with contextlib.suppress(Exception):
            sock_writer.close()


# ---------------------------------------------------------------------------
# Outer side: persistent connector with reconnect
# ---------------------------------------------------------------------------


class MuxConnector:
    """The outer server's end of one outer↔inner mux link.

    Lazily connects on first :meth:`open_chain`; a background task
    demultiplexes inbound frames.  When the link drops, every live
    chain is aborted and the connector re-dials with exponential
    backoff (``backoff_base`` doubling up to ``backoff_max``); chains
    requested while down wait for the next successful dial (bounded by
    ``open_timeout``).
    """

    def __init__(
        self,
        inner_host: str,
        inner_port: int,
        stats: "AioRelayStats",
        *,
        window: int = DEFAULT_WINDOW,
        chunk: int = 4096,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        open_timeout: float = 10.0,
    ) -> None:
        self.inner_host = inner_host
        self.inner_port = inner_port
        self.stats = stats
        self.window = window
        self.chunk = chunk
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.open_timeout = open_timeout
        self._session: Optional[_MuxSession] = None
        self._session_ready = asyncio.Event()
        self._run_task: Optional[asyncio.Task] = None
        self._next_chain_id = 1
        self._closed = False
        #: Successful link (re-)establishments; 1 after first connect.
        self.connects = 0

    # -- lifecycle ----------------------------------------------------------

    def _ensure_running(self) -> None:
        if self._run_task is None or self._run_task.done():
            self._run_task = asyncio.ensure_future(self._run())

    async def _run(self) -> None:
        """Connect / serve / reconnect loop."""
        backoff = self.backoff_base
        while not self._closed:
            try:
                reader, writer = await asyncio.open_connection(
                    self.inner_host, self.inner_port, limit=STREAM_LIMIT
                )
            except OSError as exc:
                log.warning(
                    "mux dial to %s:%d failed (%s); retrying in %.2fs",
                    self.inner_host, self.inner_port, exc, backoff,
                )
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, self.backoff_max)
                continue
            tune_stream(writer)
            writer.write(MUX_MAGIC)
            session = _MuxSession(reader, writer, self.stats, self.window)
            self._session = session
            self.connects += 1
            if self.connects > 1:
                self.stats.mux_reconnects += 1
            self._session_ready.set()
            backoff = self.backoff_base
            log.info(
                "mux link up to %s:%d (connect #%d)",
                self.inner_host, self.inner_port, self.connects,
            )
            try:
                async for chain_id, ftype, payload in session.read_frames():
                    session.dispatch(chain_id, ftype, payload)
            except (asyncio.IncompleteReadError, ConnectionError, OSError, MuxError) as exc:
                self._session_ready.clear()
                self._session = None
                session.shutdown(ChainReset(f"mux link dropped: {exc}"))
                if not self._closed:
                    log.warning("mux link to %s:%d dropped: %s",
                                self.inner_host, self.inner_port, exc)
            except asyncio.CancelledError:
                session.shutdown(ChainReset("mux connector stopped"))
                raise

    async def _current_session(self) -> _MuxSession:
        self._ensure_running()

        async def wait_for_link() -> _MuxSession:
            while True:
                await self._session_ready.wait()
                session = self._session
                if session is not None and session.alive:
                    return session
                await asyncio.sleep(0.01)  # link flapped; wait for redial

        # wait_for (not asyncio.timeout) — the latter is 3.11+.
        return await asyncio.wait_for(wait_for_link(), self.open_timeout)

    async def stop(self) -> None:
        self._closed = True
        if self._run_task is not None:
            self._run_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._run_task
            self._run_task = None
        if self._session is not None:
            self._session.shutdown(ChainReset("mux connector stopped"))
            self._session = None
        self._session_ready.clear()

    async def drop_link(self) -> None:
        """Abort the live TCP link (chaos hook for tests): chains die,
        the connector re-dials automatically."""
        session = self._session
        if session is not None:
            transport = session.writer.transport
            with contextlib.suppress(Exception):
                transport.abort()

    # -- chain establishment ------------------------------------------------

    async def open_chain(
        self, host: str, port: int, tctx: Optional[str] = None
    ) -> "tuple[MuxChain, _MuxSession]":
        """OPEN a new chain toward the firewalled client at
        ``host:port``; returns when the inner server confirmed.

        ``tctx`` (wire form) rides the OPEN payload as an extra JSON
        key; untagged peers simply never send it, and seed-era inner
        servers ignore unknown keys — version-sniffed compatibility
        for free.
        """
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        session = await self._current_session()
        chain_id = self._next_chain_id
        self._next_chain_id += 1
        chain = MuxChain(session, chain_id, self.window)
        chain.tctx = tctx
        chain.open_reply = loop.create_future()
        session.chains[chain_id] = chain
        open_req = {"host": host, "port": port}
        if tctx is not None:
            open_req["tctx"] = tctx
        payload = json.dumps(open_req).encode()
        session.send_frame(chain_id, FrameType.OPEN, payload)
        await session.drain()
        try:
            await asyncio.wait_for(asyncio.shield(chain.open_reply), self.open_timeout)
        except (ChainReset, asyncio.TimeoutError):
            session.chains.pop(chain_id, None)
            raise
        finally:
            chain.open_reply = None
        self.stats.chain_setup_us.record(int((loop.time() - t0) * 1e6))
        return chain, session

    async def relay_chain(
        self,
        host: str,
        port: int,
        sock_reader: asyncio.StreamReader,
        sock_writer: asyncio.StreamWriter,
        tctx: Optional[str] = None,
    ) -> None:
        """Establish a chain and bridge it to an accepted peer socket
        until both directions finish."""
        chain, session = await self.open_chain(host, port, tctx=tctx)
        self.stats.passive_chains += 1
        try:
            await _run_chain_pumps(
                chain, sock_reader, sock_writer, self.stats, self.chunk
            )
        finally:
            if session.chains.pop(chain.chain_id, None) is not None and session.alive:
                chain.send_rst()


# ---------------------------------------------------------------------------
# Inner side: serve one mux session on an accepted nxport connection
# ---------------------------------------------------------------------------


async def serve_mux_session(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    stats: "AioRelayStats",
    *,
    window: int = DEFAULT_WINDOW,
    chunk: int = 4096,
    adopt=None,
    disown=None,
) -> None:
    """Inner-server end of a mux link (the ``MUX_MAGIC`` line has
    already been consumed by the caller).  Serves OPEN requests until
    the link closes.

    ``adopt``/``disown`` register the onward sockets this session
    dials for each chain with the owning daemon, so daemon shutdown
    aborts chains still mid-transfer instead of leaking them.
    """
    session = _MuxSession(reader, writer, stats, window)
    tasks: set[asyncio.Task] = set()

    async def handle_open(chain_id: int, payload: bytes) -> None:
        try:
            req = json.loads(payload)
            host, port = req["host"], int(req["port"])
            onward_r, onward_w = await asyncio.open_connection(
                host, port, limit=STREAM_LIMIT
            )
        except (OSError, ValueError, KeyError, TypeError) as exc:
            stats.failed_requests += 1
            session.chains.pop(chain_id, None)
            with contextlib.suppress(Exception):
                session.send_frame(chain_id, FrameType.OPEN_ERR, str(exc).encode())
            return
        tune_stream(onward_w)
        if adopt is not None:
            adopt(onward_w)
        stats.passive_chains += 1
        chain = session.chains[chain_id]
        # Optional causal trace tag; absent from seed-era peers.
        wire = req.get("tctx")
        if isinstance(wire, str):
            chain.tctx = wire
            ctx = _trace.accept(wire)
            rec = _obs.RECORDER
            if rec is not None and ctx is not None:
                rec.wall_instant("mux", "chain_open", track=f"chain:{chain_id}",
                                 dest=f"{host}:{port}", **_trace.span_args(ctx))
        session.send_frame(chain_id, FrameType.OPEN_OK)
        try:
            await _run_chain_pumps(chain, onward_r, onward_w, stats, chunk)
        finally:
            if disown is not None:
                disown(onward_w)
            if session.chains.pop(chain_id, None) is not None and session.alive:
                chain.send_rst()

    try:
        async for chain_id, ftype, payload in session.read_frames():
            if ftype == FrameType.OPEN:
                if chain_id in session.chains:
                    raise MuxError(f"duplicate OPEN for chain {chain_id}")
                session.chains[chain_id] = MuxChain(session, chain_id, window)
                # The payload view dies when this iteration returns;
                # the scheduled handler needs its own copy.
                task = asyncio.ensure_future(handle_open(chain_id, bytes(payload)))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            else:
                session.dispatch(chain_id, ftype, payload)
    except (asyncio.IncompleteReadError, ConnectionError, OSError, MuxError):
        pass
    finally:
        session.shutdown(ChainReset("mux link closed"))
        for task in list(tasks):
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
