"""Byte-level control protocol of the live relay.

Control messages are single newline-terminated JSON objects — one
request, one reply — after which the connection switches to opaque
byte relaying.  JSON keeps the protocol debuggable with ``nc``; the
data path never touches it.

Ops:

* ``{"op": "connect", "host": H, "port": P}`` → outer server; reply
  ``{"ok": true}`` then raw relay (Fig. 3).
* ``{"op": "bind", "client_host": H, "client_port": P,
  "inner_host": IH, "inner_port": IP}`` → outer server; reply
  ``{"ok": true, "proxy_host": ..., "proxy_port": ...}``.  The control
  connection then stays open; its EOF releases the bind (Fig. 4).
* ``{"op": "relayto", "host": H, "port": P}`` → inner server; reply
  ``{"ok": true}`` then raw relay.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

__all__ = [
    "MAX_CONTROL_LINE",
    "ProtocolError",
    "parse_control_line",
    "read_control",
    "write_control",
    "ok_reply",
    "error_reply",
    "steal_reader_buffer",
]

#: Upper bound on a control line; anything longer is a protocol error
#: (and a cheap defence against garbage on the control port).
MAX_CONTROL_LINE = 4096


class ProtocolError(ConnectionError):
    """Malformed control traffic."""


def parse_control_line(line: bytes) -> dict[str, Any]:
    """Parse one already-read control line; raises
    :class:`ProtocolError` on garbage, oversize lines, or EOF (empty
    line).  Split out of :func:`read_control` so the inner server can
    sniff the first nxport line for the mux magic before parsing."""
    if not line:
        raise ProtocolError("connection closed before control message")
    if len(line) > MAX_CONTROL_LINE:
        raise ProtocolError(f"control line too long ({len(line)} bytes)")
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"control line is not JSON: {exc}") from exc
    if not isinstance(msg, dict):
        raise ProtocolError(f"control message must be an object, got {type(msg).__name__}")
    return msg


async def read_control(reader: asyncio.StreamReader) -> dict[str, Any]:
    """Read one JSON control message; raises :class:`ProtocolError` on
    garbage, oversize lines, or early EOF."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise ProtocolError(f"control line unreadable: {exc}") from exc
    return parse_control_line(line)


def write_control(writer: asyncio.StreamWriter, msg: dict[str, Any]) -> None:
    """Queue one JSON control message (caller drains)."""
    data = json.dumps(msg, separators=(",", ":")).encode() + b"\n"
    if len(data) > MAX_CONTROL_LINE:
        raise ProtocolError(f"control message too long ({len(data)} bytes)")
    writer.write(data)


def ok_reply(**extra: Any) -> dict[str, Any]:
    return {"ok": True, **extra}


def error_reply(message: str) -> dict[str, Any]:
    return {"ok": False, "error": message}


def require_fields(msg: dict[str, Any], *fields: str) -> None:
    """Validate that ``msg`` carries every named field."""
    missing = [f for f in fields if f not in msg]
    if missing:
        raise ProtocolError(f"control message missing fields: {missing}")


def require_port(value: Any) -> int:
    """Validate a port number from the wire."""
    if not isinstance(value, int) or not (1 <= value <= 65535):
        raise ProtocolError(f"invalid port: {value!r}")
    return value


def steal_reader_buffer(reader: asyncio.StreamReader) -> "bytes | None":
    """Detach bytes the stream layer read past the control handshake.

    When a connection switches from line-oriented control traffic to
    the zero-copy byte plane, any payload the peer sent back-to-back
    with its control line is already sitting in the StreamReader's
    internal buffer — it must be forwarded before the transport's
    protocol is swapped, or it is silently lost.  Returns the buffered
    bytes (possibly ``b""``) and empties the reader, or ``None`` when
    the reader's internals are not the expected shape (the caller then
    stays on the stream pump instead of swapping protocols).
    """
    buf = getattr(reader, "_buffer", None)
    if not isinstance(buf, bytearray):
        return None
    data = bytes(buf)
    buf.clear()
    return data
