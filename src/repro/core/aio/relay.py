"""The live relay daemons (outer and inner servers) on asyncio.

Structurally identical to the simulated servers in
:mod:`repro.core.outer` / :mod:`repro.core.inner`: the outer server
answers ``connect`` and ``bind`` requests on its control port; the
inner server answers ``relayto`` on the nxport; established chains are
pumped chunk-by-chunk in both directions.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
from dataclasses import dataclass, field
from typing import Optional

from repro.core.aio.protocol import (
    ProtocolError,
    error_reply,
    ok_reply,
    read_control,
    require_fields,
    require_port,
    write_control,
)

__all__ = ["AioRelayStats", "AioOuterServer", "AioInnerServer", "DEFAULT_CHUNK"]

log = logging.getLogger("repro.nexus_proxy")

#: Relay read-buffer size — the live analogue of RelayConfig.chunk_bytes.
DEFAULT_CHUNK = 4096


def graceful_handler(fn):
    """Wrap a connection handler so event-loop shutdown is quiet.

    When ``asyncio.run`` tears the loop down it cancels pending
    handler tasks; on Python 3.11 ``StreamReaderProtocol`` then logs a
    spurious "Exception in callback" for every cancelled handler.
    Exiting normally on cancellation (these handlers hold no state
    that outlives the connection) avoids the noise.
    """

    async def wrapper(self, reader, writer):
        try:
            await fn(self, reader, writer)
        except asyncio.CancelledError:
            with contextlib.suppress(Exception):
                writer.close()

    return wrapper


@dataclass
class AioRelayStats:
    """Forwarding counters of one live relay daemon."""

    active_connects: int = 0
    passive_binds: int = 0
    passive_chains: int = 0
    chunks_relayed: int = 0
    bytes_relayed: int = 0
    failed_requests: int = 0


async def _pump(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    stats: AioRelayStats,
    chunk: int,
) -> None:
    """Copy bytes reader→writer until EOF or error, then half-close."""
    try:
        while True:
            data = await reader.read(chunk)
            if not data:
                break
            stats.chunks_relayed += 1
            stats.bytes_relayed += len(data)
            writer.write(data)
            await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError, OSError):
        pass
    finally:
        with contextlib.suppress(Exception):
            writer.write_eof()


async def _relay_pair(
    a_reader: asyncio.StreamReader,
    a_writer: asyncio.StreamWriter,
    b_reader: asyncio.StreamReader,
    b_writer: asyncio.StreamWriter,
    stats: AioRelayStats,
    chunk: int,
) -> None:
    """Bidirectional relay; returns when both directions finish."""
    try:
        await asyncio.gather(
            _pump(a_reader, b_writer, stats, chunk),
            _pump(b_reader, a_writer, stats, chunk),
        )
    finally:
        for w in (a_writer, b_writer):
            with contextlib.suppress(Exception):
                w.close()


class _Server:
    """Common lifecycle for the two daemons."""

    def __init__(self, host: str, chunk: int) -> None:
        self.host = host
        self.chunk = chunk
        self.stats = AioRelayStats()
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def running(self) -> bool:
        return self._server is not None and self._server.is_serving()

    @property
    def bound_port(self) -> int:
        """The actually-bound port (resolves port 0)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


class AioOuterServer(_Server):
    """The live outer server: control port + dynamic public ports."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        control_port: int = 0,
        chunk: int = DEFAULT_CHUNK,
        secret: "str | None" = None,
    ) -> None:
        super().__init__(host, chunk)
        self.control_port = control_port
        #: Optional shared secret every connect/bind request must carry.
        self.secret = secret
        self._public_servers: set[asyncio.base_events.Server] = set()

    async def start(self) -> "AioOuterServer":
        self._server = await asyncio.start_server(
            self._handle_control, self.host, self.control_port
        )
        self.control_port = self.bound_port
        log.info("outer server listening on %s:%d", self.host, self.control_port)
        return self

    async def stop(self) -> None:
        for srv in list(self._public_servers):
            srv.close()
        self._public_servers.clear()
        await super().stop()

    # -- control handling ---------------------------------------------------

    @graceful_handler
    async def _handle_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            msg = await read_control(reader)
        except ProtocolError as exc:
            self.stats.failed_requests += 1
            with contextlib.suppress(Exception):
                write_control(writer, error_reply(str(exc)))
                await writer.drain()
            writer.close()
            return
        op = msg.get("op")
        if self.secret is not None and msg.get("secret") != self.secret:
            self.stats.failed_requests += 1
            write_control(writer, error_reply("authentication failed"))
            with contextlib.suppress(Exception):
                await writer.drain()
            writer.close()
            return
        if op == "connect":
            await self._handle_connect(msg, reader, writer)
        elif op == "bind":
            await self._handle_bind(msg, reader, writer)
        else:
            self.stats.failed_requests += 1
            write_control(writer, error_reply(f"unknown op {op!r}"))
            with contextlib.suppress(Exception):
                await writer.drain()
            writer.close()

    async def _handle_connect(self, msg, reader, writer) -> None:
        try:
            require_fields(msg, "host", "port")
            port = require_port(msg["port"])
            onward_r, onward_w = await asyncio.open_connection(msg["host"], port)
        except (ProtocolError, OSError) as exc:
            self.stats.failed_requests += 1
            write_control(writer, error_reply(f"connect failed: {exc}"))
            with contextlib.suppress(Exception):
                await writer.drain()
            writer.close()
            return
        self.stats.active_connects += 1
        write_control(writer, ok_reply())
        await writer.drain()
        await _relay_pair(reader, writer, onward_r, onward_w, self.stats, self.chunk)

    async def _handle_bind(self, msg, reader, writer) -> None:
        try:
            require_fields(msg, "client_host", "client_port", "inner_host", "inner_port")
            client_host = msg["client_host"]
            client_port = require_port(msg["client_port"])
            inner_host = msg["inner_host"]
            inner_port = require_port(msg["inner_port"])
        except ProtocolError as exc:
            self.stats.failed_requests += 1
            write_control(writer, error_reply(str(exc)))
            with contextlib.suppress(Exception):
                await writer.drain()
            writer.close()
            return

        async def on_peer(pr: asyncio.StreamReader, pw: asyncio.StreamWriter) -> None:
            try:
                await _chain_peer(pr, pw)
            except asyncio.CancelledError:
                with contextlib.suppress(Exception):
                    pw.close()

        async def _chain_peer(pr: asyncio.StreamReader, pw: asyncio.StreamWriter) -> None:
            try:
                ir, iw = await asyncio.open_connection(inner_host, inner_port)
                write_control(iw, {"op": "relayto", "host": client_host,
                                   "port": client_port})
                await iw.drain()
                reply = await read_control(ir)
                if not reply.get("ok"):
                    raise ProtocolError(reply.get("error", "inner refused"))
            except (ProtocolError, OSError) as exc:
                self.stats.failed_requests += 1
                log.warning("passive chain failed: %s", exc)
                pw.close()
                return
            self.stats.passive_chains += 1
            await _relay_pair(pr, pw, ir, iw, self.stats, self.chunk)

        public = await asyncio.start_server(on_peer, self.host, 0)
        self._public_servers.add(public)
        public_port = public.sockets[0].getsockname()[1]
        self.stats.passive_binds += 1
        write_control(writer, ok_reply(proxy_host=self.host, proxy_port=public_port))
        await writer.drain()
        log.info(
            "bound public port %d for %s:%d (via inner %s:%d)",
            public_port, client_host, client_port, inner_host, inner_port,
        )
        # The control connection's lifetime scopes the bind.
        try:
            while await reader.read(1024):
                pass
        finally:
            public.close()
            self._public_servers.discard(public)
            writer.close()
            log.info("released public port %d", public_port)


class AioInnerServer(_Server):
    """The live inner server, listening on the nxport.

    ``allowed_peers`` is a defence-in-depth copy of the firewall
    pinhole: when set, connections whose source address is not listed
    are refused at the daemon even if the packet filter let them
    through (only the outer server should ever reach the nxport).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        nxport: int = 0,
        chunk: int = DEFAULT_CHUNK,
        allowed_peers: "list[str] | None" = None,
    ) -> None:
        super().__init__(host, chunk)
        self.nxport = nxport
        self.allowed_peers = allowed_peers

    async def start(self) -> "AioInnerServer":
        self._server = await asyncio.start_server(self._handle, self.host, self.nxport)
        self.nxport = self.bound_port
        log.info("inner server listening on %s:%d (nxport)", self.host, self.nxport)
        return self

    @graceful_handler
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self.allowed_peers is not None:
            peer = writer.get_extra_info("peername")
            if peer is None or peer[0] not in self.allowed_peers:
                self.stats.failed_requests += 1
                log.warning("nxport connection from unexpected peer %r", peer)
                with contextlib.suppress(Exception):
                    write_control(
                        writer, error_reply("source address not permitted")
                    )
                    await writer.drain()
                writer.close()
                return
        try:
            msg = await read_control(reader)
            if msg.get("op") != "relayto":
                raise ProtocolError(f"unknown op {msg.get('op')!r}")
            require_fields(msg, "host", "port")
            port = require_port(msg["port"])
            onward_r, onward_w = await asyncio.open_connection(msg["host"], port)
        except (ProtocolError, OSError) as exc:
            self.stats.failed_requests += 1
            with contextlib.suppress(Exception):
                write_control(writer, error_reply(str(exc)))
                await writer.drain()
            writer.close()
            return
        self.stats.passive_chains += 1
        write_control(writer, ok_reply())
        await writer.drain()
        await _relay_pair(reader, writer, onward_r, onward_w, self.stats, self.chunk)
