"""The live relay daemons (outer and inner servers) on asyncio.

Structurally identical to the simulated servers in
:mod:`repro.core.outer` / :mod:`repro.core.inner`: the outer server
answers ``connect`` and ``bind`` requests on its control port; the
inner server answers the nxport.  Two data planes exist behind the
same control protocol:

* **mux** (default for passive chains): all chains of one outer↔inner
  pair share a single persistent frame-multiplexed nxport connection
  (:mod:`repro.core.aio.mux`) — the paper's one-pinhole firewall story,
  Fig. 4 with exactly one outer→inner TCP connection.
* **legacy** (``mux=False``): one fresh nxport connection per chain
  with a JSON ``relayto`` handshake — kept as the ablation baseline.

Byte copying uses the adaptive pump (:mod:`repro.core.aio.pump`):
read sizes grow 4 KB → 256 KB while the writer keeps up, ``drain()``
is awaited only past the transport high-water mark, and every relay
socket runs with ``TCP_NODELAY``.  ``pump_mode="fixed"`` restores the
seed behaviour (fixed 4 KB reads, drain per chunk) for benchmarking.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.aio.mux import (
    MUX_MAGIC,
    ChainReset,
    MuxConnector,
    serve_mux_session,
)
from repro.core.aio.protocol import (
    ProtocolError,
    error_reply,
    ok_reply,
    parse_control_line,
    read_control,
    require_fields,
    require_port,
    write_control,
)
from repro.core.aio.pump import (
    MIN_CHUNK,
    STREAM_LIMIT,
    pump,
    relay_sockets_zero_copy,
    tune_stream,
)
from repro.obs import spans as _obs
from repro.obs import trace as _trace
from repro.obs.metrics import LogHistogram

__all__ = [
    "AioRelayStats",
    "AioOuterServer",
    "AioInnerServer",
    "Histogram",
    "DEFAULT_CHUNK",
]

log = logging.getLogger("repro.nexus_proxy")

#: Relay read-buffer size — the live analogue of RelayConfig.chunk_bytes.
#: With the adaptive pump this is the *starting* size; in
#: ``pump_mode="fixed"`` it is the whole story, as in the seed.
DEFAULT_CHUNK = MIN_CHUNK


#: The relay's histogram now lives in the shared observability layer
#: (:class:`repro.obs.metrics.LogHistogram`); this alias keeps the
#: established import path working.
Histogram = LogHistogram


@dataclass
class AioRelayStats:
    """Forwarding counters of one live relay daemon."""

    active_connects: int = 0
    passive_binds: int = 0
    passive_chains: int = 0
    chunks_relayed: int = 0
    bytes_relayed: int = 0
    failed_requests: int = 0
    #: TCP connections accepted on the nxport (inner server only).
    #: With the mux plane this stays at 1 per outer server regardless
    #: of how many chains are relayed — the single-pinhole assertion.
    nxport_connections: int = 0
    #: Mux frames sent by this daemon's sessions.
    mux_frames: int = 0
    #: Mux link re-establishments after a drop (outer server only).
    mux_reconnects: int = 0
    #: Times a mux chain sender blocked on an exhausted credit window.
    mux_window_stalls: int = 0
    #: Coalesced scatter-gather flushes (one ``sendmsg`` each).
    coalesced_flushes: int = 0
    #: Per-flush coalesced batch sizes (log2 buckets of bytes).
    coalesce_bytes: Histogram = field(default_factory=Histogram)
    #: Per-chunk forwarded-size histogram (log2 buckets of bytes).
    chunk_bytes: Histogram = field(default_factory=Histogram)
    #: Per-chain lifetime byte totals (log2 buckets of bytes).
    chain_bytes: Histogram = field(default_factory=Histogram)
    #: Chain establishment latency (log2 buckets of microseconds).
    chain_setup_us: Histogram = field(default_factory=Histogram)

    def on_chunk(self, nbytes: int) -> None:
        """One forwarded chunk — the pump hot path."""
        self.chunks_relayed += 1
        self.bytes_relayed += nbytes
        self.chunk_bytes.record(nbytes)

    def snapshot(self) -> "dict[str, object]":
        """Plain-data view of every counter and histogram.

        The key schema is shared verbatim with the *simulated* plane's
        :meth:`repro.core.outer.RelayStats.snapshot`, so Table 2 sim
        results and ``bench_relay_live.py`` emit comparable JSON.
        """
        return {
            "active_connects": self.active_connects,
            "passive_binds": self.passive_binds,
            "passive_chains": self.passive_chains,
            "chunks_relayed": self.chunks_relayed,
            "bytes_relayed": self.bytes_relayed,
            "failed_requests": self.failed_requests,
            "nxport_connections": self.nxport_connections,
            "mux_frames": self.mux_frames,
            "mux_reconnects": self.mux_reconnects,
            "mux_window_stalls": self.mux_window_stalls,
            "coalesced_flushes": self.coalesced_flushes,
            "coalesce_bytes_hist": self.coalesce_bytes.to_dict(),
            "chunk_bytes_hist": self.chunk_bytes.to_dict(),
            "chain_bytes_hist": self.chain_bytes.to_dict(),
            "chain_setup_us_hist": self.chain_setup_us.to_dict(),
        }


def graceful_handler(fn):
    """Wrap a connection handler so event-loop shutdown is quiet.

    When ``asyncio.run`` tears the loop down it cancels pending
    handler tasks; on Python 3.11 ``StreamReaderProtocol`` then logs a
    spurious "Exception in callback" for every cancelled handler.
    Exiting normally on cancellation (these handlers hold no state
    that outlives the connection) avoids the noise.
    """

    async def wrapper(self, reader, writer):
        # Satellite fix (ISSUE 6): every accepted connection is
        # registered for the daemon's lifetime so ``stop()`` can abort
        # sockets still mid-transfer, not just close the listeners.
        self.adopt(writer)
        try:
            await fn(self, reader, writer)
        except asyncio.CancelledError:
            with contextlib.suppress(Exception):
                writer.close()
        finally:
            self.disown(writer)

    return wrapper


async def _pump(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    stats: AioRelayStats,
    chunk: int,
    pump_mode: str = "adaptive",
    limiter: "object | None" = None,
) -> None:
    """Copy bytes reader→writer until EOF or error, then half-close."""
    await pump(
        reader,
        writer,
        fixed_chunk=chunk if pump_mode == "fixed" else None,
        on_chunk=stats.on_chunk,
        limiter=limiter,
    )


async def _relay_pair(
    a_reader: asyncio.StreamReader,
    a_writer: asyncio.StreamWriter,
    b_reader: asyncio.StreamReader,
    b_writer: asyncio.StreamWriter,
    stats: AioRelayStats,
    chunk: int,
    pump_mode: str = "adaptive",
    limiter: "object | None" = None,
) -> None:
    """Bidirectional relay; returns when both directions finish.

    In adaptive mode the pair is first handed to the zero-copy
    buffered-protocol relay (``recv_into`` ring buffers, direct socket
    forwarding); transports that cannot be protocol-swapped fall back
    to the stream pumps.  ``pump_mode="fixed"`` always takes the
    stream path — it *is* the seed baseline under ablation.

    A ``limiter`` (fleet edge token bucket) forces the stream-pump
    path: rate capping needs an awaitable debit per chunk, which the
    protocol-swapped relay's read callbacks cannot host.
    """
    try:
        if pump_mode == "adaptive" and limiter is None:
            moved = await relay_sockets_zero_copy(
                a_reader, a_writer, b_reader, b_writer,
                on_chunk=stats.on_chunk,
            )
            if moved is not None:
                return
        await asyncio.gather(
            _pump(a_reader, b_writer, stats, chunk, pump_mode, limiter),
            _pump(b_reader, a_writer, stats, chunk, pump_mode, limiter),
        )
    finally:
        for w in (a_writer, b_writer):
            with contextlib.suppress(Exception):
                w.close()


class _Server:
    """Common lifecycle for the two daemons.

    ``pump_mode="fixed"`` is the *seed data plane*, kept as the
    ablation/benchmark baseline: fixed ``chunk``-byte reads with a
    ``drain()`` per write, default (64 KB) stream limits, and untuned
    sockets (no ``TCP_NODELAY``, default write buffers) — exactly the
    configuration the adaptive plane replaced.
    """

    def __init__(self, host: str, chunk: int, pump_mode: str = "adaptive") -> None:
        if pump_mode not in ("adaptive", "fixed"):
            raise ValueError(f"pump_mode must be 'adaptive' or 'fixed', got {pump_mode!r}")
        self.host = host
        self.chunk = chunk
        self.pump_mode = pump_mode
        #: StreamReader ``limit=`` for every socket this daemon opens.
        self.stream_limit = STREAM_LIMIT if pump_mode == "adaptive" else 2 ** 16
        self.stats = AioRelayStats()
        self._server: Optional[asyncio.base_events.Server] = None
        #: Live per-connection writers (accepted *and* onward/per-stream
        #: sockets registered mid-transfer) — aborted by ``stop()``.
        self._conns: "set[asyncio.StreamWriter]" = set()

    def adopt(self, writer: asyncio.StreamWriter) -> None:
        """Track a connection so daemon shutdown can abort it."""
        self._conns.add(writer)

    def disown(self, writer: asyncio.StreamWriter) -> None:
        self._conns.discard(writer)

    def tune(self, writer: asyncio.StreamWriter) -> None:
        """Apply socket tuning — a no-op in the seed-baseline mode."""
        if self.pump_mode == "adaptive":
            tune_stream(writer)

    @property
    def running(self) -> bool:
        return self._server is not None and self._server.is_serving()

    @property
    def bound_port(self) -> int:
        """The actually-bound port (resolves port 0)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        # Abort sockets still registered mid-transfer: closing only the
        # listeners would leave established relay/stream connections —
        # and their pump tasks — alive past daemon shutdown.
        conns, self._conns = list(self._conns), set()
        for w in conns:
            with contextlib.suppress(Exception):
                w.transport.abort()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


class AioOuterServer(_Server):
    """The live outer server: control port + dynamic public ports.

    ``mux=True`` (default) relays all passive chains of one inner
    server over a single persistent nxport connection; ``mux=False``
    keeps the seed's connection-per-chain behaviour.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        control_port: int = 0,
        chunk: int = DEFAULT_CHUNK,
        secret: "str | None" = None,
        pump_mode: str = "adaptive",
        mux: bool = True,
        reuse_port: bool = False,
        onward_bind_host: "str | None" = None,
        limiter: "object | None" = None,
    ) -> None:
        super().__init__(host, chunk, pump_mode)
        self.control_port = control_port
        #: Optional shared secret every connect/bind request must carry.
        self.secret = secret
        self.mux = mux
        #: Fleet mode: N workers bind the *same* control port with
        #: ``SO_REUSEPORT`` so the kernel spreads incoming chains.
        self.reuse_port = reuse_port
        #: Source address for onward (wide-area-side) connections.
        #: Fleet workers each bind a distinct loopback alias here so
        #: per-relay-host WAN emulation can tell them apart.
        self.onward_bind_host = onward_bind_host
        #: Edge byte-rate limiter (``await acquire(n)``); rate-capped
        #: chains take the stream-pump path instead of zero-copy.
        self.limiter = limiter
        self._public_servers: set[asyncio.base_events.Server] = set()
        #: One persistent mux link per (inner_host, inner_port).
        self._mux_links: Dict[Tuple[str, int], MuxConnector] = {}

    async def start(self) -> "AioOuterServer":
        kwargs = {}
        if self.reuse_port:
            kwargs["reuse_port"] = True
        self._server = await asyncio.start_server(
            self._handle_control, self.host, self.control_port,
            limit=self.stream_limit, **kwargs,
        )
        self.control_port = self.bound_port
        log.info("outer server listening on %s:%d", self.host, self.control_port)
        return self

    async def stop(self) -> None:
        # Satellite fix: the seed close()d public servers without
        # wait_closed(), leaking their sockets into the next test.
        public, self._public_servers = list(self._public_servers), set()
        for srv in public:
            srv.close()
        for srv in public:
            with contextlib.suppress(Exception):
                await srv.wait_closed()
        links, self._mux_links = list(self._mux_links.values()), {}
        for link in links:
            await link.stop()
        await super().stop()

    def mux_link(self, inner_host: str, inner_port: int) -> MuxConnector:
        """The (lazily created) persistent link to one inner server."""
        key = (inner_host, inner_port)
        link = self._mux_links.get(key)
        if link is None:
            link = MuxConnector(inner_host, inner_port, self.stats, chunk=self.chunk)
            self._mux_links[key] = link
        return link

    # -- control handling ---------------------------------------------------

    @graceful_handler
    async def _handle_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.tune(writer)
        try:
            msg = await read_control(reader)
        except ProtocolError as exc:
            self.stats.failed_requests += 1
            with contextlib.suppress(Exception):
                write_control(writer, error_reply(str(exc)))
                await writer.drain()
            writer.close()
            return
        op = msg.get("op")
        if self.secret is not None and msg.get("secret") != self.secret:
            self.stats.failed_requests += 1
            write_control(writer, error_reply("authentication failed"))
            with contextlib.suppress(Exception):
                await writer.drain()
            writer.close()
            return
        if op == "connect":
            await self._handle_connect(msg, reader, writer)
        elif op == "bind":
            await self._handle_bind(msg, reader, writer)
        else:
            self.stats.failed_requests += 1
            write_control(writer, error_reply(f"unknown op {op!r}"))
            with contextlib.suppress(Exception):
                await writer.drain()
            writer.close()

    async def _handle_connect(self, msg, reader, writer) -> None:
        try:
            require_fields(msg, "host", "port")
            port = require_port(msg["port"])
            onward_r, onward_w = await asyncio.open_connection(
                msg["host"], port, limit=self.stream_limit,
                local_addr=(
                    (self.onward_bind_host, 0)
                    if self.onward_bind_host is not None else None
                ),
            )
        except (ProtocolError, OSError) as exc:
            self.stats.failed_requests += 1
            write_control(writer, error_reply(f"connect failed: {exc}"))
            with contextlib.suppress(Exception):
                await writer.drain()
            writer.close()
            return
        self.tune(onward_w)
        self.adopt(onward_w)
        self.stats.active_connects += 1
        write_control(writer, ok_reply())
        await writer.drain()
        ctx = _trace.accept(msg.get("tctx"))
        try:
            rec = _obs.RECORDER
            if rec is not None:
                with rec.wall_span("relay", "active_chain", track=f"outer:{self.host}",
                                   dest=f"{msg['host']}:{msg['port']}",
                                   **_trace.span_args(ctx)):
                    await _relay_pair(
                        reader, writer, onward_r, onward_w, self.stats, self.chunk,
                        self.pump_mode, self.limiter,
                    )
                return
            await _relay_pair(
                reader, writer, onward_r, onward_w, self.stats, self.chunk,
                self.pump_mode, self.limiter,
            )
        finally:
            self.disown(onward_w)

    async def _handle_bind(self, msg, reader, writer) -> None:
        try:
            require_fields(msg, "client_host", "client_port", "inner_host", "inner_port")
            client_host = msg["client_host"]
            client_port = require_port(msg["client_port"])
            inner_host = msg["inner_host"]
            inner_port = require_port(msg["inner_port"])
        except ProtocolError as exc:
            self.stats.failed_requests += 1
            write_control(writer, error_reply(str(exc)))
            with contextlib.suppress(Exception):
                await writer.drain()
            writer.close()
            return
        bind_ctx = _trace.accept(msg.get("tctx"))
        if bind_ctx is not None:
            rec = _obs.RECORDER
            if rec is not None:
                # Anchor the bind's span id so every chain's parent
                # link resolves in an assembled trace.
                rec.wall_instant(
                    "relay", "passive_bind", track=f"outer:{self.host}",
                    client=f"{msg['client_host']}:{msg['client_port']}",
                    **_trace.span_args(bind_ctx),
                )

        async def on_peer(pr: asyncio.StreamReader, pw: asyncio.StreamWriter) -> None:
            self.adopt(pw)
            try:
                await _chain_peer(pr, pw)
            except asyncio.CancelledError:
                with contextlib.suppress(Exception):
                    pw.close()
            finally:
                self.disown(pw)

        async def _chain_peer(pr: asyncio.StreamReader, pw: asyncio.StreamWriter) -> None:
            self.tune(pw)
            if self.mux:
                await _chain_peer_mux(pr, pw)
            else:
                await _chain_peer_legacy(pr, pw)

        async def _chain_peer_mux(pr, pw) -> None:
            """One logical chain over the shared nxport link."""
            link = self.mux_link(inner_host, inner_port)
            chain_ctx = _trace.child(bind_ctx)
            wire = chain_ctx.to_wire() if chain_ctx is not None else None
            rec = _obs.RECORDER
            try:
                if rec is not None:
                    with rec.wall_span("relay", "passive_chain",
                                       track=f"outer:{self.host}",
                                       client=f"{client_host}:{client_port}",
                                       **_trace.span_args(chain_ctx)):
                        await link.relay_chain(client_host, client_port, pr, pw,
                                               tctx=wire)
                    return
                await link.relay_chain(client_host, client_port, pr, pw,
                                       tctx=wire)
            except (ChainReset, ConnectionError, OSError, asyncio.TimeoutError) as exc:
                self.stats.failed_requests += 1
                log.warning("mux passive chain failed: %s", exc)
                with contextlib.suppress(Exception):
                    pw.close()

        async def _chain_peer_legacy(pr, pw) -> None:
            """Seed behaviour: fresh nxport connection per chain."""
            chain_ctx = _trace.child(bind_ctx)
            try:
                ir, iw = await asyncio.open_connection(
                    inner_host, inner_port, limit=self.stream_limit
                )
                self.tune(iw)
                relayto = {"op": "relayto", "host": client_host,
                           "port": client_port}
                if chain_ctx is not None:
                    relayto["tctx"] = chain_ctx.to_wire()
                write_control(iw, relayto)
                await iw.drain()
                reply = await read_control(ir)
                if not reply.get("ok"):
                    raise ProtocolError(reply.get("error", "inner refused"))
            except (ProtocolError, OSError) as exc:
                self.stats.failed_requests += 1
                log.warning("passive chain failed: %s", exc)
                pw.close()
                return
            self.stats.passive_chains += 1
            self.adopt(iw)
            try:
                rec = _obs.RECORDER
                if rec is not None:
                    with rec.wall_span("relay", "passive_chain",
                                       track=f"outer:{self.host}",
                                       client=f"{client_host}:{client_port}",
                                       **_trace.span_args(chain_ctx)):
                        await _relay_pair(pr, pw, ir, iw, self.stats, self.chunk,
                                          self.pump_mode)
                    return
                await _relay_pair(pr, pw, ir, iw, self.stats, self.chunk,
                                  self.pump_mode)
            finally:
                self.disown(iw)

        public = await asyncio.start_server(
            on_peer, self.host, 0, limit=self.stream_limit
        )
        self._public_servers.add(public)
        public_port = public.sockets[0].getsockname()[1]
        self.stats.passive_binds += 1
        write_control(writer, ok_reply(proxy_host=self.host, proxy_port=public_port))
        await writer.drain()
        log.info(
            "bound public port %d for %s:%d (via inner %s:%d)",
            public_port, client_host, client_port, inner_host, inner_port,
        )
        # The control connection's lifetime scopes the bind.
        try:
            while await reader.read(1024):
                pass
        finally:
            public.close()
            with contextlib.suppress(Exception):
                await public.wait_closed()
            self._public_servers.discard(public)
            writer.close()
            log.info("released public port %d", public_port)


class AioInnerServer(_Server):
    """The live inner server, listening on the nxport.

    Speaks both nxport dialects: a connection starting with
    ``NXMUX/1`` becomes a persistent frame-multiplexed link carrying
    many chains; a JSON line is the legacy per-chain ``relayto``
    handshake.

    ``allowed_peers`` is a defence-in-depth copy of the firewall
    pinhole: when set, connections whose source address is not listed
    are refused at the daemon even if the packet filter let them
    through (only the outer server should ever reach the nxport).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        nxport: int = 0,
        chunk: int = DEFAULT_CHUNK,
        allowed_peers: "list[str] | None" = None,
        pump_mode: str = "adaptive",
    ) -> None:
        super().__init__(host, chunk, pump_mode)
        self.nxport = nxport
        self.allowed_peers = allowed_peers

    async def start(self) -> "AioInnerServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.nxport, limit=self.stream_limit
        )
        self.nxport = self.bound_port
        log.info("inner server listening on %s:%d (nxport)", self.host, self.nxport)
        return self

    @graceful_handler
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.nxport_connections += 1
        rec = _obs.RECORDER
        if rec is not None:
            rec.wall_instant("relay", "nxport_connection",
                             track=f"inner:{self.host}",
                             total=self.stats.nxport_connections)
        self.tune(writer)
        if self.allowed_peers is not None:
            peer = writer.get_extra_info("peername")
            if peer is None or peer[0] not in self.allowed_peers:
                self.stats.failed_requests += 1
                log.warning("nxport connection from unexpected peer %r", peer)
                with contextlib.suppress(Exception):
                    write_control(
                        writer, error_reply("source address not permitted")
                    )
                    await writer.drain()
                writer.close()
                return
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError, ConnectionError, OSError):
            writer.close()
            return
        if line == MUX_MAGIC:
            log.info("nxport connection switched to mux framing")
            await serve_mux_session(
                reader, writer, self.stats, chunk=self.chunk,
                adopt=self.adopt, disown=self.disown,
            )
            with contextlib.suppress(Exception):
                writer.close()
            return
        await self._handle_legacy(line, reader, writer)

    async def _handle_legacy(
        self, line: bytes, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            msg = parse_control_line(line)
            if msg.get("op") != "relayto":
                raise ProtocolError(f"unknown op {msg.get('op')!r}")
            require_fields(msg, "host", "port")
            port = require_port(msg["port"])
            onward_r, onward_w = await asyncio.open_connection(
                msg["host"], port, limit=self.stream_limit
            )
        except (ProtocolError, OSError) as exc:
            self.stats.failed_requests += 1
            with contextlib.suppress(Exception):
                write_control(writer, error_reply(str(exc)))
                await writer.drain()
            writer.close()
            return
        self.tune(onward_w)
        self.adopt(onward_w)
        self.stats.passive_chains += 1
        write_control(writer, ok_reply())
        await writer.drain()
        ctx = _trace.accept(msg.get("tctx"))
        rec = _obs.RECORDER
        if rec is not None and ctx is not None:
            rec.wall_instant("relay", "legacy_chain", track=f"inner:{self.host}",
                             dest=f"{msg['host']}:{msg['port']}",
                             **_trace.span_args(ctx))
        try:
            await _relay_pair(
                reader, writer, onward_r, onward_w, self.stats, self.chunk,
                self.pump_mode,
            )
        finally:
            self.disown(onward_w)
