"""Real asyncio implementation of the Nexus Proxy.

The same mechanism as :mod:`repro.core`'s simulated servers, on actual
OS sockets: an outer relay daemon, an inner relay daemon, and a client
library with the Table 1 calls.  This is the adoptable artifact — a
firewall-traversing TCP relay that (unlike SOCKS, §3) supports
*passive* opens: a process behind the firewall can publish a listening
endpoint on the outer server.

Run the daemons with the installed console scripts::

    repro-outer-server --host 0.0.0.0 --control-port 7000
    repro-inner-server --host 0.0.0.0 --nxport 7100

or in-process via :class:`AioOuterServer` / :class:`AioInnerServer`
(see ``examples/real_relay_echo.py``).
"""

from repro.core.aio.api import AioProxiedListener, AioProxyClient
from repro.core.aio.firewall import GuardedDialer
from repro.core.aio.fleet import FleetManager, FleetSpec
from repro.core.aio.mux import MUX_MAGIC, ChainReset, MuxConnector
from repro.core.aio.pump import AdaptiveChunker, SegmentBatcher, send_segments, tune_stream
from repro.core.aio.relay import (
    AioInnerServer,
    AioOuterServer,
    AioRelayStats,
    Histogram,
)
from repro.core.aio.streams import (
    DEFAULT_BLOCK,
    DEFAULT_STREAMS,
    DEFAULT_WINDOW,
    StripeError,
    StripeSink,
    recv_striped,
    send_striped,
)

__all__ = [
    "AdaptiveChunker",
    "AioInnerServer",
    "AioOuterServer",
    "AioProxiedListener",
    "AioProxyClient",
    "AioRelayStats",
    "ChainReset",
    "DEFAULT_BLOCK",
    "DEFAULT_STREAMS",
    "DEFAULT_WINDOW",
    "FleetManager",
    "FleetSpec",
    "GuardedDialer",
    "Histogram",
    "MUX_MAGIC",
    "MuxConnector",
    "SegmentBatcher",
    "StripeError",
    "StripeSink",
    "recv_striped",
    "send_segments",
    "send_striped",
    "tune_stream",
]
